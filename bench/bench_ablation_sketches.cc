// Ablations on the sketching design choices behind the Table 3 systems:
//
//   - MinHash signature size vs. Jaccard-estimate error (Aurum/D3L both
//     pay memory & hashing time for accuracy; error ~ 1/sqrt(k))
//   - LSH banding shape (bands x rows at fixed signature size) vs. recall
//     and candidate-set size: more bands = higher recall at lower
//     similarity, more false candidates to verify — the S-curve knob
//   - JOSIE early-termination pruning vs. a no-pruning accumulate-all scan
//     (postings scanned counter shows the work saved)

#include <benchmark/benchmark.h>

#include <cmath>

#include "common/random.h"
#include "discovery/corpus.h"
#include "discovery/josie.h"
#include "text/lsh.h"
#include "text/minhash.h"
#include "workload/generator.h"

#include "common/status.h"

namespace {

using namespace lakekit;  // NOLINT

void BM_Ablation_MinHashSize(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  text::MinHasher hasher(k);
  // 50 pairs at true Jaccard 0.5.
  const int n = 500;
  const int shared = static_cast<int>(2 * n * 0.5 / 1.5);
  std::vector<std::pair<std::vector<std::string>, std::vector<std::string>>>
      pairs;
  for (int p = 0; p < 50; ++p) {
    std::vector<std::string> a;
    std::vector<std::string> b;
    std::string prefix = "p" + std::to_string(p);
    for (int i = 0; i < shared; ++i) {
      a.push_back(prefix + "s" + std::to_string(i));
      b.push_back(prefix + "s" + std::to_string(i));
    }
    for (int i = shared; i < n; ++i) {
      a.push_back(prefix + "a" + std::to_string(i));
      b.push_back(prefix + "b" + std::to_string(i));
    }
    pairs.emplace_back(std::move(a), std::move(b));
  }
  const double true_j = static_cast<double>(shared) / (2 * n - shared);
  double mean_abs_error = 0;
  for (auto _ : state) {
    double err = 0;
    for (const auto& [a, b] : pairs) {
      double est = hasher.Compute(a).EstimateJaccard(hasher.Compute(b));
      err += std::abs(est - true_j);
    }
    mean_abs_error = err / static_cast<double>(pairs.size());
    benchmark::DoNotOptimize(mean_abs_error);
  }
  state.counters["signature_size"] = static_cast<double>(k);
  state.counters["mean_abs_error"] = mean_abs_error;
  state.counters["expected_error"] =
      std::sqrt(true_j * (1 - true_j) / static_cast<double>(k)) * 0.8;
}

void BM_Ablation_LshBandingShape(benchmark::State& state) {
  // Fixed 128-long signatures; shape (bands, rows) with bands*rows = 128.
  const size_t bands = static_cast<size_t>(state.range(0));
  const size_t rows = 128 / bands;
  text::MinHasher hasher(128);
  // 40 positive pairs at J=0.4 plus 200 unrelated items.
  const double jaccard = 0.4;
  const int n = 300;
  const int shared = static_cast<int>(2 * n * jaccard / (1 + jaccard));
  size_t recalled = 0;
  double candidates = 0;
  for (auto _ : state) {
    text::LshIndex index(bands, rows);
    Rng rng(7);
    std::vector<text::MinHashSignature> probes;
    for (int p = 0; p < 40; ++p) {
      std::vector<std::string> a;
      std::vector<std::string> b;
      std::string prefix = "p" + std::to_string(p);
      for (int i = 0; i < shared; ++i) {
        a.push_back(prefix + "s" + std::to_string(i));
        b.push_back(prefix + "s" + std::to_string(i));
      }
      for (int i = shared; i < n; ++i) {
        a.push_back(prefix + "a" + std::to_string(i));
        b.push_back(prefix + "b" + std::to_string(i));
      }
      index.Insert(static_cast<uint64_t>(p), hasher.Compute(a));
      probes.push_back(hasher.Compute(b));
    }
    for (int d = 0; d < 200; ++d) {
      std::vector<std::string> noise;
      for (int i = 0; i < n; ++i) noise.push_back(rng.NextWord(10));
      index.Insert(1000 + static_cast<uint64_t>(d), hasher.Compute(noise));
    }
    recalled = 0;
    candidates = 0;
    for (size_t p = 0; p < probes.size(); ++p) {
      auto c = index.Query(probes[p]);
      candidates += static_cast<double>(c.size());
      for (uint64_t id : c) {
        if (id == p) {
          ++recalled;
          break;
        }
      }
    }
  }
  state.counters["bands"] = static_cast<double>(bands);
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["recall"] = static_cast<double>(recalled) / 40.0;
  state.counters["avg_candidates"] = candidates / 40.0;
  state.counters["theory_collision_p"] =
      text::LshIndex(bands, rows).CollisionProbability(jaccard);
}

void BM_Ablation_JosiePostingsScanned(benchmark::State& state) {
  workload::JoinableLakeOptions options;
  options.num_tables = static_cast<size_t>(state.range(0));
  options.rows_per_table = 150;
  options.num_planted_pairs = options.num_tables / 4;
  auto lake = workload::MakeJoinableLake(options);
  discovery::Corpus corpus;
  for (const auto& t : lake.tables) LAKEKIT_CHECK_OK(corpus.AddTable(t));
  discovery::JosieFinder josie(&corpus);
  josie.Build();
  double postings = 0;
  for (auto _ : state) {
    for (const auto& pair : lake.planted) {
      auto q = *corpus.FindColumn(pair.table_a, pair.column_a);
      auto matches = josie.TopKOverlapColumns(q, 3);
      benchmark::DoNotOptimize(matches);
      postings += static_cast<double>(josie.last_query_postings_scanned());
    }
  }
  state.counters["index_tokens"] = static_cast<double>(josie.index_size());
  state.counters["avg_postings_scanned"] =
      postings / static_cast<double>(state.iterations() *
                                     static_cast<int64_t>(lake.planted.size()));
}

}  // namespace

BENCHMARK(BM_Ablation_MinHashSize)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_Ablation_LshBandingShape)->Arg(8)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_Ablation_JosiePostingsScanned)->Arg(32)->Arg(96);

BENCHMARK_MAIN();
