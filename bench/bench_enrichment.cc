// Reproduces survey Sec. 6.4 (metadata enrichment): D4 domain discovery and
// DomainNet homograph detection on planted-domain lakes (counters report
// domain recovery and homograph recall against the planted ground truth),
// and relaxed-FD discovery scaling with table size.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <set>

#include "discovery/corpus.h"
#include "enrich/d4.h"
#include "enrich/domain_net.h"
#include "enrich/rfd.h"
#include "workload/generator.h"

#include "common/status.h"

namespace {

using namespace lakekit;         // NOLINT
using namespace lakekit::enrich;  // NOLINT

struct DomainFixture {
  workload::DomainLake lake;
  std::unique_ptr<discovery::Corpus> corpus;
};

DomainFixture& GetDomainFixture(int num_domains) {
  static std::map<int, std::unique_ptr<DomainFixture>> cache;
  auto it = cache.find(num_domains);
  if (it != cache.end()) return *it->second;
  auto f = std::make_unique<DomainFixture>();
  workload::DomainLakeOptions options;
  options.num_domains = static_cast<size_t>(num_domains);
  options.num_tables = static_cast<size_t>(num_domains) * 4;
  options.rows_per_table = 120;
  options.num_homographs = 3;
  f->lake = workload::MakeDomainLake(options);
  f->corpus = std::make_unique<discovery::Corpus>();
  for (const auto& t : f->lake.tables) LAKEKIT_CHECK_OK(f->corpus->AddTable(t));
  DomainFixture& ref = *f;
  cache[num_domains] = std::move(f);
  return ref;
}

void BM_Enrich_D4DomainDiscovery(benchmark::State& state) {
  DomainFixture& f = GetDomainFixture(static_cast<int>(state.range(0)));
  D4DomainDiscovery d4;
  size_t pure_domains = 0;
  size_t discovered = 0;
  for (auto _ : state) {
    auto domains = d4.Discover(*f.corpus);
    benchmark::DoNotOptimize(domains);
    discovered = domains.size();
    // Purity: each discovered domain dominated by one planted domain.
    pure_domains = 0;
    for (const Domain& d : domains) {
      std::map<std::string, size_t> votes;
      for (const std::string& term : d.terms) {
        for (const auto& [planted, terms] : f.lake.domains) {
          for (const std::string& pt : terms) {
            if (pt == term) ++votes[planted];
          }
        }
      }
      size_t best = 0;
      size_t total = 0;
      for (const auto& [p, c] : votes) {
        best = std::max(best, c);
        total += c;
      }
      if (total > 0 && static_cast<double>(best) / total >= 0.8) {
        ++pure_domains;
      }
    }
  }
  state.counters["domains_planted"] =
      static_cast<double>(f.lake.domains.size());
  state.counters["domains_discovered"] = static_cast<double>(discovered);
  state.counters["pure_domains"] = static_cast<double>(pure_domains);
}

void BM_Enrich_DomainNetHomographs(benchmark::State& state) {
  DomainFixture& f = GetDomainFixture(static_cast<int>(state.range(0)));
  size_t recovered = 0;
  for (auto _ : state) {
    DomainNet net;
    net.Build(*f.corpus);
    auto homographs = net.FindHomographs();
    benchmark::DoNotOptimize(homographs);
    std::set<std::string> found;
    for (const Homograph& h : homographs) found.insert(h.value);
    recovered = 0;
    for (const std::string& planted : f.lake.homographs) {
      if (found.count(planted) > 0) ++recovered;
    }
  }
  state.counters["homographs_planted"] =
      static_cast<double>(f.lake.homographs.size());
  state.counters["homographs_recovered"] = static_cast<double>(recovered);
}

void BM_Enrich_RfdDiscovery(benchmark::State& state) {
  workload::DirtyTableOptions options;
  options.num_rows = static_cast<size_t>(state.range(0));
  options.num_violations = options.num_rows / 40;
  workload::DirtyTable dirty = workload::MakeDirtyTable(options);
  bool recovered = false;
  for (auto _ : state) {
    auto fds = DiscoverRelaxedFds(dirty.table);
    benchmark::DoNotOptimize(fds);
    recovered = false;
    for (const RelaxedFd& fd : fds) {
      if (fd.lhs == std::vector<std::string>{"city"} && fd.rhs == "zip") {
        recovered = true;
      }
    }
  }
  state.counters["city_zip_fd_recovered"] = recovered ? 1.0 : 0.0;
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Enrich_RfdEvaluateSingle(benchmark::State& state) {
  workload::DirtyTableOptions options;
  options.num_rows = static_cast<size_t>(state.range(0));
  workload::DirtyTable dirty = workload::MakeDirtyTable(options);
  for (auto _ : state) {
    RelaxedFd fd = EvaluateFd(dirty.table, {"city"}, "zip");
    benchmark::DoNotOptimize(fd);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

}  // namespace

BENCHMARK(BM_Enrich_D4DomainDiscovery)->Arg(4)->Arg(8);
BENCHMARK(BM_Enrich_DomainNetHomographs)->Arg(4)->Arg(8);
BENCHMARK(BM_Enrich_RfdDiscovery)->Arg(500)->Arg(2000);
BENCHMARK(BM_Enrich_RfdEvaluateSingle)->Arg(500)->Arg(5000);

BENCHMARK_MAIN();
