// Reproduces survey Sec. 7.2 (heterogeneous data querying): federated SQL
// over the polystore with the predicate-pushdown ablation Constance's design
// implies — pushdown shrinks what the sources ship to the mediator by the
// selectivity factor, which shrinks join inputs and end-to-end latency.
// Expected shape: pushdown's advantage grows as predicates get more
// selective; with a non-selective predicate the two paths converge.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>

#include "json/parser.h"
#include "query/federation.h"
#include "storage/polystore.h"

#include "common/status.h"

namespace {

using namespace lakekit;         // NOLINT
using namespace lakekit::query;  // NOLINT

struct Fixture {
  std::unique_ptr<storage::Polystore> polystore;
  std::unique_ptr<FederatedEngine> engine;
  std::string dir;

  ~Fixture() { std::filesystem::remove_all(dir); }
};

Fixture& GetFixture(int rows) {
  static std::map<int, std::unique_ptr<Fixture>> cache;
  auto it = cache.find(rows);
  if (it != cache.end()) return *it->second;
  auto f = std::make_unique<Fixture>();
  f->dir = "/tmp/lakekit_bench_fed_" + std::to_string(rows);
  std::filesystem::remove_all(f->dir);
  auto ps = storage::Polystore::Open(f->dir);
  f->polystore = std::make_unique<storage::Polystore>(std::move(*ps));

  std::string sales = "sale_id,store,amount\n";
  for (int i = 0; i < rows; ++i) {
    sales += std::to_string(i) + ",store" + std::to_string(i % 40) + "," +
             std::to_string((i * 7) % 100) + "\n";
  }
  LAKEKIT_CHECK_OK(f->polystore->StoreTable("sales",
                                 *table::Table::FromCsv("sales", sales)));
  std::vector<json::Value> stores;
  for (int i = 0; i < 40; ++i) {
    stores.push_back(*json::Parse(
        R"({"store":"store)" + std::to_string(i) + R"(","region":"r)" +
        std::to_string(i % 4) + "\"}"));
  }
  LAKEKIT_CHECK_OK(f->polystore->StoreDocuments("stores", std::move(stores)));
  f->engine = std::make_unique<FederatedEngine>(f->polystore.get());
  Fixture& ref = *f;
  cache[rows] = std::move(f);
  return ref;
}

// Selectivity sweep: amount > X keeps ~(100-X)% of rows.
const char* QueryWithSelectivity(int keep_percent) {
  static std::string sql;
  sql = "SELECT region, COUNT(*) AS n FROM sales JOIN stores ON "
        "sales.store = stores.store WHERE amount >= " +
        std::to_string(100 - keep_percent) + " GROUP BY region";
  return sql.c_str();
}

void BM_Federated_WithPushdown(benchmark::State& state) {
  Fixture& f = GetFixture(static_cast<int>(state.range(0)));
  const char* sql = QueryWithSelectivity(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto out = f.engine->Query(sql, /*enable_pushdown=*/true);
    benchmark::DoNotOptimize(out);
  }
  state.counters["rows_shipped"] =
      static_cast<double>(f.engine->last_stats().rows_shipped);
  state.counters["join_input_rows"] =
      static_cast<double>(f.engine->last_stats().join_input_rows);
}

void BM_Federated_WithoutPushdown(benchmark::State& state) {
  Fixture& f = GetFixture(static_cast<int>(state.range(0)));
  const char* sql = QueryWithSelectivity(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto out = f.engine->Query(sql, /*enable_pushdown=*/false);
    benchmark::DoNotOptimize(out);
  }
  state.counters["rows_shipped"] =
      static_cast<double>(f.engine->last_stats().rows_shipped);
  state.counters["join_input_rows"] =
      static_cast<double>(f.engine->last_stats().join_input_rows);
}

void BM_Federated_SingleSourceScan(benchmark::State& state) {
  Fixture& f = GetFixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto out = f.engine->Query("SELECT COUNT(*) AS n FROM sales");
    benchmark::DoNotOptimize(out);
  }
}

}  // namespace

// Args: {rows, selectivity-kept-percent}.
BENCHMARK(BM_Federated_WithPushdown)
    ->Args({5000, 5})
    ->Args({5000, 50})
    ->Args({20000, 5})
    ->Args({20000, 50});
BENCHMARK(BM_Federated_WithoutPushdown)
    ->Args({5000, 5})
    ->Args({5000, 50})
    ->Args({20000, 5})
    ->Args({20000, 50});
BENCHMARK(BM_Federated_SingleSourceScan)->Arg(20000);

BENCHMARK_MAIN();
