// Reproduces survey Sec. 7.2 (heterogeneous data querying): federated SQL
// over the polystore with the predicate-pushdown ablation Constance's design
// implies — pushdown shrinks what the sources ship to the mediator by the
// selectivity factor, which shrinks join inputs and end-to-end latency.
// Expected shape: pushdown's advantage grows as predicates get more
// selective; with a non-selective predicate the two paths converge.

// Also home to the vectorized-operator microbenchmarks (DESIGN.md §7):
// BM_Query_{Filter,HashJoin,Aggregate}_Vec run the morsel-parallel engine at
// 1/4/16 threads against a 1M-row table; the *_Reference twins run the
// row-at-a-time interpreter the engine replaced. The single-thread Vec vs
// Reference ratio is the vectorization win; the thread sweep shows morsel
// scaling (flat on a single-core host).

#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>

#include <atomic>
#include <thread>

#include "common/memory_budget.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "query/admission.h"
#include "json/parser.h"
#include "query/federation.h"
#include "query/operators.h"
#include "query/reference_ops.h"
#include "query/zone_map.h"
#include "storage/polystore.h"

#include "common/status.h"

namespace {

using namespace lakekit;         // NOLINT
using namespace lakekit::query;  // NOLINT

struct Fixture {
  std::unique_ptr<storage::Polystore> polystore;
  std::unique_ptr<FederatedEngine> engine;
  std::string dir;

  ~Fixture() { std::filesystem::remove_all(dir); }
};

Fixture& GetFixture(int rows) {
  static std::map<int, std::unique_ptr<Fixture>> cache;
  auto it = cache.find(rows);
  if (it != cache.end()) return *it->second;
  auto f = std::make_unique<Fixture>();
  f->dir = "/tmp/lakekit_bench_fed_" + std::to_string(rows);
  std::filesystem::remove_all(f->dir);
  auto ps = storage::Polystore::Open(f->dir);
  f->polystore = std::make_unique<storage::Polystore>(std::move(*ps));

  std::string sales = "sale_id,store,amount\n";
  for (int i = 0; i < rows; ++i) {
    sales += std::to_string(i) + ",store" + std::to_string(i % 40) + "," +
             std::to_string((i * 7) % 100) + "\n";
  }
  LAKEKIT_CHECK_OK(f->polystore->StoreTable("sales",
                                 *table::Table::FromCsv("sales", sales)));
  std::vector<json::Value> stores;
  for (int i = 0; i < 40; ++i) {
    stores.push_back(*json::Parse(
        R"({"store":"store)" + std::to_string(i) + R"(","region":"r)" +
        std::to_string(i % 4) + "\"}"));
  }
  LAKEKIT_CHECK_OK(f->polystore->StoreDocuments("stores", std::move(stores)));
  f->engine = std::make_unique<FederatedEngine>(f->polystore.get());
  Fixture& ref = *f;
  cache[rows] = std::move(f);
  return ref;
}

// Selectivity sweep: amount > X keeps ~(100-X)% of rows.
const char* QueryWithSelectivity(int keep_percent) {
  static std::string sql;
  sql = "SELECT region, COUNT(*) AS n FROM sales JOIN stores ON "
        "sales.store = stores.store WHERE amount >= " +
        std::to_string(100 - keep_percent) + " GROUP BY region";
  return sql.c_str();
}

void BM_Federated_WithPushdown(benchmark::State& state) {
  Fixture& f = GetFixture(static_cast<int>(state.range(0)));
  const char* sql = QueryWithSelectivity(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto out = f.engine->Query(sql, /*enable_pushdown=*/true);
    benchmark::DoNotOptimize(out);
  }
  state.counters["rows_shipped"] =
      static_cast<double>(f.engine->last_stats().rows_shipped);
  state.counters["join_input_rows"] =
      static_cast<double>(f.engine->last_stats().join_input_rows);
}

void BM_Federated_WithoutPushdown(benchmark::State& state) {
  Fixture& f = GetFixture(static_cast<int>(state.range(0)));
  const char* sql = QueryWithSelectivity(static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto out = f.engine->Query(sql, /*enable_pushdown=*/false);
    benchmark::DoNotOptimize(out);
  }
  state.counters["rows_shipped"] =
      static_cast<double>(f.engine->last_stats().rows_shipped);
  state.counters["join_input_rows"] =
      static_cast<double>(f.engine->last_stats().join_input_rows);
}

void BM_Federated_SingleSourceScan(benchmark::State& state) {
  Fixture& f = GetFixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto out = f.engine->Query("SELECT COUNT(*) AS n FROM sales");
    benchmark::DoNotOptimize(out);
  }
}

/// Fixture for the scan-acceleration pair (DESIGN.md §9): one dataset in
/// the *object* tier as raw CSV, clustered ascending on `id`. A cold scan
/// pays the full pipeline — object read, CSV parse, type sniffing —
/// per query; a warm scan runs off the pinned decoded table with zone-map
/// pruning. That decode is exactly what the cache exists to amortize.
Fixture& GetCsvFixture(int rows) {
  static std::map<int, std::unique_ptr<Fixture>> cache;
  auto it = cache.find(rows);
  if (it != cache.end()) return *it->second;
  auto f = std::make_unique<Fixture>();
  f->dir = "/tmp/lakekit_bench_fed_csv_" + std::to_string(rows);
  std::filesystem::remove_all(f->dir);
  auto ps = storage::Polystore::Open(f->dir);
  f->polystore = std::make_unique<storage::Polystore>(std::move(*ps));
  std::string events = "id,amount\n";
  for (int i = 0; i < rows; ++i) {
    events += std::to_string(i) + "," + std::to_string((i * 7) % 100) + "\n";
  }
  LAKEKIT_CHECK_OK(
      f->polystore->StoreObject("events", "raw/events.csv", events));
  f->engine = std::make_unique<FederatedEngine>(f->polystore.get());
  Fixture& ref = *f;
  cache[rows] = std::move(f);
  return ref;
}

// `id < rows*keep/100` — selective AND aligned with the clustering key, so
// the warm path also prunes every morsel past the cutoff.
std::string CsvScanQuery(int rows, int keep_percent) {
  return "SELECT id, amount FROM events WHERE id < " +
         std::to_string(rows * keep_percent / 100);
}

void BM_Federated_QueryCold(benchmark::State& state) {
  // The cold baseline for BM_Federated_QueryCached: no table cache, so
  // every iteration re-reads the object tier and re-parses the CSV.
  Fixture& f = GetCsvFixture(static_cast<int>(state.range(0)));
  const std::string sql = CsvScanQuery(static_cast<int>(state.range(0)),
                                       static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto out = f.engine->Query(sql);
    benchmark::DoNotOptimize(out);
  }
  state.counters["rows_shipped"] =
      static_cast<double>(f.engine->last_stats().rows_shipped);
}

void BM_Federated_QueryCached(benchmark::State& state) {
  // The scan acceleration layer (DESIGN.md §9): identical query and CSV
  // fixture as BM_Federated_QueryCold, but the engine carries a
  // decoded-table cache. The first query decodes and admits; every timed
  // iteration then scans the pinned decoded table — no object read, no
  // CSV parse, zone-map pruning past the id cutoff. The ratio against
  // BM_Federated_QueryCold at the same args is the warm-over-cold win.
  Fixture& f = GetCsvFixture(static_cast<int>(state.range(0)));
  static std::map<int, std::unique_ptr<TableCache>> caches;
  auto it = caches.find(static_cast<int>(state.range(0)));
  if (it == caches.end()) {
    it = caches
             .emplace(static_cast<int>(state.range(0)),
                      std::make_unique<TableCache>())
             .first;
  }
  FederatedEngineOptions options;
  options.table_cache = it->second.get();
  FederatedEngine engine(f.polystore.get(), options);
  const std::string sql = CsvScanQuery(static_cast<int>(state.range(0)),
                                       static_cast<int>(state.range(1)));
  // Warm the cache outside the timed region.
  auto warm = engine.Query(sql);
  benchmark::DoNotOptimize(warm);
  for (auto _ : state) {
    auto out = engine.Query(sql);
    benchmark::DoNotOptimize(out);
  }
  const FederationStats& stats = engine.last_stats();
  state.counters["cache_hits"] = static_cast<double>(stats.cache_hits);
  state.counters["morsels_pruned"] =
      static_cast<double>(stats.morsels_pruned);
  state.counters["rows_shipped"] = static_cast<double>(stats.rows_shipped);
}

void BM_Federated_QueryArmed(benchmark::State& state) {
  // End-to-end federated query with the full resilience envelope armed —
  // generous deadline, live cancel token, best-effort degradation — but no
  // faults, so every check is on the happy path. Compare against
  // BM_Federated_WithPushdown at the same args for the envelope's cost.
  Fixture& f = GetFixture(static_cast<int>(state.range(0)));
  const char* sql = QueryWithSelectivity(static_cast<int>(state.range(1)));
  CancelSource source;
  QueryOptions options;
  options.cancel = source.token();
  options.degradation = DegradationMode::kBestEffort;
  for (auto _ : state) {
    options.deadline = Deadline::After(std::chrono::hours(1));
    auto out = f.engine->Query(sql, options);
    benchmark::DoNotOptimize(out);
  }
  state.counters["rows_shipped"] =
      static_cast<double>(f.engine->last_stats().rows_shipped);
}

void BM_Federated_QueryStorm(benchmark::State& state) {
  // Overload goodput, the admission-control ablation (DESIGN.md §10): eight
  // client threads fire queries at one engine whose process memory budget
  // fits ~2.5 concurrent queries. Arg 0 runs the storm with no front door —
  // all eight collide on the budget and most fail kResourceExhausted. Arg 1
  // arms admission at max_concurrent=2 with a deep queue, so excess queries
  // wait instead of colliding and goodput_frac approaches 1.0. Time-per-
  // iteration is one full 16-query storm.
  Fixture& f = GetFixture(5000);
  const bool admission_on = state.range(0) != 0;
  const char* sql = QueryWithSelectivity(50);

  // Size the budget off a solo probe run: peak accounted bytes of one
  // uncontended query.
  static const size_t solo_peak = [&] {
    MemoryBudget probe(static_cast<size_t>(-1) / 2);
    FederatedEngineOptions options;
    options.memory_budget = &probe;
    FederatedEngine engine(f.polystore.get(), options);
    auto out = engine.Query(sql);
    benchmark::DoNotOptimize(out);
    return probe.peak_used();
  }();

  uint64_t ok = 0;
  uint64_t failed = 0;
  for (auto _ : state) {
    MemoryBudget budget(solo_peak * 5 / 2);
    AdmissionOptions admission_options;
    admission_options.max_concurrent = 2;
    admission_options.max_queue_depth = 64;  // hold, don't shed
    AdmissionController admission(admission_options);
    FederatedEngineOptions options;
    options.memory_budget = &budget;
    if (admission_on) options.admission = &admission;
    FederatedEngine engine(f.polystore.get(), options);
    std::atomic<uint64_t> storm_ok{0};
    std::atomic<uint64_t> storm_failed{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < 8; ++t) {
      clients.emplace_back([&] {
        for (int i = 0; i < 2; ++i) {
          auto out = engine.Query(sql);
          (out.ok() ? storm_ok : storm_failed).fetch_add(1);
        }
      });
    }
    for (std::thread& t : clients) t.join();
    ok += storm_ok.load();
    failed += storm_failed.load();
  }
  state.counters["goodput_frac"] =
      ok + failed == 0
          ? 0.0
          : static_cast<double>(ok) / static_cast<double>(ok + failed);
}

// ------------------------------------------- vectorized operators (1M rows)

constexpr size_t kVecRows = 1'000'000;

/// 1M-row fact table: int key (1000 distinct), int measure, double score,
/// string category (16 distinct).
const table::Table& VecTable() {
  static const table::Table t = [] {
    Rng rng(7);
    table::Schema schema;
    schema.AddField({"key", table::DataType::kInt64, true});
    schema.AddField({"val", table::DataType::kInt64, true});
    schema.AddField({"score", table::DataType::kDouble, true});
    schema.AddField({"cat", table::DataType::kString, true});
    table::Table out("fact", schema);
    out.Reserve(kVecRows);
    for (size_t i = 0; i < kVecRows; ++i) {
      LAKEKIT_CHECK_OK(out.AppendRow(
          {table::Value(rng.Between(0, 999)), table::Value(rng.Between(0, 99)),
           table::Value(rng.NextDouble()),
           table::Value("cat" + std::to_string(rng.Below(16)))}));
    }
    return out;
  }();
  return t;
}

/// 1000-row dimension table joining VecTable's key column.
const table::Table& VecDimTable() {
  static const table::Table t = [] {
    table::Schema schema;
    schema.AddField({"key", table::DataType::kInt64, true});
    schema.AddField({"label", table::DataType::kString, true});
    table::Table out("dim", schema);
    for (int64_t i = 0; i < 1000; ++i) {
      LAKEKIT_CHECK_OK(out.AppendRow(
          {table::Value(i), table::Value("label" + std::to_string(i))}));
    }
    return out;
  }();
  return t;
}

ThreadPool& PoolFor(int threads) {
  static std::map<int, std::unique_ptr<ThreadPool>> pools;
  auto it = pools.find(threads);
  if (it == pools.end()) {
    it = pools.emplace(threads, std::make_unique<ThreadPool>(threads)).first;
  }
  return *it->second;
}

ExprPtr VecPredicate() {
  // val >= 95 AND score < 0.5 — ~2.5% selectivity across two lanes, the
  // selective-scan shape (TPC-H Q6 style) where predicate evaluation, not
  // result materialization, dominates.
  return Expr::Logical(
      LogicalOp::kAnd,
      Expr::Compare(CmpOp::kGe, Expr::Column("val"),
                    Expr::Literal(table::Value(int64_t{95}))),
      Expr::Compare(CmpOp::kLt, Expr::Column("score"),
                    Expr::Literal(table::Value(0.5))));
}

const std::vector<AggSpec>& VecAggs() {
  // Dashboard-style rollup: the full stats block (count + sum/avg/min/max)
  // over both measure columns. The vectorized engine assigns groups once
  // and runs ONE fused sweep per measure column regardless of how many
  // aggregates read it; the row-at-a-time reference pays a per-row variant
  // dispatch per aggregate, so its cost scales with the aggregate count.
  static const std::vector<AggSpec> aggs = {
      AggSpec{AggFn::kCount, "", "n"},
      AggSpec{AggFn::kSum, "val", "val_total"},
      AggSpec{AggFn::kAvg, "val", "val_avg"},
      AggSpec{AggFn::kMin, "val", "val_lo"},
      AggSpec{AggFn::kMax, "val", "val_hi"},
      AggSpec{AggFn::kSum, "score", "score_total"},
      AggSpec{AggFn::kAvg, "score", "score_avg"},
      AggSpec{AggFn::kMin, "score", "score_lo"},
      AggSpec{AggFn::kMax, "score", "score_hi"}};
  return aggs;
}

void BM_Query_Filter_Vec(benchmark::State& state) {
  const table::Table& t = VecTable();
  ExprPtr pred = VecPredicate();
  ExecOptions opts;
  opts.pool = &PoolFor(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto out = Filter(t, *pred, opts);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kVecRows));
}

void BM_Query_Filter_VecArmed(benchmark::State& state) {
  // Same scan as BM_Query_Filter_Vec but with a live deadline and cancel
  // token armed (neither ever fires): the delta against the unarmed twin is
  // the per-morsel interruption-check overhead the resilience layer adds to
  // the hot path. EXPERIMENTS.md pins it at <= 2%.
  const table::Table& t = VecTable();
  ExprPtr pred = VecPredicate();
  CancelSource source;
  ExecOptions opts;
  opts.pool = &PoolFor(static_cast<int>(state.range(0)));
  opts.cancel = source.token();
  opts.deadline = Deadline::After(std::chrono::hours(1));
  for (auto _ : state) {
    auto out = Filter(t, *pred, opts);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kVecRows));
}

void BM_Query_Filter_VecBudgeted(benchmark::State& state) {
  // Same scan as BM_Query_Filter_Vec but with a huge-capacity memory budget
  // attached: every reservation takes the real TryReserve CAS path and
  // nothing ever refuses. The delta against the unarmed twin is the
  // budget-accounting overhead on unconstrained queries. EXPERIMENTS.md
  // pins it at <= 2%.
  const table::Table& t = VecTable();
  ExprPtr pred = VecPredicate();
  MemoryBudget budget(static_cast<size_t>(-1) / 2);
  BudgetAccount account(&budget);
  ExecOptions opts;
  opts.pool = &PoolFor(static_cast<int>(state.range(0)));
  opts.budget = &account;
  for (auto _ : state) {
    auto out = Filter(t, *pred, opts);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kVecRows));
}

/// 1M-row table clustered on `id` (ascending), the shape zone maps exploit:
/// each kMorselSize chunk covers a tight, disjoint id range.
const table::Table& ClusteredTable() {
  static const table::Table t = [] {
    Rng rng(11);
    table::Schema schema;
    schema.AddField({"id", table::DataType::kInt64, true});
    schema.AddField({"payload", table::DataType::kDouble, true});
    table::Table out("clustered", schema);
    out.Reserve(kVecRows);
    for (size_t i = 0; i < kVecRows; ++i) {
      LAKEKIT_CHECK_OK(out.AppendRow({table::Value(static_cast<int64_t>(i)),
                                      table::Value(rng.NextDouble())}));
    }
    return out;
  }();
  return t;
}

ExprPtr ClusteredPredicate() {
  // id < 10000 — 1% selectivity on the clustering key: all but the first
  // few morsels are provably empty from their [min, max] alone.
  return Expr::Compare(CmpOp::kLt, Expr::Column("id"),
                       Expr::Literal(table::Value(int64_t{10000})));
}

void BM_Query_Filter_ZoneMapSkip(benchmark::State& state) {
  const table::Table& t = ClusteredTable();
  static const ZoneMap zones = ZoneMap::Build(t);
  ExprPtr pred = ClusteredPredicate();
  ExecOptions opts;
  opts.pool = &PoolFor(static_cast<int>(state.range(0)));
  FilterExecStats fstats;
  for (auto _ : state) {
    auto out = Filter(t, *pred, &zones, opts, &fstats);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kVecRows));
  state.counters["pruned_frac"] =
      fstats.morsels_total == 0
          ? 0.0
          : static_cast<double>(fstats.morsels_pruned) /
                static_cast<double>(fstats.morsels_total);
}

void BM_Query_Filter_NoZoneMap(benchmark::State& state) {
  // The ablation twin of BM_Query_Filter_ZoneMapSkip: same clustered table
  // and predicate, no zone map — every morsel evaluates.
  const table::Table& t = ClusteredTable();
  ExprPtr pred = ClusteredPredicate();
  ExecOptions opts;
  opts.pool = &PoolFor(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto out = Filter(t, *pred, opts);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kVecRows));
}

void BM_Query_Filter_Reference(benchmark::State& state) {
  const table::Table& t = VecTable();
  ExprPtr pred = VecPredicate();
  for (auto _ : state) {
    auto out = reference::Filter(t, *pred);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kVecRows));
}

void BM_Query_HashJoin_Vec(benchmark::State& state) {
  const table::Table& t = VecTable();
  const table::Table& dim = VecDimTable();
  ExecOptions opts;
  opts.pool = &PoolFor(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto out = HashJoin(t, dim, "key", "key", JoinType::kInner, opts);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kVecRows));
}

void BM_Query_HashJoin_VecBudgeted(benchmark::State& state) {
  // Budget-accounting twin of BM_Query_HashJoin_Vec (see
  // BM_Query_Filter_VecBudgeted for the methodology).
  const table::Table& t = VecTable();
  const table::Table& dim = VecDimTable();
  MemoryBudget budget(static_cast<size_t>(-1) / 2);
  BudgetAccount account(&budget);
  ExecOptions opts;
  opts.pool = &PoolFor(static_cast<int>(state.range(0)));
  opts.budget = &account;
  for (auto _ : state) {
    auto out = HashJoin(t, dim, "key", "key", JoinType::kInner, opts);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kVecRows));
}

void BM_Query_HashJoin_Reference(benchmark::State& state) {
  const table::Table& t = VecTable();
  const table::Table& dim = VecDimTable();
  for (auto _ : state) {
    auto out = reference::HashJoin(t, dim, "key", "key", JoinType::kInner);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kVecRows));
}

void BM_Query_Aggregate_Vec(benchmark::State& state) {
  const table::Table& t = VecTable();
  ExecOptions opts;
  opts.pool = &PoolFor(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto out = Aggregate(t, {"cat"}, VecAggs(), opts);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kVecRows));
}

void BM_Query_Aggregate_VecBudgeted(benchmark::State& state) {
  // Budget-accounting twin of BM_Query_Aggregate_Vec (see
  // BM_Query_Filter_VecBudgeted for the methodology).
  const table::Table& t = VecTable();
  MemoryBudget budget(static_cast<size_t>(-1) / 2);
  BudgetAccount account(&budget);
  ExecOptions opts;
  opts.pool = &PoolFor(static_cast<int>(state.range(0)));
  opts.budget = &account;
  for (auto _ : state) {
    auto out = Aggregate(t, {"cat"}, VecAggs(), opts);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kVecRows));
}

void BM_Query_Aggregate_Reference(benchmark::State& state) {
  const table::Table& t = VecTable();
  for (auto _ : state) {
    auto out = reference::Aggregate(t, {"cat"}, VecAggs());
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kVecRows));
}

}  // namespace

// Arg: thread count for the morsel pool.
BENCHMARK(BM_Query_Filter_Vec)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Query_Filter_VecArmed)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Query_Filter_VecBudgeted)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Query_Filter_Reference)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Query_Filter_ZoneMapSkip)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Query_Filter_NoZoneMap)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Query_HashJoin_Vec)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Query_HashJoin_VecBudgeted)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Query_HashJoin_Reference)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Query_Aggregate_Vec)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Query_Aggregate_VecBudgeted)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Query_Aggregate_Reference)->Unit(benchmark::kMillisecond);

// Args: {rows, selectivity-kept-percent}.
BENCHMARK(BM_Federated_WithPushdown)
    ->Args({5000, 5})
    ->Args({5000, 50})
    ->Args({20000, 5})
    ->Args({20000, 50});
BENCHMARK(BM_Federated_WithoutPushdown)
    ->Args({5000, 5})
    ->Args({5000, 50})
    ->Args({20000, 5})
    ->Args({20000, 50});
BENCHMARK(BM_Federated_SingleSourceScan)->Arg(20000);
BENCHMARK(BM_Federated_QueryArmed)->Args({5000, 5})->Args({20000, 5});
// Arg: 0 = no front door, 1 = admission armed. Compare goodput_frac.
BENCHMARK(BM_Federated_QueryStorm)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Args: {rows, keep-percent}. Compare Cold vs Cached at the same args for
// the warm-over-cold win (EXPERIMENTS.md).
BENCHMARK(BM_Federated_QueryCold)
    ->Args({5000, 5})
    ->Args({5000, 50})
    ->Args({100000, 5})
    ->Args({100000, 50});
BENCHMARK(BM_Federated_QueryCached)
    ->Args({5000, 5})
    ->Args({5000, 50})
    ->Args({100000, 5})
    ->Args({100000, 50});

BENCHMARK_MAIN();
