// Reproduces survey Fig. 2: the three-tier function-oriented architecture.
// Measures the end-to-end pipeline per tier over a growing lake —
// ingestion (format detection + extraction + routing + cataloging),
// maintenance (corpus sketching + Aurum/JOSIE index build), and exploration
// (discovery queries + federated SQL) — giving the per-tier latency
// breakdown of the architecture the figure sketches.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>

#include "core/data_lake.h"
#include "workload/generator.h"

#include "common/status.h"

namespace {

using namespace lakekit;        // NOLINT
using namespace lakekit::core;  // NOLINT

workload::JoinableLake MakeLake(int num_tables) {
  workload::JoinableLakeOptions options;
  options.num_tables = static_cast<size_t>(num_tables);
  options.rows_per_table = 80;
  options.num_planted_pairs = static_cast<size_t>(num_tables) / 4;
  return workload::MakeJoinableLake(options);
}

std::string FreshDir() {
  static int counter = 0;
  std::string dir = "/tmp/lakekit_bench_fig2_" + std::to_string(counter++);
  std::filesystem::remove_all(dir);
  return dir;
}

void BM_Tier_Ingestion(benchmark::State& state) {
  workload::JoinableLake lake = MakeLake(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    std::string dir = FreshDir();
    auto dl = DataLake::Open(dir);
    state.ResumeTiming();
    for (const auto& t : lake.tables) {
      benchmark::DoNotOptimize(dl->IngestTable(t));
    }
    state.PauseTiming();
    std::filesystem::remove_all(dir);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Tier_Maintenance(benchmark::State& state) {
  workload::JoinableLake lake = MakeLake(static_cast<int>(state.range(0)));
  std::string dir = FreshDir();
  auto dl = DataLake::Open(dir);
  for (const auto& t : lake.tables) LAKEKIT_CHECK_OK(dl->IngestTable(t));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dl->BuildDiscoveryIndexes());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  std::filesystem::remove_all(dir);
}

void BM_Tier_Exploration(benchmark::State& state) {
  workload::JoinableLake lake = MakeLake(static_cast<int>(state.range(0)));
  std::string dir = FreshDir();
  auto dl = DataLake::Open(dir);
  for (const auto& t : lake.tables) LAKEKIT_CHECK_OK(dl->IngestTable(t));
  LAKEKIT_CHECK_OK(dl->BuildDiscoveryIndexes());
  size_t found = 0;
  size_t total = 0;
  for (auto _ : state) {
    // One discovery query + one SQL query, the two exploration modes of
    // Sec. 7.
    const auto& pair = lake.planted[total % lake.planted.size()];
    auto joinable = dl->FindJoinableTables(pair.table_a, 3);
    benchmark::DoNotOptimize(joinable);
    if (joinable.ok()) {
      for (const auto& m : *joinable) {
        if (m.table_name == pair.table_b) ++found;
      }
    }
    auto sql = dl->Query("SELECT COUNT(*) AS n FROM " + pair.table_a +
                         " WHERE measure > 0");
    benchmark::DoNotOptimize(sql);
    ++total;
  }
  state.counters["discovery_recall"] =
      static_cast<double>(found) / static_cast<double>(total);
  std::filesystem::remove_all(dir);
}

void BM_Tier_EndToEnd(benchmark::State& state) {
  workload::JoinableLake lake = MakeLake(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    std::string dir = FreshDir();
    state.ResumeTiming();
    auto dl = DataLake::Open(dir);
    for (const auto& t : lake.tables) LAKEKIT_CHECK_OK(dl->IngestTable(t));
    LAKEKIT_CHECK_OK(dl->BuildDiscoveryIndexes());
    auto joinable = dl->FindJoinableTables(lake.planted[0].table_a, 3);
    benchmark::DoNotOptimize(joinable);
    state.PauseTiming();
    std::filesystem::remove_all(dir);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

}  // namespace

BENCHMARK(BM_Tier_Ingestion)->Arg(16)->Arg(48);
BENCHMARK(BM_Tier_Maintenance)->Arg(16)->Arg(48);
BENCHMARK(BM_Tier_Exploration)->Arg(16)->Arg(48);
BENCHMARK(BM_Tier_EndToEnd)->Arg(16)->Arg(48);

BENCHMARK_MAIN();
