// Reproduces survey Sec. 5.1 (metadata extraction): GEMMS structural
// inference, DATAMARAN log-template extraction, and Skluma profiling on
// planted-ground-truth corpora. Counters report template recovery accuracy
// — DATAMARAN's evaluation criterion (its paper reports high extraction
// accuracy on 100 crawled GitHub log datasets; here the corpus is synthetic
// with known templates, so accuracy is exact).

#include <benchmark/benchmark.h>

#include <set>

#include "ingest/format_detect.h"
#include "ingest/log_template.h"
#include "ingest/profiler.h"
#include "ingest/structural_extractor.h"
#include "json/parser.h"
#include "workload/generator.h"

namespace {

using namespace lakekit;          // NOLINT
using namespace lakekit::ingest;  // NOLINT

void BM_Ingest_FormatDetection(benchmark::State& state) {
  std::vector<std::pair<std::string, std::string>> files = {
      {"a.csv", "x,y\n1,2\n"},
      {"b", "{\"k\": 1}"},
      {"c", "2024-01-01 INFO msg\n2024-01-02 WARN msg\n"},
      {"d", std::string("\x00\x01binary", 8)},
      {"e", "id,name,city\n1,ada,delft\n2,bob,leiden\n"},
  };
  for (auto _ : state) {
    for (const auto& [name, content] : files) {
      benchmark::DoNotOptimize(DetectFormat(name, content));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(files.size()));
}

void BM_Ingest_GemmsStructuralInference(benchmark::State& state) {
  const int docs = static_cast<int>(state.range(0));
  std::vector<json::Value> corpus;
  for (int i = 0; i < docs; ++i) {
    std::string payload = R"({"id":)" + std::to_string(i) +
                          R"(,"name":"n)" + std::to_string(i) + R"(")";
    if (i % 3 == 0) payload += R"(,"optional_tag":"t")";
    payload += R"(,"addr":{"city":"c","geo":[1.5,2.5]}})";
    corpus.push_back(*json::Parse(payload));
  }
  for (auto _ : state) {
    auto tree = StructuralExtractor::InferJsonDocuments(corpus);
    benchmark::DoNotOptimize(tree);
    state.counters["tree_size"] = static_cast<double>(tree->TreeSize());
  }
  state.SetItemsProcessed(state.iterations() * docs);
}

void BM_Ingest_DatamaranTemplates(benchmark::State& state) {
  workload::LogCorpusOptions options;
  options.num_templates = static_cast<size_t>(state.range(0));
  options.total_lines = 4000;
  workload::LogCorpus corpus = workload::MakeLogCorpus(options);
  LogTemplateExtractor extractor;
  size_t recovered = 0;
  for (auto _ : state) {
    auto templates = extractor.Extract(corpus.text);
    benchmark::DoNotOptimize(templates);
    // Template recovery: every planted pattern found verbatim.
    std::set<std::string> found;
    for (const auto& t : templates) found.insert(t.Pattern());
    recovered = 0;
    for (const auto& planted : corpus.planted_patterns) {
      if (found.count(planted) > 0) ++recovered;
    }
  }
  state.counters["templates_planted"] =
      static_cast<double>(corpus.planted_patterns.size());
  state.counters["templates_recovered"] = static_cast<double>(recovered);
  state.counters["recovery_accuracy"] =
      static_cast<double>(recovered) /
      static_cast<double>(corpus.planted_patterns.size());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.text.size()));
}

void BM_Ingest_SklumaProfiling(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  std::string csv = "id,label,score,flag\n";
  for (int i = 0; i < rows; ++i) {
    csv += std::to_string(i) + ",label" + std::to_string(i % 50) + "," +
           std::to_string(i % 97) + ".25," + (i % 2 == 0 ? "true" : "false") +
           "\n";
  }
  for (auto _ : state) {
    auto profile = Profiler::ProfileFile("data.csv", "lake/data.csv", csv);
    benchmark::DoNotOptimize(profile);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}

void BM_Ingest_KeywordExtraction(benchmark::State& state) {
  std::string text;
  for (int i = 0; i < 500; ++i) {
    text += "sensor reading anomaly detected in turbine bearing segment " +
            std::to_string(i) + "\n";
  }
  for (auto _ : state) {
    auto keywords = Profiler::ExtractKeywords(text);
    benchmark::DoNotOptimize(keywords);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}

}  // namespace

BENCHMARK(BM_Ingest_FormatDetection);
BENCHMARK(BM_Ingest_GemmsStructuralInference)->Arg(100)->Arg(500);
BENCHMARK(BM_Ingest_DatamaranTemplates)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_Ingest_SklumaProfiling)->Arg(1000)->Arg(5000);
BENCHMARK(BM_Ingest_KeywordExtraction);

BENCHMARK_MAIN();
