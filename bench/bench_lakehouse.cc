// Reproduces survey Sec. 8.3 (the Lakehouse direction): transaction-log
// costs over the object store. Expected shapes: snapshot reconstruction
// grows linearly with log length without checkpoints and flattens to
// O(commits-since-checkpoint) with them; append commit latency is roughly
// flat (one put-if-absent plus a version probe); optimistic append
// contention resolves by rebasing with bounded retries.

#include <benchmark/benchmark.h>

#include <filesystem>

#include "lakehouse/delta_table.h"
#include "storage/object_store.h"

#include "common/status.h"

namespace {

using namespace lakekit;             // NOLINT
using namespace lakekit::lakehouse;  // NOLINT

std::string FreshDir() {
  static int counter = 0;
  std::string dir = "/tmp/lakekit_bench_lh_" + std::to_string(counter++);
  std::filesystem::remove_all(dir);
  return dir;
}

table::Schema EventSchema() {
  return table::Schema({{"id", table::DataType::kInt64, true},
                        {"v", table::DataType::kString, true}});
}

table::Table Batch(int base, int n) {
  table::Table t("events", EventSchema());
  for (int i = 0; i < n; ++i) {
    LAKEKIT_CHECK_OK(t.AppendRow({table::Value(int64_t{base + i}),
                       table::Value("value" + std::to_string(base + i))}));
  }
  return t;
}

void BM_Lakehouse_AppendCommit(benchmark::State& state) {
  std::string dir = FreshDir();
  auto store = storage::ObjectStore::Open(dir);
  auto t = DeltaTable::Create(&store.value(), "events", EventSchema());
  int base = 0;
  for (auto _ : state) {
    LAKEKIT_CHECK_OK(t->Append(Batch(base, 10)));
    base += 10;
  }
  state.SetItemsProcessed(state.iterations() * 10);
  std::filesystem::remove_all(dir);
}

/// Snapshot cost vs log length, no checkpoint: O(commits).
void BM_Lakehouse_SnapshotNoCheckpoint(benchmark::State& state) {
  std::string dir = FreshDir();
  auto store = storage::ObjectStore::Open(dir);
  auto t = DeltaTable::Create(&store.value(), "events", EventSchema());
  const int commits = static_cast<int>(state.range(0));
  for (int i = 0; i < commits; ++i) LAKEKIT_CHECK_OK(t->Append(Batch(i * 2, 2)));
  for (auto _ : state) {
    auto snapshot = t->log().GetSnapshot();
    benchmark::DoNotOptimize(snapshot);
  }
  state.counters["commits"] = commits;
  std::filesystem::remove_all(dir);
}

/// Snapshot cost with a checkpoint at the tip: O(1) replay.
void BM_Lakehouse_SnapshotWithCheckpoint(benchmark::State& state) {
  std::string dir = FreshDir();
  auto store = storage::ObjectStore::Open(dir);
  auto t = DeltaTable::Create(&store.value(), "events", EventSchema());
  const int commits = static_cast<int>(state.range(0));
  for (int i = 0; i < commits; ++i) LAKEKIT_CHECK_OK(t->Append(Batch(i * 2, 2)));
  LAKEKIT_CHECK_OK(t->Checkpoint());
  for (auto _ : state) {
    auto snapshot = t->log().GetSnapshot();
    benchmark::DoNotOptimize(snapshot);
  }
  state.counters["commits"] = commits;
  std::filesystem::remove_all(dir);
}

/// Time-travel read of a historical version (always replays from the
/// nearest checkpoint at or before it; here: none, full replay).
void BM_Lakehouse_TimeTravelRead(benchmark::State& state) {
  std::string dir = FreshDir();
  auto store = storage::ObjectStore::Open(dir);
  auto t = DeltaTable::Create(&store.value(), "events", EventSchema());
  const int commits = static_cast<int>(state.range(0));
  for (int i = 0; i < commits; ++i) LAKEKIT_CHECK_OK(t->Append(Batch(i * 2, 2)));
  const int64_t target = commits / 2;
  for (auto _ : state) {
    auto data = t->Read(target);
    benchmark::DoNotOptimize(data);
  }
  std::filesystem::remove_all(dir);
}

/// Contended appends: two handles racing from the same read version —
/// the loser rebases via the optimistic protocol.
void BM_Lakehouse_ContendedAppends(benchmark::State& state) {
  std::string dir = FreshDir();
  auto store = storage::ObjectStore::Open(dir);
  auto a = DeltaTable::Create(&store.value(), "events", EventSchema());
  auto b = DeltaTable::Open(&store.value(), "events");
  int base = 0;
  for (auto _ : state) {
    LAKEKIT_CHECK_OK(a->Append(Batch(base, 5)));
    LAKEKIT_CHECK_OK(b->Append(Batch(base + 1000000, 5)));
    base += 5;
  }
  state.SetItemsProcessed(state.iterations() * 10);
  std::filesystem::remove_all(dir);
}

}  // namespace

BENCHMARK(BM_Lakehouse_AppendCommit);
BENCHMARK(BM_Lakehouse_SnapshotNoCheckpoint)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_Lakehouse_SnapshotWithCheckpoint)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_Lakehouse_TimeTravelRead)->Arg(64);
BENCHMARK(BM_Lakehouse_ContendedAppends);

BENCHMARK_MAIN();
