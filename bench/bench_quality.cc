// Reproduces survey Sec. 6.5 (data cleaning) and 6.6 (schema evolution):
// CLAMS-style constraint inference + dirty-tuple ranking with
// precision-at-planted-errors counters; Auto-Validate pattern training and
// drift detection; schema-history reconstruction and k-ary inclusion
// dependency detection on planted corpora.

#include <benchmark/benchmark.h>

#include <set>

#include "evolution/inclusion_deps.h"
#include "evolution/schema_history.h"
#include "quality/auto_validate.h"
#include "quality/denial_constraints.h"
#include "workload/generator.h"

namespace {

using namespace lakekit;  // NOLINT

void BM_Quality_ClamsInferAndRank(benchmark::State& state) {
  workload::DirtyTableOptions options;
  options.num_rows = static_cast<size_t>(state.range(0));
  options.num_violations = options.num_rows / 30;
  workload::DirtyTable dirty = workload::MakeDirtyTable(options);
  std::set<size_t> planted(dirty.violation_rows.begin(),
                           dirty.violation_rows.end());
  double precision = 0;
  for (auto _ : state) {
    auto ranked = quality::ConstraintChecker::InferAndRank(dirty.table);
    benchmark::DoNotOptimize(ranked);
    size_t hits = 0;
    for (size_t i = 0; i < ranked.size() && i < planted.size(); ++i) {
      if (planted.count(ranked[i].row) > 0) ++hits;
    }
    precision = planted.empty()
                    ? 1.0
                    : static_cast<double>(hits) /
                          static_cast<double>(planted.size());
  }
  state.counters["planted_errors"] = static_cast<double>(planted.size());
  state.counters["precision_at_k"] = precision;
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Quality_ViolationPairSearch(benchmark::State& state) {
  workload::DirtyTableOptions options;
  options.num_rows = static_cast<size_t>(state.range(0));
  workload::DirtyTable dirty = workload::MakeDirtyTable(options);
  enrich::RelaxedFd fd;
  fd.lhs = {"city"};
  fd.rhs = "zip";
  quality::DenialConstraint dc = quality::DenialConstraint::FromFd(fd);
  for (auto _ : state) {
    auto pairs =
        quality::ConstraintChecker::FindViolatingPairs(dirty.table, dc);
    benchmark::DoNotOptimize(pairs);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Quality_AutoValidateTrain(benchmark::State& state) {
  std::vector<std::string> values;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    values.push_back("SKU-" + std::to_string(10000 + i));
  }
  for (auto _ : state) {
    auto validator = quality::Validator::Train(values);
    benchmark::DoNotOptimize(validator);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Quality_AutoValidateDriftCheck(benchmark::State& state) {
  std::vector<std::string> train;
  for (int i = 0; i < 1000; ++i) {
    train.push_back("SKU-" + std::to_string(10000 + i));
  }
  auto validator = quality::Validator::Train(train);
  // Batch with 10% drifted values; healthy values keep the trained 5-digit
  // shape (the validator's exact-length patterns are the point).
  std::vector<std::string> batch;
  for (int i = 0; i < 900; ++i) {
    batch.push_back("SKU-" + std::to_string(20000 + i));
  }
  for (int i = 0; i < 100; ++i) batch.push_back("sku_" + std::to_string(i));
  double rate = 0;
  for (auto _ : state) {
    rate = validator->RejectionRate(batch);
    benchmark::DoNotOptimize(rate);
  }
  state.counters["drift_rate_detected"] = rate;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}

void BM_Evolution_SchemaHistory(benchmark::State& state) {
  workload::EvolvingCorpusOptions options;
  options.docs_per_version = static_cast<size_t>(state.range(0));
  workload::EvolvingCorpus corpus = workload::MakeEvolvingCorpus(options);
  size_t changes_found = 0;
  for (auto _ : state) {
    auto changes = evolution::SchemaHistory::ExtractChanges(corpus.documents);
    benchmark::DoNotOptimize(changes);
    changes_found = changes->size();
  }
  state.counters["changes_planted"] =
      static_cast<double>(corpus.planted_changes.size());
  state.counters["changes_found"] = static_cast<double>(changes_found);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.documents.size()));
}

void BM_Evolution_InclusionDependencies(benchmark::State& state) {
  // A star schema: fact table referencing two dimensions.
  const int rows = static_cast<int>(state.range(0));
  std::string users = "uid,name\n";
  for (int i = 0; i < 100; ++i) {
    users += std::to_string(i) + ",user" + std::to_string(i) + "\n";
  }
  std::string items = "iid,label\n";
  for (int i = 0; i < 50; ++i) {
    items += std::to_string(1000 + i) + ",item" + std::to_string(i) + "\n";
  }
  std::string facts = "uid,iid,qty\n";
  for (int i = 0; i < rows; ++i) {
    facts += std::to_string(i % 100) + "," + std::to_string(1000 + i % 50) +
             "," + std::to_string(i % 7) + "\n";
  }
  std::vector<table::Table> tables{
      *table::Table::FromCsv("users", users),
      *table::Table::FromCsv("items", items),
      *table::Table::FromCsv("facts", facts)};
  size_t inds_found = 0;
  for (auto _ : state) {
    auto inds = evolution::DiscoverInclusionDependencies(tables);
    benchmark::DoNotOptimize(inds);
    inds_found = inds.size();
  }
  state.counters["inds_found"] = static_cast<double>(inds_found);
  state.SetItemsProcessed(state.iterations() * rows);
}

}  // namespace

BENCHMARK(BM_Quality_ClamsInferAndRank)->Arg(300)->Arg(1000);
BENCHMARK(BM_Quality_ViolationPairSearch)->Arg(1000)->Arg(5000);
BENCHMARK(BM_Quality_AutoValidateTrain)->Arg(1000)->Arg(10000);
BENCHMARK(BM_Quality_AutoValidateDriftCheck);
BENCHMARK(BM_Evolution_SchemaHistory)->Arg(50)->Arg(200);
BENCHMARK(BM_Evolution_InclusionDependencies)->Arg(500)->Arg(2000);

BENCHMARK_MAIN();
