// Reproduces survey Sec. 4 (storage tier): the same data routed to the four
// polystore backends — file/object store, ordered KV store (the Bigtable
// stand-in), document store, and the in-memory relational store — measuring
// ingest and read-back throughput per backend. Expected shape: the
// relational store wins tabular scans; the KV store pays WAL+flush
// durability; the object store pays filesystem round-trips; the document
// store pays JSON materialization.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <memory>

#include "json/parser.h"
#include "storage/kv_store.h"
#include "storage/object_store.h"
#include "storage/polystore.h"

#include "common/status.h"

namespace {

using namespace lakekit;           // NOLINT
using namespace lakekit::storage;  // NOLINT

std::string FreshDir(const char* tag) {
  static int counter = 0;
  std::string dir =
      "/tmp/lakekit_bench_storage_" + std::string(tag) + std::to_string(counter++);
  std::filesystem::remove_all(dir);
  return dir;
}

std::string MakeCsv(int rows) {
  std::string csv = "id,name,score\n";
  for (int i = 0; i < rows; ++i) {
    csv += std::to_string(i) + ",name" + std::to_string(i) + "," +
           std::to_string(i % 100) + ".5\n";
  }
  return csv;
}

void BM_Storage_ObjectStore_PutGet(benchmark::State& state) {
  std::string dir = FreshDir("obj");
  auto store = ObjectStore::Open(dir);
  std::string payload = MakeCsv(static_cast<int>(state.range(0)));
  int i = 0;
  for (auto _ : state) {
    std::string key = "data/" + std::to_string(i++) + ".csv";
    LAKEKIT_CHECK_OK(store->Put(key, payload));
    auto back = store->Get(key);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(payload.size()) * 2);
  std::filesystem::remove_all(dir);
}

void BM_Storage_KvStore_Put(benchmark::State& state) {
  std::string dir = FreshDir("kv");
  auto store = KvStore::Open(dir);
  int i = 0;
  for (auto _ : state) {
    LAKEKIT_CHECK_OK((*store)->Put("key" + std::to_string(i++), "value-payload-64-bytes-"
                        "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"));
  }
  state.SetItemsProcessed(state.iterations());
  std::filesystem::remove_all(dir);
}

/// The price of durability (ISSUE: record WAL-fsync overhead): Put
/// throughput under the three commit disciplines. Arg 0 = no WAL at all,
/// Arg 1 = WAL without fsync (page-cache durability), Arg 2 = WAL with
/// fsync-per-commit (the default: an OK survives a power cut).
void BM_Storage_KvStore_PutDurability(benchmark::State& state) {
  std::string dir = FreshDir("kvdur");
  KvStoreOptions options;
  options.use_wal = state.range(0) > 0;
  options.sync_writes = state.range(0) > 1;
  auto store = KvStore::Open(dir, options);
  int i = 0;
  for (auto _ : state) {
    LAKEKIT_CHECK_OK((*store)->Put("key" + std::to_string(i++),
                                   "value-payload-64-bytes-"
                                   "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(state.range(0) == 0   ? "no_wal"
                 : state.range(0) == 1 ? "wal_nosync"
                                       : "wal_fsync");
  std::filesystem::remove_all(dir);
}

/// Group commit under contention (ISSUE: concurrent fast path): N threads
/// hammer fully durable Puts (WAL + fsync-before-OK) on one shared store.
/// At Threads(1) this is fsync-per-commit; with more writers the leader
/// batches every queued record into one append + one fsync, so aggregate
/// items/s should climb steeply while the durability contract is unchanged.
void BM_Storage_KvStore_PutGroupCommit(benchmark::State& state) {
  static std::string shared_dir;
  static std::unique_ptr<KvStore> shared_store;
  if (state.thread_index() == 0) {
    shared_dir = FreshDir("kvgc");
    auto opened = KvStore::Open(shared_dir);  // defaults: WAL + sync_writes
    LAKEKIT_CHECK_OK(opened.status());
    shared_store = std::move(*opened);
  }
  const std::string prefix = "t" + std::to_string(state.thread_index()) + "-k";
  int i = 0;
  for (auto _ : state) {
    LAKEKIT_CHECK_OK(shared_store->Put(prefix + std::to_string(i++),
                                       "value-payload-64-bytes-"
                                       "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    shared_store.reset();
    std::filesystem::remove_all(shared_dir);
  }
}

void BM_Storage_KvStore_Get(benchmark::State& state) {
  std::string dir = FreshDir("kvget");
  auto store = KvStore::Open(dir);
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    LAKEKIT_CHECK_OK((*store)->Put("key" + std::to_string(i), "v" + std::to_string(i)));
  }
  LAKEKIT_CHECK_OK((*store)->Flush());
  int i = 0;
  for (auto _ : state) {
    auto v = (*store)->Get("key" + std::to_string(i++ % n));
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
  std::filesystem::remove_all(dir);
}

/// Read pruning on a multi-run store (ISSUE: bloom + fence fast path).
/// Keys are interleaved across 8 runs so every run's min/max fence spans
/// the whole keyspace — fencing alone prunes nothing and each probe would
/// binary-search all 8 runs. Arg = bloom_bits_per_key: 0 disables the
/// filters (the pre-bloom read path), 10 is the default. Probes alternate
/// hit and miss; misses are where blooms pay off most.
void BM_Storage_KvStore_Get_Bloom(benchmark::State& state) {
  std::string dir = FreshDir("kvbloom");
  KvStoreOptions options;
  options.use_wal = false;
  options.compaction_trigger_runs = 100;  // keep all 8 runs alive
  options.bloom_bits_per_key = static_cast<size_t>(state.range(0));
  auto store = KvStore::Open(dir, options);
  constexpr int kRuns = 8;
  constexpr int kKeys = 40000;  // key i lives in run i % kRuns
  char buf[16];
  for (int r = 0; r < kRuns; ++r) {
    for (int i = r; i < kKeys; i += kRuns) {
      std::snprintf(buf, sizeof(buf), "key%06d", i);
      LAKEKIT_CHECK_OK((*store)->Put(buf, "v" + std::to_string(i)));
    }
    LAKEKIT_CHECK_OK((*store)->Flush());
  }
  int i = 0;
  for (auto _ : state) {
    std::snprintf(buf, sizeof(buf), "key%06d", i % kKeys);
    auto hit = (*store)->Get(buf);
    benchmark::DoNotOptimize(hit);
    // Miss probe that still lands inside every run's [min,max] fence —
    // only the bloom filter can prune it.
    std::snprintf(buf, sizeof(buf), "key%06dx", i % kKeys);
    auto miss = (*store)->Get(buf);
    benchmark::DoNotOptimize(miss);
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * 2);
  state.SetLabel(state.range(0) == 0 ? "bloom_off" : "bloom_10bpk");
  std::filesystem::remove_all(dir);
}

void BM_Storage_KvStore_ScanPrefix(benchmark::State& state) {
  std::string dir = FreshDir("kvscan");
  auto store = KvStore::Open(dir);
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    LAKEKIT_CHECK_OK((*store)->Put("ds/" + std::to_string(i), "entry"));
  }
  for (auto _ : state) {
    auto scan = (*store)->ScanPrefix("ds/");
    benchmark::DoNotOptimize(scan);
  }
  state.SetItemsProcessed(state.iterations() * n);
  std::filesystem::remove_all(dir);
}

void BM_Storage_DocumentStore_InsertFind(benchmark::State& state) {
  DocumentStore store;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    LAKEKIT_CHECK_OK(store.Insert("events", *json::Parse(
        R"({"kind":"k)" + std::to_string(i % 10) + R"(","n":)" +
        std::to_string(i) + "}")));
  }
  for (auto _ : state) {
    auto found = store.FindEqual("events", "kind", json::Value("k3"));
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_Storage_Polystore_TabularReadBack(benchmark::State& state) {
  // The mediator's view: read each backend's dataset as a table.
  std::string dir = FreshDir("poly");
  auto ps = Polystore::Open(dir);
  const int rows = static_cast<int>(state.range(0));
  std::string csv = MakeCsv(rows);
  LAKEKIT_CHECK_OK(ps->StoreTable("rel", *table::Table::FromCsv("rel", csv)));
  std::vector<json::Value> docs;
  for (int i = 0; i < rows; ++i) {
    docs.push_back(*json::Parse(R"({"id":)" + std::to_string(i) +
                                R"(,"name":"n)" + std::to_string(i) + "\"}"));
  }
  LAKEKIT_CHECK_OK(ps->StoreDocuments("doc", std::move(docs)));
  LAKEKIT_CHECK_OK(ps->StoreObject("obj", "landing/data.csv", csv));

  for (auto _ : state) {
    for (const char* name : {"rel", "doc", "obj"}) {
      auto t = ps->ReadAsTable(name);
      benchmark::DoNotOptimize(t);
    }
  }
  state.SetItemsProcessed(state.iterations() * rows * 3);
  std::filesystem::remove_all(dir);
}

void BM_Storage_KvStore_Compaction(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    std::string dir = FreshDir("kvc");
    KvStoreOptions options;
    options.use_wal = false;
    auto store = KvStore::Open(dir, options);
    // 8 runs of overlapping keys.
    for (int run = 0; run < 8; ++run) {
      for (int i = 0; i < 200; ++i) {
        LAKEKIT_CHECK_OK((*store)->Put("key" + std::to_string(i),
                            "run" + std::to_string(run)));
      }
      LAKEKIT_CHECK_OK((*store)->Flush());
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize((*store)->Compact());
    state.PauseTiming();
    std::filesystem::remove_all(dir);
    state.ResumeTiming();
  }
}

}  // namespace

BENCHMARK(BM_Storage_ObjectStore_PutGet)->Arg(100);
BENCHMARK(BM_Storage_KvStore_Put);
BENCHMARK(BM_Storage_KvStore_PutDurability)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_Storage_KvStore_PutGroupCommit)
    ->Threads(1)
    ->Threads(4)
    ->Threads(16)
    ->Threads(64)
    ->UseRealTime();
BENCHMARK(BM_Storage_KvStore_Get)->Arg(1000);
BENCHMARK(BM_Storage_KvStore_Get_Bloom)->Arg(0)->Arg(10);
BENCHMARK(BM_Storage_KvStore_ScanPrefix)->Arg(1000);
BENCHMARK(BM_Storage_DocumentStore_InsertFind)->Arg(1000);
BENCHMARK(BM_Storage_Polystore_TabularReadBack)->Arg(500);
BENCHMARK(BM_Storage_KvStore_Compaction);

BENCHMARK_MAIN();
