// Reproduces survey Table 1: the 11-function classification of data lake
// solutions across the three tiers. One benchmark per function, each
// exercising lakekit's implementation of the systems the survey lists —
// metadata extraction (GEMMS/DATAMARAN/Skluma), metadata modeling
// (GEMMS/EKG), dataset organization (DS-kNN), related dataset discovery
// (Aurum), data integration (ALITE full disjunction), metadata enrichment
// (D4/RFD), data cleaning (CLAMS), schema evolution (Klettke), data
// provenance (PROV graph), query-driven discovery (JOSIE), heterogeneous
// querying (federated SQL). The measured per-function cost fills in the
// quantitative column the survey's qualitative table lacks.

#include <benchmark/benchmark.h>

#include <memory>

#include "discovery/aurum.h"
#include "discovery/corpus.h"
#include "discovery/josie.h"
#include "enrich/d4.h"
#include "enrich/rfd.h"
#include "evolution/schema_history.h"
#include "ingest/log_template.h"
#include "ingest/profiler.h"
#include "ingest/structural_extractor.h"
#include "integrate/full_disjunction.h"
#include "json/parser.h"
#include "metamodel/gemms.h"
#include "organize/dsknn.h"
#include "provenance/provenance.h"
#include "quality/denial_constraints.h"
#include "query/sql.h"
#include "workload/generator.h"

#include "common/status.h"

namespace {

using namespace lakekit;  // NOLINT

struct SharedData {
  workload::JoinableLake lake;
  std::unique_ptr<discovery::Corpus> corpus;
  std::unique_ptr<discovery::AurumFinder> aurum;
  std::unique_ptr<discovery::JosieFinder> josie;
  workload::DirtyTable dirty;
  workload::EvolvingCorpus evolving;
  workload::LogCorpus logs;
  std::vector<json::Value> json_docs;
};

SharedData& Shared() {
  static SharedData* data = [] {
    auto* d = new SharedData();
    workload::JoinableLakeOptions lake_options;
    lake_options.num_tables = 48;
    lake_options.rows_per_table = 100;
    lake_options.num_planted_pairs = 12;
    d->lake = workload::MakeJoinableLake(lake_options);
    d->corpus = std::make_unique<discovery::Corpus>();
    for (const auto& t : d->lake.tables) LAKEKIT_CHECK_OK(d->corpus->AddTable(t));
    d->aurum = std::make_unique<discovery::AurumFinder>(d->corpus.get());
    LAKEKIT_CHECK_OK(d->aurum->Build());
    d->josie = std::make_unique<discovery::JosieFinder>(d->corpus.get());
    d->josie->Build();
    d->dirty = workload::MakeDirtyTable({});
    d->evolving = workload::MakeEvolvingCorpus({});
    d->logs = workload::MakeLogCorpus({});
    for (int i = 0; i < 200; ++i) {
      d->json_docs.push_back(*json::Parse(
          R"({"id":)" + std::to_string(i) +
          R"(,"name":"n)" + std::to_string(i) +
          R"(","addr":{"city":"c)" + std::to_string(i % 10) + R"("}})"));
    }
    return d;
  }();
  return *data;
}

// ------------------------------------------------------ ingestion tier

void BM_Fn_MetadataExtraction_Structural(benchmark::State& state) {
  SharedData& d = Shared();
  for (auto _ : state) {
    auto tree = ingest::StructuralExtractor::InferJsonDocuments(d.json_docs);
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(d.json_docs.size()));
}

void BM_Fn_MetadataExtraction_LogTemplates(benchmark::State& state) {
  SharedData& d = Shared();
  ingest::LogTemplateExtractor extractor;
  for (auto _ : state) {
    auto templates = extractor.Extract(d.logs.text);
    benchmark::DoNotOptimize(templates);
    state.counters["templates"] = static_cast<double>(templates.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(d.logs.text.size()));
}

void BM_Fn_MetadataExtraction_Profiling(benchmark::State& state) {
  SharedData& d = Shared();
  for (auto _ : state) {
    auto profiles = ingest::Profiler::ProfileTable(d.lake.tables[0]);
    benchmark::DoNotOptimize(profiles);
  }
}

void BM_Fn_MetadataModeling(benchmark::State& state) {
  SharedData& d = Shared();
  for (auto _ : state) {
    metamodel::GemmsModel model;
    for (size_t i = 0; i < 8; ++i) {
      metamodel::MetadataUnit unit;
      unit.dataset = "ds" + std::to_string(i);
      unit.structure =
          ingest::StructuralExtractor::InferJson(d.json_docs[i]);
      unit.properties["format"] = "json";
      LAKEKIT_CHECK_OK(model.AddUnit(std::move(unit)));
    }
    benchmark::DoNotOptimize(model.num_units());
  }
}

// ---------------------------------------------------- maintenance tier

void BM_Fn_DatasetOrganization(benchmark::State& state) {
  SharedData& d = Shared();
  for (auto _ : state) {
    organize::DsKnnOrganizer organizer;
    for (const auto& t : d.lake.tables) {
      benchmark::DoNotOptimize(organizer.AddDataset(t));
    }
    state.counters["categories"] =
        static_cast<double>(organizer.num_categories());
  }
}

void BM_Fn_RelatedDatasetDiscovery(benchmark::State& state) {
  SharedData& d = Shared();
  const auto& pair = d.lake.planted[0];
  discovery::ColumnId q = *d.corpus->FindColumn(pair.table_a, pair.column_a);
  for (auto _ : state) {
    auto matches = d.aurum->TopKJoinableColumns(q, 5);
    benchmark::DoNotOptimize(matches);
  }
}

void BM_Fn_DataIntegration(benchmark::State& state) {
  auto a = table::Table::FromCsv("a", "city,country\ndelft,NL\nleiden,NL\n");
  auto b = table::Table::FromCsv("b",
                                 "city,population\ndelft,104000\nhague,552000\n");
  for (auto _ : state) {
    auto fd = integrate::IntegrateTables({*a, *b});
    benchmark::DoNotOptimize(fd);
  }
}

void BM_Fn_MetadataEnrichment_Rfd(benchmark::State& state) {
  SharedData& d = Shared();
  for (auto _ : state) {
    auto fds = enrich::DiscoverRelaxedFds(d.dirty.table);
    benchmark::DoNotOptimize(fds);
    state.counters["fds"] = static_cast<double>(fds.size());
  }
}

void BM_Fn_MetadataEnrichment_Domains(benchmark::State& state) {
  SharedData& d = Shared();
  enrich::D4DomainDiscovery d4;
  for (auto _ : state) {
    auto domains = d4.Discover(*d.corpus);
    benchmark::DoNotOptimize(domains);
    state.counters["domains"] = static_cast<double>(domains.size());
  }
}

void BM_Fn_DataCleaning(benchmark::State& state) {
  SharedData& d = Shared();
  for (auto _ : state) {
    auto ranked = quality::ConstraintChecker::InferAndRank(d.dirty.table);
    benchmark::DoNotOptimize(ranked);
    state.counters["dirty_tuples"] = static_cast<double>(ranked.size());
  }
}

void BM_Fn_SchemaEvolution(benchmark::State& state) {
  SharedData& d = Shared();
  for (auto _ : state) {
    auto changes = evolution::SchemaHistory::ExtractChanges(d.evolving.documents);
    benchmark::DoNotOptimize(changes);
  }
}

void BM_Fn_DataProvenance(benchmark::State& state) {
  for (auto _ : state) {
    provenance::ProvenanceGraph prov;
    for (int i = 0; i < 32; ++i) {
      LAKEKIT_CHECK_OK(prov.RecordDerivation("job" + std::to_string(i),
                                  {"ds" + std::to_string(i)},
                                  {"ds" + std::to_string(i + 1)}, "ada"));
    }
    auto upstream = prov.Upstream("ds32");
    benchmark::DoNotOptimize(upstream);
  }
}

// ---------------------------------------------------- exploration tier

void BM_Fn_QueryDrivenDiscovery(benchmark::State& state) {
  SharedData& d = Shared();
  const auto& pair = d.lake.planted[0];
  discovery::ColumnId q = *d.corpus->FindColumn(pair.table_a, pair.column_a);
  for (auto _ : state) {
    auto matches = d.josie->TopKOverlapColumns(q, 5);
    benchmark::DoNotOptimize(matches);
  }
}

void BM_Fn_HeterogeneousQuerying(benchmark::State& state) {
  SharedData& d = Shared();
  auto resolver = [&](const std::string& name) -> Result<table::Table> {
    for (const auto& t : d.lake.tables) {
      if (t.name() == name) return t;
    }
    return Status::NotFound(name);
  };
  for (auto _ : state) {
    auto out = query::RunSql(
        "SELECT attr0, COUNT(*) AS n FROM table0 WHERE measure > 0 GROUP BY "
        "attr0 ORDER BY n DESC LIMIT 10",
        resolver);
    benchmark::DoNotOptimize(out);
  }
}

}  // namespace

BENCHMARK(BM_Fn_MetadataExtraction_Structural);
BENCHMARK(BM_Fn_MetadataExtraction_LogTemplates);
BENCHMARK(BM_Fn_MetadataExtraction_Profiling);
BENCHMARK(BM_Fn_MetadataModeling);
BENCHMARK(BM_Fn_DatasetOrganization);
BENCHMARK(BM_Fn_RelatedDatasetDiscovery);
BENCHMARK(BM_Fn_DataIntegration);
BENCHMARK(BM_Fn_MetadataEnrichment_Rfd);
BENCHMARK(BM_Fn_MetadataEnrichment_Domains);
BENCHMARK(BM_Fn_DataCleaning);
BENCHMARK(BM_Fn_SchemaEvolution);
BENCHMARK(BM_Fn_DataProvenance);
BENCHMARK(BM_Fn_QueryDrivenDiscovery);
BENCHMARK(BM_Fn_HeterogeneousQuerying);

BENCHMARK_MAIN();
