// Reproduces survey Table 2: the four DAG-based dataset-organization
// approaches side by side —
//
//   - KAYAK pipeline DAG: primitives in execution order
//   - KAYAK task-dependency DAG: atomic tasks + parallelizable levels
//   - Nargesian et al. organization: attribute-set DAG with Markov
//     navigation (counter: navigation success probability vs the flat
//     baseline — the paper's quality objective)
//   - Juneau variable-dependency graphs: provenance similarity of
//     notebook-derived tables
//
// Expected shape: organization-based navigation beats the 1/N flat baseline
// by a widening factor as the lake grows; KAYAK's level extraction exposes
// parallelism proportional to pipeline width.

#include <benchmark/benchmark.h>

#include <memory>

#include "discovery/corpus.h"
#include "organize/kayak.h"
#include "organize/org_dag.h"
#include "provenance/variable_dep.h"
#include "workload/generator.h"

#include "common/status.h"

namespace {

using namespace lakekit;  // NOLINT

// --------------------------------------------------------------- KAYAK

void BM_Dag_KayakPipeline(benchmark::State& state) {
  const int num_steps = static_cast<int>(state.range(0));
  for (auto _ : state) {
    organize::KayakPipeline pipeline;
    size_t prim = pipeline.DefinePrimitive(
        "prep", {{"profile", organize::TaskFn()},
                 {"index", organize::TaskFn()},
                 {"register", organize::TaskFn()}});
    std::vector<size_t> steps;
    for (int i = 0; i < num_steps; ++i) {
      steps.push_back(*pipeline.AddStep(prim));
      if (i > 0) LAKEKIT_CHECK_OK(pipeline.AddStepDependency(steps[i - 1], steps[i]));
    }
    benchmark::DoNotOptimize(pipeline.Run());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Dag_KayakTaskLevels(benchmark::State& state) {
  // A wide fan-out pipeline: one root primitive, W independent workers, one
  // sink — the parallelism-extraction case of the task-dependency DAG.
  const int width = static_cast<int>(state.range(0));
  double parallel_width = 0;
  for (auto _ : state) {
    organize::TaskDag dag;
    size_t root = dag.AddTask("ingest", nullptr);
    size_t sink = dag.AddTask("publish", nullptr);
    for (int i = 0; i < width; ++i) {
      size_t worker = dag.AddTask("work" + std::to_string(i), nullptr);
      LAKEKIT_CHECK_OK(dag.AddDependency(root, worker));
      LAKEKIT_CHECK_OK(dag.AddDependency(worker, sink));
    }
    auto levels = dag.ParallelLevels();
    benchmark::DoNotOptimize(levels);
    parallel_width = static_cast<double>((*levels)[1].size());
  }
  state.counters["parallel_width"] = parallel_width;
}

// --------------------------------------------------- Nargesian org DAG

struct OrgFixture {
  workload::UnionableLake lake;
  std::unique_ptr<discovery::Corpus> corpus;
  std::unique_ptr<organize::Organization> org;
};

OrgFixture& GetOrgFixture(int num_groups) {
  static std::map<int, std::unique_ptr<OrgFixture>> cache;
  auto it = cache.find(num_groups);
  if (it != cache.end()) return *it->second;
  auto f = std::make_unique<OrgFixture>();
  workload::UnionableLakeOptions options;
  options.num_groups = static_cast<size_t>(num_groups);
  options.tables_per_group = 4;
  options.rows_per_table = 60;
  f->lake = workload::MakeUnionableLake(options);
  f->corpus = std::make_unique<discovery::Corpus>();
  for (const auto& [domain, terms] : f->lake.domains) {
    f->corpus->RegisterSemanticDomain(domain, terms);
  }
  for (const auto& t : f->lake.tables) LAKEKIT_CHECK_OK(f->corpus->AddTable(t));
  auto org = organize::Organization::Build(f->corpus.get());
  f->org = std::make_unique<organize::Organization>(std::move(*org));
  OrgFixture& ref = *f;
  cache[num_groups] = std::move(f);
  return ref;
}

void BM_Dag_OrganizationBuild(benchmark::State& state) {
  OrgFixture& f = GetOrgFixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto org = organize::Organization::Build(f.corpus.get());
    benchmark::DoNotOptimize(org);
  }
  state.counters["tables"] = static_cast<double>(f.corpus->num_tables());
}

void BM_Dag_OrganizationNavigation(benchmark::State& state) {
  OrgFixture& f = GetOrgFixture(static_cast<int>(state.range(0)));
  size_t correct = 0;
  size_t total = 0;
  double discovery_prob_sum = 0;
  for (auto _ : state) {
    for (size_t t = 0; t < f.lake.tables.size(); ++t) {
      size_t group = f.lake.group_of[t];
      std::string domain = "domain_g" + std::to_string(group) + "c0";
      std::vector<std::string> query = f.lake.domains.at(domain);
      query.resize(6);
      auto reached = f.org->Navigate(query);
      benchmark::DoNotOptimize(reached);
      if (reached.ok() && f.lake.group_of[*reached] == group) ++correct;
      discovery_prob_sum += f.org->DiscoveryProbability(query, t);
      ++total;
    }
  }
  state.counters["nav_success"] =
      static_cast<double>(correct) / static_cast<double>(total);
  state.counters["mean_discovery_prob"] =
      discovery_prob_sum / static_cast<double>(total);
  state.counters["flat_baseline_prob"] = f.org->FlatBaselineProbability();
  state.counters["mean_depth"] = f.org->MeanDepth();
}

// ------------------------------------------------------- Juneau graphs

void BM_Dag_VariableDependency(benchmark::State& state) {
  const int num_steps = static_cast<int>(state.range(0));
  for (auto _ : state) {
    provenance::VariableDependencyGraph g;
    for (int i = 0; i < num_steps; ++i) {
      g.AddStep({"v" + std::to_string(i)}, "fn" + std::to_string(i % 5),
                "v" + std::to_string(i + 1));
    }
    auto affecting = g.AffectingVariables("v" + std::to_string(num_steps));
    benchmark::DoNotOptimize(affecting);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Dag_ProvenanceSimilarity(benchmark::State& state) {
  const int num_steps = static_cast<int>(state.range(0));
  provenance::VariableDependencyGraph a;
  provenance::VariableDependencyGraph b;
  for (int i = 0; i < num_steps; ++i) {
    a.AddStep({"a" + std::to_string(i)}, "fn" + std::to_string(i % 7),
              "a" + std::to_string(i + 1));
    b.AddStep({"b" + std::to_string(i)}, "fn" + std::to_string(i % 5),
              "b" + std::to_string(i + 1));
  }
  std::string va = "a" + std::to_string(num_steps);
  std::string vb = "b" + std::to_string(num_steps);
  double sim = 0;
  for (auto _ : state) {
    sim = provenance::VariableDependencyGraph::ProvenanceSimilarity(a, va, b,
                                                                    vb);
    benchmark::DoNotOptimize(sim);
  }
  state.counters["similarity"] = sim;
}

}  // namespace

BENCHMARK(BM_Dag_KayakPipeline)->Arg(8)->Arg(32)->Arg(64);
BENCHMARK(BM_Dag_KayakTaskLevels)->Arg(8)->Arg(32)->Arg(64);
BENCHMARK(BM_Dag_OrganizationBuild)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_Dag_OrganizationNavigation)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_Dag_VariableDependency)->Arg(16)->Arg(64);
BENCHMARK(BM_Dag_ProvenanceSimilarity)->Arg(16)->Arg(64);

BENCHMARK_MAIN();
