// Reproduces survey Table 3: comparison of related dataset discovery
// approaches. The rows of the paper's table become competing
// implementations racing on the same planted-joinability lakes:
//
//   - brute force: exact all-pairs Jaccard (the O(n^2) baseline)
//   - Aurum: MinHash signatures + LSH + EKG
//   - JOSIE: inverted index, exact top-k overlap
//   - D3L: five-feature weighted distance with LSH candidates
//   - PEXESO-style: semantic joinability is exercised in discovery tests
//     (it requires planted semantic domains, not value overlap)
//
// Expected shape: LSH-based Aurum queries stay flat as the lake grows while
// brute force grows linearly per query (quadratically for all-pairs);
// JOSIE is exact (recall 1.0) at higher per-query cost than Aurum; D3L
// trades latency for multi-evidence robustness. Recall@1 counters report
// accuracy against the planted ground truth.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "discovery/aurum.h"
#include "discovery/brute_force.h"
#include "discovery/corpus.h"
#include "discovery/d3l.h"
#include "discovery/josie.h"
#include "workload/generator.h"

#include "common/status.h"

namespace {

using namespace lakekit;             // NOLINT
using namespace lakekit::discovery;  // NOLINT

struct Fixture {
  workload::JoinableLake lake;
  std::unique_ptr<Corpus> corpus;
  std::unique_ptr<AurumFinder> aurum;
  std::unique_ptr<JosieFinder> josie;
  std::unique_ptr<D3lFinder> d3l;
  std::unique_ptr<BruteForceFinder> brute;
  std::vector<std::pair<ColumnId, ColumnId>> queries;  // (query, expected)
};

Fixture& GetFixture(int num_tables) {
  static std::map<int, std::unique_ptr<Fixture>> cache;
  auto it = cache.find(num_tables);
  if (it != cache.end()) return *it->second;

  auto f = std::make_unique<Fixture>();
  workload::JoinableLakeOptions options;
  options.num_tables = static_cast<size_t>(num_tables);
  options.rows_per_table = 100;
  options.num_planted_pairs = static_cast<size_t>(num_tables) / 4;
  options.overlap_jaccard = 0.5;
  f->lake = workload::MakeJoinableLake(options);
  f->corpus = std::make_unique<Corpus>();
  LAKEKIT_CHECK_OK(f->corpus->AddTables(f->lake.tables));
  f->aurum = std::make_unique<AurumFinder>(f->corpus.get());
  LAKEKIT_CHECK_OK(f->aurum->Build());
  f->josie = std::make_unique<JosieFinder>(f->corpus.get());
  f->josie->Build();
  f->d3l = std::make_unique<D3lFinder>(f->corpus.get());
  LAKEKIT_CHECK_OK(f->d3l->Build());
  f->brute = std::make_unique<BruteForceFinder>(f->corpus.get());
  for (const auto& pair : f->lake.planted) {
    f->queries.emplace_back(
        *f->corpus->FindColumn(pair.table_a, pair.column_a),
        *f->corpus->FindColumn(pair.table_b, pair.column_b));
  }
  Fixture& ref = *f;
  cache[num_tables] = std::move(f);
  return ref;
}

/// Runs the per-query loop for one finder and reports recall@1.
template <typename QueryFn>
void RunQueries(benchmark::State& state, QueryFn&& query_fn) {
  Fixture& f = GetFixture(static_cast<int>(state.range(0)));
  size_t hits = 0;
  size_t total = 0;
  for (auto _ : state) {
    for (const auto& [query, expected] : f.queries) {
      auto matches = query_fn(f, query);
      benchmark::DoNotOptimize(matches);
      if (!matches.empty() && matches[0].column == expected) ++hits;
      ++total;
    }
  }
  state.counters["recall_at_1"] =
      total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  state.counters["queries"] = static_cast<double>(f.queries.size());
  state.SetItemsProcessed(static_cast<int64_t>(total));
}

void BM_Discovery_BruteForce_Query(benchmark::State& state) {
  RunQueries(state, [](Fixture& f, ColumnId q) {
    return f.brute->TopKJoinableColumns(q, 1);
  });
}

void BM_Discovery_Aurum_Query(benchmark::State& state) {
  RunQueries(state, [](Fixture& f, ColumnId q) {
    return f.aurum->TopKJoinableColumns(q, 1);
  });
}

void BM_Discovery_Josie_Query(benchmark::State& state) {
  RunQueries(state, [](Fixture& f, ColumnId q) {
    return f.josie->TopKOverlapColumns(q, 1);
  });
}

void BM_Discovery_D3l_Query(benchmark::State& state) {
  RunQueries(state, [](Fixture& f, ColumnId q) {
    return f.d3l->TopKRelatedColumns(q, 1);
  });
}

/// Index build cost: the investment that buys fast queries. Brute force has
/// none; Aurum pays LSH+EKG; JOSIE pays the inverted index.
void BM_Discovery_Aurum_Build(benchmark::State& state) {
  Fixture& f = GetFixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    AurumFinder finder(f.corpus.get());
    benchmark::DoNotOptimize(finder.Build());
  }
}

void BM_Discovery_Josie_Build(benchmark::State& state) {
  Fixture& f = GetFixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    JosieFinder finder(f.corpus.get());
    finder.Build();
    benchmark::DoNotOptimize(finder.index_size());
  }
}

/// The crossover: all-pairs ground truth (quadratic) vs Aurum's build+query
/// (near-linear). Past a few hundred tables the indexed path wins — the
/// survey's core argument for Aurum's LSH design.
void BM_Discovery_AllPairs_BruteForce(benchmark::State& state) {
  Fixture& f = GetFixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto pairs = f.brute->AllJoinablePairs(0.3);
    benchmark::DoNotOptimize(pairs);
    state.counters["pairs_found"] = static_cast<double>(pairs.size());
  }
}

/// Fixture-construction cost, serial vs. parallel: corpus sketch building
/// (and lake generation below) is the wall-time floor of every experiment
/// here, and the first hot path driven by the execution layer. The two
/// variants produce bit-identical corpora (see CorpusParallelTest); the
/// ratio of their times is the thread-pool speedup on this machine.
void BM_Discovery_CorpusBuild_Serial(benchmark::State& state) {
  Fixture& f = GetFixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Corpus corpus;
    for (const auto& t : f.lake.tables) {
      LAKEKIT_CHECK_OK(corpus.AddTable(t));
    }
    benchmark::DoNotOptimize(corpus.num_columns());
  }
  state.counters["columns"] = static_cast<double>(f.corpus->num_columns());
}

void BM_Discovery_CorpusBuild_Parallel(benchmark::State& state) {
  Fixture& f = GetFixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Corpus corpus;
    LAKEKIT_CHECK_OK(corpus.AddTables(f.lake.tables));
    benchmark::DoNotOptimize(corpus.num_columns());
  }
  state.counters["columns"] = static_cast<double>(f.corpus->num_columns());
  state.counters["threads"] =
      static_cast<double>(lakekit::ThreadPool::Default().size());
}

void BM_Discovery_LakeGen_Serial(benchmark::State& state) {
  workload::JoinableLakeOptions options;
  options.num_tables = static_cast<size_t>(state.range(0));
  options.rows_per_table = 100;
  lakekit::ThreadPool serial_pool(1);
  for (auto _ : state) {
    auto lake = workload::MakeJoinableLake(options, &serial_pool);
    benchmark::DoNotOptimize(lake.tables.size());
  }
}

void BM_Discovery_LakeGen_Parallel(benchmark::State& state) {
  workload::JoinableLakeOptions options;
  options.num_tables = static_cast<size_t>(state.range(0));
  options.rows_per_table = 100;
  for (auto _ : state) {
    auto lake = workload::MakeJoinableLake(options);
    benchmark::DoNotOptimize(lake.tables.size());
  }
  state.counters["threads"] =
      static_cast<double>(lakekit::ThreadPool::Default().size());
}

void BM_Discovery_AllPairs_AurumIndexed(benchmark::State& state) {
  Fixture& f = GetFixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    AurumFinder finder(f.corpus.get());
    LAKEKIT_CHECK_OK(finder.Build());
    // Content-similarity edges of the EKG at the same threshold are the
    // indexed equivalent of the all-pairs joinability sweep.
    size_t edges = 0;
    for (const auto& e : finder.ekg().edges()) {
      if (e.relation == metamodel::Relation::kContentSimilar &&
          e.weight >= 0.3) {
        ++edges;
      }
    }
    benchmark::DoNotOptimize(edges);
    state.counters["pairs_found"] = static_cast<double>(edges);
  }
}

}  // namespace

BENCHMARK(BM_Discovery_BruteForce_Query)->Arg(32)->Arg(96)->Arg(192);
BENCHMARK(BM_Discovery_Aurum_Query)->Arg(32)->Arg(96)->Arg(192);
BENCHMARK(BM_Discovery_Josie_Query)->Arg(32)->Arg(96)->Arg(192);
BENCHMARK(BM_Discovery_D3l_Query)->Arg(32)->Arg(96)->Arg(192);
BENCHMARK(BM_Discovery_Aurum_Build)->Arg(32)->Arg(96)->Arg(192);
BENCHMARK(BM_Discovery_Josie_Build)->Arg(32)->Arg(96)->Arg(192);
BENCHMARK(BM_Discovery_AllPairs_BruteForce)->Arg(32)->Arg(96)->Arg(192);
BENCHMARK(BM_Discovery_AllPairs_AurumIndexed)->Arg(32)->Arg(96)->Arg(192);
BENCHMARK(BM_Discovery_CorpusBuild_Serial)
    ->Arg(32)->Arg(96)->Arg(192)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Discovery_CorpusBuild_Parallel)
    ->Arg(32)->Arg(96)->Arg(192)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Discovery_LakeGen_Serial)
    ->Arg(32)->Arg(96)->Arg(192)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Discovery_LakeGen_Parallel)
    ->Arg(32)->Arg(96)->Arg(192)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
