file(REMOVE_RECURSE
  "CMakeFiles/bench_enrichment.dir/bench_enrichment.cc.o"
  "CMakeFiles/bench_enrichment.dir/bench_enrichment.cc.o.d"
  "bench_enrichment"
  "bench_enrichment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_enrichment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
