
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_federated_query.cc" "bench/CMakeFiles/bench_federated_query.dir/bench_federated_query.cc.o" "gcc" "bench/CMakeFiles/bench_federated_query.dir/bench_federated_query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lakekit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lakehouse/CMakeFiles/lakekit_lakehouse.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/lakekit_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/organize/CMakeFiles/lakekit_organize.dir/DependInfo.cmake"
  "/root/repo/build/src/evolution/CMakeFiles/lakekit_evolution.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/lakekit_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/integrate/CMakeFiles/lakekit_integrate.dir/DependInfo.cmake"
  "/root/repo/build/src/quality/CMakeFiles/lakekit_quality.dir/DependInfo.cmake"
  "/root/repo/build/src/enrich/CMakeFiles/lakekit_enrich.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/lakekit_query.dir/DependInfo.cmake"
  "/root/repo/build/src/discovery/CMakeFiles/lakekit_discovery.dir/DependInfo.cmake"
  "/root/repo/build/src/metamodel/CMakeFiles/lakekit_metamodel.dir/DependInfo.cmake"
  "/root/repo/build/src/ingest/CMakeFiles/lakekit_ingest.dir/DependInfo.cmake"
  "/root/repo/build/src/provenance/CMakeFiles/lakekit_provenance.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/lakekit_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/lakekit_text.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/lakekit_table.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/lakekit_json.dir/DependInfo.cmake"
  "/root/repo/build/src/csv/CMakeFiles/lakekit_csv.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lakekit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
