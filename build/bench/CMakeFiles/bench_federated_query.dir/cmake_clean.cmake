file(REMOVE_RECURSE
  "CMakeFiles/bench_federated_query.dir/bench_federated_query.cc.o"
  "CMakeFiles/bench_federated_query.dir/bench_federated_query.cc.o.d"
  "bench_federated_query"
  "bench_federated_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_federated_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
