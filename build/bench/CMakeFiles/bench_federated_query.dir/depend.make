# Empty dependencies file for bench_federated_query.
# This may be replaced when dependencies are built.
