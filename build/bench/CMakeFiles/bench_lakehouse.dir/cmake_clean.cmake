file(REMOVE_RECURSE
  "CMakeFiles/bench_lakehouse.dir/bench_lakehouse.cc.o"
  "CMakeFiles/bench_lakehouse.dir/bench_lakehouse.cc.o.d"
  "bench_lakehouse"
  "bench_lakehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lakehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
