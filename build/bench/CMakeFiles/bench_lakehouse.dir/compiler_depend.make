# Empty compiler generated dependencies file for bench_lakehouse.
# This may be replaced when dependencies are built.
