file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_functions.dir/bench_table1_functions.cc.o"
  "CMakeFiles/bench_table1_functions.dir/bench_table1_functions.cc.o.d"
  "bench_table1_functions"
  "bench_table1_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
