file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_dag_organization.dir/bench_table2_dag_organization.cc.o"
  "CMakeFiles/bench_table2_dag_organization.dir/bench_table2_dag_organization.cc.o.d"
  "bench_table2_dag_organization"
  "bench_table2_dag_organization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_dag_organization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
