# Empty dependencies file for bench_table2_dag_organization.
# This may be replaced when dependencies are built.
