file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_discovery.dir/bench_table3_discovery.cc.o"
  "CMakeFiles/bench_table3_discovery.dir/bench_table3_discovery.cc.o.d"
  "bench_table3_discovery"
  "bench_table3_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
