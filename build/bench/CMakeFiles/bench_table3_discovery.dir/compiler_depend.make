# Empty compiler generated dependencies file for bench_table3_discovery.
# This may be replaced when dependencies are built.
