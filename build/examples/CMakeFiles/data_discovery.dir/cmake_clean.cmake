file(REMOVE_RECURSE
  "CMakeFiles/data_discovery.dir/data_discovery.cpp.o"
  "CMakeFiles/data_discovery.dir/data_discovery.cpp.o.d"
  "data_discovery"
  "data_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
