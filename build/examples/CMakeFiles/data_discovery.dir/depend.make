# Empty dependencies file for data_discovery.
# This may be replaced when dependencies are built.
