file(REMOVE_RECURSE
  "CMakeFiles/lakehouse_transactions.dir/lakehouse_transactions.cpp.o"
  "CMakeFiles/lakehouse_transactions.dir/lakehouse_transactions.cpp.o.d"
  "lakehouse_transactions"
  "lakehouse_transactions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakehouse_transactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
