# Empty compiler generated dependencies file for lakehouse_transactions.
# This may be replaced when dependencies are built.
