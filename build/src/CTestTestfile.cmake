# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("json")
subdirs("csv")
subdirs("table")
subdirs("text")
subdirs("storage")
subdirs("catalog")
subdirs("ingest")
subdirs("metamodel")
subdirs("discovery")
subdirs("organize")
subdirs("integrate")
subdirs("enrich")
subdirs("quality")
subdirs("evolution")
subdirs("provenance")
subdirs("query")
subdirs("lakehouse")
subdirs("workload")
subdirs("core")
