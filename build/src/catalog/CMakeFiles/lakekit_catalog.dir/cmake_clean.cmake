file(REMOVE_RECURSE
  "CMakeFiles/lakekit_catalog.dir/access_control.cc.o"
  "CMakeFiles/lakekit_catalog.dir/access_control.cc.o.d"
  "CMakeFiles/lakekit_catalog.dir/catalog.cc.o"
  "CMakeFiles/lakekit_catalog.dir/catalog.cc.o.d"
  "liblakekit_catalog.a"
  "liblakekit_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakekit_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
