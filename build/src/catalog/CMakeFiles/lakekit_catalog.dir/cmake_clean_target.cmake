file(REMOVE_RECURSE
  "liblakekit_catalog.a"
)
