# Empty compiler generated dependencies file for lakekit_catalog.
# This may be replaced when dependencies are built.
