file(REMOVE_RECURSE
  "CMakeFiles/lakekit_common.dir/hash.cc.o"
  "CMakeFiles/lakekit_common.dir/hash.cc.o.d"
  "CMakeFiles/lakekit_common.dir/random.cc.o"
  "CMakeFiles/lakekit_common.dir/random.cc.o.d"
  "CMakeFiles/lakekit_common.dir/status.cc.o"
  "CMakeFiles/lakekit_common.dir/status.cc.o.d"
  "CMakeFiles/lakekit_common.dir/string_util.cc.o"
  "CMakeFiles/lakekit_common.dir/string_util.cc.o.d"
  "liblakekit_common.a"
  "liblakekit_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakekit_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
