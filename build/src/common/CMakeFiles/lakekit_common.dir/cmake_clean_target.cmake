file(REMOVE_RECURSE
  "liblakekit_common.a"
)
