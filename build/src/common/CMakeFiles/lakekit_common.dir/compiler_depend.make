# Empty compiler generated dependencies file for lakekit_common.
# This may be replaced when dependencies are built.
