file(REMOVE_RECURSE
  "CMakeFiles/lakekit_core.dir/data_lake.cc.o"
  "CMakeFiles/lakekit_core.dir/data_lake.cc.o.d"
  "liblakekit_core.a"
  "liblakekit_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakekit_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
