file(REMOVE_RECURSE
  "liblakekit_core.a"
)
