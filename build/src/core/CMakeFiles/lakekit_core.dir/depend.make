# Empty dependencies file for lakekit_core.
# This may be replaced when dependencies are built.
