file(REMOVE_RECURSE
  "CMakeFiles/lakekit_csv.dir/csv.cc.o"
  "CMakeFiles/lakekit_csv.dir/csv.cc.o.d"
  "liblakekit_csv.a"
  "liblakekit_csv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakekit_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
