file(REMOVE_RECURSE
  "liblakekit_csv.a"
)
