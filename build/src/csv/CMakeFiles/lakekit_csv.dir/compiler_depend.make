# Empty compiler generated dependencies file for lakekit_csv.
# This may be replaced when dependencies are built.
