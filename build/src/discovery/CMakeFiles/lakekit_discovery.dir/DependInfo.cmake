
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/discovery/aurum.cc" "src/discovery/CMakeFiles/lakekit_discovery.dir/aurum.cc.o" "gcc" "src/discovery/CMakeFiles/lakekit_discovery.dir/aurum.cc.o.d"
  "/root/repo/src/discovery/brute_force.cc" "src/discovery/CMakeFiles/lakekit_discovery.dir/brute_force.cc.o" "gcc" "src/discovery/CMakeFiles/lakekit_discovery.dir/brute_force.cc.o.d"
  "/root/repo/src/discovery/common.cc" "src/discovery/CMakeFiles/lakekit_discovery.dir/common.cc.o" "gcc" "src/discovery/CMakeFiles/lakekit_discovery.dir/common.cc.o.d"
  "/root/repo/src/discovery/corpus.cc" "src/discovery/CMakeFiles/lakekit_discovery.dir/corpus.cc.o" "gcc" "src/discovery/CMakeFiles/lakekit_discovery.dir/corpus.cc.o.d"
  "/root/repo/src/discovery/d3l.cc" "src/discovery/CMakeFiles/lakekit_discovery.dir/d3l.cc.o" "gcc" "src/discovery/CMakeFiles/lakekit_discovery.dir/d3l.cc.o.d"
  "/root/repo/src/discovery/josie.cc" "src/discovery/CMakeFiles/lakekit_discovery.dir/josie.cc.o" "gcc" "src/discovery/CMakeFiles/lakekit_discovery.dir/josie.cc.o.d"
  "/root/repo/src/discovery/juneau.cc" "src/discovery/CMakeFiles/lakekit_discovery.dir/juneau.cc.o" "gcc" "src/discovery/CMakeFiles/lakekit_discovery.dir/juneau.cc.o.d"
  "/root/repo/src/discovery/pexeso.cc" "src/discovery/CMakeFiles/lakekit_discovery.dir/pexeso.cc.o" "gcc" "src/discovery/CMakeFiles/lakekit_discovery.dir/pexeso.cc.o.d"
  "/root/repo/src/discovery/union_search.cc" "src/discovery/CMakeFiles/lakekit_discovery.dir/union_search.cc.o" "gcc" "src/discovery/CMakeFiles/lakekit_discovery.dir/union_search.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lakekit_common.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/lakekit_table.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/lakekit_text.dir/DependInfo.cmake"
  "/root/repo/build/src/ingest/CMakeFiles/lakekit_ingest.dir/DependInfo.cmake"
  "/root/repo/build/src/metamodel/CMakeFiles/lakekit_metamodel.dir/DependInfo.cmake"
  "/root/repo/build/src/provenance/CMakeFiles/lakekit_provenance.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/lakekit_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/csv/CMakeFiles/lakekit_csv.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/lakekit_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
