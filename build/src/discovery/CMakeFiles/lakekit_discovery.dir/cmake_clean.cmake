file(REMOVE_RECURSE
  "CMakeFiles/lakekit_discovery.dir/aurum.cc.o"
  "CMakeFiles/lakekit_discovery.dir/aurum.cc.o.d"
  "CMakeFiles/lakekit_discovery.dir/brute_force.cc.o"
  "CMakeFiles/lakekit_discovery.dir/brute_force.cc.o.d"
  "CMakeFiles/lakekit_discovery.dir/common.cc.o"
  "CMakeFiles/lakekit_discovery.dir/common.cc.o.d"
  "CMakeFiles/lakekit_discovery.dir/corpus.cc.o"
  "CMakeFiles/lakekit_discovery.dir/corpus.cc.o.d"
  "CMakeFiles/lakekit_discovery.dir/d3l.cc.o"
  "CMakeFiles/lakekit_discovery.dir/d3l.cc.o.d"
  "CMakeFiles/lakekit_discovery.dir/josie.cc.o"
  "CMakeFiles/lakekit_discovery.dir/josie.cc.o.d"
  "CMakeFiles/lakekit_discovery.dir/juneau.cc.o"
  "CMakeFiles/lakekit_discovery.dir/juneau.cc.o.d"
  "CMakeFiles/lakekit_discovery.dir/pexeso.cc.o"
  "CMakeFiles/lakekit_discovery.dir/pexeso.cc.o.d"
  "CMakeFiles/lakekit_discovery.dir/union_search.cc.o"
  "CMakeFiles/lakekit_discovery.dir/union_search.cc.o.d"
  "liblakekit_discovery.a"
  "liblakekit_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakekit_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
