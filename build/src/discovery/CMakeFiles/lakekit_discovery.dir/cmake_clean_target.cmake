file(REMOVE_RECURSE
  "liblakekit_discovery.a"
)
