# Empty dependencies file for lakekit_discovery.
# This may be replaced when dependencies are built.
