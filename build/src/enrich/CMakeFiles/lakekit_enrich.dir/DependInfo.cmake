
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/enrich/d4.cc" "src/enrich/CMakeFiles/lakekit_enrich.dir/d4.cc.o" "gcc" "src/enrich/CMakeFiles/lakekit_enrich.dir/d4.cc.o.d"
  "/root/repo/src/enrich/domain_net.cc" "src/enrich/CMakeFiles/lakekit_enrich.dir/domain_net.cc.o" "gcc" "src/enrich/CMakeFiles/lakekit_enrich.dir/domain_net.cc.o.d"
  "/root/repo/src/enrich/rfd.cc" "src/enrich/CMakeFiles/lakekit_enrich.dir/rfd.cc.o" "gcc" "src/enrich/CMakeFiles/lakekit_enrich.dir/rfd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lakekit_common.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/lakekit_table.dir/DependInfo.cmake"
  "/root/repo/build/src/ingest/CMakeFiles/lakekit_ingest.dir/DependInfo.cmake"
  "/root/repo/build/src/discovery/CMakeFiles/lakekit_discovery.dir/DependInfo.cmake"
  "/root/repo/build/src/metamodel/CMakeFiles/lakekit_metamodel.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/lakekit_text.dir/DependInfo.cmake"
  "/root/repo/build/src/provenance/CMakeFiles/lakekit_provenance.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/lakekit_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/csv/CMakeFiles/lakekit_csv.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/lakekit_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
