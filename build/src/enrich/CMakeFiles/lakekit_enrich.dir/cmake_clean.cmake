file(REMOVE_RECURSE
  "CMakeFiles/lakekit_enrich.dir/d4.cc.o"
  "CMakeFiles/lakekit_enrich.dir/d4.cc.o.d"
  "CMakeFiles/lakekit_enrich.dir/domain_net.cc.o"
  "CMakeFiles/lakekit_enrich.dir/domain_net.cc.o.d"
  "CMakeFiles/lakekit_enrich.dir/rfd.cc.o"
  "CMakeFiles/lakekit_enrich.dir/rfd.cc.o.d"
  "liblakekit_enrich.a"
  "liblakekit_enrich.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakekit_enrich.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
