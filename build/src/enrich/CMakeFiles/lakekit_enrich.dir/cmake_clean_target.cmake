file(REMOVE_RECURSE
  "liblakekit_enrich.a"
)
