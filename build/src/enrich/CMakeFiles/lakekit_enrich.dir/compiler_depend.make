# Empty compiler generated dependencies file for lakekit_enrich.
# This may be replaced when dependencies are built.
