
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/evolution/inclusion_deps.cc" "src/evolution/CMakeFiles/lakekit_evolution.dir/inclusion_deps.cc.o" "gcc" "src/evolution/CMakeFiles/lakekit_evolution.dir/inclusion_deps.cc.o.d"
  "/root/repo/src/evolution/schema_history.cc" "src/evolution/CMakeFiles/lakekit_evolution.dir/schema_history.cc.o" "gcc" "src/evolution/CMakeFiles/lakekit_evolution.dir/schema_history.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lakekit_common.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/lakekit_json.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/lakekit_table.dir/DependInfo.cmake"
  "/root/repo/build/src/csv/CMakeFiles/lakekit_csv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
