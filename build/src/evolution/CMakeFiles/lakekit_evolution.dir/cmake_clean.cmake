file(REMOVE_RECURSE
  "CMakeFiles/lakekit_evolution.dir/inclusion_deps.cc.o"
  "CMakeFiles/lakekit_evolution.dir/inclusion_deps.cc.o.d"
  "CMakeFiles/lakekit_evolution.dir/schema_history.cc.o"
  "CMakeFiles/lakekit_evolution.dir/schema_history.cc.o.d"
  "liblakekit_evolution.a"
  "liblakekit_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakekit_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
