file(REMOVE_RECURSE
  "liblakekit_evolution.a"
)
