# Empty dependencies file for lakekit_evolution.
# This may be replaced when dependencies are built.
