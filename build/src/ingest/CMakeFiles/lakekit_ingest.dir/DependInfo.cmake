
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ingest/format_detect.cc" "src/ingest/CMakeFiles/lakekit_ingest.dir/format_detect.cc.o" "gcc" "src/ingest/CMakeFiles/lakekit_ingest.dir/format_detect.cc.o.d"
  "/root/repo/src/ingest/log_template.cc" "src/ingest/CMakeFiles/lakekit_ingest.dir/log_template.cc.o" "gcc" "src/ingest/CMakeFiles/lakekit_ingest.dir/log_template.cc.o.d"
  "/root/repo/src/ingest/profiler.cc" "src/ingest/CMakeFiles/lakekit_ingest.dir/profiler.cc.o" "gcc" "src/ingest/CMakeFiles/lakekit_ingest.dir/profiler.cc.o.d"
  "/root/repo/src/ingest/structural_extractor.cc" "src/ingest/CMakeFiles/lakekit_ingest.dir/structural_extractor.cc.o" "gcc" "src/ingest/CMakeFiles/lakekit_ingest.dir/structural_extractor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lakekit_common.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/lakekit_json.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/lakekit_table.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/lakekit_text.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/lakekit_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/csv/CMakeFiles/lakekit_csv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
