file(REMOVE_RECURSE
  "CMakeFiles/lakekit_ingest.dir/format_detect.cc.o"
  "CMakeFiles/lakekit_ingest.dir/format_detect.cc.o.d"
  "CMakeFiles/lakekit_ingest.dir/log_template.cc.o"
  "CMakeFiles/lakekit_ingest.dir/log_template.cc.o.d"
  "CMakeFiles/lakekit_ingest.dir/profiler.cc.o"
  "CMakeFiles/lakekit_ingest.dir/profiler.cc.o.d"
  "CMakeFiles/lakekit_ingest.dir/structural_extractor.cc.o"
  "CMakeFiles/lakekit_ingest.dir/structural_extractor.cc.o.d"
  "liblakekit_ingest.a"
  "liblakekit_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakekit_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
