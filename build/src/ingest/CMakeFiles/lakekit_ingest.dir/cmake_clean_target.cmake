file(REMOVE_RECURSE
  "liblakekit_ingest.a"
)
