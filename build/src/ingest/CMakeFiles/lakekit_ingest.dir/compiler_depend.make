# Empty compiler generated dependencies file for lakekit_ingest.
# This may be replaced when dependencies are built.
