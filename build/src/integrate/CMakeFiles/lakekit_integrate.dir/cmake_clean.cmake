file(REMOVE_RECURSE
  "CMakeFiles/lakekit_integrate.dir/full_disjunction.cc.o"
  "CMakeFiles/lakekit_integrate.dir/full_disjunction.cc.o.d"
  "CMakeFiles/lakekit_integrate.dir/mapping.cc.o"
  "CMakeFiles/lakekit_integrate.dir/mapping.cc.o.d"
  "CMakeFiles/lakekit_integrate.dir/schema_match.cc.o"
  "CMakeFiles/lakekit_integrate.dir/schema_match.cc.o.d"
  "liblakekit_integrate.a"
  "liblakekit_integrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakekit_integrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
