file(REMOVE_RECURSE
  "liblakekit_integrate.a"
)
