# Empty compiler generated dependencies file for lakekit_integrate.
# This may be replaced when dependencies are built.
