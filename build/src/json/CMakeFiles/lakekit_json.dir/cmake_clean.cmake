file(REMOVE_RECURSE
  "CMakeFiles/lakekit_json.dir/parser.cc.o"
  "CMakeFiles/lakekit_json.dir/parser.cc.o.d"
  "CMakeFiles/lakekit_json.dir/value.cc.o"
  "CMakeFiles/lakekit_json.dir/value.cc.o.d"
  "CMakeFiles/lakekit_json.dir/writer.cc.o"
  "CMakeFiles/lakekit_json.dir/writer.cc.o.d"
  "liblakekit_json.a"
  "liblakekit_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakekit_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
