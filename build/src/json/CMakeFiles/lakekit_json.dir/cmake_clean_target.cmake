file(REMOVE_RECURSE
  "liblakekit_json.a"
)
