# Empty dependencies file for lakekit_json.
# This may be replaced when dependencies are built.
