
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lakehouse/delta_log.cc" "src/lakehouse/CMakeFiles/lakekit_lakehouse.dir/delta_log.cc.o" "gcc" "src/lakehouse/CMakeFiles/lakekit_lakehouse.dir/delta_log.cc.o.d"
  "/root/repo/src/lakehouse/delta_table.cc" "src/lakehouse/CMakeFiles/lakekit_lakehouse.dir/delta_table.cc.o" "gcc" "src/lakehouse/CMakeFiles/lakekit_lakehouse.dir/delta_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lakekit_common.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/lakekit_json.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/lakekit_table.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/lakekit_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/lakekit_query.dir/DependInfo.cmake"
  "/root/repo/build/src/csv/CMakeFiles/lakekit_csv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
