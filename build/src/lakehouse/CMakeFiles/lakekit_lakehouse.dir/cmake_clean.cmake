file(REMOVE_RECURSE
  "CMakeFiles/lakekit_lakehouse.dir/delta_log.cc.o"
  "CMakeFiles/lakekit_lakehouse.dir/delta_log.cc.o.d"
  "CMakeFiles/lakekit_lakehouse.dir/delta_table.cc.o"
  "CMakeFiles/lakekit_lakehouse.dir/delta_table.cc.o.d"
  "liblakekit_lakehouse.a"
  "liblakekit_lakehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakekit_lakehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
