file(REMOVE_RECURSE
  "liblakekit_lakehouse.a"
)
