# Empty dependencies file for lakekit_lakehouse.
# This may be replaced when dependencies are built.
