
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metamodel/data_vault.cc" "src/metamodel/CMakeFiles/lakekit_metamodel.dir/data_vault.cc.o" "gcc" "src/metamodel/CMakeFiles/lakekit_metamodel.dir/data_vault.cc.o.d"
  "/root/repo/src/metamodel/ekg.cc" "src/metamodel/CMakeFiles/lakekit_metamodel.dir/ekg.cc.o" "gcc" "src/metamodel/CMakeFiles/lakekit_metamodel.dir/ekg.cc.o.d"
  "/root/repo/src/metamodel/gemms.cc" "src/metamodel/CMakeFiles/lakekit_metamodel.dir/gemms.cc.o" "gcc" "src/metamodel/CMakeFiles/lakekit_metamodel.dir/gemms.cc.o.d"
  "/root/repo/src/metamodel/handle.cc" "src/metamodel/CMakeFiles/lakekit_metamodel.dir/handle.cc.o" "gcc" "src/metamodel/CMakeFiles/lakekit_metamodel.dir/handle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lakekit_common.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/lakekit_json.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/lakekit_table.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/lakekit_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/ingest/CMakeFiles/lakekit_ingest.dir/DependInfo.cmake"
  "/root/repo/build/src/csv/CMakeFiles/lakekit_csv.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/lakekit_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
