file(REMOVE_RECURSE
  "CMakeFiles/lakekit_metamodel.dir/data_vault.cc.o"
  "CMakeFiles/lakekit_metamodel.dir/data_vault.cc.o.d"
  "CMakeFiles/lakekit_metamodel.dir/ekg.cc.o"
  "CMakeFiles/lakekit_metamodel.dir/ekg.cc.o.d"
  "CMakeFiles/lakekit_metamodel.dir/gemms.cc.o"
  "CMakeFiles/lakekit_metamodel.dir/gemms.cc.o.d"
  "CMakeFiles/lakekit_metamodel.dir/handle.cc.o"
  "CMakeFiles/lakekit_metamodel.dir/handle.cc.o.d"
  "liblakekit_metamodel.a"
  "liblakekit_metamodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakekit_metamodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
