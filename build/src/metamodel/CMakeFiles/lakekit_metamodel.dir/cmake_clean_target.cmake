file(REMOVE_RECURSE
  "liblakekit_metamodel.a"
)
