# Empty dependencies file for lakekit_metamodel.
# This may be replaced when dependencies are built.
