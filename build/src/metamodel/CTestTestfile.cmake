# CMake generated Testfile for 
# Source directory: /root/repo/src/metamodel
# Build directory: /root/repo/build/src/metamodel
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
