file(REMOVE_RECURSE
  "CMakeFiles/lakekit_organize.dir/dsknn.cc.o"
  "CMakeFiles/lakekit_organize.dir/dsknn.cc.o.d"
  "CMakeFiles/lakekit_organize.dir/kayak.cc.o"
  "CMakeFiles/lakekit_organize.dir/kayak.cc.o.d"
  "CMakeFiles/lakekit_organize.dir/org_dag.cc.o"
  "CMakeFiles/lakekit_organize.dir/org_dag.cc.o.d"
  "CMakeFiles/lakekit_organize.dir/ronin.cc.o"
  "CMakeFiles/lakekit_organize.dir/ronin.cc.o.d"
  "liblakekit_organize.a"
  "liblakekit_organize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakekit_organize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
