file(REMOVE_RECURSE
  "liblakekit_organize.a"
)
