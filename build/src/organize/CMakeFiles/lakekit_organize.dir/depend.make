# Empty dependencies file for lakekit_organize.
# This may be replaced when dependencies are built.
