
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/provenance/provenance.cc" "src/provenance/CMakeFiles/lakekit_provenance.dir/provenance.cc.o" "gcc" "src/provenance/CMakeFiles/lakekit_provenance.dir/provenance.cc.o.d"
  "/root/repo/src/provenance/variable_dep.cc" "src/provenance/CMakeFiles/lakekit_provenance.dir/variable_dep.cc.o" "gcc" "src/provenance/CMakeFiles/lakekit_provenance.dir/variable_dep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lakekit_common.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/lakekit_json.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/lakekit_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/lakekit_table.dir/DependInfo.cmake"
  "/root/repo/build/src/csv/CMakeFiles/lakekit_csv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
