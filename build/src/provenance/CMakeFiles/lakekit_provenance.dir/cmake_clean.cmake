file(REMOVE_RECURSE
  "CMakeFiles/lakekit_provenance.dir/provenance.cc.o"
  "CMakeFiles/lakekit_provenance.dir/provenance.cc.o.d"
  "CMakeFiles/lakekit_provenance.dir/variable_dep.cc.o"
  "CMakeFiles/lakekit_provenance.dir/variable_dep.cc.o.d"
  "liblakekit_provenance.a"
  "liblakekit_provenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakekit_provenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
