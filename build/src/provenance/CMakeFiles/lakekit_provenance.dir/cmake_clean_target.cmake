file(REMOVE_RECURSE
  "liblakekit_provenance.a"
)
