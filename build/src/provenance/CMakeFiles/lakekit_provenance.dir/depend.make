# Empty dependencies file for lakekit_provenance.
# This may be replaced when dependencies are built.
