file(REMOVE_RECURSE
  "CMakeFiles/lakekit_quality.dir/auto_validate.cc.o"
  "CMakeFiles/lakekit_quality.dir/auto_validate.cc.o.d"
  "CMakeFiles/lakekit_quality.dir/denial_constraints.cc.o"
  "CMakeFiles/lakekit_quality.dir/denial_constraints.cc.o.d"
  "liblakekit_quality.a"
  "liblakekit_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakekit_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
