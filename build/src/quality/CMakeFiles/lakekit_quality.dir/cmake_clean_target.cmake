file(REMOVE_RECURSE
  "liblakekit_quality.a"
)
