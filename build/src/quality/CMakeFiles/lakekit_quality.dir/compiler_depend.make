# Empty compiler generated dependencies file for lakekit_quality.
# This may be replaced when dependencies are built.
