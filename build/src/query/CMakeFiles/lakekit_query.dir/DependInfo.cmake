
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/expr.cc" "src/query/CMakeFiles/lakekit_query.dir/expr.cc.o" "gcc" "src/query/CMakeFiles/lakekit_query.dir/expr.cc.o.d"
  "/root/repo/src/query/federation.cc" "src/query/CMakeFiles/lakekit_query.dir/federation.cc.o" "gcc" "src/query/CMakeFiles/lakekit_query.dir/federation.cc.o.d"
  "/root/repo/src/query/operators.cc" "src/query/CMakeFiles/lakekit_query.dir/operators.cc.o" "gcc" "src/query/CMakeFiles/lakekit_query.dir/operators.cc.o.d"
  "/root/repo/src/query/sql.cc" "src/query/CMakeFiles/lakekit_query.dir/sql.cc.o" "gcc" "src/query/CMakeFiles/lakekit_query.dir/sql.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lakekit_common.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/lakekit_table.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/lakekit_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/csv/CMakeFiles/lakekit_csv.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/lakekit_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
