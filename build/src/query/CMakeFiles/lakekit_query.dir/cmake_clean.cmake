file(REMOVE_RECURSE
  "CMakeFiles/lakekit_query.dir/expr.cc.o"
  "CMakeFiles/lakekit_query.dir/expr.cc.o.d"
  "CMakeFiles/lakekit_query.dir/federation.cc.o"
  "CMakeFiles/lakekit_query.dir/federation.cc.o.d"
  "CMakeFiles/lakekit_query.dir/operators.cc.o"
  "CMakeFiles/lakekit_query.dir/operators.cc.o.d"
  "CMakeFiles/lakekit_query.dir/sql.cc.o"
  "CMakeFiles/lakekit_query.dir/sql.cc.o.d"
  "liblakekit_query.a"
  "liblakekit_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakekit_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
