file(REMOVE_RECURSE
  "liblakekit_query.a"
)
