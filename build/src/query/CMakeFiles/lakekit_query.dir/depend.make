# Empty dependencies file for lakekit_query.
# This may be replaced when dependencies are built.
