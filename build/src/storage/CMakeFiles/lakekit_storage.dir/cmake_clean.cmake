file(REMOVE_RECURSE
  "CMakeFiles/lakekit_storage.dir/document_store.cc.o"
  "CMakeFiles/lakekit_storage.dir/document_store.cc.o.d"
  "CMakeFiles/lakekit_storage.dir/graph_store.cc.o"
  "CMakeFiles/lakekit_storage.dir/graph_store.cc.o.d"
  "CMakeFiles/lakekit_storage.dir/kv_store.cc.o"
  "CMakeFiles/lakekit_storage.dir/kv_store.cc.o.d"
  "CMakeFiles/lakekit_storage.dir/object_store.cc.o"
  "CMakeFiles/lakekit_storage.dir/object_store.cc.o.d"
  "CMakeFiles/lakekit_storage.dir/polystore.cc.o"
  "CMakeFiles/lakekit_storage.dir/polystore.cc.o.d"
  "liblakekit_storage.a"
  "liblakekit_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakekit_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
