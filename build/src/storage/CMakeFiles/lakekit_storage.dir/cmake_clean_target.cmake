file(REMOVE_RECURSE
  "liblakekit_storage.a"
)
