# Empty dependencies file for lakekit_storage.
# This may be replaced when dependencies are built.
