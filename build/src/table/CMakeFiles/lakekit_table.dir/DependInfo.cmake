
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/table/schema.cc" "src/table/CMakeFiles/lakekit_table.dir/schema.cc.o" "gcc" "src/table/CMakeFiles/lakekit_table.dir/schema.cc.o.d"
  "/root/repo/src/table/table.cc" "src/table/CMakeFiles/lakekit_table.dir/table.cc.o" "gcc" "src/table/CMakeFiles/lakekit_table.dir/table.cc.o.d"
  "/root/repo/src/table/value.cc" "src/table/CMakeFiles/lakekit_table.dir/value.cc.o" "gcc" "src/table/CMakeFiles/lakekit_table.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lakekit_common.dir/DependInfo.cmake"
  "/root/repo/build/src/csv/CMakeFiles/lakekit_csv.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/lakekit_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
