file(REMOVE_RECURSE
  "CMakeFiles/lakekit_table.dir/schema.cc.o"
  "CMakeFiles/lakekit_table.dir/schema.cc.o.d"
  "CMakeFiles/lakekit_table.dir/table.cc.o"
  "CMakeFiles/lakekit_table.dir/table.cc.o.d"
  "CMakeFiles/lakekit_table.dir/value.cc.o"
  "CMakeFiles/lakekit_table.dir/value.cc.o.d"
  "liblakekit_table.a"
  "liblakekit_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakekit_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
