file(REMOVE_RECURSE
  "liblakekit_table.a"
)
