# Empty dependencies file for lakekit_table.
# This may be replaced when dependencies are built.
