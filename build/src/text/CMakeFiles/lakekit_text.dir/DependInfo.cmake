
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/embedding.cc" "src/text/CMakeFiles/lakekit_text.dir/embedding.cc.o" "gcc" "src/text/CMakeFiles/lakekit_text.dir/embedding.cc.o.d"
  "/root/repo/src/text/ks_test.cc" "src/text/CMakeFiles/lakekit_text.dir/ks_test.cc.o" "gcc" "src/text/CMakeFiles/lakekit_text.dir/ks_test.cc.o.d"
  "/root/repo/src/text/levenshtein.cc" "src/text/CMakeFiles/lakekit_text.dir/levenshtein.cc.o" "gcc" "src/text/CMakeFiles/lakekit_text.dir/levenshtein.cc.o.d"
  "/root/repo/src/text/lsh.cc" "src/text/CMakeFiles/lakekit_text.dir/lsh.cc.o" "gcc" "src/text/CMakeFiles/lakekit_text.dir/lsh.cc.o.d"
  "/root/repo/src/text/minhash.cc" "src/text/CMakeFiles/lakekit_text.dir/minhash.cc.o" "gcc" "src/text/CMakeFiles/lakekit_text.dir/minhash.cc.o.d"
  "/root/repo/src/text/tfidf.cc" "src/text/CMakeFiles/lakekit_text.dir/tfidf.cc.o" "gcc" "src/text/CMakeFiles/lakekit_text.dir/tfidf.cc.o.d"
  "/root/repo/src/text/tokenize.cc" "src/text/CMakeFiles/lakekit_text.dir/tokenize.cc.o" "gcc" "src/text/CMakeFiles/lakekit_text.dir/tokenize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lakekit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
