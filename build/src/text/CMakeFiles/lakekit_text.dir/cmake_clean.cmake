file(REMOVE_RECURSE
  "CMakeFiles/lakekit_text.dir/embedding.cc.o"
  "CMakeFiles/lakekit_text.dir/embedding.cc.o.d"
  "CMakeFiles/lakekit_text.dir/ks_test.cc.o"
  "CMakeFiles/lakekit_text.dir/ks_test.cc.o.d"
  "CMakeFiles/lakekit_text.dir/levenshtein.cc.o"
  "CMakeFiles/lakekit_text.dir/levenshtein.cc.o.d"
  "CMakeFiles/lakekit_text.dir/lsh.cc.o"
  "CMakeFiles/lakekit_text.dir/lsh.cc.o.d"
  "CMakeFiles/lakekit_text.dir/minhash.cc.o"
  "CMakeFiles/lakekit_text.dir/minhash.cc.o.d"
  "CMakeFiles/lakekit_text.dir/tfidf.cc.o"
  "CMakeFiles/lakekit_text.dir/tfidf.cc.o.d"
  "CMakeFiles/lakekit_text.dir/tokenize.cc.o"
  "CMakeFiles/lakekit_text.dir/tokenize.cc.o.d"
  "liblakekit_text.a"
  "liblakekit_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakekit_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
