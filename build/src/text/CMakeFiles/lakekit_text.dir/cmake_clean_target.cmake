file(REMOVE_RECURSE
  "liblakekit_text.a"
)
