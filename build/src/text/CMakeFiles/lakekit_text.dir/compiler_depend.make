# Empty compiler generated dependencies file for lakekit_text.
# This may be replaced when dependencies are built.
