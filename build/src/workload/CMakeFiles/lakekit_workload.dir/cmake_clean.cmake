file(REMOVE_RECURSE
  "CMakeFiles/lakekit_workload.dir/generator.cc.o"
  "CMakeFiles/lakekit_workload.dir/generator.cc.o.d"
  "liblakekit_workload.a"
  "liblakekit_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakekit_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
