file(REMOVE_RECURSE
  "liblakekit_workload.a"
)
