# Empty dependencies file for lakekit_workload.
# This may be replaced when dependencies are built.
