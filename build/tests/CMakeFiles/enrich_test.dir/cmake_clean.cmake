file(REMOVE_RECURSE
  "CMakeFiles/enrich_test.dir/enrich_test.cc.o"
  "CMakeFiles/enrich_test.dir/enrich_test.cc.o.d"
  "enrich_test"
  "enrich_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enrich_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
