# Empty dependencies file for enrich_test.
# This may be replaced when dependencies are built.
