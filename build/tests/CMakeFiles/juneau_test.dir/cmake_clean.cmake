file(REMOVE_RECURSE
  "CMakeFiles/juneau_test.dir/juneau_test.cc.o"
  "CMakeFiles/juneau_test.dir/juneau_test.cc.o.d"
  "juneau_test"
  "juneau_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/juneau_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
