# Empty dependencies file for juneau_test.
# This may be replaced when dependencies are built.
