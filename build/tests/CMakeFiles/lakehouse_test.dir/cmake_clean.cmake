file(REMOVE_RECURSE
  "CMakeFiles/lakehouse_test.dir/lakehouse_test.cc.o"
  "CMakeFiles/lakehouse_test.dir/lakehouse_test.cc.o.d"
  "lakehouse_test"
  "lakehouse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakehouse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
