# Empty dependencies file for lakehouse_test.
# This may be replaced when dependencies are built.
