file(REMOVE_RECURSE
  "CMakeFiles/metamodel_test.dir/metamodel_test.cc.o"
  "CMakeFiles/metamodel_test.dir/metamodel_test.cc.o.d"
  "metamodel_test"
  "metamodel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metamodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
