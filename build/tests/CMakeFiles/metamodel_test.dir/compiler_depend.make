# Empty compiler generated dependencies file for metamodel_test.
# This may be replaced when dependencies are built.
