file(REMOVE_RECURSE
  "CMakeFiles/organize_test.dir/organize_test.cc.o"
  "CMakeFiles/organize_test.dir/organize_test.cc.o.d"
  "organize_test"
  "organize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/organize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
