# Empty dependencies file for organize_test.
# This may be replaced when dependencies are built.
