file(REMOVE_RECURSE
  "CMakeFiles/ronin_access_test.dir/ronin_access_test.cc.o"
  "CMakeFiles/ronin_access_test.dir/ronin_access_test.cc.o.d"
  "ronin_access_test"
  "ronin_access_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ronin_access_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
