# Empty dependencies file for ronin_access_test.
# This may be replaced when dependencies are built.
