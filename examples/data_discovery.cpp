// Related dataset discovery over a synthetic open-data lake (survey Sec. 6.2
// / Table 3): plants joinable column pairs with known overlap, then compares
// what Aurum (LSH + EKG), JOSIE (exact top-k overlap), D3L (five-feature
// distance) and brute force find — including an EKG discovery path and
// PK-FK inference.
//
// Run:  ./examples/data_discovery

#include <cstdio>

#include "discovery/aurum.h"
#include "discovery/brute_force.h"
#include "discovery/corpus.h"
#include "discovery/d3l.h"
#include "discovery/josie.h"
#include "workload/generator.h"

#include "common/status.h"

using namespace lakekit;            // NOLINT
using namespace lakekit::discovery;  // NOLINT

int main() {
  // A 40-table lake with 10 planted joinable pairs at Jaccard 0.5.
  workload::JoinableLakeOptions options;
  options.num_tables = 40;
  options.rows_per_table = 150;
  options.num_planted_pairs = 10;
  options.overlap_jaccard = 0.5;
  workload::JoinableLake lake = workload::MakeJoinableLake(options);

  Corpus corpus;
  for (const auto& t : lake.tables) {
    if (auto s = corpus.AddTable(t); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.status().ToString().c_str());
      return 1;
    }
  }
  // Plant a textbook PK-FK pair on top: orders.customer_id refers to the
  // unique customers.customer_id.
  {
    table::Table customers(
        "customers",
        table::Schema({{"customer_id", table::DataType::kInt64, false},
                       {"name", table::DataType::kString, true}}));
    for (int i = 0; i < 50; ++i) {
      LAKEKIT_CHECK_OK(customers.AppendRow({table::Value(int64_t{9000 + i}),
                                 table::Value("cust" + std::to_string(i))}));
    }
    table::Table orders(
        "cust_orders",
        table::Schema({{"order", table::DataType::kInt64, false},
                       {"customer_id", table::DataType::kInt64, true}}));
    for (int i = 0; i < 200; ++i) {
      LAKEKIT_CHECK_OK(orders.AppendRow({table::Value(int64_t{i}),
                              table::Value(int64_t{9000 + (i * 13) % 50})}));
    }
    LAKEKIT_CHECK_OK(corpus.AddTable(std::move(customers)));
    LAKEKIT_CHECK_OK(corpus.AddTable(std::move(orders)));
  }
  std::printf("lake: %zu tables, %zu columns, %zu planted joinable pairs\n\n",
              corpus.num_tables(), corpus.num_columns(), lake.planted.size());

  AurumFinder aurum(&corpus);
  if (auto s = aurum.Build(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  JosieFinder josie(&corpus);
  josie.Build();
  D3lFinder d3l(&corpus);
  LAKEKIT_CHECK_OK(d3l.Build());
  BruteForceFinder brute(&corpus);

  // Recall@1 of each finder against the planted ground truth.
  auto recall_at_1 = [&](auto&& query_fn) {
    size_t hits = 0;
    for (const auto& pair : lake.planted) {
      ColumnId q = *corpus.FindColumn(pair.table_a, pair.column_a);
      ColumnId expected = *corpus.FindColumn(pair.table_b, pair.column_b);
      auto matches = query_fn(q);
      if (!matches.empty() && matches[0].column == expected) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(lake.planted.size());
  };

  std::printf("recall@1 on planted pairs:\n");
  std::printf("  brute force (exact Jaccard) : %.2f\n",
              recall_at_1([&](ColumnId q) { return brute.TopKJoinableColumns(q, 1); }));
  std::printf("  Aurum (MinHash LSH + EKG)   : %.2f\n",
              recall_at_1([&](ColumnId q) { return aurum.TopKJoinableColumns(q, 1); }));
  std::printf("  JOSIE (exact top-k overlap) : %.2f\n",
              recall_at_1([&](ColumnId q) { return josie.TopKOverlapColumns(q, 1); }));
  std::printf("  D3L (5-feature distance)    : %.2f\n",
              recall_at_1([&](ColumnId q) { return d3l.TopKRelatedColumns(q, 1); }));

  // Inspect one planted pair in detail.
  const auto& pair = lake.planted[0];
  ColumnId qa = *corpus.FindColumn(pair.table_a, pair.column_a);
  ColumnId qb = *corpus.FindColumn(pair.table_b, pair.column_b);
  std::printf("\npair %s.%s <-> %s.%s (planted Jaccard %.2f):\n",
              pair.table_a.c_str(), pair.column_a.c_str(),
              pair.table_b.c_str(), pair.column_b.c_str(),
              pair.target_jaccard);
  std::printf("  exact Jaccard     : %.3f\n",
              ExactJaccard(corpus.sketch(qa), corpus.sketch(qb)));
  std::printf("  MinHash estimate  : %.3f\n",
              corpus.sketch(qa).minhash.EstimateJaccard(
                  corpus.sketch(qb).minhash));
  D3lFeatures f = d3l.ComputeFeatures(qa, qb);
  std::printf("  D3L features      : name=%.2f values=%.2f embed=%.2f "
              "format=%.2f distr=%.2f\n",
              f.name, f.values, f.embedding, f.format, f.distribution);

  // EKG discovery path between the pair's columns.
  auto path = aurum.DiscoveryPath(qa, qb);
  std::printf("  EKG discovery path (%zu hops):", path.size() - 1);
  for (ColumnId node : path) {
    std::printf(" %s.%s", corpus.sketch(node).table_name.c_str(),
                corpus.sketch(node).column_name.c_str());
  }
  std::printf("\n");

  // PK-FK inference: every table's unique "id" against overlapping columns.
  std::printf("\ninferred PK-FK pairs: %zu\n", aurum.PkFkPairs().size());
  size_t shown = 0;
  for (const auto& [fk, pk] : aurum.PkFkPairs()) {
    if (shown++ >= 5) break;
    std::printf("  %s.%s -> %s.%s\n",
                corpus.sketch(fk).table_name.c_str(),
                corpus.sketch(fk).column_name.c_str(),
                corpus.sketch(pk).table_name.c_str(),
                corpus.sketch(pk).column_name.c_str());
  }
  return 0;
}
