// Heterogeneous data querying (survey Sec. 7.2): one SQL interface over a
// polystore whose datasets live in three different backends — a relational
// table, a MongoDB-style document collection, and a raw CSV object. Shows
// query decomposition and the effect of predicate pushdown (Constance /
// Ontario / Squerall pattern).
//
// Run:  ./examples/federated_query [dir]

#include <cstdio>
#include <filesystem>

#include "json/parser.h"
#include "query/federation.h"
#include "storage/polystore.h"

using namespace lakekit;           // NOLINT
using namespace lakekit::query;    // NOLINT
using namespace lakekit::storage;  // NOLINT

namespace {

void Check(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = argc > 1 ? argv[1] : "/tmp/lakekit_federation";
  std::filesystem::remove_all(root);
  auto ps = Polystore::Open(root);
  Check(ps.status());

  // Relational store: a sizeable sales table.
  {
    std::string csv = "sale_id,store,amount\n";
    for (int i = 0; i < 3000; ++i) {
      csv += std::to_string(i) + ",store" + std::to_string(i % 30) + "," +
             std::to_string((i * 7) % 100) + "\n";
    }
    Check(ps->StoreTable("sales",
                         *table::Table::FromCsv("sales", csv)));
  }
  // Document store: store master data as JSON documents.
  {
    std::vector<json::Value> docs;
    for (int i = 0; i < 30; ++i) {
      docs.push_back(*json::Parse(
          R"({"store":"store)" + std::to_string(i) + R"(","region":")" +
          (i % 3 == 0 ? "north" : "south") + R"("})"));
    }
    Check(ps->StoreDocuments("stores", std::move(docs)));
  }
  // Object store: a raw CSV landing file.
  Check(ps->StoreObject("targets", "landing/targets.csv",
                        "region,target\nnorth,50\nsouth,40\n"));

  std::printf("datasets:\n");
  for (const std::string& name : ps->DatasetNames()) {
    auto loc = ps->Lookup(name);
    std::printf("  %-8s -> %s store\n", name.c_str(),
                std::string(StoreKindName(loc->store)).c_str());
  }

  FederatedEngine engine(&ps.value());
  const std::string sql =
      "SELECT region, COUNT(*) AS sales, AVG(amount) AS avg_amount "
      "FROM sales JOIN stores ON sales.store = stores.store "
      "WHERE region = 'north' AND amount > 20 "
      "GROUP BY region";

  auto with = engine.Query(sql, /*enable_pushdown=*/true);
  Check(with.status());
  FederationStats pushed = engine.last_stats();
  std::printf("\nwith pushdown:\n%s", with->ToCsv().c_str());
  std::printf("  scanned=%zu shipped=%zu join_inputs=%zu "
              "pushed_conjuncts=%zu\n",
              pushed.rows_scanned, pushed.rows_shipped,
              pushed.join_input_rows, pushed.pushed_conjuncts);

  auto without = engine.Query(sql, /*enable_pushdown=*/false);
  Check(without.status());
  FederationStats unpushed = engine.last_stats();
  std::printf("\nwithout pushdown (same result):\n");
  std::printf("  scanned=%zu shipped=%zu join_inputs=%zu "
              "pushed_conjuncts=%zu\n",
              unpushed.rows_scanned, unpushed.rows_shipped,
              unpushed.join_input_rows, unpushed.pushed_conjuncts);

  std::printf("\npushdown shipped %.1fx fewer rows to the mediator\n",
              static_cast<double>(unpushed.rows_shipped) /
                  static_cast<double>(pushed.rows_shipped));

  // The raw object-store dataset is queryable through the same interface.
  auto targets = engine.Query("SELECT * FROM targets ORDER BY region");
  Check(targets.status());
  std::printf("\nraw landing file via SQL:\n%s", targets->ToCsv().c_str());
  return 0;
}
