// The Lakehouse direction (survey Sec. 8.3): ACID transactions over raw
// object storage. Demonstrates the Delta-style commit log: appends,
// overwrites, DELETE WHERE, optimistic concurrency (an append racing an
// overwrite), time travel across every version, and checkpointing.
//
// Run:  ./examples/lakehouse_transactions [dir]

#include <cstdio>
#include <filesystem>

#include "lakehouse/delta_table.h"
#include "query/expr.h"
#include "storage/object_store.h"

#include "common/status.h"

using namespace lakekit;             // NOLINT
using namespace lakekit::lakehouse;  // NOLINT

namespace {

table::Table Batch(int base, int n) {
  table::Table t("events",
                 table::Schema({{"id", table::DataType::kInt64, true},
                                {"kind", table::DataType::kString, true}}));
  for (int i = 0; i < n; ++i) {
    LAKEKIT_CHECK_OK(t.AppendRow({table::Value(int64_t{base + i}),
                       table::Value((base + i) % 3 == 0 ? "error" : "ok")}));
  }
  return t;
}

void Check(const Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = argc > 1 ? argv[1] : "/tmp/lakekit_lakehouse";
  std::filesystem::remove_all(root);
  auto store = storage::ObjectStore::Open(root);
  Check(store.status());

  auto t = DeltaTable::Create(&store.value(), "events", Batch(0, 0).schema());
  Check(t.status());
  std::printf("== created delta table 'events' (version %lld)\n\n",
              static_cast<long long>(*t->Version()));

  Check(t->Append(Batch(0, 6)));    // v1
  Check(t->Append(Batch(6, 6)));    // v2
  std::printf("after two appends: %zu rows at version %lld\n",
              t->Read()->num_rows(), static_cast<long long>(*t->Version()));

  // DELETE WHERE kind = 'error' rewrites only affected part files.
  auto pred = query::Expr::Compare(query::CmpOp::kEq,
                                   query::Expr::Column("kind"),
                                   query::Expr::Literal(table::Value("error")));
  Check(t->DeleteWhere(*pred));     // v3
  std::printf("after DELETE WHERE kind='error': %zu rows\n",
              t->Read()->num_rows());

  // Optimistic concurrency: two writers read the same version. The
  // append-only writer rebases; the conflicting overwrite aborts.
  auto writer_a = DeltaTable::Open(&store.value(), "events");
  auto writer_b = DeltaTable::Open(&store.value(), "events");
  Check(writer_a.status());
  Check(writer_b.status());
  Check(writer_a->Append(Batch(100, 3)));           // wins the race
  Status race = writer_b->Append(Batch(200, 3));    // rebases transparently
  std::printf("\nconcurrent appends: first=OK, second=%s (rebased)\n",
              race.ok() ? "OK" : race.ToString().c_str());
  std::printf("rows now: %zu\n", t->Read()->num_rows());

  // Time travel: every version remains readable.
  std::printf("\ntime travel:\n");
  for (int64_t v = 1; v <= *t->Version(); ++v) {
    auto history = t->History();
    std::printf("  version %lld (%-9s): %zu rows\n",
                static_cast<long long>(v), (*history)[static_cast<size_t>(v)].c_str(),
                t->Read(v)->num_rows());
  }

  // Checkpoint collapses the log prefix; reads still work, history intact.
  Check(t->Checkpoint());
  std::printf("\ncheckpoint written; latest read still %zu rows, "
              "version-2 read still %zu rows\n",
              t->Read()->num_rows(), t->Read(2)->num_rows());
  return 0;
}
