// Quickstart: open a data lake, ingest heterogeneous raw files, and walk the
// three tiers of the survey's architecture — ingestion (format detection,
// metadata extraction, cataloging), maintenance (discovery indexes,
// dependencies), exploration (federated SQL, catalog search).
//
// Run:  ./examples/quickstart [lake_dir]

#include <cstdio>
#include <filesystem>

#include "core/data_lake.h"

using lakekit::core::DataLake;
using lakekit::core::IngestOptions;

namespace {

void Fail(const lakekit::Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = argc > 1 ? argv[1] : "/tmp/lakekit_quickstart";
  std::filesystem::remove_all(root);

  auto lake_result = DataLake::Open(root);
  if (!lake_result.ok()) Fail(lake_result.status());
  DataLake lake = std::move(lake_result).value();
  std::printf("== lakekit quickstart: lake at %s\n\n", root.c_str());

  // ---------------------------------------------------------- ingestion
  IngestOptions opts;
  opts.owner = "ada";
  opts.project = "demo";

  opts.description = "order line items from the webshop";
  opts.tags = {"sales"};
  auto orders = lake.IngestFile(
      "orders", "orders.csv",
      "order_id,customer,total\n1,ada,19.5\n2,bob,7.25\n3,ada,42.0\n"
      "4,eve,3.5\n",
      opts);
  if (!orders.ok()) Fail(orders.status());

  opts.description = "customer master data exported from the CRM";
  opts.tags = {"crm"};
  auto customers = lake.IngestFile(
      "customers", "customers.json",
      R"([{"customer":"ada","city":"delft"},
          {"customer":"bob","city":"leiden"},
          {"customer":"eve","city":"delft"}])",
      opts);
  if (!customers.ok()) Fail(customers.status());

  opts.description = "application server log";
  opts.tags = {"ops"};
  auto logs = lake.IngestFile(
      "applog", "app.log",
      "2024-01-01 INFO served order 1 in 12 ms\n"
      "2024-01-01 INFO served order 2 in 9 ms\n"
      "2024-01-02 WARN slow order 3 in 480 ms\n",
      opts);
  if (!logs.ok()) Fail(logs.status());

  std::printf("ingested %zu datasets:\n", lake.num_datasets());
  for (const std::string& name : lake.catalog().ListDatasets()) {
    auto entry = lake.catalog().Get(name);
    std::printf("  %-10s format=%-5s records=%llu schema=[%s]\n",
                entry->name.c_str(), entry->format.c_str(),
                static_cast<unsigned long long>(entry->num_records),
                entry->schema.c_str());
  }

  // --------------------------------------------------------- maintenance
  if (auto s = lake.BuildDiscoveryIndexes(); !s.ok()) Fail(s);
  auto joinable = lake.FindJoinableTables("orders", 3);
  if (!joinable.ok()) Fail(joinable.status());
  std::printf("\ntables joinable with 'orders':\n");
  for (const auto& match : *joinable) {
    std::printf("  %-10s score=%.2f\n", match.table_name.c_str(),
                match.score);
  }

  auto fds = lake.DiscoverDependencies("customers");
  if (fds.ok() && !fds->empty()) {
    std::printf("\ndependencies in 'customers':\n");
    for (const auto& fd : *fds) {
      std::printf("  %s -> %s (confidence %.2f)\n",
                  fd.lhs.empty() ? "?" : fd.lhs[0].c_str(), fd.rhs.c_str(),
                  fd.confidence);
    }
  }

  // --------------------------------------------------------- exploration
  auto result = lake.Query(
      "SELECT city, COUNT(*) AS orders, SUM(total) AS revenue "
      "FROM orders JOIN customers ON orders.customer = customers.customer "
      "GROUP BY city ORDER BY revenue DESC");
  if (!result.ok()) Fail(result.status());
  std::printf("\nrevenue by city (federated SQL over CSV + JSON sources):\n%s",
              result->ToCsv().c_str());

  auto hits = lake.Search("crm");
  std::printf("\ncatalog search 'crm': %zu hit(s)", hits.size());
  for (const auto& hit : hits) std::printf(" [%s]", hit.name.c_str());
  std::printf("\n\nquickstart complete.\n");
  return 0;
}
