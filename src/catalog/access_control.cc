#include "catalog/access_control.h"

namespace lakekit::catalog {

std::string_view PrivilegeName(Privilege p) {
  switch (p) {
    case Privilege::kRead:
      return "read";
    case Privilege::kWrite:
      return "write";
    case Privilege::kGrant:
      return "grant";
  }
  return "unknown";
}

Status AccessControl::CreateUser(std::string_view user) {
  if (!users_.insert(std::string(user)).second) {
    return Status::AlreadyExists("user '" + std::string(user) + "' exists");
  }
  return Status::OK();
}

Status AccessControl::CreateRole(std::string_view role) {
  auto [it, inserted] = role_grants_.try_emplace(std::string(role));
  if (!inserted) {
    return Status::AlreadyExists("role '" + std::string(role) + "' exists");
  }
  return Status::OK();
}

Status AccessControl::AssignRole(std::string_view user,
                                 std::string_view role) {
  if (users_.find(std::string(user)) == users_.end()) {
    return Status::NotFound("no user '" + std::string(user) + "'");
  }
  if (role_grants_.find(std::string(role)) == role_grants_.end()) {
    return Status::NotFound("no role '" + std::string(role) + "'");
  }
  user_roles_[std::string(user)].insert(std::string(role));
  return Status::OK();
}

Status AccessControl::Grant(std::string_view role, std::string_view dataset,
                            Privilege privilege) {
  auto it = role_grants_.find(std::string(role));
  if (it == role_grants_.end()) {
    return Status::NotFound("no role '" + std::string(role) + "'");
  }
  it->second.insert(GrantKey{std::string(dataset), privilege});
  return Status::OK();
}

Status AccessControl::Revoke(std::string_view role, std::string_view dataset,
                             Privilege privilege) {
  auto it = role_grants_.find(std::string(role));
  if (it == role_grants_.end()) {
    return Status::NotFound("no role '" + std::string(role) + "'");
  }
  if (it->second.erase(GrantKey{std::string(dataset), privilege}) == 0) {
    return Status::NotFound("grant not present");
  }
  return Status::OK();
}

bool AccessControl::IsAllowed(std::string_view user, std::string_view dataset,
                              Privilege privilege) const {
  auto roles_it = user_roles_.find(std::string(user));
  if (roles_it == user_roles_.end()) return false;
  for (const std::string& role : roles_it->second) {
    auto grants_it = role_grants_.find(role);
    if (grants_it == role_grants_.end()) continue;
    const auto& grants = grants_it->second;
    if (grants.count(GrantKey{std::string(dataset), privilege}) > 0 ||
        grants.count(GrantKey{"*", privilege}) > 0) {
      return true;
    }
  }
  return false;
}

bool AccessControl::Check(std::string_view user, std::string_view dataset,
                          Privilege privilege) {
  bool allowed = IsAllowed(user, dataset, privilege);
  audit_.push_back(AuditRecord{std::string(user), std::string(dataset),
                               privilege, allowed, ++clock_});
  return allowed;
}

std::map<std::string, size_t> AccessControl::UsageCounts() const {
  std::map<std::string, size_t> out;
  for (const AuditRecord& r : audit_) {
    if (r.allowed) ++out[r.dataset];
  }
  return out;
}

std::vector<AuditRecord> AccessControl::AccessesBy(
    std::string_view user) const {
  std::vector<AuditRecord> out;
  for (const AuditRecord& r : audit_) {
    if (r.user == user) out.push_back(r);
  }
  return out;
}

std::vector<std::string> AccessControl::RolesOf(std::string_view user) const {
  std::vector<std::string> out;
  auto it = user_roles_.find(std::string(user));
  if (it == user_roles_.end()) return out;
  out.assign(it->second.begin(), it->second.end());
  return out;
}

}  // namespace lakekit::catalog
