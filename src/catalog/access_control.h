#ifndef LAKEKIT_CATALOG_ACCESS_CONTROL_H_
#define LAKEKIT_CATALOG_ACCESS_CONTROL_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace lakekit::catalog {

/// Privileges on a dataset.
enum class Privilege { kRead, kWrite, kGrant };

std::string_view PrivilegeName(Privilege p);

/// One audited access decision.
struct AuditRecord {
  std::string user;
  std::string dataset;
  Privilege privilege = Privilege::kRead;
  bool allowed = false;
  int64_t at = 0;  // logical time (insertion order)
};

/// Role-based access control over lake datasets — the governance function
/// the survey's Sec. 3.3 describes via CoreDB (users/roles, authentication,
/// audit) and Gartner's data-swamp critique demands. Users hold roles;
/// roles hold dataset privileges ("*" grants lake-wide); every check is
/// audited, which doubles as GOODS-style usage tracking: per-dataset access
/// counts fall out of the audit log.
class AccessControl {
 public:
  Status CreateUser(std::string_view user);
  Status CreateRole(std::string_view role);
  Status AssignRole(std::string_view user, std::string_view role);

  /// Grants `privilege` on `dataset` ("*" = every dataset) to `role`.
  Status Grant(std::string_view role, std::string_view dataset,
               Privilege privilege);
  Status Revoke(std::string_view role, std::string_view dataset,
                Privilege privilege);

  /// Checks and audits one access. Unknown users are denied (and audited).
  bool Check(std::string_view user, std::string_view dataset,
             Privilege privilege);

  /// Read-only query without auditing.
  bool IsAllowed(std::string_view user, std::string_view dataset,
                 Privilege privilege) const;

  const std::vector<AuditRecord>& audit_log() const { return audit_; }

  /// Usage tracking: allowed accesses per dataset, from the audit log.
  std::map<std::string, size_t> UsageCounts() const;

  /// Accesses by one user (who queried what — CoreDB's question).
  std::vector<AuditRecord> AccessesBy(std::string_view user) const;

  std::vector<std::string> RolesOf(std::string_view user) const;

 private:
  struct GrantKey {
    std::string dataset;
    Privilege privilege;
    bool operator<(const GrantKey& o) const {
      if (dataset != o.dataset) return dataset < o.dataset;
      return privilege < o.privilege;
    }
  };
  std::set<std::string> users_;
  std::map<std::string, std::set<GrantKey>> role_grants_;
  std::map<std::string, std::set<std::string>> user_roles_;
  std::vector<AuditRecord> audit_;
  int64_t clock_ = 0;
};

}  // namespace lakekit::catalog

#endif  // LAKEKIT_CATALOG_ACCESS_CONTROL_H_
