#include "catalog/catalog.h"

#include <algorithm>
#include <cstdio>

#include "common/string_util.h"
#include "json/parser.h"
#include "json/writer.h"

namespace lakekit::catalog {

namespace {

/// Current-version key: "ds/<name>".
std::string EntryKey(std::string_view name) {
  return "ds/" + std::string(name);
}

/// History key: "hist/<name>/<zero-padded version>" — zero padding keeps the
/// KV store's lexicographic order equal to numeric version order.
std::string HistoryKey(std::string_view name, uint64_t version) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%012llu",
                static_cast<unsigned long long>(version));
  return "hist/" + std::string(name) + "/" + buf;
}

json::Value StringsToJson(const std::vector<std::string>& items) {
  json::Array arr;
  for (const std::string& s : items) arr.emplace_back(s);
  return json::Value(std::move(arr));
}

std::vector<std::string> JsonToStrings(const json::Value* v) {
  std::vector<std::string> out;
  if (v == nullptr || !v->is_array()) return out;
  for (const json::Value& item : v->as_array()) {
    if (item.is_string()) out.push_back(item.as_string());
  }
  return out;
}

}  // namespace

json::Value DatasetEntry::ToJson() const {
  json::Object o;
  o.Set("name", json::Value(name));
  o.Set("path", json::Value(path));
  o.Set("format", json::Value(format));
  o.Set("size_bytes", json::Value(static_cast<int64_t>(size_bytes)));
  o.Set("num_records", json::Value(static_cast<int64_t>(num_records)));
  o.Set("schema", json::Value(schema));
  o.Set("content", content);
  o.Set("sources", StringsToJson(sources));
  o.Set("producing_job", json::Value(producing_job));
  o.Set("description", json::Value(description));
  o.Set("tags", StringsToJson(tags));
  o.Set("owner", json::Value(owner));
  o.Set("project", json::Value(project));
  o.Set("created_at", json::Value(created_at));
  o.Set("updated_at", json::Value(updated_at));
  o.Set("version", json::Value(static_cast<int64_t>(version)));
  return json::Value(std::move(o));
}

Result<DatasetEntry> DatasetEntry::FromJson(const json::Value& v) {
  if (!v.is_object()) {
    return Status::Corruption("dataset entry is not a JSON object");
  }
  DatasetEntry e;
  e.name = v.GetString("name");
  if (e.name.empty()) {
    return Status::Corruption("dataset entry missing 'name'");
  }
  e.path = v.GetString("path");
  e.format = v.GetString("format");
  e.size_bytes = static_cast<uint64_t>(v.GetInt("size_bytes"));
  e.num_records = static_cast<uint64_t>(v.GetInt("num_records"));
  e.schema = v.GetString("schema");
  if (const json::Value* content = v.Get("content")) e.content = *content;
  e.sources = JsonToStrings(v.Get("sources"));
  e.producing_job = v.GetString("producing_job");
  e.description = v.GetString("description");
  e.tags = JsonToStrings(v.Get("tags"));
  e.owner = v.GetString("owner");
  e.project = v.GetString("project");
  e.created_at = v.GetInt("created_at");
  e.updated_at = v.GetInt("updated_at");
  e.version = static_cast<uint64_t>(v.GetInt("version"));
  return e;
}

Catalog::Catalog(std::unique_ptr<storage::KvStore> store)
    : store_(std::move(store)) {}

Result<Catalog> Catalog::Open(const std::string& dir) {
  LAKEKIT_ASSIGN_OR_RETURN(auto store, storage::KvStore::Open(dir));
  Catalog catalog(std::move(store));
  // Restore the logical clock.
  Result<std::string> clock = catalog.store_->Get("meta/clock");
  if (clock.ok()) {
    catalog.clock_ = std::stoll(*clock);
  }
  return catalog;
}

int64_t Catalog::NextTimestamp() {
  ++clock_;
  // ignore: best-effort persistence; the clock stays monotonic in-process and
  // is re-persisted by the next successful mutation.
  (void)store_->Put("meta/clock", std::to_string(clock_));
  return clock_;
}

Status Catalog::Register(DatasetEntry entry) {
  if (entry.name.empty()) {
    return Status::InvalidArgument("dataset entry needs a name");
  }
  if (store_->Get(EntryKey(entry.name)).ok()) {
    return Status::AlreadyExists("dataset '" + entry.name +
                                 "' already cataloged");
  }
  entry.version = 1;
  entry.created_at = NextTimestamp();
  entry.updated_at = entry.created_at;
  std::string payload = json::Write(entry.ToJson());
  LAKEKIT_RETURN_IF_ERROR(store_->Put(EntryKey(entry.name), payload));
  return store_->Put(HistoryKey(entry.name, entry.version), payload);
}

Status Catalog::Update(DatasetEntry entry) {
  LAKEKIT_ASSIGN_OR_RETURN(DatasetEntry current, Get(entry.name));
  entry.version = current.version + 1;
  entry.created_at = current.created_at;
  entry.updated_at = NextTimestamp();
  std::string payload = json::Write(entry.ToJson());
  LAKEKIT_RETURN_IF_ERROR(store_->Put(EntryKey(entry.name), payload));
  return store_->Put(HistoryKey(entry.name, entry.version), payload);
}

Result<DatasetEntry> Catalog::Get(std::string_view name) const {
  LAKEKIT_ASSIGN_OR_RETURN(std::string payload, store_->Get(EntryKey(name)));
  LAKEKIT_ASSIGN_OR_RETURN(json::Value v, json::Parse(payload));
  return DatasetEntry::FromJson(v);
}

Result<DatasetEntry> Catalog::GetVersion(std::string_view name,
                                         uint64_t version) const {
  LAKEKIT_ASSIGN_OR_RETURN(std::string payload,
                           store_->Get(HistoryKey(name, version)));
  LAKEKIT_ASSIGN_OR_RETURN(json::Value v, json::Parse(payload));
  return DatasetEntry::FromJson(v);
}

Result<std::vector<DatasetEntry>> Catalog::History(
    std::string_view name) const {
  LAKEKIT_ASSIGN_OR_RETURN(
      auto pairs, store_->ScanPrefix("hist/" + std::string(name) + "/"));
  std::vector<DatasetEntry> out;
  for (const auto& [key, payload] : pairs) {
    LAKEKIT_ASSIGN_OR_RETURN(json::Value v, json::Parse(payload));
    LAKEKIT_ASSIGN_OR_RETURN(DatasetEntry e, DatasetEntry::FromJson(v));
    out.push_back(std::move(e));
  }
  if (out.empty()) {
    return Status::NotFound("no history for dataset '" + std::string(name) +
                            "'");
  }
  return out;
}

Status Catalog::Remove(std::string_view name) {
  LAKEKIT_RETURN_IF_ERROR(store_->Get(EntryKey(name)).status());
  LAKEKIT_RETURN_IF_ERROR(store_->Delete(EntryKey(name)));
  LAKEKIT_ASSIGN_OR_RETURN(
      auto pairs, store_->ScanPrefix("hist/" + std::string(name) + "/"));
  for (const auto& [key, payload] : pairs) {
    LAKEKIT_RETURN_IF_ERROR(store_->Delete(key));
  }
  return Status::OK();
}

std::vector<std::string> Catalog::ListDatasets() const {
  std::vector<std::string> out;
  Result<std::vector<std::pair<std::string, std::string>>> pairs =
      store_->ScanPrefix("ds/");
  if (!pairs.ok()) return out;
  for (const auto& [key, payload] : *pairs) {
    out.push_back(key.substr(3));
  }
  return out;
}

std::vector<DatasetEntry> Catalog::Search(std::string_view keyword) const {
  std::vector<DatasetEntry> out;
  std::string needle = ToLower(keyword);
  Result<std::vector<std::pair<std::string, std::string>>> pairs =
      store_->ScanPrefix("ds/");
  if (!pairs.ok()) return out;
  for (const auto& [key, payload] : *pairs) {
    Result<json::Value> v = json::Parse(payload);
    if (!v.ok()) continue;
    Result<DatasetEntry> e = DatasetEntry::FromJson(*v);
    if (!e.ok()) continue;
    std::string haystack = ToLower(e->name) + " " + ToLower(e->description) +
                           " " + ToLower(e->schema);
    for (const std::string& tag : e->tags) haystack += " " + ToLower(tag);
    if (haystack.find(needle) != std::string::npos) {
      out.push_back(std::move(*e));
    }
  }
  return out;
}

std::vector<DatasetEntry> Catalog::FindByTag(std::string_view tag) const {
  std::vector<DatasetEntry> out;
  for (const std::string& name : ListDatasets()) {
    Result<DatasetEntry> e = Get(name);
    if (!e.ok()) continue;
    if (std::find(e->tags.begin(), e->tags.end(), tag) != e->tags.end()) {
      out.push_back(std::move(*e));
    }
  }
  return out;
}

std::vector<DatasetEntry> Catalog::FindByOwner(std::string_view owner) const {
  std::vector<DatasetEntry> out;
  for (const std::string& name : ListDatasets()) {
    Result<DatasetEntry> e = Get(name);
    if (!e.ok()) continue;
    if (e->owner == owner) out.push_back(std::move(*e));
  }
  return out;
}

}  // namespace lakekit::catalog
