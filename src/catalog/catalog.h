#ifndef LAKEKIT_CATALOG_CATALOG_H_
#define LAKEKIT_CATALOG_CATALOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "json/value.h"
#include "storage/kv_store.h"

namespace lakekit::catalog {

/// One dataset's catalog entry, organized in GOODS' six metadata categories
/// (survey Sec. 6.1.1): basic, content-based, provenance, user-supplied,
/// team/project, and temporal metadata.
struct DatasetEntry {
  std::string name;

  // --- basic metadata
  std::string path;
  std::string format;
  uint64_t size_bytes = 0;
  uint64_t num_records = 0;
  /// Compact schema signature ("id:int64,name:string").
  std::string schema;

  // --- content-based metadata (free-form: column profiles, keywords, ...)
  json::Value content;

  // --- provenance metadata
  std::vector<std::string> sources;
  std::string producing_job;

  // --- user-supplied metadata
  std::string description;
  std::vector<std::string> tags;

  // --- team / project metadata
  std::string owner;
  std::string project;

  // --- temporal metadata
  /// Logical timestamps from the catalog's monotonic clock.
  int64_t created_at = 0;
  int64_t updated_at = 0;
  uint64_t version = 0;

  json::Value ToJson() const;
  static Result<DatasetEntry> FromJson(const json::Value& v);
};

/// A persistent, versioned dataset catalog in the style of GOODS: entries
/// live in an ordered key-value store (lakekit's Bigtable stand-in); every
/// update keeps the previous version retrievable, enabling the
/// "cluster versions of the same dataset" organization GOODS performs.
class Catalog {
 public:
  /// Opens a catalog persisted under `dir`.
  static Result<Catalog> Open(const std::string& dir);

  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  /// Registers a new dataset (version 1). AlreadyExists when present.
  Status Register(DatasetEntry entry);

  /// Updates an existing dataset: bumps the version, preserves created_at,
  /// archives the previous version.
  Status Update(DatasetEntry entry);

  /// Current entry for `name`.
  Result<DatasetEntry> Get(std::string_view name) const;

  /// A specific archived (or current) version.
  Result<DatasetEntry> GetVersion(std::string_view name,
                                  uint64_t version) const;

  /// All versions of a dataset, ascending.
  Result<std::vector<DatasetEntry>> History(std::string_view name) const;

  /// Removes a dataset and its history.
  Status Remove(std::string_view name);

  /// Names of all registered datasets, sorted.
  std::vector<std::string> ListDatasets() const;

  /// Entries whose name, description, schema, tags or keywords contain
  /// `keyword` (case-insensitive).
  std::vector<DatasetEntry> Search(std::string_view keyword) const;

  /// Entries carrying `tag`.
  std::vector<DatasetEntry> FindByTag(std::string_view tag) const;

  /// Entries owned by `owner`.
  std::vector<DatasetEntry> FindByOwner(std::string_view owner) const;

  size_t num_datasets() const { return ListDatasets().size(); }

 private:
  explicit Catalog(std::unique_ptr<storage::KvStore> store);

  int64_t NextTimestamp();

  std::unique_ptr<storage::KvStore> store_;
  int64_t clock_ = 0;
};

}  // namespace lakekit::catalog

#endif  // LAKEKIT_CATALOG_CATALOG_H_
