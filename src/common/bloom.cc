#include "common/bloom.h"

#include <algorithm>

#include "common/hash.h"

namespace lakekit {

BloomFilter::BloomFilter(size_t expected_keys, size_t bits_per_key) {
  bits_per_key = std::max<size_t>(bits_per_key, 1);
  // k = bits_per_key * ln 2 minimizes the FP rate for the chosen density.
  num_probes_ = std::clamp<size_t>(
      static_cast<size_t>(static_cast<double>(bits_per_key) * 0.69), 1, 30);
  num_bits_ = std::max<size_t>(expected_keys * bits_per_key, 64);
  words_.assign((num_bits_ + 63) / 64, 0);
}

void BloomFilter::Add(std::string_view key) {
  if (num_bits_ == 0) return;
  const uint64_t h1 = Fnv1a64(key);
  const uint64_t h2 = Mix64(h1) | 1;  // odd stride: hits every residue
  uint64_t h = h1;
  for (size_t i = 0; i < num_probes_; ++i) {
    const uint64_t bit = h % num_bits_;
    words_[bit >> 6] |= uint64_t{1} << (bit & 63);
    h += h2;
  }
}

bool BloomFilter::MayContain(std::string_view key) const {
  if (num_bits_ == 0) return false;
  const uint64_t h1 = Fnv1a64(key);
  const uint64_t h2 = Mix64(h1) | 1;
  uint64_t h = h1;
  for (size_t i = 0; i < num_probes_; ++i) {
    const uint64_t bit = h % num_bits_;
    if ((words_[bit >> 6] & (uint64_t{1} << (bit & 63))) == 0) return false;
    h += h2;
  }
  return true;
}

}  // namespace lakekit
