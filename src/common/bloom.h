#ifndef LAKEKIT_COMMON_BLOOM_H_
#define LAKEKIT_COMMON_BLOOM_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace lakekit {

/// A plain Bloom filter over string keys — the read-pruning structure the
/// KvStore attaches to each immutable sorted run so a Get can skip runs that
/// cannot contain the key (the Bigtable/LevelDB per-SSTable filter idea).
///
/// Double hashing (Kirsch–Mitzenmacher): the k probe positions are derived
/// from two independent 64-bit hashes as h1 + i*h2, which matches the false
/// positive rate of k independent hash functions at a fraction of the cost.
/// With the default 10 bits per key the expected FP rate is ~1%.
///
/// No false negatives ever: a key that was Add()ed always reports
/// MayContain() == true. Thread safety: Add() is not thread-safe;
/// MayContain() is const and safe to call concurrently once building is
/// done (the KvStore only publishes filters for immutable runs).
class BloomFilter {
 public:
  /// An empty filter rejects everything (MayContain always false) — the
  /// correct behavior for an empty run.
  BloomFilter() = default;

  /// Sizes the filter for `expected_keys` insertions at `bits_per_key`.
  /// `bits_per_key` below 1 clamps to 1; the probe count k is chosen as
  /// bits_per_key * ln 2, clamped to [1, 30].
  BloomFilter(size_t expected_keys, size_t bits_per_key = 10);

  void Add(std::string_view key);

  /// False means the key was definitely never added; true means it probably
  /// was (FP rate set by bits_per_key).
  bool MayContain(std::string_view key) const;

  size_t num_bits() const { return num_bits_; }
  size_t num_probes() const { return num_probes_; }

  /// Approximate heap footprint, for accounting.
  size_t MemoryUsage() const { return words_.size() * sizeof(uint64_t); }

 private:
  std::vector<uint64_t> words_;
  size_t num_bits_ = 0;
  size_t num_probes_ = 0;
};

}  // namespace lakekit

#endif  // LAKEKIT_COMMON_BLOOM_H_
