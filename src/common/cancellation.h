#ifndef LAKEKIT_COMMON_CANCELLATION_H_
#define LAKEKIT_COMMON_CANCELLATION_H_

#include <atomic>
#include <memory>
#include <utility>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace lakekit {

namespace internal {

/// Shared state behind a CancelSource and its tokens. The flag is the fast
/// path (one acquire load per check); the cause is written once, under the
/// mutex, before the flag is published, so any reader that observes
/// `cancelled` also observes the cause.
struct CancelState {
  std::atomic<bool> cancelled{false};
  Mutex mu;
  Status cause LAKEKIT_GUARDED_BY(mu);
};

}  // namespace internal

/// A read-only handle observed by cooperative work (morsel loops, retry
/// loops, per-source scans). Copies share one underlying source; a
/// default-constructed token can never be cancelled, so unarmed paths pay
/// one null check. All members are thread-safe.
class CancelToken {
 public:
  CancelToken() = default;

  [[nodiscard]] bool cancelled() const {
    return state_ != nullptr &&
           state_->cancelled.load(std::memory_order_acquire);
  }

  /// Whether this token is connected to a CancelSource at all. A
  /// default-constructed token can never fire, which lets waiters (the
  /// admission queue) skip polling entirely for unarmed callers.
  [[nodiscard]] bool armed() const { return state_ != nullptr; }

  /// OK while live; after cancellation, the cause passed to
  /// `CancelSource::Cancel` (kAborted by default).
  [[nodiscard]] Status status() const {
    if (!cancelled()) return Status::OK();
    MutexLock lock(state_->mu);
    return state_->cause;
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<internal::CancelState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::CancelState> state_;
};

/// The writing side: whoever owns the operation (a federated query, a test
/// harness, a caller that lost interest) cancels once and every token
/// observes it. The first `Cancel` wins; later causes are ignored.
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<internal::CancelState>()) {}

  /// Cancels with the default cause, `Status::Aborted("cancelled")`.
  void Cancel() { Cancel(Status::Aborted("cancelled")); }

  /// Cancels with an explicit cause (e.g. DeadlineExceeded when a watchdog
  /// cancels on expiry, so workers return the deadline error, not a generic
  /// abort).
  void Cancel(Status cause) {
    MutexLock lock(state_->mu);
    if (state_->cancelled.load(std::memory_order_relaxed)) return;
    state_->cause = std::move(cause);
    state_->cancelled.store(true, std::memory_order_release);
  }

  [[nodiscard]] bool cancelled() const {
    return state_->cancelled.load(std::memory_order_acquire);
  }

  [[nodiscard]] CancelToken token() const { return CancelToken(state_); }

 private:
  std::shared_ptr<internal::CancelState> state_;
};

}  // namespace lakekit

#endif  // LAKEKIT_COMMON_CANCELLATION_H_
