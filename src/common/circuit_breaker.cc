#include "common/circuit_breaker.h"

namespace lakekit {

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : Clock::Real()) {}

Status CircuitBreaker::Admit() {
  MutexLock lock(mu_);
  switch (state_) {
    case State::kClosed:
      return Status::OK();
    case State::kOpen:
      if (clock().Now() - opened_at_ >= options_.open_cooldown) {
        // Cooldown served: this caller becomes the half-open probe.
        state_ = State::kHalfOpen;
        probe_in_flight_ = true;
        return Status::OK();
      }
      ++rejected_;
      return Status::Unavailable("circuit breaker open");
    case State::kHalfOpen:
      if (!probe_in_flight_) {
        probe_in_flight_ = true;
        return Status::OK();
      }
      ++rejected_;
      return Status::Unavailable("circuit breaker half-open, probe in flight");
  }
  return Status::Internal("unreachable circuit breaker state");
}

void CircuitBreaker::RecordSuccess() {
  MutexLock lock(mu_);
  // A success in any state is evidence of health: close and reset. (In
  // half-open this is the probe reporting back; in closed it clears the
  // failure streak; a straggler succeeding after the breaker opened is
  // treated the same as a probe success.)
  state_ = State::kClosed;
  failures_ = 0;
  probe_in_flight_ = false;
}

void CircuitBreaker::RecordFailure() {
  MutexLock lock(mu_);
  const auto now = clock().Now();
  switch (state_) {
    case State::kClosed:
      if (failures_ == 0 || now - window_start_ > options_.failure_window) {
        // First failure, or the previous streak aged out of the window.
        failures_ = 0;
        window_start_ = now;
      }
      if (++failures_ >= options_.failure_threshold) {
        state_ = State::kOpen;
        opened_at_ = now;
      }
      break;
    case State::kHalfOpen:
      // The probe failed: back to a full cooldown.
      state_ = State::kOpen;
      opened_at_ = now;
      probe_in_flight_ = false;
      break;
    case State::kOpen:
      // A straggler admitted before the trip; the cooldown already runs.
      break;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  MutexLock lock(mu_);
  return state_;
}

int64_t CircuitBreaker::rejected() const {
  MutexLock lock(mu_);
  return rejected_;
}

std::string_view CircuitBreakerStateName(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

}  // namespace lakekit
