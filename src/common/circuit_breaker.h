#ifndef LAKEKIT_COMMON_CIRCUIT_BREAKER_H_
#define LAKEKIT_COMMON_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstdint>
#include <string_view>

#include "common/deadline.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace lakekit {

/// Tuning for CircuitBreaker. The defaults suit lakekit's in-process
/// federation tests; production deployments tune the window and cooldown to
/// the backend's failure detection and recovery times.
struct CircuitBreakerOptions {
  /// Consecutive-within-window failures that trip the breaker open.
  int failure_threshold = 5;
  /// Failures older than this no longer count toward the threshold: the
  /// window restarts when a failure arrives after it elapsed.
  std::chrono::milliseconds failure_window{1000};
  /// How long an open breaker rejects before letting one probe through.
  std::chrono::milliseconds open_cooldown{100};
  /// Time source (nullptr: the real clock). Tests inject a ManualClock to
  /// drive the state machine deterministically.
  const Clock* clock = nullptr;
};

/// A per-backend circuit breaker (closed -> open -> half-open), the standard
/// guard that keeps one flaky or dead source from dragging every federated
/// query through its timeout+retry cost:
///
///   - **closed** — requests flow; failures within `failure_window` are
///     counted, and reaching `failure_threshold` trips the breaker open.
///     A success resets the count.
///   - **open** — `Admit` fails fast with kUnavailable (no I/O, no retry
///     budget burned) until `open_cooldown` elapses.
///   - **half-open** — after the cooldown, exactly one caller is admitted
///     as a probe; concurrent callers keep failing fast. The probe's
///     success closes the breaker (counters reset); its failure reopens it
///     for another full cooldown.
///
/// Thread-safe; every transition happens under the annotated mutex. Callers
/// wrap work as: `Admit()` -> on OK run the operation -> `RecordSuccess()` /
/// `RecordFailure()`. Deadline expiry and cancellation should NOT be
/// recorded as failures — they say nothing about the backend's health.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerOptions options = {});

  /// OK when the caller may proceed (and, in half-open, claims the probe
  /// slot); kUnavailable when the breaker is rejecting.
  Status Admit();

  /// Reports the outcome of an admitted operation.
  void RecordSuccess();
  void RecordFailure();

  State state() const;

  /// Calls rejected by Admit since construction.
  int64_t rejected() const;

 private:
  const Clock& clock() const { return *clock_; }

  // unguarded: immutable after construction.
  CircuitBreakerOptions options_;
  // unguarded: immutable after construction (resolved Real() fallback).
  const Clock* clock_;

  mutable Mutex mu_;
  State state_ LAKEKIT_GUARDED_BY(mu_) = State::kClosed;
  int failures_ LAKEKIT_GUARDED_BY(mu_) = 0;
  std::chrono::steady_clock::time_point window_start_ LAKEKIT_GUARDED_BY(mu_);
  std::chrono::steady_clock::time_point opened_at_ LAKEKIT_GUARDED_BY(mu_);
  bool probe_in_flight_ LAKEKIT_GUARDED_BY(mu_) = false;
  int64_t rejected_ LAKEKIT_GUARDED_BY(mu_) = 0;
};

std::string_view CircuitBreakerStateName(CircuitBreaker::State state);

}  // namespace lakekit

#endif  // LAKEKIT_COMMON_CIRCUIT_BREAKER_H_
