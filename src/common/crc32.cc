#include "common/crc32.h"

#include <array>

namespace lakekit {

namespace {

/// Table-driven CRC-32C, one byte at a time. Built once at first use; the
/// table is the standard reflected-polynomial table so values match other
/// CRC-32C implementations (e.g. SSE4.2 crc32 instructions, RocksDB).
constexpr uint32_t kCastagnoli = 0x82F63B78u;  // reflected 0x1EDC6F41

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kCastagnoli : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32c(std::string_view data, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  uint32_t crc = ~seed;
  for (unsigned char c : data) {
    crc = kTable[(crc ^ c) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t MaskCrc32c(uint32_t crc) {
  constexpr uint32_t kMaskDelta = 0xA282EAD8u;
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

uint32_t UnmaskCrc32c(uint32_t masked) {
  constexpr uint32_t kMaskDelta = 0xA282EAD8u;
  uint32_t rot = masked - kMaskDelta;
  return (rot >> 17) | (rot << 15);
}

}  // namespace lakekit
