#ifndef LAKEKIT_COMMON_CRC32_H_
#define LAKEKIT_COMMON_CRC32_H_

#include <cstdint>
#include <string_view>

namespace lakekit {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected) of `data`,
/// continuing from `seed` (pass the previous CRC to checksum data in
/// chunks; 0 starts a fresh checksum).
///
/// This is the checksum RocksDB/LevelDB use to frame WAL and table records;
/// lakekit uses it the same way: every storage-tier record (WAL append, run
/// file entry) carries a CRC so recovery can distinguish a torn or corrupt
/// tail from valid data and truncate instead of ingesting garbage.
uint32_t Crc32c(std::string_view data, uint32_t seed = 0);

/// Masked CRC in the LevelDB style: storing a CRC of data that itself
/// contains CRCs is error-prone, so stored checksums are masked with a
/// rotation + constant. `UnmaskCrc32c(MaskCrc32c(c)) == c`.
uint32_t MaskCrc32c(uint32_t crc);
uint32_t UnmaskCrc32c(uint32_t masked);

}  // namespace lakekit

#endif  // LAKEKIT_COMMON_CRC32_H_
