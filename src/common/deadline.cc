#include "common/deadline.h"

namespace lakekit {

namespace {

class RealClock : public Clock {
 public:
  std::chrono::steady_clock::time_point Now() const override {
    return std::chrono::steady_clock::now();
  }
};

}  // namespace

Clock* Clock::Real() {
  static RealClock clock;
  return &clock;
}

}  // namespace lakekit
