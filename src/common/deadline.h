#ifndef LAKEKIT_COMMON_DEADLINE_H_
#define LAKEKIT_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace lakekit {

/// Monotonic time source behind every deadline and circuit breaker.
///
/// Production code uses `Clock::Real()` (std::chrono::steady_clock); tests
/// inject a `ManualClock` so timeout behavior is deterministic — a chaos
/// test "waits" by advancing the clock, never by sleeping, which is what
/// lets the suite sweep hundreds of failure schedules in milliseconds.
class Clock {
 public:
  virtual ~Clock() = default;

  virtual std::chrono::steady_clock::time_point Now() const = 0;

  /// The process-wide real (steady) clock.
  static Clock* Real();
};

/// A test clock that only moves when told to. Thread-safe: concurrent
/// readers see monotonic time, and `Advance` from one thread is visible to
/// deadline checks on another.
class ManualClock : public Clock {
 public:
  std::chrono::steady_clock::time_point Now() const override {
    return std::chrono::steady_clock::time_point(
        std::chrono::nanoseconds(now_ns_.load(std::memory_order_acquire)));
  }

  void Advance(std::chrono::milliseconds delta) {
    now_ns_.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(delta).count(),
        std::memory_order_acq_rel);
  }

 private:
  std::atomic<int64_t> now_ns_{0};
};

/// A point in time an operation must not outlive.
///
/// A `Deadline` is a value type: copy it freely down a call chain (federated
/// query -> per-source scan -> retry loop -> morsel loop) and every layer
/// observes the same absolute expiry, so nested timeouts cannot stack into
/// more wall-clock time than the caller granted. Default-constructed
/// deadlines are infinite — `expired()` is false forever and costs no clock
/// read, so unarmed hot paths pay only a null check.
class Deadline {
 public:
  /// Infinite: never expires.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  /// Expires `budget` from now on `clock` (nullptr: the real clock).
  static Deadline After(std::chrono::milliseconds budget,
                        const Clock* clock = nullptr) {
    Deadline d;
    d.clock_ = clock != nullptr ? clock : Clock::Real();
    d.at_ = d.clock_->Now() + budget;
    return d;
  }

  [[nodiscard]] bool is_infinite() const { return clock_ == nullptr; }

  [[nodiscard]] bool expired() const {
    return clock_ != nullptr && clock_->Now() >= at_;
  }

  /// Time left before expiry, clamped to >= 0. Infinite deadlines report
  /// `std::chrono::milliseconds::max()`.
  [[nodiscard]] std::chrono::milliseconds remaining() const {
    if (clock_ == nullptr) return std::chrono::milliseconds::max();
    const auto now = clock_->Now();
    if (now >= at_) return std::chrono::milliseconds(0);
    return std::chrono::duration_cast<std::chrono::milliseconds>(at_ - now);
  }

 private:
  const Clock* clock_ = nullptr;  // nullptr: infinite
  std::chrono::steady_clock::time_point at_{};
};

}  // namespace lakekit

#endif  // LAKEKIT_COMMON_DEADLINE_H_
