#include "common/hash.h"

namespace lakekit {

uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace lakekit
