#ifndef LAKEKIT_COMMON_HASH_H_
#define LAKEKIT_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace lakekit {

/// 64-bit FNV-1a hash of `data`. Stable across platforms and runs; used for
/// MinHash, LSH bucketing, and deterministic embeddings.
uint64_t Fnv1a64(std::string_view data);

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer. Useful to derive
/// independent hash families: Mix64(seed ^ base_hash).
uint64_t Mix64(uint64_t x);

/// Combines two 64-bit hashes (order dependent).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace lakekit

#endif  // LAKEKIT_COMMON_HASH_H_
