#ifndef LAKEKIT_COMMON_LRU_CACHE_H_
#define LAKEKIT_COMMON_LRU_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace lakekit {

/// Aggregate counters of an LruCache, summed over its shards.
struct LruCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  /// Bytes currently charged (includes pinned entries).
  size_t charge = 0;
  size_t entries = 0;
};

/// A sharded, memory-bounded LRU cache (DESIGN.md §9).
///
/// Entries are charged an explicit byte cost at insert time; each shard
/// evicts from its least-recently-used end whenever its slice of the budget
/// is exceeded. Lookups and inserts return a `Handle` that *pins* the entry:
/// pinned entries are skipped by eviction, so an in-flight reader can never
/// have the value destroyed underneath it. The byte budget is therefore a
/// soft cap while pins are outstanding — releasing the last pin of an entry
/// re-runs eviction, so the cache re-converges to its budget as soon as
/// readers drain (tested under TSan in lru_cache_test.cc).
///
/// Concurrency: each shard has its own annotated Mutex; keys hash to shards
/// with a mixed hash, so unrelated keys contend on different locks. Values
/// are immutable once inserted (handles only expose `const V&`).
///
/// There is deliberately no Erase: lakekit keys its caches by
/// (name, generation), so stale entries become unreachable on the next
/// generation bump and age out through normal LRU pressure.
template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  /// `capacity_bytes` is the total budget across shards. `shards` 0 picks a
  /// power of two near the hardware concurrency (capped at 16).
  explicit LruCache(size_t capacity_bytes, size_t shards = 0) {
    size_t want = shards;
    if (want == 0) {
      const size_t hw = std::thread::hardware_concurrency();
      want = 1;
      while (want < hw && want < 16) want <<= 1;
    }
    // Round up to a power of two so shard selection is a mask.
    size_t n = 1;
    while (n < want) n <<= 1;
    shards_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      shards_.push_back(std::make_unique<Shard>());
      // Distribute the budget; the +remainder on shard 0 keeps the sum exact.
      shards_[i]->capacity = capacity_bytes / n;
    }
    shards_[0]->capacity += capacity_bytes % n;
  }

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// A pinned reference to a cache entry. While any Handle to an entry is
  /// alive the entry cannot be evicted. Copying re-pins; destruction
  /// unpins (and triggers deferred eviction if the shard ran over budget
  /// while the entry was pinned).
  class Handle {
   public:
    Handle() = default;
    Handle(const Handle& other) { *this = other; }
    Handle& operator=(const Handle& other) {
      if (this == &other) return *this;
      Release();
      shard_ = other.shard_;
      entry_ = other.entry_;
      if (entry_ != nullptr) {
        MutexLock lock(shard_->mu);
        ++entry_->pins;
      }
      return *this;
    }
    Handle(Handle&& other) noexcept
        : shard_(other.shard_), entry_(other.entry_) {
      other.shard_ = nullptr;
      other.entry_ = nullptr;
    }
    Handle& operator=(Handle&& other) noexcept {
      if (this == &other) return *this;
      Release();
      shard_ = other.shard_;
      entry_ = other.entry_;
      other.shard_ = nullptr;
      other.entry_ = nullptr;
      return *this;
    }
    ~Handle() { Release(); }

    explicit operator bool() const { return entry_ != nullptr; }
    const V& operator*() const { return entry_->value; }
    const V* operator->() const { return &entry_->value; }
    const V* get() const { return entry_ == nullptr ? nullptr : &entry_->value; }

    void Release() {
      if (entry_ == nullptr) return;
      Entry* entry = entry_;
      Shard* shard = shard_;
      entry_ = nullptr;
      shard_ = nullptr;
      MutexLock lock(shard->mu);
      --entry->pins;
      // The entry may have kept the shard over budget while pinned; now that
      // it is (possibly) evictable again, re-converge.
      shard->EvictLocked();
    }

   private:
    friend class LruCache;
    Handle(typename LruCache::Shard* shard, typename LruCache::Entry* entry)
        : shard_(shard), entry_(entry) {}

    typename LruCache::Shard* shard_ = nullptr;
    typename LruCache::Entry* entry_ = nullptr;
  };

  /// Returns a pinned handle to `key`'s entry, or an empty handle on miss.
  /// A hit moves the entry to the most-recently-used position.
  Handle Lookup(const K& key) {
    Shard& shard = ShardFor(key);
    MutexLock lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++shard.misses;
      return Handle();
    }
    ++shard.hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    Entry& entry = *it->second;
    ++entry.pins;
    return Handle(&shard, &entry);
  }

  /// Inserts `value` under `key` charged `charge` bytes and returns a pinned
  /// handle to it. If the key is already present the existing entry wins and
  /// `value` is discarded — concurrent loaders racing to fill the same key
  /// converge on one copy instead of replacing each other. `inserted` (when
  /// non-null) reports which case happened, so byte-accounting callers know
  /// whether their charge was taken or must be credited back.
  Handle Insert(const K& key, V value, size_t charge,
                bool* inserted = nullptr) {
    Shard& shard = ShardFor(key);
    MutexLock lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      if (inserted != nullptr) *inserted = false;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      Entry& existing = *it->second;
      ++existing.pins;
      return Handle(&shard, &existing);
    }
    if (inserted != nullptr) *inserted = true;
    shard.lru.push_front(Entry{key, std::move(value), charge, 1});
    shard.index.emplace(key, shard.lru.begin());
    shard.charge += charge;
    shard.EvictLocked();
    return Handle(&shard, &shard.lru.front());
  }

  /// Installs a callback invoked (under the owning shard's lock — keep it
  /// cheap and reentrancy-free) with the charge of every evicted entry.
  /// Byte-accounting callers (query/table_cache.h) credit their budget
  /// here. Set once, before the cache sees concurrent traffic.
  void set_eviction_listener(std::function<void(size_t)> listener) {
    for (std::unique_ptr<Shard>& shard : shards_) {
      MutexLock lock(shard->mu);
      shard->on_evict = listener;
    }
  }

  LruCacheStats stats() const {
    LruCacheStats out;
    for (const std::unique_ptr<Shard>& shard : shards_) {
      MutexLock lock(shard->mu);
      out.hits += shard->hits;
      out.misses += shard->misses;
      out.evictions += shard->evictions;
      out.charge += shard->charge;
      out.entries += shard->index.size();
    }
    return out;
  }

  /// Bytes currently charged across all shards.
  size_t charge() const { return stats().charge; }

  size_t num_shards() const { return shards_.size(); }

 private:
  struct Entry {
    K key;
    V value;
    size_t charge = 0;
    /// Outstanding handles. Guarded by the owning shard's mutex (the entry
    /// lives inside the shard's list, so the field inherits that guard).
    uint32_t pins = 0;
  };

  struct Shard {
    mutable Mutex mu;
    std::list<Entry> lru LAKEKIT_GUARDED_BY(mu);  // front = most recent
    std::unordered_map<K, typename std::list<Entry>::iterator, Hash> index
        LAKEKIT_GUARDED_BY(mu);
    size_t capacity LAKEKIT_GUARDED_BY(mu) = 0;
    size_t charge LAKEKIT_GUARDED_BY(mu) = 0;
    uint64_t hits LAKEKIT_GUARDED_BY(mu) = 0;
    uint64_t misses LAKEKIT_GUARDED_BY(mu) = 0;
    uint64_t evictions LAKEKIT_GUARDED_BY(mu) = 0;
    std::function<void(size_t)> on_evict LAKEKIT_GUARDED_BY(mu);

    /// Evicts unpinned entries from the LRU end until the shard fits its
    /// budget (or only pinned entries remain).
    void EvictLocked() LAKEKIT_REQUIRES(mu) {
      auto it = lru.end();
      while (charge > capacity && it != lru.begin()) {
        --it;
        if (it->pins > 0) continue;  // pinned: skip, try the next-older entry
        charge -= it->charge;
        ++evictions;
        if (on_evict) on_evict(it->charge);
        index.erase(it->key);
        it = lru.erase(it);
      }
    }
  };

  Shard& ShardFor(const K& key) {
    // Mix the hash so clustered low bits (e.g. sequential generations in a
    // composed key) still spread across shards.
    const size_t h = static_cast<size_t>(Mix64(Hash{}(key)));
    return *shards_[h & (shards_.size() - 1)];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace lakekit

#endif  // LAKEKIT_COMMON_LRU_CACHE_H_
