#include "common/memory_budget.h"

#include <string>

namespace lakekit {

namespace {

Status Exhausted(const char* what, size_t bytes, size_t used, size_t cap) {
  return Status::ResourceExhausted(
      std::string(what) + " budget exhausted: need " + std::to_string(bytes) +
      " bytes, " + std::to_string(used) + " of " + std::to_string(cap) +
      " in use");
}

}  // namespace

Status MemoryBudget::TryReserve(size_t bytes) {
  size_t used = used_.load(std::memory_order_relaxed);
  while (true) {
    if (bytes > capacity_ || used > capacity_ - bytes) {
      RecordExhausted();
      return Exhausted("process memory", bytes, used, capacity_);
    }
    if (used_.compare_exchange_weak(used, used + bytes,
                                    std::memory_order_relaxed)) {
      break;
    }
  }
  // Fold the new watermark in; racing updaters each propose their own
  // post-reserve total, and the max of all proposals wins.
  const size_t now = used + bytes;
  size_t peak = peak_.load(std::memory_order_relaxed);
  while (peak < now &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  return Status::OK();
}

void MemoryBudget::Release(size_t bytes) {
  size_t used = used_.load(std::memory_order_relaxed);
  while (true) {
    const size_t next = bytes > used ? 0 : used - bytes;
    if (used_.compare_exchange_weak(used, next, std::memory_order_relaxed)) {
      return;
    }
  }
}

Status BudgetAccount::TryReserve(size_t bytes) {
  if (parent_ == nullptr) return Status::OK();
  size_t used = used_.load(std::memory_order_relaxed);
  while (true) {
    if (bytes > cap_ || used > cap_ - bytes) {
      parent_->RecordExhausted();
      return Exhausted("reservation", bytes, used, cap_);
    }
    if (used_.compare_exchange_weak(used, used + bytes,
                                    std::memory_order_relaxed)) {
      break;
    }
  }
  if (Status s = parent_->TryReserve(bytes); !s.ok()) {
    // Local-only rollback: the parent refused, so it holds nothing of ours
    // to return — Release(bytes) here would debit someone else's grant.
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    return s;
  }
  return Status::OK();
}

void BudgetAccount::Release(size_t bytes) {
  if (parent_ == nullptr) return;
  size_t used = used_.load(std::memory_order_relaxed);
  while (true) {
    const size_t next = bytes > used ? 0 : used - bytes;
    if (used_.compare_exchange_weak(used, next, std::memory_order_relaxed)) {
      break;
    }
  }
  parent_->Release(bytes);
}

}  // namespace lakekit
