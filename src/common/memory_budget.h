#ifndef LAKEKIT_COMMON_MEMORY_BUDGET_H_
#define LAKEKIT_COMMON_MEMORY_BUDGET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace lakekit {

/// Hierarchical memory accounting for the query tier (DESIGN.md §10).
///
/// One `MemoryBudget` caps the whole process; each concurrent consumer — a
/// federated query, the shared TableCache — holds a `BudgetAccount` child
/// whose reservations debit both its own cap and the parent. `TryReserve`
/// *fails* (kResourceExhausted) instead of allocating, so a query that
/// would blow the budget dies cleanly while the process — and every other
/// query — keeps running. The root is a compare-exchange loop, so accounted
/// bytes can never exceed the capacity, not even transiently under
/// concurrent reservers; `peak_used()` records the high-water mark the
/// overload chaos suite asserts against.
///
/// Hot paths never touch these atomics per row: they batch through a
/// stack-local `MemoryCharge` (one per morsel task, so effectively
/// thread-local), which debits the account in `kBudgetQuantumBytes` chunks
/// and costs an integer add per call in the common case.
class MemoryBudget {
 public:
  explicit MemoryBudget(size_t capacity_bytes) : capacity_(capacity_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Reserves `bytes` or fails with kResourceExhausted, leaving the
  /// accounting untouched. Never over-admits: the CAS loop re-checks the
  /// capacity against every concurrent reservation.
  Status TryReserve(size_t bytes);

  /// Returns `bytes` previously reserved. Releasing more than is held is a
  /// bug; the counter saturates at zero rather than wrapping.
  void Release(size_t bytes);

  [[nodiscard]] size_t capacity() const { return capacity_; }
  [[nodiscard]] size_t used() const {
    return used_.load(std::memory_order_relaxed);
  }
  /// High-water mark of `used()` since construction.
  [[nodiscard]] size_t peak_used() const {
    return peak_.load(std::memory_order_relaxed);
  }
  /// Reservations refused for lack of budget (either cap) since
  /// construction.
  [[nodiscard]] uint64_t exhausted_count() const {
    return exhausted_.load(std::memory_order_relaxed);
  }

 private:
  friend class BudgetAccount;
  void RecordExhausted() {
    exhausted_.fetch_add(1, std::memory_order_relaxed);
  }

  const size_t capacity_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
  std::atomic<uint64_t> exhausted_{0};
};

/// A child reservation against a `MemoryBudget`: one per query (created at
/// the engine front door) or per subsystem (the TableCache's slice). Has
/// its own cap — a query cannot starve the process even when it is alone —
/// and forwards every reservation to the parent, so query pressure and
/// cache pressure trade off in the one process-level number.
///
/// A default-constructed account is *detached*: every TryReserve succeeds
/// and costs two relaxed atomic ops, so unbudgeted configurations pay
/// almost nothing. Thread-safe; destruction returns anything still held to
/// the parent (the per-query release path — operators only release their
/// own transient state eagerly).
class BudgetAccount {
 public:
  /// Detached: unlimited, never fails.
  BudgetAccount() = default;

  /// Child of `parent` capped at `cap_bytes` (0: the parent's capacity).
  /// `parent` may be nullptr, which means detached.
  BudgetAccount(MemoryBudget* parent, size_t cap_bytes = 0)
      : parent_(parent),
        cap_(parent == nullptr ? 0
                               : (cap_bytes == 0 ? parent->capacity()
                                                 : cap_bytes)) {}

  BudgetAccount(const BudgetAccount&) = delete;
  BudgetAccount& operator=(const BudgetAccount&) = delete;

  ~BudgetAccount() {
    if (parent_ != nullptr) {
      parent_->Release(used_.load(std::memory_order_relaxed));
    }
  }

  /// Reserves against this account's cap, then the parent. On either
  /// refusal nothing is held and kResourceExhausted is returned.
  Status TryReserve(size_t bytes);

  void Release(size_t bytes);

  [[nodiscard]] bool attached() const { return parent_ != nullptr; }
  [[nodiscard]] size_t cap() const { return cap_; }
  [[nodiscard]] size_t used() const {
    return used_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] MemoryBudget* parent() const { return parent_; }

 private:
  MemoryBudget* parent_ = nullptr;
  size_t cap_ = 0;
  std::atomic<size_t> used_{0};
};

/// Batch size MemoryCharge debits its account in. Large enough that a
/// morsel-sized task touches the shared atomics a handful of times, small
/// enough that the over-reservation slack per in-flight task is noise
/// against any realistic budget.
inline constexpr size_t kBudgetQuantumBytes = 64u << 10;

/// Stack-local batching debiter for hot paths. Each parallel task owns one
/// (so access is single-threaded by construction); `Add` rounds the
/// account-level reservation up to the next kBudgetQuantumBytes, making the
/// common call a local integer add with no shared-state traffic. The
/// destructor returns everything — MemoryCharge tracks *transient* operator
/// state (hash tables, partials, sort keys); state that outlives the
/// operator is charged straight on the account, whose own destructor
/// settles it at query end.
class MemoryCharge {
 public:
  /// `account` may be nullptr or detached; Add is then free and infallible.
  explicit MemoryCharge(BudgetAccount* account)
      : account_(account != nullptr && account->attached() ? account
                                                           : nullptr) {}

  MemoryCharge(const MemoryCharge&) = delete;
  MemoryCharge& operator=(const MemoryCharge&) = delete;

  ~MemoryCharge() { ReleaseAll(); }

  /// Debits `bytes`, reserving another quantum from the account only when
  /// the local allowance runs out. On refusal the local accounting is
  /// unchanged and the caller must unwind (return the error up).
  Status Add(size_t bytes) {
    if (account_ == nullptr) return Status::OK();
    used_ += bytes;
    if (used_ <= reserved_) return Status::OK();
    // Round the shortfall up to whole quanta so the next Adds stay local.
    const size_t shortfall = used_ - reserved_;
    const size_t grab =
        (shortfall + kBudgetQuantumBytes - 1) / kBudgetQuantumBytes *
        kBudgetQuantumBytes;
    if (Status s = account_->TryReserve(grab); !s.ok()) {
      used_ -= bytes;
      return s;
    }
    reserved_ += grab;
    return Status::OK();
  }

  /// Bytes debited so far (the exact figure, not the quantum-rounded
  /// reservation).
  [[nodiscard]] size_t held() const { return used_; }

  void ReleaseAll() {
    if (account_ != nullptr && reserved_ > 0) account_->Release(reserved_);
    reserved_ = 0;
    used_ = 0;
  }

 private:
  BudgetAccount* account_;
  size_t reserved_ = 0;
  size_t used_ = 0;
};

}  // namespace lakekit

#endif  // LAKEKIT_COMMON_MEMORY_BUDGET_H_
