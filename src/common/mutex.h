#ifndef LAKEKIT_COMMON_MUTEX_H_
#define LAKEKIT_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace lakekit {

/// An annotated mutex: `std::mutex` re-exported as a Clang capability.
///
/// libstdc++ ships `std::mutex`/`std::unique_lock` without thread-safety
/// attributes, so locks taken through them are invisible to
/// `-Wthread-safety` — a field marked `LAKEKIT_GUARDED_BY` would warn on
/// every legitimate access. All lakekit mutexes are therefore this type
/// (the repo lint's `mutex-annotated` rule rejects raw `std::mutex`
/// members), locked via `MutexLock` below, and waited on via `CondVar`.
class LAKEKIT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() LAKEKIT_ACQUIRE() { mu_.lock(); }
  void Unlock() LAKEKIT_RELEASE() { mu_.unlock(); }
  bool TryLock() LAKEKIT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// No-op whose annotation tells the analysis the lock is held — for the
  /// rare spot where the proof is manual (e.g. a callback invoked by a
  /// holder). Prefer LAKEKIT_REQUIRES on the function instead.
  void AssertHeld() const LAKEKIT_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;  // the raw primitive this capability wraps
};

/// RAII holder for `Mutex` — the only way lakekit code takes one.
///
/// Supports mid-scope `Unlock()`/`Lock()` (annotated, so the analysis
/// tracks the hand-off) for leader/follower patterns that drop the lock
/// around I/O, e.g. the KvStore group-commit queue.
class LAKEKIT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LAKEKIT_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.Lock();
  }
  ~MutexLock() LAKEKIT_RELEASE() {
    if (held_) mu_.Unlock();
  }

  /// Releases early; the destructor then does nothing.
  void Unlock() LAKEKIT_RELEASE() {
    held_ = false;
    mu_.Unlock();
  }

  /// Re-acquires after an early Unlock().
  void Lock() LAKEKIT_ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable over `Mutex`. `Wait`/`WaitFor` carry
/// `LAKEKIT_REQUIRES(mu)`, so waiting without the lock held is a compile
/// error under the analysis (and UB at runtime — the whole point).
///
/// No predicate overloads on purpose: callers write the
/// `while (!cond) cv.Wait(mu);` loop themselves, which keeps the guarded
/// reads of the condition visible to the analysis at the call site.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, sleeps, and re-acquires before returning.
  /// Spurious wakeups happen; always wait in a predicate loop.
  void Wait(Mutex& mu) LAKEKIT_REQUIRES(mu) {
    // Borrow the already-held native mutex for the wait, then release the
    // unique_lock's ownership so the scoped holder keeps sole control.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Like Wait, but wakes after `timeout` even unnotified. Callers re-check
  /// their predicate either way, so the return value carries no extra
  /// information worth forwarding.
  void WaitFor(Mutex& mu, std::chrono::milliseconds timeout)
      LAKEKIT_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    // ignore: timeout-vs-notify outcome is irrelevant under a predicate loop.
    (void)cv_.wait_for(native, timeout);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace lakekit

#endif  // LAKEKIT_COMMON_MUTEX_H_
