#include "common/random.h"

#include <cmath>

#include "common/hash.h"

namespace lakekit {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  // SplitMix64 expansion of the seed into the xoshiro state.
  uint64_t s = seed;
  for (auto& slot : state_) {
    s += 0x9e3779b97f4a7c15ULL;
    slot = Mix64(s);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Below(uint64_t bound) {
  // Lemire's nearly-divisionless bounded generation (simplified).
  if (bound == 0) return 0;
  return Next() % bound;
}

int64_t Rng::Between(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (has_gaussian_) {
    has_gaussian_ = false;
    return spare_gaussian_;
  }
  double u;
  double v;
  double s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * mul;
  has_gaussian_ = true;
  return u * mul;
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  if (n <= 1) return 0;
  if (s <= 0.0) return Below(n);
  // Inverse transform on the (approximate) continuous Zipf CDF. Using n+1
  // in the upper bound makes x range over [1, n+1), so every rank in
  // [0, n) — including the rarest — has positive mass.
  const double h = std::pow(static_cast<double>(n + 1), 1.0 - s);
  const double u = NextDouble();
  double x = std::pow(u * (h - 1.0) + 1.0, 1.0 / (1.0 - s));
  uint64_t rank = static_cast<uint64_t>(x) - 1;
  return rank >= n ? n - 1 : rank;
}

std::string Rng::NextWord(size_t length) {
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<char>('a' + Below(26)));
  }
  return out;
}

}  // namespace lakekit
