#ifndef LAKEKIT_COMMON_RANDOM_H_
#define LAKEKIT_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lakekit {

/// Deterministic pseudo-random generator (xoshiro256** core, SplitMix64
/// seeded). All lakekit workload generators and randomized algorithms take a
/// seed so experiments are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Below(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Between(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Zipf-distributed rank in [0, n) with exponent `s` (s=0 is uniform).
  /// Uses inverse-CDF over precomputation-free rejection; adequate for
  /// workload generation.
  uint64_t NextZipf(uint64_t n, double s);

  /// Random lowercase ASCII identifier of `length` characters.
  std::string NextWord(size_t length);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Below(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool has_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace lakekit

#endif  // LAKEKIT_COMMON_RANDOM_H_
