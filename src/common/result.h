#ifndef LAKEKIT_COMMON_RESULT_H_
#define LAKEKIT_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace lakekit {

/// The result of an operation that can fail and otherwise yields a `T`.
///
/// A `Result<T>` holds either an OK status plus a value, or a non-OK status.
/// Typical use:
///
///   Result<Table> r = ReadCsv(path);
///   if (!r.ok()) return r.status();
///   Table t = std::move(r).value();
///
/// or with the macro:
///
///   LAKEKIT_ASSIGN_OR_RETURN(Table t, ReadCsv(path));
///
/// Like `Status`, `Result<T>` is `[[nodiscard]]`: dropping one on the floor is
/// a compile error. See status.h for the annotated-ignore convention.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result. Intentionally implicit so functions can
  /// `return value;`.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT

  /// Constructs a failed result from a non-OK status. Intentionally implicit
  /// so functions can `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this result is an error.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace lakekit

/// Evaluates `expr` (a Result<T>), propagating the error or binding the value.
///
///   LAKEKIT_ASSIGN_OR_RETURN(auto table, ReadCsv(path));
///
/// The temporary gets a `__COUNTER__`-unique name (concat helpers live in
/// status.h), so multiple expansions in one scope — even on one line via
/// other macros — cannot shadow each other.
#define LAKEKIT_ASSIGN_OR_RETURN(decl, expr) \
  LAKEKIT_ASSIGN_OR_RETURN_IMPL_(            \
      LAKEKIT_CONCAT_(_lakekit_result_, __COUNTER__), decl, expr)

#define LAKEKIT_ASSIGN_OR_RETURN_IMPL_(name, decl, expr) \
  auto name = (expr);                                    \
  if (!name.ok()) {                                      \
    return name.status();                                \
  }                                                      \
  decl = std::move(name).value()

#endif  // LAKEKIT_COMMON_RESULT_H_
