#include "common/retry.h"

#include <algorithm>
#include <thread>

namespace lakekit {

RetryPolicy::RetryPolicy(RetryOptions options)
    : options_(options), rng_(options.jitter_seed) {
  sleep_fn_ = [](std::chrono::milliseconds d) {
    if (d.count() > 0) std::this_thread::sleep_for(d);
  };
}

Status RetryPolicy::Run(const std::function<Status()>& fn,
                        const Deadline& deadline) {
  Status status = fn();
  for (int attempt = 1;
       attempt < options_.max_attempts && !status.ok() && IsTransient(status);
       ++attempt) {
    if (!SleepBeforeRetry(attempt, deadline)) return status;
    status = fn();
  }
  return status;
}

bool RetryPolicy::SleepBeforeRetry(int attempt, const Deadline& deadline) {
  double backoff_ms =
      static_cast<double>(options_.initial_backoff.count());
  for (int i = 1; i < attempt; ++i) backoff_ms *= options_.multiplier;
  backoff_ms = std::min(
      backoff_ms, static_cast<double>(options_.max_backoff.count()));
  // Full jitter: uniform in [0, backoff]. Decorrelates concurrent retriers
  // hammering the same store. The jitter is drawn even when the deadline
  // already expired, so a schedule's draw sequence — and therefore every
  // later sleep — stays deterministic per seed regardless of budget.
  auto jittered = std::chrono::milliseconds(
      static_cast<int64_t>(rng_.NextDouble() * backoff_ms));
  if (deadline.expired()) return false;
  sleep_fn_(std::min(jittered, deadline.remaining()));
  return !deadline.expired();
}

}  // namespace lakekit
