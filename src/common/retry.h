#ifndef LAKEKIT_COMMON_RETRY_H_
#define LAKEKIT_COMMON_RETRY_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>

#include "common/deadline.h"
#include "common/random.h"
#include "common/result.h"

namespace lakekit {

/// Tuning for RetryPolicy. Defaults are deliberately small: lakekit's
/// transient failures (object-store round trips, injected faults in tests)
/// resolve in milliseconds, not seconds.
struct RetryOptions {
  /// Total tries including the first. 1 disables retrying.
  int max_attempts = 4;
  /// Backoff before the first retry; doubles (times `multiplier`) per retry.
  std::chrono::milliseconds initial_backoff{1};
  /// Upper bound on a single backoff interval.
  std::chrono::milliseconds max_backoff{50};
  /// Exponential growth factor between consecutive backoffs.
  double multiplier = 2.0;
  /// Seed for deterministic jitter, so retry schedules are reproducible
  /// run-to-run like every other randomized lakekit component.
  uint64_t jitter_seed = 42;
};

/// Retries an operation on *transient* errors with exponential backoff and
/// full jitter (each sleep is uniform in [0, backoff]).
///
/// What counts as transient is the Status-level classification
/// `IsTransientError` (status.h): `kIoError` and `kUnavailable`. Permanent
/// errors — including `kDeadlineExceeded` — are returned immediately.
///
/// Every run is deadline-aware: once the deadline expires, the policy
/// returns the last status *without sleeping past the expiry*, and each
/// backoff sleep is capped at the remaining budget — the retry schedule can
/// never cost more wall-clock time than the caller granted. Pass
/// `Deadline::Infinite()` (the default) for the unbounded behavior.
class RetryPolicy {
 public:
  explicit RetryPolicy(RetryOptions options = {});

  /// True when `status` may succeed on retry (see IsTransientError).
  static bool IsTransient(const Status& status) {
    return IsTransientError(status);
  }

  /// Runs `fn` until it returns OK, a permanent error, or the deadline
  /// expires, at most `max_attempts` times. Returns the last status.
  Status Run(const std::function<Status()>& fn,
             const Deadline& deadline = Deadline::Infinite());

  /// Result<T>-returning flavor of Run.
  template <typename F>
  auto RunResult(F&& fn, const Deadline& deadline = Deadline::Infinite())
      -> decltype(fn()) {
    decltype(fn()) result = fn();
    for (int attempt = 1;
         attempt < options_.max_attempts && !result.ok() &&
         IsTransient(result.status());
         ++attempt) {
      if (!SleepBeforeRetry(attempt, deadline)) return result;
      result = fn();
    }
    return result;
  }

  /// Injectable sleeper so tests can count/skip real sleeping.
  void set_sleep_fn(std::function<void(std::chrono::milliseconds)> sleep_fn) {
    sleep_fn_ = std::move(sleep_fn);
  }

  const RetryOptions& options() const { return options_; }

 private:
  /// Sleeps a jittered backoff for the retry numbered `attempt` (1-based),
  /// capped at the deadline's remaining budget. Returns false — without
  /// sleeping — when the deadline is already exhausted, i.e. the caller
  /// must stop retrying and return the last status.
  bool SleepBeforeRetry(int attempt, const Deadline& deadline);

  RetryOptions options_;
  Rng rng_;
  std::function<void(std::chrono::milliseconds)> sleep_fn_;
};

}  // namespace lakekit

#endif  // LAKEKIT_COMMON_RETRY_H_
