#ifndef LAKEKIT_COMMON_RW_LOCK_H_
#define LAKEKIT_COMMON_RW_LOCK_H_

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace lakekit {

/// A writer-priority reader/writer lock, annotated as a Clang capability.
///
/// `std::shared_mutex` on glibc defaults to reader preference: as long as
/// overlapping readers keep arriving, a waiting writer never runs. For the
/// KvStore that is a liveness bug — a read-hammered store would never
/// commit — so its state lock uses this instead: once a writer is waiting,
/// new readers queue behind it. Writers are the rare, batched side (group
/// commit coalesces them), so reader-side starvation is bounded by write
/// volume rather than by reader arrival rate.
///
/// Satisfies the SharedLockable requirements, so it drops into
/// `std::shared_lock` / `std::unique_lock` / `std::scoped_lock` — but those
/// wrappers are invisible to `-Wthread-safety`; code touching
/// `LAKEKIT_GUARDED_BY` state must hold it via the annotated `WriterLock` /
/// `ReaderLock` RAII types below.
class LAKEKIT_CAPABILITY("rw_lock") WriterPriorityRwLock {
 public:
  WriterPriorityRwLock() = default;
  WriterPriorityRwLock(const WriterPriorityRwLock&) = delete;
  WriterPriorityRwLock& operator=(const WriterPriorityRwLock&) = delete;

  void lock() LAKEKIT_ACQUIRE() {
    MutexLock lk(mu_);
    ++waiting_writers_;
    while (writer_active_ || active_readers_ != 0) writer_cv_.Wait(mu_);
    --waiting_writers_;
    writer_active_ = true;
  }

  bool try_lock() LAKEKIT_TRY_ACQUIRE(true) {
    MutexLock lk(mu_);
    if (writer_active_ || active_readers_ != 0) return false;
    writer_active_ = true;
    return true;
  }

  void unlock() LAKEKIT_RELEASE() {
    MutexLock lk(mu_);
    writer_active_ = false;
    // Writers first: a woken writer re-blocks arriving readers via
    // waiting_writers_, so write bursts drain before reads resume.
    if (waiting_writers_ > 0) {
      writer_cv_.NotifyOne();
    } else {
      reader_cv_.NotifyAll();
    }
  }

  void lock_shared() LAKEKIT_ACQUIRE_SHARED() {
    MutexLock lk(mu_);
    while (writer_active_ || waiting_writers_ != 0) reader_cv_.Wait(mu_);
    ++active_readers_;
  }

  bool try_lock_shared() LAKEKIT_TRY_ACQUIRE_SHARED(true) {
    MutexLock lk(mu_);
    if (writer_active_ || waiting_writers_ != 0) return false;
    ++active_readers_;
    return true;
  }

  void unlock_shared() LAKEKIT_RELEASE_SHARED() {
    MutexLock lk(mu_);
    if (--active_readers_ == 0 && waiting_writers_ > 0) {
      writer_cv_.NotifyOne();
    }
  }

 private:
  Mutex mu_;
  CondVar reader_cv_;
  CondVar writer_cv_;
  int active_readers_ LAKEKIT_GUARDED_BY(mu_) = 0;
  int waiting_writers_ LAKEKIT_GUARDED_BY(mu_) = 0;
  bool writer_active_ LAKEKIT_GUARDED_BY(mu_) = false;
};

/// RAII exclusive hold of a WriterPriorityRwLock.
class LAKEKIT_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(WriterPriorityRwLock& mu) LAKEKIT_ACQUIRE(mu)
      : mu_(mu) {
    mu_.lock();
  }
  ~WriterLock() LAKEKIT_RELEASE() { mu_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  WriterPriorityRwLock& mu_;
};

/// RAII shared hold of a WriterPriorityRwLock.
class LAKEKIT_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(WriterPriorityRwLock& mu) LAKEKIT_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() LAKEKIT_RELEASE_GENERIC() { mu_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  WriterPriorityRwLock& mu_;
};

}  // namespace lakekit

#endif  // LAKEKIT_COMMON_RW_LOCK_H_
