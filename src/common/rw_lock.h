#ifndef LAKEKIT_COMMON_RW_LOCK_H_
#define LAKEKIT_COMMON_RW_LOCK_H_

#include <condition_variable>
#include <mutex>

namespace lakekit {

/// A writer-priority reader/writer lock.
///
/// `std::shared_mutex` on glibc defaults to reader preference: as long as
/// overlapping readers keep arriving, a waiting writer never runs. For the
/// KvStore that is a liveness bug — a read-hammered store would never
/// commit — so its state lock uses this instead: once a writer is waiting,
/// new readers queue behind it. Writers are the rare, batched side (group
/// commit coalesces them), so reader-side starvation is bounded by write
/// volume rather than by reader arrival rate.
///
/// Satisfies the SharedLockable requirements, so it drops into
/// `std::shared_lock` / `std::unique_lock` / `std::scoped_lock`.
class WriterPriorityRwLock {
 public:
  WriterPriorityRwLock() = default;
  WriterPriorityRwLock(const WriterPriorityRwLock&) = delete;
  WriterPriorityRwLock& operator=(const WriterPriorityRwLock&) = delete;

  void lock() {
    std::unique_lock<std::mutex> lk(mu_);
    ++waiting_writers_;
    writer_cv_.wait(lk,
                    [this] { return !writer_active_ && active_readers_ == 0; });
    --waiting_writers_;
    writer_active_ = true;
  }

  bool try_lock() {
    std::unique_lock<std::mutex> lk(mu_);
    if (writer_active_ || active_readers_ != 0) return false;
    writer_active_ = true;
    return true;
  }

  void unlock() {
    std::unique_lock<std::mutex> lk(mu_);
    writer_active_ = false;
    // Writers first: a woken writer re-blocks arriving readers via
    // waiting_writers_, so write bursts drain before reads resume.
    if (waiting_writers_ > 0) {
      writer_cv_.notify_one();
    } else {
      reader_cv_.notify_all();
    }
  }

  void lock_shared() {
    std::unique_lock<std::mutex> lk(mu_);
    reader_cv_.wait(
        lk, [this] { return !writer_active_ && waiting_writers_ == 0; });
    ++active_readers_;
  }

  bool try_lock_shared() {
    std::unique_lock<std::mutex> lk(mu_);
    if (writer_active_ || waiting_writers_ != 0) return false;
    ++active_readers_;
    return true;
  }

  void unlock_shared() {
    std::unique_lock<std::mutex> lk(mu_);
    if (--active_readers_ == 0 && waiting_writers_ > 0) {
      writer_cv_.notify_one();
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable reader_cv_;
  std::condition_variable writer_cv_;
  int active_readers_ = 0;
  int waiting_writers_ = 0;
  bool writer_active_ = false;
};

}  // namespace lakekit

#endif  // LAKEKIT_COMMON_RW_LOCK_H_
