#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace lakekit {

namespace internal {

void CheckOkFailed(const char* expr, const char* file, int line,
                   const Status& status) {
  std::fprintf(stderr, "%s:%d: LAKEKIT_CHECK_OK(%s) failed: %s\n", file, line,
               expr, status.ToString().c_str());
  std::abort();
}

}  // namespace internal

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace lakekit
