#ifndef LAKEKIT_COMMON_STATUS_H_
#define LAKEKIT_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace lakekit {

/// Error category for a failed operation.
///
/// lakekit does not throw exceptions across API boundaries; fallible
/// operations return `Status` (or `Result<T>`, see result.h) in the style of
/// RocksDB and Apache Arrow.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIoError,
  kCorruption,
  kNotSupported,
  kFailedPrecondition,
  kAborted,       // e.g. optimistic-concurrency conflicts, cancellation
  kOutOfRange,
  kInternal,
  kDeadlineExceeded,  // a deadline expired before the operation finished
  kUnavailable,       // backend temporarily unavailable (flaky source,
                      // open circuit breaker) — transient, retryable
  kResourceExhausted,  // a memory/quota budget refused the reservation
                       // (common/memory_budget.h) — permanent for *this*
                       // attempt: retrying the same over-budget query
                       // re-exhausts the same budget. Load shedding at
                       // admission uses kUnavailable instead, which IS
                       // retryable (the queue drains).
};

/// Returns a stable human-readable name for `code` ("OK", "NotFound", ...).
std::string_view StatusCodeName(StatusCode code);

/// The result of an operation that can fail but returns no value.
///
/// A `Status` is cheap to copy in the OK case (no allocation) and carries a
/// code plus a context message otherwise. Typical use:
///
///   LAKEKIT_RETURN_IF_ERROR(store.Put(key, value));
///
/// `Status` is `[[nodiscard]]`: silently dropping one is a compile error.
/// Intentional ignores must be spelled `(void)expr;  // ignore: <why>` so the
/// lint tool (tools/lint) can audit them.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per StatusCode.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] bool IsNotFound() const {
    return code_ == StatusCode::kNotFound;
  }
  [[nodiscard]] bool IsAlreadyExists() const {
    return code_ == StatusCode::kAlreadyExists;
  }
  [[nodiscard]] bool IsAborted() const { return code_ == StatusCode::kAborted; }
  [[nodiscard]] bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  [[nodiscard]] bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  [[nodiscard]] bool IsUnavailable() const {
    return code_ == StatusCode::kUnavailable;
  }
  [[nodiscard]] bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<CodeName>: <message>".
  [[nodiscard]] std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Whether a *later attempt of the same operation* can plausibly succeed —
/// the Status-level classification every retry/resilience layer shares
/// (`RetryPolicy`, the federated scan path):
///
///   - `kIoError`: environment failures from the storage tier (descriptor
///     exhaustion, injected faults, flaky remote stores);
///   - `kUnavailable`: a backend that is down *right now* (open circuit
///     breaker, fault-injected source) but expected back.
///
/// Everything else is permanent. `kDeadlineExceeded` in particular is
/// permanent by construction: the caller's budget is spent, and retrying
/// can only exceed it further. `kResourceExhausted` is likewise permanent:
/// an over-budget query re-runs the same plan against the same memory
/// budget, so an immediate retry re-exhausts it (overload *shedding* at
/// admission surfaces as `kUnavailable` precisely because waiting out the
/// queue CAN help — see query/admission.h). Logic errors (`kNotFound`,
/// `kAlreadyExists`, `kCorruption`, ...) stay permanent — retrying a lost
/// `PutIfAbsent` race would turn it into a livelock.
[[nodiscard]] inline bool IsTransientError(const Status& status) {
  return status.code() == StatusCode::kIoError ||
         status.code() == StatusCode::kUnavailable;
}

}  // namespace lakekit

#define LAKEKIT_CONCAT_IMPL_(a, b) a##b
#define LAKEKIT_CONCAT_(a, b) LAKEKIT_CONCAT_IMPL_(a, b)

/// Propagates a non-OK Status to the caller.
///
/// The status lives in an `if`-init scope under a `__COUNTER__`-unique name,
/// so nested/adjacent expansions never shadow each other and `expr` may
/// itself reference a variable named `_lakekit_status`.
#define LAKEKIT_RETURN_IF_ERROR(expr) \
  LAKEKIT_RETURN_IF_ERROR_IMPL_(LAKEKIT_CONCAT_(_lakekit_status_, __COUNTER__), expr)

#define LAKEKIT_RETURN_IF_ERROR_IMPL_(name, expr)            \
  do {                                                       \
    if (::lakekit::Status name = (expr); !name.ok()) {       \
      return name;                                           \
    }                                                        \
  } while (0)

/// Aborts the process if `expr` yields a non-OK Status (or a Result whose
/// status is non-OK). For benches, examples, and other contexts where an
/// error cannot be propagated and must not be silently swallowed.
#define LAKEKIT_CHECK_OK(expr) \
  LAKEKIT_CHECK_OK_IMPL_(LAKEKIT_CONCAT_(_lakekit_check_, __COUNTER__), expr)

#define LAKEKIT_CHECK_OK_IMPL_(name, expr)                            \
  do {                                                                \
    if (const auto& name = (expr); !name.ok()) {                      \
      ::lakekit::internal::CheckOkFailed(#expr, __FILE__, __LINE__,   \
                                         ::lakekit::ToCheckStatus(name)); \
    }                                                                 \
  } while (0)

namespace lakekit {
inline const Status& ToCheckStatus(const Status& s) { return s; }
template <typename R>
const Status& ToCheckStatus(const R& r) {
  return r.status();
}
namespace internal {
/// Prints "<file>:<line>: CHECK_OK(<expr>) failed: <status>" and aborts.
[[noreturn]] void CheckOkFailed(const char* expr, const char* file, int line,
                                const Status& status);
}  // namespace internal
}  // namespace lakekit

#endif  // LAKEKIT_COMMON_STATUS_H_
