#ifndef LAKEKIT_COMMON_STATUS_H_
#define LAKEKIT_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace lakekit {

/// Error category for a failed operation.
///
/// lakekit does not throw exceptions across API boundaries; fallible
/// operations return `Status` (or `Result<T>`, see result.h) in the style of
/// RocksDB and Apache Arrow.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIoError,
  kCorruption,
  kNotSupported,
  kFailedPrecondition,
  kAborted,       // e.g. optimistic-concurrency conflicts
  kOutOfRange,
  kInternal,
};

/// Returns a stable human-readable name for `code` ("OK", "NotFound", ...).
std::string_view StatusCodeName(StatusCode code);

/// The result of an operation that can fail but returns no value.
///
/// A `Status` is cheap to copy in the OK case (no allocation) and carries a
/// code plus a context message otherwise. Typical use:
///
///   Status s = store.Put(key, value);
///   if (!s.ok()) return s;   // or LAKEKIT_RETURN_IF_ERROR(store.Put(...));
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per StatusCode.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace lakekit

/// Propagates a non-OK Status to the caller.
#define LAKEKIT_RETURN_IF_ERROR(expr)                 \
  do {                                                \
    ::lakekit::Status _lakekit_status = (expr);       \
    if (!_lakekit_status.ok()) return _lakekit_status; \
  } while (0)

#endif  // LAKEKIT_COMMON_STATUS_H_
