#include "common/string_util.h"

#include <cctype>
#include <charconv>

namespace lakekit {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool LooksLikeInteger(std::string_view s) {
  if (s.empty()) return false;
  size_t i = (s[0] == '-') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

bool LooksLikeNumber(std::string_view s) {
  if (s.empty()) return false;
  double value = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  return ec == std::errc() && ptr == end;
}

std::string ReplaceAll(std::string s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return s;
  size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

}  // namespace lakekit
