#ifndef LAKEKIT_COMMON_STRING_UTIL_H_
#define LAKEKIT_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace lakekit {

/// Splits `input` on every occurrence of `delim`. Consecutive delimiters
/// produce empty fields; an empty input yields a single empty field.
std::vector<std::string> Split(std::string_view input, char delim);

/// Joins `parts` with `delim` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim);

/// Removes ASCII whitespace from both ends.
std::string_view Trim(std::string_view input);

/// ASCII lower-casing (locale independent).
std::string ToLower(std::string_view input);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// True if every character is an ASCII digit and the string is non-empty
/// (an optional leading '-' is allowed).
bool LooksLikeInteger(std::string_view s);

/// True if the string parses as a floating point literal (and is not an
/// integer-looking string; use LooksLikeInteger first for int detection).
bool LooksLikeNumber(std::string_view s);

/// Replaces every occurrence of `from` in `s` with `to`.
std::string ReplaceAll(std::string s, std::string_view from,
                       std::string_view to);

}  // namespace lakekit

#endif  // LAKEKIT_COMMON_STRING_UTIL_H_
