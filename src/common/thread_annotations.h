#ifndef LAKEKIT_COMMON_THREAD_ANNOTATIONS_H_
#define LAKEKIT_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety (capability) annotations — the macro layer behind
/// lakekit's compile-time lock discipline (DESIGN.md §4.2).
///
/// Under Clang with `-Wthread-safety` (the `clang-tsa` preset turns it into
/// `-Werror=thread-safety`), these attributes let the compiler prove lock
/// discipline statically: a field marked `LAKEKIT_GUARDED_BY(mu_)` cannot be
/// touched without `mu_` held, a function marked `LAKEKIT_REQUIRES(mu_)`
/// cannot be called without it, and a `LAKEKIT_SCOPED_CAPABILITY` RAII type
/// cannot leak a lock out of a scope. This is the same shape of guarantee
/// `[[nodiscard]]` gives Status: TSan catches the interleavings the tests
/// happen to hit; the analysis rejects the bad program outright.
///
/// On non-Clang compilers every macro expands to nothing, so annotated code
/// builds unchanged under GCC.
///
/// Vocabulary (see `common/mutex.h` and `common/rw_lock.h` for the annotated
/// primitives, and DESIGN.md §4.2 for the full discipline):
///  - `LAKEKIT_CAPABILITY` / `LAKEKIT_SCOPED_CAPABILITY`: a lock type / its
///    RAII holder.
///  - `LAKEKIT_GUARDED_BY(mu)`: field may only be accessed with `mu` held
///    (shared hold suffices for reads, exclusive for writes).
///  - `LAKEKIT_REQUIRES(mu)` / `LAKEKIT_REQUIRES_SHARED(mu)`: caller must
///    already hold `mu` — the annotation for `*Locked()` helpers.
///  - `LAKEKIT_ACQUIRE`/`LAKEKIT_RELEASE` (+`_SHARED`): the function
///    acquires/releases the capability; on a lock type's own methods the
///    implicit capability is `this`.
///  - `LAKEKIT_EXCLUDES(mu)`: caller must NOT hold `mu` (deadlock guard).
///  - `LAKEKIT_NO_THREAD_SAFETY_ANALYSIS`: opt a function body out — for
///    lock-primitive internals the analysis cannot model; use sparingly and
///    say why.

#if defined(__clang__)
#define LAKEKIT_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define LAKEKIT_THREAD_ANNOTATION__(x)  // compiles away on non-Clang
#endif

/// Marks a class as a lockable capability ("mutex", "rw_lock", ...).
#define LAKEKIT_CAPABILITY(x) LAKEKIT_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII class whose lifetime equals a capability hold.
#define LAKEKIT_SCOPED_CAPABILITY LAKEKIT_THREAD_ANNOTATION__(scoped_lockable)

/// Field may only be accessed while holding the given capability.
#define LAKEKIT_GUARDED_BY(x) LAKEKIT_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer/smart-pointer field whose *pointee* is protected by the
/// capability (the pointer itself needs LAKEKIT_GUARDED_BY separately).
#define LAKEKIT_PT_GUARDED_BY(x) LAKEKIT_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Caller must hold the capabilities exclusively before calling.
#define LAKEKIT_REQUIRES(...) \
  LAKEKIT_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Caller must hold the capabilities at least shared before calling.
#define LAKEKIT_REQUIRES_SHARED(...) \
  LAKEKIT_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability exclusively (held on return).
#define LAKEKIT_ACQUIRE(...) \
  LAKEKIT_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function acquires the capability shared (held on return).
#define LAKEKIT_ACQUIRE_SHARED(...) \
  LAKEKIT_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function releases an exclusively held capability.
#define LAKEKIT_RELEASE(...) \
  LAKEKIT_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function releases a shared-held capability.
#define LAKEKIT_RELEASE_SHARED(...) \
  LAKEKIT_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Function releases a capability held in either mode — the right
/// annotation for destructors of scoped holders that may hold shared.
#define LAKEKIT_RELEASE_GENERIC(...) \
  LAKEKIT_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

/// Function tries to acquire; first argument is the success return value.
#define LAKEKIT_TRY_ACQUIRE(...) \
  LAKEKIT_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

#define LAKEKIT_TRY_ACQUIRE_SHARED(...) \
  LAKEKIT_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capabilities (guards against self-deadlock on
/// non-reentrant locks).
#define LAKEKIT_EXCLUDES(...) \
  LAKEKIT_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (tells the analysis so).
#define LAKEKIT_ASSERT_CAPABILITY(x) \
  LAKEKIT_THREAD_ANNOTATION__(assert_capability(x))

#define LAKEKIT_ASSERT_SHARED_CAPABILITY(x) \
  LAKEKIT_THREAD_ANNOTATION__(assert_shared_capability(x))

/// Function returns a reference to the named capability.
#define LAKEKIT_RETURN_CAPABILITY(x) \
  LAKEKIT_THREAD_ANNOTATION__(lock_returned(x))

/// Opts a function body out of the analysis. Reserve for lock-primitive
/// implementations; every use needs a comment saying why.
#define LAKEKIT_NO_THREAD_SAFETY_ANALYSIS \
  LAKEKIT_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // LAKEKIT_COMMON_THREAD_ANNOTATIONS_H_
