#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>
#include <string>

namespace lakekit {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

bool ThreadPool::TryRunOneTask() {
  std::function<void()> task;
  {
    MutexLock lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stopping_ and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool pool(DefaultThreads());
  return pool;
}

size_t ThreadPool::DefaultThreads() {
  // Reading the environment races with setenv, which lakekit never calls;
  // tests that set LAKEKIT_THREADS do so before spawning threads.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("LAKEKIT_THREADS")) {
    long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<size_t>(parsed);
    return 1;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

namespace {

/// Completion state shared between the chunks of one ParallelFor call.
struct ForState {
  Mutex mu;
  CondVar done;
  size_t pending LAKEKIT_GUARDED_BY(mu) = 0;
  /// From the lowest failing chunk.
  Status first_error LAKEKIT_GUARDED_BY(mu);
  size_t first_error_chunk LAKEKIT_GUARDED_BY(mu) =
      std::numeric_limits<size_t>::max();
  /// External interruption (cancel token / deadline) observed by some chunk;
  /// once set, every not-yet-started chunk is skipped.
  bool interrupted LAKEKIT_GUARDED_BY(mu) = false;
  Status interrupt_status LAKEKIT_GUARDED_BY(mu);
};

/// The cancel-token/deadline check each chunk runs before starting.
Status ExternalInterrupt(const ParallelOptions& options) {
  if (options.cancel.cancelled()) return options.cancel.status();
  if (options.deadline.expired()) {
    return Status::DeadlineExceeded("deadline expired in ParallelFor");
  }
  return Status::OK();
}

}  // namespace

Status ParallelFor(size_t begin, size_t end,
                   const std::function<Status(size_t)>& fn,
                   const ParallelOptions& options) {
  if (end <= begin) return Status::OK();
  const size_t n = end - begin;
  ThreadPool& pool = options.pool ? *options.pool : ThreadPool::Default();

  size_t grain = options.grain;
  if (grain == 0) {
    grain = std::max<size_t>(1, n / std::max<size_t>(1, pool.size() * 4));
  }
  const size_t num_chunks = (n + grain - 1) / grain;

  // One chunk: run it inline, no queue traffic.
  auto run_range = [&fn](size_t lo, size_t hi) -> Status {
    Status s;
    try {
      for (size_t i = lo; i < hi && s.ok(); ++i) {
        s = fn(i);
      }
    } catch (const std::exception& e) {
      s = Status::Internal(std::string("uncaught exception in ParallelFor: ") +
                           e.what());
    } catch (...) {
      s = Status::Internal("uncaught non-std exception in ParallelFor");
    }
    return s;
  };
  if (num_chunks == 1) {
    if (Status interrupt = ExternalInterrupt(options); !interrupt.ok()) {
      return interrupt;
    }
    return run_range(begin, end);
  }

  auto state = std::make_shared<ForState>();
  state->pending = num_chunks;

  auto finish_chunk = [state](size_t chunk, Status s) {
    bool last = false;
    {
      MutexLock lock(state->mu);
      if (!s.ok() && chunk < state->first_error_chunk) {
        state->first_error = std::move(s);
        state->first_error_chunk = chunk;
      }
      last = (--state->pending == 0);
    }
    // Notify outside the lock; waiters re-check pending under it, so the
    // wakeup cannot be lost.
    if (last) state->done.NotifyAll();
  };

  // Cooperative cancellation gate, run before a chunk starts. A chunk is
  // skipped when (a) an external interrupt (token/deadline) was observed,
  // or (b) a *lower* chunk already failed. Rule (b) preserves the
  // deterministic lowest-chunk-wins contract: every chunk below the
  // eventual winner still runs (by induction, none of them can have been
  // skipped), so the winning error is the one the run-everything execution
  // would have returned — only work above it is shed.
  auto run_chunk = [state, finish_chunk, &options, &run_range](
                       size_t c, size_t lo, size_t hi) {
    bool skip = false;
    {
      MutexLock lock(state->mu);
      skip = state->interrupted || state->first_error_chunk < c;
    }
    if (!skip) {
      if (Status interrupt = ExternalInterrupt(options); !interrupt.ok()) {
        MutexLock lock(state->mu);
        if (!state->interrupted) {
          state->interrupted = true;
          state->interrupt_status = std::move(interrupt);
        }
        skip = true;
      }
    }
    // A skipped chunk reports OK: it contributes no error and no work.
    finish_chunk(c, skip ? Status::OK() : run_range(lo, hi));
  };

  // Chunks 1..num_chunks-1 go to the pool; the caller runs chunk 0 itself.
  // `fn`, `options`, and `run_range` are captured by reference/pointer: the
  // caller blocks below until every chunk has finished, so they outlive all
  // tasks.
  for (size_t c = 1; c < num_chunks; ++c) {
    const size_t lo = begin + c * grain;
    const size_t hi = std::min(end, lo + grain);
    pool.Submit([c, lo, hi, run_chunk] { run_chunk(c, lo, hi); });
  }
  run_chunk(0, begin, std::min(end, begin + grain));

  // Wait for the remaining chunks, helping drain the queue instead of
  // sleeping while tasks are runnable: this is what makes nested
  // ParallelFor on one pool deadlock-free — every thread that enqueues work
  // also participates in running it.
  for (;;) {
    {
      MutexLock lock(state->mu);
      if (state->pending == 0) break;
    }
    if (!pool.TryRunOneTask()) {
      MutexLock lock(state->mu);
      // Nothing runnable: our chunks are executing on other threads. Wake
      // on completion, or re-check shortly in case new (nested) tasks we
      // could help with have arrived.
      if (state->pending != 0) {
        state->done.WaitFor(state->mu, std::chrono::milliseconds(1));
      }
    }
  }

  MutexLock lock(state->mu);
  // A chunk's own error outranks the interruption status: the error is
  // deterministic (lowest chunk wins) and interruption is what *stopped*
  // the rest, not what went wrong first.
  if (!state->first_error.ok()) return state->first_error;
  return state->interrupt_status;
}

}  // namespace lakekit
