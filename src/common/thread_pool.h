#ifndef LAKEKIT_COMMON_THREAD_POOL_H_
#define LAKEKIT_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/deadline.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace lakekit {

/// A fixed-size work-queue thread pool — lakekit's execution layer.
///
/// Every parallel hot path (corpus sketch building, discovery index
/// verification, workload generation, brute-force sharding) runs through one
/// of these, usually via `ParallelFor`/`ParallelMap` below. The pool is
/// deliberately simple: a mutex-guarded deque of `std::function<void()>`
/// tasks drained by `num_threads` workers. What makes it safe for nested use
/// is `TryRunOneTask`: a thread that blocks waiting for its own batch to
/// finish *helps drain the queue* instead of sleeping, so a task running on
/// the pool may itself call `ParallelFor` on the same pool without deadlock.
///
/// Thread safety: `Submit`/`TryRunOneTask` may be called from any thread.
/// Submitted tasks must not throw (use `ParallelFor`, which converts
/// exceptions to `Status`, when the work can fail).
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues a task for execution by a worker (or a helping waiter).
  void Submit(std::function<void()> task);

  /// Pops and runs one queued task on the calling thread, if one is ready.
  /// Returns false when the queue was empty. Used by `ParallelFor` waiters
  /// to help instead of blocking — the mechanism that makes nesting safe.
  bool TryRunOneTask();

  /// The process-wide default pool, sized from `DefaultThreads()`. Built on
  /// first use; lives for the remainder of the process.
  static ThreadPool& Default();

  /// `std::thread::hardware_concurrency()`, overridable with the
  /// LAKEKIT_THREADS environment variable (values < 1 clamp to 1). A value
  /// of 1 is the serial opt-out: everything still runs, on one worker.
  static size_t DefaultThreads();

 private:
  void WorkerLoop();

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ LAKEKIT_GUARDED_BY(mu_);
  bool stopping_ LAKEKIT_GUARDED_BY(mu_) = false;
  // unguarded: filled in the constructor before any worker can observe it,
  // then only read (size()) until the destructor joins.
  std::vector<std::thread> workers_;
};

/// Tuning for ParallelFor/ParallelMap.
struct ParallelOptions {
  /// Pool to run on; nullptr means `ThreadPool::Default()`.
  ThreadPool* pool = nullptr;
  /// Indices per task. 0 picks automatically (~4 chunks per worker, at
  /// least 1 index each). Tests use grain=1 to pin chunk == index.
  size_t grain = 0;
  /// Cooperative cancellation, checked once per chunk before it starts:
  /// a cancelled token skips every not-yet-started chunk and ParallelFor
  /// returns the token's status. Default-constructed: never cancelled.
  CancelToken cancel;
  /// Deadline, checked once per chunk before it starts: expiry skips every
  /// not-yet-started chunk and ParallelFor returns kDeadlineExceeded.
  /// Default: infinite. For finer-than-chunk granularity (e.g. per-morsel
  /// in the query engine), `fn` checks and returns the error itself.
  Deadline deadline;
};

/// Runs `fn(i)` for every i in [begin, end) across the pool, blocking until
/// all iterations finish. The calling thread participates (it runs the first
/// chunk, then helps drain the queue), so the pool being busy can only slow
/// this call down, never deadlock it.
///
/// Error contract: the returned Status is the error from the *lowest*
/// failing chunk — deterministic regardless of thread interleaving. The
/// first error cancels chunks that have not yet started and sit *above* the
/// failing chunk; everything below it still runs, which is exactly what
/// keeps the lowest-failing-chunk result identical to the run-everything
/// execution. Exceptions thrown by `fn` are caught and reported as
/// `Status::Internal`.
///
/// Interruption contract (`options.cancel` / `options.deadline`): checked
/// once per chunk; on interruption, unstarted chunks are skipped (already
/// running chunks finish their current work). A chunk error, if any chunk
/// produced one, takes precedence over the interruption status in the
/// return value.
Status ParallelFor(size_t begin, size_t end,
                   const std::function<Status(size_t)>& fn,
                   const ParallelOptions& options = {});

/// Maps [0, n) through `fn` (returning Result<T>) into a pre-sized vector so
/// out[i] only ever depends on i: output order — and content, for a
/// deterministic fn — is identical no matter the thread count.
template <typename T, typename Fn>
Result<std::vector<T>> ParallelMap(size_t n, Fn&& fn,
                                   const ParallelOptions& options = {}) {
  std::vector<T> out(n);
  LAKEKIT_RETURN_IF_ERROR(ParallelFor(
      0, n,
      [&](size_t i) -> Status {
        LAKEKIT_ASSIGN_OR_RETURN(out[i], fn(i));
        return Status::OK();
      },
      options));
  return out;
}

}  // namespace lakekit

#endif  // LAKEKIT_COMMON_THREAD_POOL_H_
