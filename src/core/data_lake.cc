#include "core/data_lake.h"

#include "ingest/format_detect.h"
#include "json/parser.h"
#include "json/writer.h"

namespace lakekit::core {

using storage::DataFormat;
using storage::StoreKind;

Result<DataLake> DataLake::Open(const std::string& root_dir) {
  DataLake lake;
  LAKEKIT_ASSIGN_OR_RETURN(storage::Polystore polystore,
                           storage::Polystore::Open(root_dir + "/objects"));
  lake.polystore_ =
      std::make_unique<storage::Polystore>(std::move(polystore));
  LAKEKIT_ASSIGN_OR_RETURN(catalog::Catalog catalog,
                           catalog::Catalog::Open(root_dir + "/catalog"));
  lake.catalog_ = std::make_unique<catalog::Catalog>(std::move(catalog));
  lake.federation_ =
      std::make_unique<query::FederatedEngine>(lake.polystore_.get());
  return lake;
}

Result<catalog::DatasetEntry> DataLake::CatalogDataset(
    std::string_view name, const ingest::FileProfile& profile,
    const IngestOptions& options) {
  catalog::DatasetEntry entry;
  entry.name = std::string(name);
  entry.path = profile.path;
  entry.format = std::string(storage::DataFormatName(profile.format));
  entry.size_bytes = profile.size_bytes;
  entry.num_records = profile.num_records;
  // Schema signature from column profiles.
  std::string schema;
  for (const ingest::ColumnProfile& c : profile.columns) {
    if (!schema.empty()) schema += ",";
    schema += c.name + ":" + std::string(table::DataTypeName(c.type));
  }
  entry.schema = schema;
  // Content metadata: keywords + per-column stats.
  json::Object content;
  json::Array keywords;
  for (const std::string& kw : profile.keywords) keywords.emplace_back(kw);
  content.Set("keywords", json::Value(std::move(keywords)));
  json::Array columns;
  for (const ingest::ColumnProfile& c : profile.columns) {
    json::Object col;
    col.Set("name", json::Value(c.name));
    col.Set("distinct", json::Value(static_cast<int64_t>(c.distinct_count)));
    col.Set("nulls", json::Value(static_cast<int64_t>(c.null_count)));
    col.Set("candidate_key", json::Value(c.is_candidate_key));
    columns.emplace_back(std::move(col));
  }
  content.Set("columns", json::Value(std::move(columns)));
  entry.content = json::Value(std::move(content));
  entry.description = options.description;
  entry.tags = options.tags;
  entry.owner = options.owner;
  entry.project = options.project;
  LAKEKIT_RETURN_IF_ERROR(catalog_->Register(entry));
  LAKEKIT_RETURN_IF_ERROR(provenance_.RecordDerivation(
      "ingest", /*inputs=*/{}, /*outputs=*/{std::string(name)},
      options.owner.empty() ? std::optional<std::string>{}
                            : std::optional<std::string>(options.owner)));
  return catalog_->Get(name);
}

Result<catalog::DatasetEntry> DataLake::IngestFile(
    std::string_view name, std::string_view filename,
    std::string_view content, const IngestOptions& options) {
  const std::string path = "landing/" + std::string(name) + "/" +
                           std::string(filename);
  LAKEKIT_ASSIGN_OR_RETURN(ingest::FileProfile profile,
                           ingest::Profiler::ProfileFile(filename, path,
                                                         content));
  // Route per format.
  switch (storage::Polystore::RouteFormat(profile.format)) {
    case StoreKind::kRelational: {
      LAKEKIT_ASSIGN_OR_RETURN(
          table::Table t, table::Table::FromCsv(std::string(name), content));
      LAKEKIT_RETURN_IF_ERROR(polystore_->StoreTable(name, std::move(t)));
      break;
    }
    case StoreKind::kDocument: {
      // Array document, single object, or NDJSON.
      std::vector<json::Value> docs;
      Result<json::Value> whole = json::Parse(content);
      if (whole.ok() && whole->is_array()) {
        for (json::Value& d : whole->as_array()) docs.push_back(std::move(d));
      } else if (whole.ok() && whole->is_object()) {
        docs.push_back(std::move(whole).value());
      } else {
        LAKEKIT_ASSIGN_OR_RETURN(docs, json::ParseLines(content));
      }
      LAKEKIT_RETURN_IF_ERROR(polystore_->StoreDocuments(name, std::move(docs)));
      break;
    }
    case StoreKind::kGraph:
    case StoreKind::kObject:
      LAKEKIT_RETURN_IF_ERROR(polystore_->StoreObject(name, path, content));
      break;
  }
  return CatalogDataset(name, profile, options);
}

Result<catalog::DatasetEntry> DataLake::IngestTable(
    table::Table t, const IngestOptions& options) {
  ingest::FileProfile profile;
  profile.name = t.name();
  profile.path = "memory/" + t.name();
  profile.format = DataFormat::kCsv;
  profile.num_records = t.num_rows();
  profile.size_bytes = 0;
  profile.columns = ingest::Profiler::ProfileTable(t);
  std::string name = t.name();
  LAKEKIT_RETURN_IF_ERROR(polystore_->StoreTable(name, std::move(t)));
  return CatalogDataset(name, profile, options);
}

Status DataLake::BuildDiscoveryIndexes() {
  corpus_ = std::make_unique<discovery::Corpus>();
  for (const std::string& name : polystore_->DatasetNames()) {
    Result<table::Table> t = polystore_->ReadAsTable(name);
    if (!t.ok()) continue;  // graph/binary datasets have no tabular view
    t->set_name(name);
    LAKEKIT_RETURN_IF_ERROR(corpus_->AddTable(std::move(*t)).status());
  }
  aurum_ = std::make_unique<discovery::AurumFinder>(corpus_.get());
  LAKEKIT_RETURN_IF_ERROR(aurum_->Build());
  josie_ = std::make_unique<discovery::JosieFinder>(corpus_.get());
  josie_->Build();
  union_search_ = std::make_unique<discovery::UnionSearch>(corpus_.get());
  return Status::OK();
}

Result<std::vector<discovery::TableMatch>> DataLake::FindJoinableTables(
    std::string_view dataset, size_t k) const {
  if (!aurum_ || !aurum_->built()) {
    return Status::FailedPrecondition(
        "call BuildDiscoveryIndexes() before discovery queries");
  }
  LAKEKIT_ASSIGN_OR_RETURN(size_t table_idx, corpus_->TableIndex(dataset));
  return aurum_->TopKJoinableTables(table_idx, k);
}

Result<std::vector<discovery::ColumnMatch>> DataLake::FindJoinableColumns(
    std::string_view dataset, std::string_view column, size_t k) const {
  if (!josie_ || !josie_->built()) {
    return Status::FailedPrecondition(
        "call BuildDiscoveryIndexes() before discovery queries");
  }
  LAKEKIT_ASSIGN_OR_RETURN(discovery::ColumnId id,
                           corpus_->FindColumn(dataset, column));
  return josie_->TopKOverlapColumns(id, k);
}

Result<std::vector<discovery::UnionMatch>> DataLake::FindUnionableTables(
    std::string_view dataset, size_t k) const {
  if (!union_search_) {
    return Status::FailedPrecondition(
        "call BuildDiscoveryIndexes() before discovery queries");
  }
  LAKEKIT_ASSIGN_OR_RETURN(size_t table_idx, corpus_->TableIndex(dataset));
  return union_search_->TopKUnionableTables(table_idx, k);
}

Result<table::Table> DataLake::IntegrateDatasets(
    const std::vector<std::string>& datasets) {
  std::vector<table::Table> sources;
  for (const std::string& name : datasets) {
    LAKEKIT_ASSIGN_OR_RETURN(table::Table t, polystore_->ReadAsTable(name));
    t.set_name(name);
    sources.push_back(std::move(t));
  }
  LAKEKIT_ASSIGN_OR_RETURN(table::Table integrated,
                           integrate::IntegrateTables(sources));
  LAKEKIT_RETURN_IF_ERROR(provenance_.RecordDerivation(
      "integrate", datasets, {integrated.name()}));
  return integrated;
}

Result<std::vector<enrich::RelaxedFd>> DataLake::DiscoverDependencies(
    std::string_view dataset) const {
  LAKEKIT_ASSIGN_OR_RETURN(table::Table t, polystore_->ReadAsTable(dataset));
  return enrich::DiscoverRelaxedFds(t);
}

Result<std::vector<quality::DirtyTuple>> DataLake::FindDirtyTuples(
    std::string_view dataset) const {
  LAKEKIT_ASSIGN_OR_RETURN(table::Table t, polystore_->ReadAsTable(dataset));
  return quality::ConstraintChecker::InferAndRank(t);
}

Result<table::Table> DataLake::Query(std::string_view sql) {
  return federation_->Query(sql);
}

std::vector<catalog::DatasetEntry> DataLake::Search(
    std::string_view keyword) const {
  return catalog_->Search(keyword);
}

}  // namespace lakekit::core
