#ifndef LAKEKIT_CORE_DATA_LAKE_H_
#define LAKEKIT_CORE_DATA_LAKE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "discovery/aurum.h"
#include "discovery/corpus.h"
#include "discovery/josie.h"
#include "discovery/union_search.h"
#include "enrich/rfd.h"
#include "ingest/profiler.h"
#include "integrate/full_disjunction.h"
#include "provenance/provenance.h"
#include "quality/denial_constraints.h"
#include "query/federation.h"
#include "storage/polystore.h"

namespace lakekit::core {

/// Options for one ingestion.
struct IngestOptions {
  std::string owner;
  std::string project;
  std::string description;
  std::vector<std::string> tags;
};

/// The lakekit facade: the survey's three-tier architecture (Fig. 2) in one
/// object.
///
/// *Ingestion tier*: `IngestFile`/`IngestTable` detect the format, route the
/// payload into the polystore, extract structural metadata and content
/// profiles (GEMMS/Skluma), and register a GOODS-style catalog entry.
///
/// *Maintenance tier*: `BuildDiscoveryIndexes` sketches every tabular
/// dataset into a shared corpus and builds the Aurum EKG and JOSIE inverted
/// index; `FindJoinableTables`/`FindUnionableTables`, `IntegrateDatasets`,
/// `DiscoverDependencies`, `FindDirtyTuples` and the provenance graph cover
/// the seven maintenance functions.
///
/// *Exploration tier*: `Query` runs federated SQL with predicate pushdown;
/// `Search` is catalog keyword search.
class DataLake {
 public:
  /// Opens (or creates) a lake rooted at `root_dir`.
  static Result<DataLake> Open(const std::string& root_dir);

  DataLake(DataLake&&) = default;

  // ------------------------------------------------------------ ingestion

  /// Ingests a raw payload under dataset `name`. Format is detected from
  /// the filename + content; the payload is routed per the polystore rules;
  /// metadata is extracted and cataloged. Returns the catalog entry.
  Result<catalog::DatasetEntry> IngestFile(std::string_view name,
                                           std::string_view filename,
                                           std::string_view content,
                                           const IngestOptions& options = {});

  /// Ingests an in-memory table directly into the relational store.
  Result<catalog::DatasetEntry> IngestTable(table::Table t,
                                            const IngestOptions& options = {});

  // ---------------------------------------------------------- maintenance

  /// (Re)builds the discovery corpus and indexes over every dataset that
  /// has a tabular view. Call after a batch of ingestions.
  Status BuildDiscoveryIndexes();

  /// Top-k joinable tables for `dataset` (Aurum EKG path).
  Result<std::vector<discovery::TableMatch>> FindJoinableTables(
      std::string_view dataset, size_t k) const;

  /// Exact top-k overlap columns for one column (JOSIE path).
  Result<std::vector<discovery::ColumnMatch>> FindJoinableColumns(
      std::string_view dataset, std::string_view column, size_t k) const;

  /// Top-k unionable tables.
  Result<std::vector<discovery::UnionMatch>> FindUnionableTables(
      std::string_view dataset, size_t k) const;

  /// Integrates datasets (schema matching + full disjunction) into one
  /// table; records provenance.
  Result<table::Table> IntegrateDatasets(
      const std::vector<std::string>& datasets);

  /// Relaxed FDs of one dataset (metadata enrichment).
  Result<std::vector<enrich::RelaxedFd>> DiscoverDependencies(
      std::string_view dataset) const;

  /// CLAMS-style dirty-tuple ranking of one dataset (data cleaning).
  Result<std::vector<quality::DirtyTuple>> FindDirtyTuples(
      std::string_view dataset) const;

  provenance::ProvenanceGraph& provenance() { return provenance_; }
  catalog::Catalog& catalog() { return *catalog_; }
  const catalog::Catalog& catalog() const { return *catalog_; }
  storage::Polystore& polystore() { return *polystore_; }
  const discovery::Corpus* corpus() const { return corpus_.get(); }

  // ---------------------------------------------------------- exploration

  /// Federated SQL over registered datasets, with predicate pushdown.
  Result<table::Table> Query(std::string_view sql);

  /// Catalog keyword search.
  std::vector<catalog::DatasetEntry> Search(std::string_view keyword) const;

  size_t num_datasets() const { return catalog_->ListDatasets().size(); }

 private:
  DataLake() = default;

  Result<catalog::DatasetEntry> CatalogDataset(
      std::string_view name, const ingest::FileProfile& profile,
      const IngestOptions& options);

  std::unique_ptr<storage::Polystore> polystore_;
  std::unique_ptr<catalog::Catalog> catalog_;
  std::unique_ptr<discovery::Corpus> corpus_;
  std::unique_ptr<discovery::AurumFinder> aurum_;
  std::unique_ptr<discovery::JosieFinder> josie_;
  std::unique_ptr<discovery::UnionSearch> union_search_;
  std::unique_ptr<query::FederatedEngine> federation_;
  provenance::ProvenanceGraph provenance_;
};

}  // namespace lakekit::core

#endif  // LAKEKIT_CORE_DATA_LAKE_H_
