#include "csv/csv.h"

#include <string>

namespace lakekit::csv {

namespace {

/// Splits raw CSV text into records of fields, honoring quoting.
Result<std::vector<std::vector<std::string>>> Tokenize(std::string_view text,
                                                       char delim) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> current;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  size_t i = 0;

  auto end_field = [&] {
    current.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&] {
    end_field();
    records.push_back(std::move(current));
    current.clear();
  };

  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field.push_back(c);
        ++i;
      }
      continue;
    }
    if (c == '"' && field.empty() && !field_started) {
      in_quotes = true;
      field_started = true;
      ++i;
    } else if (c == delim) {
      end_field();
      ++i;
    } else if (c == '\r') {
      ++i;  // Tolerate CRLF.
    } else if (c == '\n') {
      end_record();
      ++i;
    } else {
      field.push_back(c);
      field_started = true;
      ++i;
    }
  }
  if (in_quotes) {
    return Status::Corruption("CSV: unterminated quoted field");
  }
  // Flush a final record without trailing newline.
  if (field_started || !field.empty() || !current.empty()) {
    end_record();
  }
  return records;
}

}  // namespace

Result<CsvData> Parse(std::string_view text, const ParseOptions& options) {
  LAKEKIT_ASSIGN_OR_RETURN(auto records, Tokenize(text, options.delimiter));
  CsvData out;
  if (records.empty()) {
    if (options.has_header) {
      return Status::Corruption("CSV: empty input but header expected");
    }
    return out;
  }
  size_t start = 0;
  if (options.has_header) {
    out.header = std::move(records[0]);
    start = 1;
  } else {
    out.header.reserve(records[0].size());
    for (size_t c = 0; c < records[0].size(); ++c) {
      out.header.push_back("col" + std::to_string(c));
    }
  }
  for (size_t r = start; r < records.size(); ++r) {
    if (records[r].size() != out.header.size()) {
      return Status::Corruption(
          "CSV: record " + std::to_string(r) + " has " +
          std::to_string(records[r].size()) + " fields, expected " +
          std::to_string(out.header.size()));
    }
    out.records.push_back(std::move(records[r]));
  }
  return out;
}

std::string QuoteField(std::string_view field, char delimiter) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string Write(const CsvData& data, char delimiter) {
  std::string out;
  auto write_record = [&](const std::vector<std::string>& rec) {
    for (size_t i = 0; i < rec.size(); ++i) {
      if (i > 0) out.push_back(delimiter);
      out += QuoteField(rec[i], delimiter);
    }
    out.push_back('\n');
  };
  write_record(data.header);
  for (const auto& rec : data.records) write_record(rec);
  return out;
}

}  // namespace lakekit::csv
