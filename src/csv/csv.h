#ifndef LAKEKIT_CSV_CSV_H_
#define LAKEKIT_CSV_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace lakekit::csv {

/// Options for parsing CSV text.
struct ParseOptions {
  char delimiter = ',';
  /// When true the first record is treated as the header row.
  bool has_header = true;
};

/// A parsed CSV file: a header (possibly synthesized as col0..colN when the
/// file has none) and string-valued records.
struct CsvData {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> records;
};

/// Parses RFC-4180-style CSV: quoted fields may contain delimiters, newlines
/// and doubled quotes. Records with a field count different from the header
/// are an error (ragged files are how data swamps start).
Result<CsvData> Parse(std::string_view text, const ParseOptions& options = {});

/// Serializes records to CSV, quoting fields that require it.
std::string Write(const CsvData& data, char delimiter = ',');

/// Quotes a single field if it contains the delimiter, quotes or newlines.
std::string QuoteField(std::string_view field, char delimiter = ',');

}  // namespace lakekit::csv

#endif  // LAKEKIT_CSV_CSV_H_
