#include "discovery/aurum.h"

#include <algorithm>
#include <unordered_map>

namespace lakekit::discovery {

using metamodel::Ekg;
using metamodel::Relation;

AurumFinder::AurumFinder(const Corpus* corpus, AurumOptions options)
    : corpus_(corpus), options_(options) {}

Status AurumFinder::Build(ThreadPool* pool) {
  if (options_.lsh_bands * options_.lsh_rows !=
      corpus_->options().minhash_size) {
    return Status::InvalidArgument(
        "lsh_bands * lsh_rows must equal the corpus MinHash size");
  }
  lsh_ = std::make_unique<text::LshIndex>(options_.lsh_bands,
                                          options_.lsh_rows);
  const auto& sketches = corpus_->sketches();
  ParallelOptions par;
  par.pool = pool;

  // EKG nodes + table hyperedges.
  ekg_node_of_.clear();
  ekg_node_of_.reserve(sketches.size());
  std::unordered_map<uint32_t, std::vector<Ekg::NodeId>> table_nodes;
  std::unordered_map<uint64_t, size_t> sketch_of_packed;
  sketch_of_packed.reserve(sketches.size());
  for (size_t i = 0; i < sketches.size(); ++i) {
    const ColumnSketch& s = sketches[i];
    Ekg::NodeId node = ekg_.AddNode(s.table_name, s.column_name);
    ekg_node_of_.push_back(node);
    table_nodes[s.id.table_idx].push_back(node);
    sketch_of_packed[s.id.Packed()] = i;
  }
  for (auto& [table_idx, nodes] : table_nodes) {
    ekg_.AddHyperedge("table:" + corpus_->table(table_idx).name(),
                      std::move(nodes));
  }

  // Serial LSH insertion (the index is cheap to build and not thread-safe
  // to mutate), then parallel per-column candidate verification. Each column
  // only verifies candidates with a smaller packed id — the same
  // examine-each-pair-once set the old query-before-insert loop produced —
  // and writes its verified edges to its own slot; the EKG merge below runs
  // serially in ascending column order so the graph is deterministic.
  for (const ColumnSketch& s : sketches) {
    lsh_->Insert(s.id.Packed(), s.minhash);
  }
  struct VerifiedEdge {
    size_t other;  // sketch index
    double weight;
  };
  std::vector<std::vector<VerifiedEdge>> content_edges(sketches.size());
  LAKEKIT_RETURN_IF_ERROR(ParallelFor(
      0, sketches.size(),
      [&](size_t i) -> Status {
        const ColumnSketch& s = sketches[i];
        std::vector<uint64_t> candidates = lsh_->Query(s.minhash);
        std::sort(candidates.begin(), candidates.end());
        for (uint64_t packed : candidates) {
          if (packed >= s.id.Packed()) break;
          ColumnId other_id = ColumnId::FromPacked(packed);
          if (other_id.table_idx == s.id.table_idx) continue;
          const ColumnSketch& other = corpus_->sketch(other_id);
          double estimate = s.minhash.EstimateJaccard(other.minhash);
          if (estimate >= options_.content_edge_threshold) {
            content_edges[i].push_back(
                VerifiedEdge{sketch_of_packed.at(packed), estimate});
          }
        }
        return Status::OK();
      },
      par));
  for (size_t i = 0; i < sketches.size(); ++i) {
    for (const VerifiedEdge& e : content_edges[i]) {
      LAKEKIT_RETURN_IF_ERROR(ekg_.AddEdge(ekg_node_of_[i],
                                           ekg_node_of_[e.other],
                                           Relation::kContentSimilar,
                                           e.weight));
    }
  }

  // Schema edges: TF-IDF cosine over attribute-name tokens. Vectorization
  // and the all-pairs cosine sweep are read-only per row i, so both fan out;
  // row i records its j > i matches in ascending j order and the serial
  // merge preserves the old loop's edge order.
  text::TfIdfVectorizer vectorizer;
  for (const ColumnSketch& s : sketches) {
    vectorizer.AddDocument(s.name_tokens);
  }
  std::vector<text::SparseVector> name_vectors(sketches.size());
  LAKEKIT_RETURN_IF_ERROR(ParallelFor(
      0, sketches.size(),
      [&](size_t i) -> Status {
        name_vectors[i] = vectorizer.Vectorize(i);
        return Status::OK();
      },
      par));
  std::vector<std::vector<VerifiedEdge>> schema_edges(sketches.size());
  LAKEKIT_RETURN_IF_ERROR(ParallelFor(
      0, sketches.size(),
      [&](size_t i) -> Status {
        for (size_t j = i + 1; j < sketches.size(); ++j) {
          if (sketches[i].id.table_idx == sketches[j].id.table_idx) continue;
          double cos =
              text::CosineSimilarity(name_vectors[i], name_vectors[j]);
          if (cos >= options_.schema_edge_threshold) {
            schema_edges[i].push_back(VerifiedEdge{j, cos});
          }
        }
        return Status::OK();
      },
      par));
  for (size_t i = 0; i < sketches.size(); ++i) {
    for (const VerifiedEdge& e : schema_edges[i]) {
      LAKEKIT_RETURN_IF_ERROR(ekg_.AddEdge(ekg_node_of_[i],
                                           ekg_node_of_[e.other],
                                           Relation::kSchemaSimilar,
                                           e.weight));
    }
  }

  // PK-FK inference: approximate keys (high uniqueness) attract columns
  // highly contained in them. Containment verification against the LSH
  // candidates is the hot part; it fans out per PK candidate with the same
  // slot-then-serial-merge scheme.
  pkfk_pairs_.clear();
  std::vector<std::vector<VerifiedEdge>> pkfk_edges(sketches.size());
  LAKEKIT_RETURN_IF_ERROR(ParallelFor(
      0, sketches.size(),
      [&](size_t i) -> Status {
        const ColumnSketch& pk = sketches[i];
        if (pk.profile.uniqueness() < options_.pkfk_uniqueness_threshold ||
            pk.value_set.empty()) {
          return Status::OK();
        }
        // Only check LSH/content candidates plus exact containment verify.
        for (uint64_t packed : lsh_->Query(pk.minhash)) {
          ColumnId fk_id = ColumnId::FromPacked(packed);
          if (fk_id == pk.id || fk_id.table_idx == pk.id.table_idx) continue;
          const ColumnSketch& fk = corpus_->sketch(fk_id);
          double containment = ExactContainment(fk, pk);
          if (containment >= options_.pkfk_containment_threshold) {
            pkfk_edges[i].push_back(
                VerifiedEdge{sketch_of_packed.at(packed), containment});
          }
        }
        return Status::OK();
      },
      par));
  for (size_t i = 0; i < sketches.size(); ++i) {
    for (const VerifiedEdge& e : pkfk_edges[i]) {
      pkfk_pairs_.emplace_back(sketches[e.other].id, sketches[i].id);
      LAKEKIT_RETURN_IF_ERROR(ekg_.AddEdge(ekg_node_of_[e.other],
                                           ekg_node_of_[i], Relation::kPkFk,
                                           e.weight));
    }
  }
  built_ = true;
  return Status::OK();
}

namespace {

/// Translates EKG neighbor lists back to corpus ColumnMatches.
std::vector<ColumnMatch> ToMatches(
    const Corpus& corpus, const Ekg& ekg,
    const std::vector<std::pair<Ekg::NodeId, double>>& neighbors) {
  std::vector<ColumnMatch> out;
  out.reserve(neighbors.size());
  for (const auto& [node, weight] : neighbors) {
    Result<Ekg::Node> n = ekg.GetNode(node);
    if (!n.ok()) continue;
    Result<ColumnId> id = corpus.FindColumn(n->table, n->column);
    if (!id.ok()) continue;
    out.push_back(ColumnMatch{*id, weight});
  }
  return out;
}

}  // namespace

std::vector<ColumnMatch> AurumFinder::TopKJoinableColumns(ColumnId query,
                                                          size_t k) const {
  const ColumnSketch& q = corpus_->sketch(query);
  auto node = ekg_.FindNode(q.table_name, q.column_name);
  if (!node) return {};
  std::vector<ColumnMatch> matches = ToMatches(
      *corpus_, ekg_, ekg_.Neighbors(*node, Relation::kContentSimilar));
  SortAndTruncate(&matches, k);
  return matches;
}

std::vector<TableMatch> AurumFinder::TopKJoinableTables(size_t table_idx,
                                                        size_t k) const {
  std::vector<ColumnMatch> all;
  for (const ColumnSketch* s : corpus_->TableSketches(table_idx)) {
    for (const ColumnMatch& m :
         TopKJoinableColumns(s->id, corpus_->num_columns())) {
      all.push_back(m);
    }
  }
  return AggregateToTables(*corpus_, all, k);
}

std::vector<ColumnMatch> AurumFinder::SchemaSimilarColumns(ColumnId query,
                                                           size_t k) const {
  const ColumnSketch& q = corpus_->sketch(query);
  auto node = ekg_.FindNode(q.table_name, q.column_name);
  if (!node) return {};
  std::vector<ColumnMatch> matches = ToMatches(
      *corpus_, ekg_, ekg_.Neighbors(*node, Relation::kSchemaSimilar));
  SortAndTruncate(&matches, k);
  return matches;
}

std::vector<ColumnId> AurumFinder::DiscoveryPath(ColumnId from, ColumnId to,
                                                 size_t max_hops) const {
  const ColumnSketch& f = corpus_->sketch(from);
  const ColumnSketch& t = corpus_->sketch(to);
  auto from_node = ekg_.FindNode(f.table_name, f.column_name);
  auto to_node = ekg_.FindNode(t.table_name, t.column_name);
  if (!from_node || !to_node) return {};
  std::vector<ColumnId> out;
  for (Ekg::NodeId node :
       ekg_.FindPath(*from_node, *to_node, Relation::kContentSimilar,
                     max_hops)) {
    Result<Ekg::Node> n = ekg_.GetNode(node);
    if (!n.ok()) continue;
    Result<ColumnId> id = corpus_->FindColumn(n->table, n->column);
    if (id.ok()) out.push_back(*id);
  }
  return out;
}

}  // namespace lakekit::discovery
