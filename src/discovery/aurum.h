#ifndef LAKEKIT_DISCOVERY_AURUM_H_
#define LAKEKIT_DISCOVERY_AURUM_H_

#include <memory>
#include <vector>

#include "discovery/common.h"
#include "metamodel/ekg.h"
#include "text/lsh.h"
#include "text/tfidf.h"

namespace lakekit::discovery {

/// Tuning for the Aurum pipeline.
struct AurumOptions {
  /// LSH banding over the corpus MinHash signatures; bands*rows must equal
  /// the corpus minhash size.
  size_t lsh_bands = 32;
  size_t lsh_rows = 4;
  /// Minimum estimated Jaccard for a content-similarity EKG edge.
  double content_edge_threshold = 0.3;
  /// Minimum attribute-name TF-IDF cosine for a schema-similarity edge.
  double schema_edge_threshold = 0.6;
  /// PK-FK inference: FK column must be contained in the PK candidate at
  /// least this much.
  double pkfk_containment_threshold = 0.8;
  /// PK side must have uniqueness at least this high.
  double pkfk_uniqueness_threshold = 0.95;
};

/// Aurum (survey Sec. 6.2.1, Table 3): profiles every column into MinHash
/// signatures, indexes them in a banding LSH, and materializes an Enterprise
/// Knowledge Graph whose weighted edges record content similarity
/// (Jaccard via MinHash), schema similarity (TF-IDF cosine over attribute
/// names), and inferred PK-FK relationships. Queries — joinable columns,
/// related tables, discovery paths — run against the EKG, turning the
/// O(n²) all-pairs comparison into LSH-candidate verification.
class AurumFinder {
 public:
  AurumFinder(const Corpus* corpus, AurumOptions options = {});

  /// Builds the LSH index and the EKG. Call once after the corpus is loaded.
  ///
  /// LSH insertion and EKG mutation stay serial; the expensive per-column
  /// candidate verification (content edges, schema-edge cosines, PK-FK
  /// containment checks) fans out over `pool` (nullptr ->
  /// ThreadPool::Default(); size-1 pool = serial opt-out), with results
  /// merged in deterministic column order.
  Status Build(ThreadPool* pool = nullptr);

  /// Top-k joinable columns for `query` via EKG content edges.
  std::vector<ColumnMatch> TopKJoinableColumns(ColumnId query,
                                               size_t k) const;

  /// Top-k related tables for a whole query table (best column edge per
  /// candidate table).
  std::vector<TableMatch> TopKJoinableTables(size_t table_idx, size_t k) const;

  /// Columns schema-similar to `query` (attribute-name signal).
  std::vector<ColumnMatch> SchemaSimilarColumns(ColumnId query,
                                                size_t k) const;

  /// Inferred PK-FK pairs (fk column, pk column).
  const std::vector<std::pair<ColumnId, ColumnId>>& PkFkPairs() const {
    return pkfk_pairs_;
  }

  /// A discovery path between two columns following content-similarity
  /// edges, as the EKG primitive Aurum exposes.
  std::vector<ColumnId> DiscoveryPath(ColumnId from, ColumnId to,
                                      size_t max_hops = 6) const;

  const metamodel::Ekg& ekg() const { return ekg_; }
  bool built() const { return built_; }

 private:
  const Corpus* corpus_;
  AurumOptions options_;
  std::unique_ptr<text::LshIndex> lsh_;
  metamodel::Ekg ekg_;
  std::vector<metamodel::Ekg::NodeId> ekg_node_of_;  // by sketch index order
  std::vector<std::pair<ColumnId, ColumnId>> pkfk_pairs_;
  bool built_ = false;
};

}  // namespace lakekit::discovery

#endif  // LAKEKIT_DISCOVERY_AURUM_H_
