#include "discovery/brute_force.h"

namespace lakekit::discovery {

std::vector<ColumnMatch> BruteForceFinder::TopKJoinableColumns(
    ColumnId query, size_t k) const {
  const ColumnSketch& q = corpus_->sketch(query);
  std::vector<ColumnMatch> matches;
  for (const ColumnSketch& s : corpus_->sketches()) {
    if (s.id.table_idx == query.table_idx) continue;
    double j = ExactJaccard(q, s);
    if (j > 0) matches.push_back(ColumnMatch{s.id, j});
  }
  SortAndTruncate(&matches, k);
  return matches;
}

std::vector<ColumnMatch> BruteForceFinder::TopKOverlapColumns(
    ColumnId query, size_t k) const {
  const ColumnSketch& q = corpus_->sketch(query);
  std::vector<ColumnMatch> matches;
  for (const ColumnSketch& s : corpus_->sketches()) {
    if (s.id.table_idx == query.table_idx) continue;
    size_t overlap = ExactOverlap(q, s);
    if (overlap > 0) {
      matches.push_back(ColumnMatch{s.id, static_cast<double>(overlap)});
    }
  }
  SortAndTruncate(&matches, k);
  return matches;
}

std::vector<std::pair<ColumnId, ColumnId>> BruteForceFinder::AllJoinablePairs(
    double jaccard_threshold) const {
  std::vector<std::pair<ColumnId, ColumnId>> out;
  const auto& sketches = corpus_->sketches();
  for (size_t i = 0; i < sketches.size(); ++i) {
    for (size_t j = i + 1; j < sketches.size(); ++j) {
      if (sketches[i].id.table_idx == sketches[j].id.table_idx) continue;
      if (ExactJaccard(sketches[i], sketches[j]) >= jaccard_threshold) {
        out.emplace_back(sketches[i].id, sketches[j].id);
      }
    }
  }
  return out;
}

}  // namespace lakekit::discovery
