#include "discovery/brute_force.h"

namespace lakekit::discovery {

std::vector<ColumnMatch> BruteForceFinder::TopKJoinableColumns(
    ColumnId query, size_t k) const {
  const ColumnSketch& q = corpus_->sketch(query);
  std::vector<ColumnMatch> matches;
  for (const ColumnSketch& s : corpus_->sketches()) {
    if (s.id.table_idx == query.table_idx) continue;
    double j = ExactJaccard(q, s);
    if (j > 0) matches.push_back(ColumnMatch{s.id, j});
  }
  SortAndTruncate(&matches, k);
  return matches;
}

std::vector<ColumnMatch> BruteForceFinder::TopKOverlapColumns(
    ColumnId query, size_t k) const {
  const ColumnSketch& q = corpus_->sketch(query);
  std::vector<ColumnMatch> matches;
  for (const ColumnSketch& s : corpus_->sketches()) {
    if (s.id.table_idx == query.table_idx) continue;
    size_t overlap = ExactOverlap(q, s);
    if (overlap > 0) {
      matches.push_back(ColumnMatch{s.id, static_cast<double>(overlap)});
    }
  }
  SortAndTruncate(&matches, k);
  return matches;
}

std::vector<std::pair<ColumnId, ColumnId>> BruteForceFinder::AllJoinablePairs(
    double jaccard_threshold, ThreadPool* pool) const {
  const auto& sketches = corpus_->sketches();
  // Shard the all-pairs sweep by left column: row i owns pairs (i, j > i),
  // written to slot i, so the serial concatenation below reproduces the
  // i-outer / j-inner order of the single-threaded loop exactly.
  std::vector<std::vector<std::pair<ColumnId, ColumnId>>> rows(
      sketches.size());
  ParallelOptions par;
  par.pool = pool;
  // The per-row lambda is infallible, so a failure here can only be a bug.
  LAKEKIT_CHECK_OK(ParallelFor(
      0, sketches.size(),
      [&](size_t i) -> Status {
        for (size_t j = i + 1; j < sketches.size(); ++j) {
          if (sketches[i].id.table_idx == sketches[j].id.table_idx) continue;
          if (ExactJaccard(sketches[i], sketches[j]) >= jaccard_threshold) {
            rows[i].emplace_back(sketches[i].id, sketches[j].id);
          }
        }
        return Status::OK();
      },
      par));
  std::vector<std::pair<ColumnId, ColumnId>> out;
  for (std::vector<std::pair<ColumnId, ColumnId>>& row : rows) {
    out.insert(out.end(), row.begin(), row.end());
  }
  return out;
}

}  // namespace lakekit::discovery
