#ifndef LAKEKIT_DISCOVERY_BRUTE_FORCE_H_
#define LAKEKIT_DISCOVERY_BRUTE_FORCE_H_

#include <vector>

#include "discovery/common.h"

namespace lakekit::discovery {

/// The O(n²) baseline the survey's discovery systems improve on
/// (Sec. 6.2.1): exact all-pairs value-overlap comparison with no index.
/// Ground truth for precision/recall of the approximate methods, and the
/// "loser" side of the Table 3 crossover benchmark.
class BruteForceFinder {
 public:
  explicit BruteForceFinder(const Corpus* corpus) : corpus_(corpus) {}

  /// Top-k columns (excluding same-table columns) by exact Jaccard
  /// similarity with `query`.
  std::vector<ColumnMatch> TopKJoinableColumns(ColumnId query, size_t k) const;

  /// Top-k columns by exact intersection size (JOSIE's measure, computed
  /// naively).
  std::vector<ColumnMatch> TopKOverlapColumns(ColumnId query, size_t k) const;

  /// All column pairs across different tables with exact Jaccard >=
  /// threshold — the full ground-truth relation. The O(n²) sweep is sharded
  /// by left column over `pool` (nullptr -> ThreadPool::Default(); size-1
  /// pool = serial opt-out); output order matches the serial i-outer /
  /// j-inner loop exactly.
  std::vector<std::pair<ColumnId, ColumnId>> AllJoinablePairs(
      double jaccard_threshold, ThreadPool* pool = nullptr) const;

 private:
  const Corpus* corpus_;
};

}  // namespace lakekit::discovery

#endif  // LAKEKIT_DISCOVERY_BRUTE_FORCE_H_
