#include "discovery/common.h"

#include <algorithm>
#include <map>

namespace lakekit::discovery {

void SortAndTruncate(std::vector<ColumnMatch>* matches, size_t k) {
  std::sort(matches->begin(), matches->end(),
            [](const ColumnMatch& a, const ColumnMatch& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.column.Packed() < b.column.Packed();
            });
  if (matches->size() > k) matches->resize(k);
}

std::vector<TableMatch> AggregateToTables(
    const Corpus& corpus, const std::vector<ColumnMatch>& matches, size_t k) {
  std::map<size_t, double> best;
  for (const ColumnMatch& m : matches) {
    auto [it, inserted] = best.try_emplace(m.column.table_idx, m.score);
    if (!inserted) it->second = std::max(it->second, m.score);
  }
  std::vector<TableMatch> out;
  out.reserve(best.size());
  for (const auto& [table_idx, score] : best) {
    out.push_back(
        TableMatch{table_idx, corpus.table(table_idx).name(), score});
  }
  std::sort(out.begin(), out.end(), [](const TableMatch& a, const TableMatch& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.table_idx < b.table_idx;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace lakekit::discovery
