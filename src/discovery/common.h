#ifndef LAKEKIT_DISCOVERY_COMMON_H_
#define LAKEKIT_DISCOVERY_COMMON_H_

#include <string>
#include <vector>

#include "discovery/corpus.h"

namespace lakekit::discovery {

/// One discovered related column with its relatedness score (higher is more
/// related; meaning is method-specific — overlap count, Jaccard estimate, or
/// negated distance).
struct ColumnMatch {
  ColumnId column;
  double score = 0;

  bool operator==(const ColumnMatch&) const = default;
};

/// One discovered related table with an aggregated score.
struct TableMatch {
  size_t table_idx = 0;
  std::string table_name;
  double score = 0;
};

/// Sorts matches by descending score (ties: ascending column id for
/// determinism) and truncates to k.
void SortAndTruncate(std::vector<ColumnMatch>* matches, size_t k);

/// Aggregates column matches to table matches: each candidate table scores
/// its best-matching column; sorted descending, truncated to k.
std::vector<TableMatch> AggregateToTables(
    const Corpus& corpus, const std::vector<ColumnMatch>& matches, size_t k);

}  // namespace lakekit::discovery

#endif  // LAKEKIT_DISCOVERY_COMMON_H_
