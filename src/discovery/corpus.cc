#include "discovery/corpus.h"

#include <algorithm>
#include <cctype>

#include "text/tokenize.h"

namespace lakekit::discovery {

size_t ExactOverlap(const ColumnSketch& a, const ColumnSketch& b) {
  const ColumnSketch& small = a.value_set.size() <= b.value_set.size() ? a : b;
  const ColumnSketch& large = a.value_set.size() <= b.value_set.size() ? b : a;
  size_t overlap = 0;
  for (const std::string& v : small.value_set) {
    if (large.value_set.count(v) > 0) ++overlap;
  }
  return overlap;
}

double ExactJaccard(const ColumnSketch& a, const ColumnSketch& b) {
  size_t inter = ExactOverlap(a, b);
  size_t uni = a.value_set.size() + b.value_set.size() - inter;
  return uni == 0 ? 0.0
                  : static_cast<double>(inter) / static_cast<double>(uni);
}

double ExactContainment(const ColumnSketch& a, const ColumnSketch& b) {
  if (a.value_set.empty()) return 0.0;
  return static_cast<double>(ExactOverlap(a, b)) /
         static_cast<double>(a.value_set.size());
}

std::string FormatPattern(std::string_view value) {
  std::string out;
  char last = 0;
  for (char raw : value) {
    unsigned char c = static_cast<unsigned char>(raw);
    char cls;
    if (std::isdigit(c)) {
      cls = 'd';
    } else if (std::isalpha(c)) {
      cls = 'a';
    } else {
      cls = raw;
    }
    // Collapse runs of the same class (only for d/a classes).
    if ((cls == 'd' || cls == 'a') && cls == last) continue;
    out.push_back(cls);
    last = cls;
  }
  return out;
}

Corpus::Corpus(CorpusOptions options)
    : options_(options),
      minhasher_(options.minhash_size),
      embedder_(options.embedding_dim) {}

void Corpus::RegisterSemanticDomain(const std::string& domain,
                                    const std::vector<std::string>& tokens) {
  embedder_.RegisterDomain(domain, tokens);
}

Result<size_t> Corpus::AddTable(table::Table t) {
  if (table_index_.find(t.name()) != table_index_.end()) {
    return Status::AlreadyExists("table '" + t.name() +
                                 "' already in corpus");
  }
  size_t table_idx = tables_.size();
  table_index_[t.name()] = table_idx;
  tables_.push_back(std::move(t));
  const table::Table& stored = tables_.back();
  size_t first_sketch = sketches_.size();
  for (size_t c = 0; c < stored.num_columns(); ++c) {
    ColumnId id{static_cast<uint32_t>(table_idx), static_cast<uint32_t>(c)};
    sketch_index_[id.Packed()] = sketches_.size();
    sketches_.push_back(BuildSketch(id, stored, c));
  }
  sketch_range_.emplace_back(first_sketch, sketches_.size());
  return table_idx;
}

Result<std::vector<size_t>> Corpus::AddTables(std::vector<table::Table> tables,
                                              ThreadPool* pool) {
  // Validate the whole batch before mutating anything.
  std::map<std::string, size_t, std::less<>> batch_names;
  for (const table::Table& t : tables) {
    if (table_index_.find(t.name()) != table_index_.end() ||
        !batch_names.emplace(t.name(), 0).second) {
      return Status::AlreadyExists("table '" + t.name() +
                                   "' already in corpus");
    }
  }

  const size_t first_table = tables_.size();
  const size_t first_sketch = sketches_.size();
  std::vector<size_t> indexes;
  indexes.reserve(tables.size());

  // Serial bookkeeping: append tables, reserve one contiguous sketch slot
  // per column, and record the slot -> (table, column) mapping the parallel
  // workers will fill.
  struct Slot {
    size_t table_idx;
    size_t col;
  };
  std::vector<Slot> slots;
  tables_.reserve(first_table + tables.size());
  for (table::Table& t : tables) {
    size_t table_idx = tables_.size();
    indexes.push_back(table_idx);
    table_index_[t.name()] = table_idx;
    tables_.push_back(std::move(t));
    size_t begin = first_sketch + slots.size();
    for (size_t c = 0; c < tables_.back().num_columns(); ++c) {
      slots.push_back(Slot{table_idx, c});
      ColumnId id{static_cast<uint32_t>(table_idx), static_cast<uint32_t>(c)};
      sketch_index_[id.Packed()] = first_sketch + slots.size() - 1;
    }
    sketch_range_.emplace_back(begin, first_sketch + slots.size());
  }
  sketches_.resize(first_sketch + slots.size());

  // Parallel sketch building: each task writes exactly one pre-sized slot,
  // and BuildSketch reads only const state (tables_, minhasher_, embedder_),
  // so the result is bit-identical to the serial AddTable path.
  ParallelOptions par;
  par.pool = pool;
  LAKEKIT_RETURN_IF_ERROR(ParallelFor(
      0, slots.size(),
      [&](size_t i) -> Status {
        const Slot& slot = slots[i];
        ColumnId id{static_cast<uint32_t>(slot.table_idx),
                    static_cast<uint32_t>(slot.col)};
        sketches_[first_sketch + i] =
            BuildSketch(id, tables_[slot.table_idx], slot.col);
        return Status::OK();
      },
      par));
  return indexes;
}

ColumnSketch Corpus::BuildSketch(ColumnId id, const table::Table& t,
                                 size_t col) {
  ColumnSketch sketch;
  sketch.id = id;
  sketch.table_name = t.name();
  sketch.column_name = t.schema().field(col).name;
  sketch.type = t.schema().field(col).type;
  sketch.name_tokens = text::Tokenize(sketch.column_name);
  sketch.profile =
      ingest::Profiler::ProfileColumn(sketch.column_name, t.column(col));

  // Distinct values + set + format histogram + numeric sample. This is the
  // innermost loop of ingestion: pre-size both containers from the column
  // size and move each rendered value straight into the set (the vector
  // takes its one copy from the set node) instead of the old
  // render-insert-copy pattern.
  const std::vector<table::Value>& values = t.column(col);
  sketch.distinct_values.reserve(values.size());
  sketch.value_set.reserve(values.size());
  for (const table::Value& v : values) {
    if (v.is_null()) continue;
    auto [it, inserted] = sketch.value_set.insert(v.ToString());
    if (inserted) {
      const std::string& s = *it;
      sketch.distinct_values.push_back(s);
      ++sketch.format_histogram[FormatPattern(s)];
      if (v.is_numeric() &&
          sketch.numeric_values.size() < options_.numeric_sample_cap) {
        sketch.numeric_values.push_back(v.as_double());
      }
    }
  }
  sketch.minhash = minhasher_.Compute(sketch.distinct_values);

  // Embed a capped prefix of the distinct values (textual columns only —
  // embeddings of numbers carry no semantics).
  if (sketch.type == table::DataType::kString) {
    std::vector<std::string> tokens;
    for (const std::string& v : sketch.distinct_values) {
      if (tokens.size() >= options_.embedding_token_cap) break;
      for (const std::string& tok : text::Tokenize(v)) {
        tokens.push_back(tok);
      }
    }
    sketch.embedding = embedder_.EmbedAll(tokens);
  } else {
    sketch.embedding.assign(options_.embedding_dim, 0.0);
  }
  return sketch;
}

Result<size_t> Corpus::TableIndex(std::string_view name) const {
  auto it = table_index_.find(name);
  if (it == table_index_.end()) {
    return Status::NotFound("no table '" + std::string(name) +
                            "' in corpus");
  }
  return it->second;
}

const ColumnSketch& Corpus::sketch(ColumnId id) const {
  return sketches_[sketch_index_.at(id.Packed())];
}

std::vector<const ColumnSketch*> Corpus::TableSketches(
    size_t table_idx) const {
  std::vector<const ColumnSketch*> out;
  if (table_idx >= sketch_range_.size()) return out;
  const auto& [begin, end] = sketch_range_[table_idx];
  out.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    out.push_back(&sketches_[i]);
  }
  return out;
}

Result<ColumnId> Corpus::FindColumn(std::string_view table,
                                    std::string_view column) const {
  LAKEKIT_ASSIGN_OR_RETURN(size_t table_idx, TableIndex(table));
  LAKEKIT_ASSIGN_OR_RETURN(size_t col_idx,
                           tables_[table_idx].ColumnIndex(column));
  return ColumnId{static_cast<uint32_t>(table_idx),
                  static_cast<uint32_t>(col_idx)};
}

}  // namespace lakekit::discovery
