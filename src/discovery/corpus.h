#ifndef LAKEKIT_DISCOVERY_CORPUS_H_
#define LAKEKIT_DISCOVERY_CORPUS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "ingest/profiler.h"
#include "table/table.h"
#include "text/embedding.h"
#include "text/minhash.h"

namespace lakekit::discovery {

/// Identifies one column in a corpus: (table index, column index).
struct ColumnId {
  uint32_t table_idx = 0;
  uint32_t col_idx = 0;

  /// Packed form used as LSH item id.
  uint64_t Packed() const {
    return (static_cast<uint64_t>(table_idx) << 32) | col_idx;
  }
  static ColumnId FromPacked(uint64_t packed) {
    return ColumnId{static_cast<uint32_t>(packed >> 32),
                    static_cast<uint32_t>(packed & 0xFFFFFFFFu)};
  }
  bool operator==(const ColumnId&) const = default;
  bool operator<(const ColumnId& o) const {
    return Packed() < o.Packed();
  }
};

/// All precomputed per-column evidence the discovery methods share: the
/// survey's Table 3 shows every system extracting some subset of these
/// signals, so the corpus computes them once per ingested table.
struct ColumnSketch {
  ColumnId id;
  std::string table_name;
  std::string column_name;
  table::DataType type = table::DataType::kString;

  /// Distinct non-null values rendered as strings (the "set" view used by
  /// JOSIE's overlap search and exact Jaccard).
  std::vector<std::string> distinct_values;
  /// Same values as a hash set for O(1) exact intersection.
  std::unordered_set<std::string> value_set;
  /// MinHash signature of the value set (Aurum, D3L).
  text::MinHashSignature minhash;
  /// Skluma/Aurum profile: cardinality, distribution stats, key-ness.
  ingest::ColumnProfile profile;
  /// Lowercased attribute-name tokens (schema signal).
  std::vector<std::string> name_tokens;
  /// Histogram of value format patterns: each value maps to a class string
  /// (digits->'d', letters->'a', other kept); pattern -> count (D3L's
  /// "data value representation pattern" signal).
  std::map<std::string, size_t> format_histogram;
  /// Numeric values (for KS distribution similarity); empty for non-numeric.
  std::vector<double> numeric_values;
  /// Mean embedding of value tokens (semantic signal; D3L/PEXESO).
  text::DenseVector embedding;

  bool is_textual() const { return type == table::DataType::kString; }
};

/// Exact overlap |A ∩ B| of two columns' distinct-value sets.
size_t ExactOverlap(const ColumnSketch& a, const ColumnSketch& b);

/// Exact Jaccard |A ∩ B| / |A ∪ B|.
double ExactJaccard(const ColumnSketch& a, const ColumnSketch& b);

/// Exact containment |A ∩ B| / |A| (how much of `a` appears in `b`).
double ExactContainment(const ColumnSketch& a, const ColumnSketch& b);

/// Maps a raw value to its format-pattern class string, collapsing runs:
/// "AB-12" -> "a-d", "2024/01/02" -> "d/d/d".
std::string FormatPattern(std::string_view value);

/// Options controlling sketch construction.
struct CorpusOptions {
  size_t minhash_size = 128;
  size_t embedding_dim = 64;
  /// Cap on numeric values retained per column for KS tests.
  size_t numeric_sample_cap = 2048;
  /// Cap on embedded value tokens per column.
  size_t embedding_token_cap = 256;
};

/// A lake-wide collection of tables with per-column sketches. All discovery
/// methods (Aurum, JOSIE, D3L, PEXESO, union search, brute force) run over
/// one shared corpus so their comparison in the Table 3 bench is apples to
/// apples.
class Corpus {
 public:
  explicit Corpus(CorpusOptions options = {});

  /// Ingests a table, computing sketches for every column on the calling
  /// thread. Returns the table index. Table names must be unique.
  Result<size_t> AddTable(table::Table t);

  /// Batch ingestion: adds every table, building all column sketches in
  /// parallel on `pool` (nullptr -> ThreadPool::Default(); a pool of size 1
  /// is the serial opt-out). Returns the table indexes, in input order.
  ///
  /// Determinism contract: each sketch is a pure function of its column and
  /// the corpus options, and results are written to pre-sized slots, so
  /// sketch order and every signature/embedding are bit-identical to adding
  /// the same tables one-by-one with AddTable — regardless of thread count.
  ///
  /// Fails without side effects if any name is a duplicate (within the batch
  /// or against already-ingested tables). Not safe to call concurrently with
  /// other mutating or reading Corpus methods.
  Result<std::vector<size_t>> AddTables(std::vector<table::Table> tables,
                                        ThreadPool* pool = nullptr);

  size_t num_tables() const { return tables_.size(); }
  size_t num_columns() const { return sketches_.size(); }

  const table::Table& table(size_t idx) const { return tables_[idx]; }
  Result<size_t> TableIndex(std::string_view name) const;

  /// Sketch of a column by id.
  const ColumnSketch& sketch(ColumnId id) const;
  /// All sketches, iteration order = insertion order.
  const std::vector<ColumnSketch>& sketches() const { return sketches_; }
  /// Sketches belonging to one table: O(columns of that table), served from
  /// the contiguous range recorded at ingestion time.
  std::vector<const ColumnSketch*> TableSketches(size_t table_idx) const;

  /// Column lookup by names.
  Result<ColumnId> FindColumn(std::string_view table,
                              std::string_view column) const;

  const text::MinHasher& minhasher() const { return minhasher_; }
  const text::EmbeddingModel& embedder() const { return embedder_; }
  const CorpusOptions& options() const { return options_; }

  /// Gives the embedder ground-truth domains (testing/benchmarks): tokens of
  /// one semantic domain embed close together.
  void RegisterSemanticDomain(const std::string& domain,
                              const std::vector<std::string>& tokens);

 private:
  ColumnSketch BuildSketch(ColumnId id, const table::Table& t, size_t col);

  CorpusOptions options_;
  text::MinHasher minhasher_;
  text::EmbeddingModel embedder_;
  std::vector<table::Table> tables_;
  std::vector<ColumnSketch> sketches_;
  std::map<uint64_t, size_t> sketch_index_;  // packed id -> sketches_ index
  /// [begin, end) into sketches_ per table (columns are contiguous).
  std::vector<std::pair<size_t, size_t>> sketch_range_;
  std::map<std::string, size_t, std::less<>> table_index_;
};

}  // namespace lakekit::discovery

#endif  // LAKEKIT_DISCOVERY_CORPUS_H_
