#include "discovery/d3l.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "text/ks_test.h"
#include "text/minhash.h"
#include "text/tokenize.h"

namespace lakekit::discovery {

D3lFinder::D3lFinder(const Corpus* corpus, D3lOptions options)
    : corpus_(corpus), options_(options) {}

Status D3lFinder::Build(ThreadPool* pool) {
  if (options_.lsh_bands * options_.lsh_rows !=
      corpus_->options().minhash_size) {
    return Status::InvalidArgument(
        "value LSH bands*rows must equal corpus MinHash size");
  }
  if (options_.name_lsh_bands * options_.name_lsh_rows !=
      options_.name_minhash_size) {
    return Status::InvalidArgument(
        "name LSH bands*rows must equal name MinHash size");
  }
  value_lsh_ = std::make_unique<text::LshIndex>(options_.lsh_bands,
                                                options_.lsh_rows);
  name_lsh_ = std::make_unique<text::LshIndex>(options_.name_lsh_bands,
                                               options_.name_lsh_rows);
  const auto& sketches = corpus_->sketches();
  // Per-column name MinHashing (q-gram extraction + hashing) is the
  // expensive part of the build: fan it out into pre-sized slots, then run
  // the order-sensitive LSH insertions serially over the results.
  text::MinHasher name_hasher(options_.name_minhash_size, /*seed=*/23);
  name_signatures_.assign(sketches.size(), text::MinHashSignature());
  ParallelOptions par;
  par.pool = pool;
  LAKEKIT_RETURN_IF_ERROR(ParallelFor(
      0, sketches.size(),
      [&](size_t i) -> Status {
        name_signatures_[i] =
            name_hasher.Compute(text::QGrams(sketches[i].column_name, 3));
        return Status::OK();
      },
      par));
  for (size_t i = 0; i < sketches.size(); ++i) {
    value_lsh_->Insert(sketches[i].id.Packed(), sketches[i].minhash);
    name_lsh_->Insert(sketches[i].id.Packed(), name_signatures_[i]);
  }
  built_ = true;
  return Status::OK();
}

D3lFeatures D3lFinder::ComputeFeatures(ColumnId a, ColumnId b) const {
  const ColumnSketch& sa = corpus_->sketch(a);
  const ColumnSketch& sb = corpus_->sketch(b);
  D3lFeatures f;

  // i) attribute-name similarity: Jaccard of name q-grams.
  f.name = text::JaccardSimilarity(text::QGrams(sa.column_name, 3),
                                   text::QGrams(sb.column_name, 3));

  // ii) instance-value overlap: MinHash Jaccard estimate.
  f.values = sa.minhash.EstimateJaccard(sb.minhash);

  // iii) embedding similarity: cosine of value embeddings, clamped to [0,1].
  f.embedding =
      std::max(0.0, text::CosineSimilarity(sa.embedding, sb.embedding));

  // iv) format similarity: Jaccard over format-pattern histograms weighted
  // by counts (histogram intersection / union).
  {
    double inter = 0;
    double uni = 0;
    auto ita = sa.format_histogram.begin();
    auto itb = sb.format_histogram.begin();
    while (ita != sa.format_histogram.end() ||
           itb != sb.format_histogram.end()) {
      if (itb == sb.format_histogram.end() ||
          (ita != sa.format_histogram.end() && ita->first < itb->first)) {
        uni += static_cast<double>(ita->second);
        ++ita;
      } else if (ita == sa.format_histogram.end() ||
                 itb->first < ita->first) {
        uni += static_cast<double>(itb->second);
        ++itb;
      } else {
        inter += static_cast<double>(std::min(ita->second, itb->second));
        uni += static_cast<double>(std::max(ita->second, itb->second));
        ++ita;
        ++itb;
      }
    }
    f.format = uni == 0 ? 0.0 : inter / uni;
  }

  // v) numeric distribution similarity: 1 - KS statistic (numeric columns
  // only; pairs with a non-numeric side score 0 on this axis).
  if (!sa.numeric_values.empty() && !sb.numeric_values.empty()) {
    f.distribution =
        1.0 - text::KsStatistic(sa.numeric_values, sb.numeric_values);
  }
  return f;
}

double D3lFinder::Distance(ColumnId a, ColumnId b) const {
  D3lFeatures f = ComputeFeatures(a, b);
  std::array<double, 5> sims = f.AsArray();
  double sum = 0;
  for (size_t i = 0; i < 5; ++i) {
    double d = (1.0 - sims[i]) * weights_[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

Status D3lFinder::TrainWeights(const std::vector<LabeledPair>& pairs) {
  if (pairs.empty()) {
    return Status::InvalidArgument("no training pairs");
  }
  // Logistic regression P(related) = sigmoid(w . f + b); the learned |w|
  // become the distance weights — features that separate related from
  // unrelated pairs get more influence, mirroring D3L's trained
  // coefficients.
  std::vector<std::array<double, 5>> xs;
  std::vector<double> ys;
  xs.reserve(pairs.size());
  for (const LabeledPair& p : pairs) {
    xs.push_back(ComputeFeatures(p.a, p.b).AsArray());
    ys.push_back(p.related ? 1.0 : 0.0);
  }
  std::array<double, 5> w{0, 0, 0, 0, 0};
  double b = 0;
  const double lr = options_.learning_rate;
  for (int epoch = 0; epoch < options_.training_epochs; ++epoch) {
    std::array<double, 5> grad_w{0, 0, 0, 0, 0};
    double grad_b = 0;
    for (size_t i = 0; i < xs.size(); ++i) {
      double z = b;
      for (size_t d = 0; d < 5; ++d) z += w[d] * xs[i][d];
      double pred = 1.0 / (1.0 + std::exp(-z));
      double err = pred - ys[i];
      for (size_t d = 0; d < 5; ++d) grad_w[d] += err * xs[i][d];
      grad_b += err;
    }
    const double n = static_cast<double>(xs.size());
    for (size_t d = 0; d < 5; ++d) w[d] -= lr * grad_w[d] / n;
    b -= lr * grad_b / n;
  }
  // Normalize positive weights to mean 1 so distances stay comparable to
  // the unweighted default.
  double total = 0;
  for (size_t d = 0; d < 5; ++d) {
    weights_[d] = std::max(0.0, w[d]);
    total += weights_[d];
  }
  if (total > 0) {
    for (size_t d = 0; d < 5; ++d) weights_[d] *= 5.0 / total;
  } else {
    weights_ = {1, 1, 1, 1, 1};
  }
  bias_ = b;
  return Status::OK();
}

std::vector<ColumnId> D3lFinder::Candidates(const ColumnSketch& query) const {
  std::set<uint64_t> packed;
  for (uint64_t p : value_lsh_->Query(query.minhash)) packed.insert(p);
  // Name candidates.
  text::MinHasher name_hasher(options_.name_minhash_size, /*seed=*/23);
  text::MinHashSignature name_sig =
      name_hasher.Compute(text::QGrams(query.column_name, 3));
  for (uint64_t p : name_lsh_->Query(name_sig)) packed.insert(p);
  std::vector<ColumnId> out;
  for (uint64_t p : packed) {
    ColumnId id = ColumnId::FromPacked(p);
    if (id.table_idx != query.id.table_idx) out.push_back(id);
  }
  return out;
}

std::vector<ColumnMatch> D3lFinder::TopKRelatedColumns(ColumnId query,
                                                       size_t k) const {
  const ColumnSketch& q = corpus_->sketch(query);
  std::vector<ColumnMatch> matches;
  for (ColumnId candidate : Candidates(q)) {
    matches.push_back(ColumnMatch{candidate, -Distance(query, candidate)});
  }
  SortAndTruncate(&matches, k);
  return matches;
}

std::vector<TableMatch> D3lFinder::TopKRelatedTables(size_t table_idx,
                                                     size_t k) const {
  std::vector<ColumnMatch> all;
  for (const ColumnSketch* s : corpus_->TableSketches(table_idx)) {
    for (const ColumnMatch& m : TopKRelatedColumns(s->id, k)) {
      all.push_back(m);
    }
  }
  return AggregateToTables(*corpus_, all, k);
}

}  // namespace lakekit::discovery
