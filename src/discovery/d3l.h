#ifndef LAKEKIT_DISCOVERY_D3L_H_
#define LAKEKIT_DISCOVERY_D3L_H_

#include <array>
#include <memory>
#include <vector>

#include "discovery/common.h"
#include "text/lsh.h"

namespace lakekit::discovery {

/// The five D3L relatedness features (survey Table 3): attribute-name
/// similarity, instance-value overlap, embedding similarity, value-format
/// similarity, and numeric-distribution similarity. Each is a similarity in
/// [0,1]; D3L combines them as a weighted Euclidean distance in the
/// 5-dimensional space of (1 - feature) coordinates.
struct D3lFeatures {
  double name = 0;
  double values = 0;
  double embedding = 0;
  double format = 0;
  double distribution = 0;

  std::array<double, 5> AsArray() const {
    return {name, values, embedding, format, distribution};
  }
};

/// A labeled training pair for feature-weight learning.
struct LabeledPair {
  ColumnId a;
  ColumnId b;
  bool related = false;
};

struct D3lOptions {
  /// LSH banding for candidate generation over value MinHash.
  size_t lsh_bands = 32;
  size_t lsh_rows = 4;
  /// Candidates are also generated from attribute-name q-gram MinHash.
  size_t name_minhash_size = 64;
  size_t name_lsh_bands = 16;
  size_t name_lsh_rows = 4;
  /// Logistic-regression training.
  double learning_rate = 0.5;
  int training_epochs = 200;
};

/// D3L (survey Sec. 6.2.1): multi-evidence dataset discovery. Candidate
/// columns come from two LSH indexes (value MinHash and name-q-gram
/// MinHash); each candidate is scored by the weighted Euclidean distance of
/// its five-feature vector, with weights trained by logistic regression on
/// relatedness ground truth — the paper's trained feature coefficients.
class D3lFinder {
 public:
  D3lFinder(const Corpus* corpus, D3lOptions options = {});

  /// Builds both LSH indexes. Per-column name-q-gram MinHashing fans out
  /// over `pool` (nullptr -> ThreadPool::Default(); size-1 pool = serial
  /// opt-out); LSH insertion stays serial so index layout is deterministic.
  Status Build(ThreadPool* pool = nullptr);

  /// Raw feature vector of a column pair.
  D3lFeatures ComputeFeatures(ColumnId a, ColumnId b) const;

  /// Trains the feature weights from labeled pairs (logistic regression on
  /// the 5 features). Without training, all weights are 1 (unweighted).
  Status TrainWeights(const std::vector<LabeledPair>& pairs);

  /// Weighted Euclidean distance between two columns (lower = more related).
  double Distance(ColumnId a, ColumnId b) const;

  /// Top-k related columns via candidate generation + distance ranking.
  /// Scores returned are negated distances so higher = better, matching the
  /// other finders.
  std::vector<ColumnMatch> TopKRelatedColumns(ColumnId query, size_t k) const;

  /// Top-k related tables for augmenting a query table (survey Sec. 7.1
  /// exploration mode 2).
  std::vector<TableMatch> TopKRelatedTables(size_t table_idx, size_t k) const;

  const std::array<double, 5>& weights() const { return weights_; }
  bool built() const { return built_; }

 private:
  std::vector<ColumnId> Candidates(const ColumnSketch& query) const;

  const Corpus* corpus_;
  D3lOptions options_;
  std::array<double, 5> weights_{1, 1, 1, 1, 1};
  double bias_ = 0;
  std::unique_ptr<text::LshIndex> value_lsh_;
  std::unique_ptr<text::LshIndex> name_lsh_;
  std::vector<text::MinHashSignature> name_signatures_;  // per sketch
  bool built_ = false;
};

}  // namespace lakekit::discovery

#endif  // LAKEKIT_DISCOVERY_D3L_H_
