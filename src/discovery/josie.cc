#include "discovery/josie.h"

#include <algorithm>
#include <queue>

namespace lakekit::discovery {

void JosieFinder::Build() {
  postings_.clear();
  for (const ColumnSketch& s : corpus_->sketches()) {
    for (const std::string& v : s.distinct_values) {
      postings_[v].push_back(s.id.Packed());
    }
  }
  built_ = true;
}

std::vector<ColumnMatch> JosieFinder::TopKOverlapForValues(
    const std::vector<std::string>& values, size_t k,
    std::optional<uint32_t> exclude_table) const {
  last_query_postings_scanned_ = 0;

  // Collect the posting lists of the query's tokens, rare-first: short lists
  // contribute few counts but the *position* in this order drives the
  // early-termination bound below.
  std::vector<const std::vector<uint64_t>*> lists;
  lists.reserve(values.size());
  for (const std::string& v : values) {
    auto it = postings_.find(v);
    if (it != postings_.end()) lists.push_back(&it->second);
  }
  std::sort(lists.begin(), lists.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });

  std::unordered_map<uint64_t, size_t> counts;
  std::vector<ColumnMatch> matches;
  size_t remaining = lists.size();
  // kth_best tracks the current k-th overlap lower bound among candidates.
  auto kth_best = [&]() -> size_t {
    if (counts.size() < k) return 0;
    // Maintain lazily: compute on demand from counts (k is small).
    std::vector<size_t> top;
    top.reserve(counts.size());
    for (const auto& [id, c] : counts) top.push_back(c);
    std::nth_element(top.begin(), top.begin() + static_cast<ptrdiff_t>(k - 1),
                     top.end(), std::greater<size_t>());
    return top[k - 1];
  };

  size_t check_interval = 64;  // Recompute the bound periodically, not per token.
  size_t processed = 0;
  for (const auto* list : lists) {
    // Early termination: a candidate not yet seen can reach at most
    // `remaining` more overlap. Once the k-th best candidate already has
    // more than `remaining`, unseen candidates cannot enter the top-k AND
    // the *relative order* of the current top-k can still change, so we only
    // stop growing the candidate set — we must keep counting for candidates
    // we already track. For exactness we keep scanning but skip inserting
    // new candidates.
    bool allow_new = counts.size() < k || kth_best() <= remaining;
    for (uint64_t packed : *list) {
      ++last_query_postings_scanned_;
      if (exclude_table &&
          ColumnId::FromPacked(packed).table_idx == *exclude_table) {
        continue;
      }
      auto it = counts.find(packed);
      if (it != counts.end()) {
        ++it->second;
      } else if (allow_new) {
        counts.emplace(packed, 1);
      }
    }
    --remaining;
    if (++processed % check_interval == 0 && counts.size() > 4 * k) {
      // Prune candidates that can no longer reach the top-k.
      size_t bound = kth_best();
      if (bound > remaining) {
        for (auto it = counts.begin(); it != counts.end();) {
          if (it->second + remaining < bound) {
            it = counts.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
  }
  matches.reserve(counts.size());
  for (const auto& [packed, count] : counts) {
    matches.push_back(ColumnMatch{ColumnId::FromPacked(packed),
                                  static_cast<double>(count)});
  }
  SortAndTruncate(&matches, k);
  return matches;
}

std::vector<ColumnMatch> JosieFinder::TopKOverlapColumns(ColumnId query,
                                                         size_t k) const {
  const ColumnSketch& q = corpus_->sketch(query);
  return TopKOverlapForValues(q.distinct_values, k, query.table_idx);
}

std::vector<TableMatch> JosieFinder::TopKJoinableTables(size_t table_idx,
                                                        size_t k) const {
  std::vector<ColumnMatch> all;
  for (const ColumnSketch* s : corpus_->TableSketches(table_idx)) {
    for (const ColumnMatch& m :
         TopKOverlapColumns(s->id, k)) {
      all.push_back(m);
    }
  }
  return AggregateToTables(*corpus_, all, k);
}

}  // namespace lakekit::discovery
