#ifndef LAKEKIT_DISCOVERY_JOSIE_H_
#define LAKEKIT_DISCOVERY_JOSIE_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "discovery/common.h"

namespace lakekit::discovery {

/// JOSIE (survey Sec. 6.2.1, Table 3): exact top-k overlap set similarity
/// search for joinable-table discovery. Columns are sets of distinct
/// values; the index is an inverted list token -> columns containing it.
/// A query accumulates intersection counts over the posting lists of its
/// values, processing rare tokens first and terminating early once the
/// remaining tokens cannot lift any unseen candidate into the top-k — the
/// cost-based pruning that makes JOSIE robust across data distributions.
class JosieFinder {
 public:
  explicit JosieFinder(const Corpus* corpus) : corpus_(corpus) {}

  /// Builds the inverted index over every corpus column.
  void Build();

  /// Exact top-k columns by intersection size with the query column
  /// (same-table columns excluded). No human threshold needed — that is
  /// JOSIE's point versus fixed-θ overlap search.
  std::vector<ColumnMatch> TopKOverlapColumns(ColumnId query, size_t k) const;

  /// Exact top-k columns by intersection with an ad-hoc value set.
  std::vector<ColumnMatch> TopKOverlapForValues(
      const std::vector<std::string>& values, size_t k,
      std::optional<uint32_t> exclude_table = {}) const;

  /// Top-k joinable tables for a whole query table.
  std::vector<TableMatch> TopKJoinableTables(size_t table_idx, size_t k) const;

  /// Statistics: how many posting entries the last query scanned (for the
  /// bench's cost accounting).
  size_t last_query_postings_scanned() const {
    return last_query_postings_scanned_;
  }

  bool built() const { return built_; }
  size_t index_size() const { return postings_.size(); }

 private:
  const Corpus* corpus_;
  /// token -> packed ColumnIds containing it.
  std::unordered_map<std::string, std::vector<uint64_t>> postings_;
  bool built_ = false;
  mutable size_t last_query_postings_scanned_ = 0;
};

}  // namespace lakekit::discovery

#endif  // LAKEKIT_DISCOVERY_JOSIE_H_
