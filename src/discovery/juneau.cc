#include "discovery/juneau.h"

#include <algorithm>

#include "text/tokenize.h"

namespace lakekit::discovery {

std::string_view JuneauTaskName(JuneauTask task) {
  switch (task) {
    case JuneauTask::kAugmentTraining:
      return "augment_training";
    case JuneauTask::kAugmentFeatures:
      return "augment_features";
    case JuneauTask::kCleaning:
      return "cleaning";
  }
  return "unknown";
}

void JuneauFinder::RegisterProvenance(
    std::string_view table, const provenance::VariableDependencyGraph* graph,
    std::string_view variable) {
  provenance_[std::string(table)] =
      ProvenanceRef{graph, std::string(variable)};
}

JuneauSignals JuneauFinder::ComputeSignals(size_t query_table,
                                           size_t candidate_table) const {
  JuneauSignals s;
  std::vector<const ColumnSketch*> qs = corpus_->TableSketches(query_table);
  std::vector<const ColumnSketch*> cs =
      corpus_->TableSketches(candidate_table);
  if (qs.empty() || cs.empty()) return s;

  // Schema overlap: greedy name matching at q-gram similarity >= 0.7.
  std::vector<bool> candidate_matched(cs.size(), false);
  size_t matched = 0;
  double best_value_overlap = 0;
  double best_null_improvement = 0;
  for (const ColumnSketch* q : qs) {
    double best_name = 0;
    size_t best_idx = cs.size();
    for (size_t i = 0; i < cs.size(); ++i) {
      if (candidate_matched[i]) continue;
      double name = text::JaccardSimilarity(text::QGrams(q->column_name, 3),
                                            text::QGrams(cs[i]->column_name, 3));
      if (name > best_name) {
        best_name = name;
        best_idx = i;
      }
    }
    if (best_name >= 0.7 && best_idx < cs.size()) {
      candidate_matched[best_idx] = true;
      ++matched;
      best_null_improvement =
          std::max(best_null_improvement,
                   q->profile.null_fraction() -
                       cs[best_idx]->profile.null_fraction());
    }
    // Join signal: value overlap of *key-like* column pairs only. A
    // low-cardinality categorical pair ("label" with 3 values on both
    // sides) trivially reaches Jaccard 1 without meaning joinability.
    if (q->profile.uniqueness() >= 0.5) {
      for (const ColumnSketch* c : cs) {
        if (c->profile.uniqueness() < 0.5) continue;
        best_value_overlap = std::max(
            best_value_overlap, q->minhash.EstimateJaccard(c->minhash));
      }
    }
  }
  s.schema_overlap =
      static_cast<double>(matched) / static_cast<double>(qs.size());
  s.value_overlap = best_value_overlap;
  s.new_attribute_rate =
      1.0 - static_cast<double>(matched) / static_cast<double>(cs.size());
  s.null_improvement = std::max(0.0, best_null_improvement);

  // New instance rate: fraction of the candidate's best-overlapping column
  // values absent from the query's side (novelty for training data).
  // Estimated from the MinHash Jaccard of the best pair: with |A|≈|B|,
  // new ≈ (1 - j) / (1 + j).
  s.new_instance_rate =
      (1.0 - best_value_overlap) / (1.0 + best_value_overlap);

  // Provenance similarity, when both tables have registered variables.
  auto qp = provenance_.find(corpus_->table(query_table).name());
  auto cp = provenance_.find(corpus_->table(candidate_table).name());
  if (qp != provenance_.end() && cp != provenance_.end()) {
    s.provenance = provenance::VariableDependencyGraph::ProvenanceSimilarity(
        *qp->second.graph, qp->second.variable, *cp->second.graph,
        cp->second.variable);
  }
  return s;
}

double JuneauFinder::Score(size_t query_table, size_t candidate_table,
                           JuneauTask task) const {
  JuneauSignals s = ComputeSignals(query_table, candidate_table);
  switch (task) {
    case JuneauTask::kAugmentTraining:
      // Same schema, new rows; provenance hints at sibling pipelines.
      return 0.45 * s.schema_overlap + 0.3 * s.new_instance_rate +
             0.15 * s.provenance + 0.1 * s.value_overlap;
    case JuneauTask::kAugmentFeatures:
      // Joinable (shared key values) and bringing new attributes.
      return 0.45 * s.value_overlap + 0.35 * s.new_attribute_rate +
             0.1 * s.schema_overlap + 0.1 * s.provenance;
    case JuneauTask::kCleaning:
      // A near-duplicate with fewer nulls.
      return 0.4 * s.schema_overlap + 0.25 * s.value_overlap +
             0.25 * s.null_improvement + 0.1 * s.provenance;
  }
  return 0;
}

std::vector<TableMatch> JuneauFinder::TopKForTask(size_t query_table,
                                                  JuneauTask task,
                                                  size_t k) const {
  std::vector<TableMatch> out;
  for (size_t t = 0; t < corpus_->num_tables(); ++t) {
    if (t == query_table) continue;
    double score = Score(query_table, t, task);
    if (score <= 0) continue;
    out.push_back(TableMatch{t, corpus_->table(t).name(), score});
  }
  std::sort(out.begin(), out.end(), [](const TableMatch& a, const TableMatch& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.table_idx < b.table_idx;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace lakekit::discovery
