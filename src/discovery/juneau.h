#ifndef LAKEKIT_DISCOVERY_JUNEAU_H_
#define LAKEKIT_DISCOVERY_JUNEAU_H_

#include <map>
#include <string>
#include <vector>

#include "discovery/common.h"
#include "provenance/variable_dep.h"

namespace lakekit::discovery {

/// The data science task driving a Juneau search — the search type τ of the
/// survey's Sec. 7.1 exploration mode 3. Each task weighs the relatedness
/// signals differently (Table 3's Juneau row lists them: instance overlap,
/// schema overlap, new attribute/instance rate, variable dependency,
/// null values).
enum class JuneauTask {
  /// Find additional training/validation data: reward schema-compatible
  /// tables with *new instances*.
  kAugmentTraining,
  /// Feature engineering: reward joinable tables bringing *new attributes*.
  kAugmentFeatures,
  /// Data cleaning: reward near-duplicates of the query with fewer nulls.
  kCleaning,
};

std::string_view JuneauTaskName(JuneauTask task);

/// Signal breakdown of one Juneau score (for explanation / tests).
struct JuneauSignals {
  double value_overlap = 0;     // best column MinHash Jaccard
  double schema_overlap = 0;    // fraction of query attrs matched by name
  double new_attribute_rate = 0;  // candidate attrs not matched (novelty)
  double new_instance_rate = 0;   // candidate values not in query (novelty)
  double null_improvement = 0;  // query null fraction - candidate's
  double provenance = 0;        // variable-dependency similarity
};

/// Juneau-style task-specific table search over the corpus, optionally
/// informed by notebook provenance: tables registered with a variable in a
/// VariableDependencyGraph gain the provenance-similarity signal (tables
/// produced by similar workflows are related — Table 2/3's Juneau rows).
class JuneauFinder {
 public:
  explicit JuneauFinder(const Corpus* corpus) : corpus_(corpus) {}

  /// Associates a corpus table with the notebook variable that produced it.
  void RegisterProvenance(std::string_view table,
                          const provenance::VariableDependencyGraph* graph,
                          std::string_view variable);

  /// Raw signals for a (query, candidate) table pair.
  JuneauSignals ComputeSignals(size_t query_table,
                               size_t candidate_table) const;

  /// Task-weighted score in [0,1].
  double Score(size_t query_table, size_t candidate_table,
               JuneauTask task) const;

  /// Top-k tables for the task.
  std::vector<TableMatch> TopKForTask(size_t query_table, JuneauTask task,
                                      size_t k) const;

 private:
  struct ProvenanceRef {
    const provenance::VariableDependencyGraph* graph = nullptr;
    std::string variable;
  };
  const Corpus* corpus_;
  std::map<std::string, ProvenanceRef, std::less<>> provenance_;
};

}  // namespace lakekit::discovery

#endif  // LAKEKIT_DISCOVERY_JUNEAU_H_
