#include "discovery/pexeso.h"

#include <unordered_set>

#include "common/hash.h"

namespace lakekit::discovery {

PexesoFinder::PexesoFinder(const Corpus* corpus, PexesoOptions options)
    : corpus_(corpus), options_(options) {}

void PexesoFinder::Build() {
  // Deterministic hyperplanes from the shared embedder's dimensionality.
  const size_t dim = corpus_->options().embedding_dim;
  hyperplanes_.clear();
  for (size_t h = 0; h < options_.hyperplanes; ++h) {
    text::DenseVector plane(dim);
    uint64_t seed = Mix64(0x9e3779b9ULL + h);
    for (size_t d = 0; d < dim; ++d) {
      seed = Mix64(seed + d);
      plane[d] = (static_cast<double>(seed >> 11) * 0x1.0p-53) * 2.0 - 1.0;
    }
    hyperplanes_.push_back(std::move(plane));
  }

  entries_.clear();
  buckets_.clear();
  for (const ColumnSketch& s : corpus_->sketches()) {
    if (!s.is_textual()) continue;
    size_t count = 0;
    for (const std::string& value : s.distinct_values) {
      if (count++ >= options_.value_cap) break;
      Entry e;
      e.column_packed = s.id.Packed();
      e.vector = corpus_->embedder().Embed(value);
      uint64_t bucket = BucketOf(e.vector);
      buckets_[bucket].push_back(entries_.size());
      entries_.push_back(std::move(e));
    }
  }
  built_ = true;
}

uint64_t PexesoFinder::BucketOf(const text::DenseVector& v) const {
  uint64_t bits = 0;
  for (size_t h = 0; h < hyperplanes_.size(); ++h) {
    double dot = 0;
    for (size_t d = 0; d < v.size(); ++d) dot += v[d] * hyperplanes_[h][d];
    if (dot >= 0) bits |= (1ULL << h);
  }
  return bits;
}

std::vector<size_t> PexesoFinder::Probe(const text::DenseVector& v) const {
  uint64_t home = BucketOf(v);
  std::vector<size_t> out;
  auto add_bucket = [&](uint64_t bucket) {
    auto it = buckets_.find(bucket);
    if (it == buckets_.end()) return;
    out.insert(out.end(), it->second.begin(), it->second.end());
  };
  add_bucket(home);
  // Hamming-1 and Hamming-2 neighbors: vectors at cosine ~0.7-0.9 flip an
  // expected 1-2 sign bits, so distance-2 probing keeps recall high at
  // O(h^2) extra bucket lookups.
  for (size_t h = 0; h < hyperplanes_.size(); ++h) {
    add_bucket(home ^ (1ULL << h));
    for (size_t g = h + 1; g < hyperplanes_.size(); ++g) {
      add_bucket(home ^ (1ULL << h) ^ (1ULL << g));
    }
  }
  return out;
}

std::vector<ColumnMatch> PexesoFinder::TopKSemanticJoinableColumns(
    ColumnId query, size_t k) const {
  const ColumnSketch& q = corpus_->sketch(query);
  if (!q.is_textual() || q.distinct_values.empty()) return {};

  // For each query value, the set of candidate columns holding a matching
  // vector; accumulate per-column matched-value counts.
  std::unordered_map<uint64_t, size_t> matched_counts;
  size_t considered = 0;
  for (const std::string& value : q.distinct_values) {
    if (considered++ >= options_.value_cap) break;
    text::DenseVector qv = corpus_->embedder().Embed(value);
    std::unordered_set<uint64_t> columns_with_match;
    for (size_t entry_idx : Probe(qv)) {
      const Entry& e = entries_[entry_idx];
      if (ColumnId::FromPacked(e.column_packed).table_idx == query.table_idx) {
        continue;
      }
      if (columns_with_match.count(e.column_packed) > 0) continue;
      if (text::CosineSimilarity(qv, e.vector) >= options_.cosine_threshold) {
        columns_with_match.insert(e.column_packed);
      }
    }
    for (uint64_t packed : columns_with_match) ++matched_counts[packed];
  }

  const double denom = static_cast<double>(considered);
  std::vector<ColumnMatch> matches;
  for (const auto& [packed, count] : matched_counts) {
    double fraction = static_cast<double>(count) / denom;
    if (fraction >= options_.match_fraction) {
      matches.push_back(ColumnMatch{ColumnId::FromPacked(packed), fraction});
    }
  }
  SortAndTruncate(&matches, k);
  return matches;
}

std::vector<TableMatch> PexesoFinder::TopKSemanticJoinableTables(
    size_t table_idx, size_t k) const {
  std::vector<ColumnMatch> all;
  for (const ColumnSketch* s : corpus_->TableSketches(table_idx)) {
    if (!s->is_textual()) continue;
    for (const ColumnMatch& m : TopKSemanticJoinableColumns(s->id, k)) {
      all.push_back(m);
    }
  }
  return AggregateToTables(*corpus_, all, k);
}

}  // namespace lakekit::discovery
