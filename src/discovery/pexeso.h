#ifndef LAKEKIT_DISCOVERY_PEXESO_H_
#define LAKEKIT_DISCOVERY_PEXESO_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "discovery/common.h"
#include "text/embedding.h"

namespace lakekit::discovery {

struct PexesoOptions {
  /// Two values "match" when their embedding cosine is at least this.
  double cosine_threshold = 0.7;
  /// A candidate column is semantically joinable when at least this fraction
  /// of the query's values have a match in it.
  double match_fraction = 0.5;
  /// Number of random hyperplanes for the sign-bucket index (the stand-in
  /// for PEXESO's hierarchical grid partitioning).
  size_t hyperplanes = 12;
  /// Cap on values embedded per column.
  size_t value_cap = 128;
};

/// PEXESO (survey Sec. 6.2.3, Table 3): joinable-table discovery for
/// *semantically* joinable textual columns — values match by embedding
/// proximity rather than string equality, so "NL" joins "Netherlands" when
/// the embedding model places them together. Vectors are bucketed by the
/// sign pattern of random hyperplane projections (our grid substitute);
/// queries probe the home bucket plus all Hamming-distance-1 buckets and
/// verify candidates with the exact cosine threshold.
class PexesoFinder {
 public:
  PexesoFinder(const Corpus* corpus, PexesoOptions options = {});

  /// Embeds and indexes the textual values of every textual column.
  void Build();

  /// Top-k semantically joinable columns for a textual query column, scored
  /// by matched-value fraction. Columns below `match_fraction` are dropped.
  std::vector<ColumnMatch> TopKSemanticJoinableColumns(ColumnId query,
                                                       size_t k) const;

  /// Top-k semantically joinable tables.
  std::vector<TableMatch> TopKSemanticJoinableTables(size_t table_idx,
                                                     size_t k) const;

  bool built() const { return built_; }
  size_t num_indexed_values() const { return entries_.size(); }

 private:
  struct Entry {
    uint64_t column_packed = 0;
    text::DenseVector vector;
  };

  uint64_t BucketOf(const text::DenseVector& v) const;
  /// Entry indexes in the home bucket and all Hamming-1 neighbors.
  std::vector<size_t> Probe(const text::DenseVector& v) const;

  const Corpus* corpus_;
  PexesoOptions options_;
  std::vector<text::DenseVector> hyperplanes_;
  std::vector<Entry> entries_;
  std::unordered_map<uint64_t, std::vector<size_t>> buckets_;
  bool built_ = false;
};

}  // namespace lakekit::discovery

#endif  // LAKEKIT_DISCOVERY_PEXESO_H_
