#include "discovery/union_search.h"

#include <algorithm>

#include "text/embedding.h"
#include "text/tokenize.h"

namespace lakekit::discovery {

UnionSearch::UnionSearch(const Corpus* corpus, UnionSearchOptions options)
    : corpus_(corpus), options_(options) {}

double UnionSearch::AttributeUnionability(ColumnId a, ColumnId b) const {
  const ColumnSketch& sa = corpus_->sketch(a);
  const ColumnSketch& sb = corpus_->sketch(b);
  // Different data types are weak evidence against unionability, but name
  // match can still carry (int64 vs double ids): type mismatch halves the
  // value signal rather than zeroing the pair.
  double name = text::JaccardSimilarity(text::QGrams(sa.column_name, 3),
                                        text::QGrams(sb.column_name, 3));
  double values = sa.minhash.EstimateJaccard(sb.minhash);
  double embedding =
      std::max(0.0, text::CosineSimilarity(sa.embedding, sb.embedding));
  double score = options_.name_weight * name +
                 options_.value_weight * values +
                 options_.embedding_weight * embedding;
  if (sa.type != sb.type) score *= 0.5;
  return score;
}

std::vector<AttributeAlignment> UnionSearch::AlignTables(
    size_t query_table, size_t candidate_table) const {
  std::vector<const ColumnSketch*> qs = corpus_->TableSketches(query_table);
  std::vector<const ColumnSketch*> cs =
      corpus_->TableSketches(candidate_table);
  // Score all pairs, then greedy best-first matching (each column used at
  // most once).
  struct Scored {
    size_t qi;
    size_t ci;
    double score;
  };
  std::vector<Scored> pairs;
  for (size_t i = 0; i < qs.size(); ++i) {
    for (size_t j = 0; j < cs.size(); ++j) {
      double score = AttributeUnionability(qs[i]->id, cs[j]->id);
      if (score >= options_.attribute_threshold) {
        pairs.push_back(Scored{i, j, score});
      }
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const Scored& a, const Scored& b) {
    return a.score > b.score;
  });
  std::vector<bool> q_used(qs.size(), false);
  std::vector<bool> c_used(cs.size(), false);
  std::vector<AttributeAlignment> alignment;
  for (const Scored& p : pairs) {
    if (q_used[p.qi] || c_used[p.ci]) continue;
    q_used[p.qi] = true;
    c_used[p.ci] = true;
    alignment.push_back(
        AttributeAlignment{qs[p.qi]->id, cs[p.ci]->id, p.score});
  }
  return alignment;
}

double UnionSearch::TableUnionability(size_t query_table,
                                      size_t candidate_table) const {
  std::vector<AttributeAlignment> alignment =
      AlignTables(query_table, candidate_table);
  if (alignment.empty()) return 0.0;
  double sum = 0;
  for (const AttributeAlignment& a : alignment) sum += a.score;
  const double query_cols =
      static_cast<double>(corpus_->TableSketches(query_table).size());
  const double coverage =
      query_cols == 0 ? 0.0
                      : static_cast<double>(alignment.size()) / query_cols;
  return (sum / static_cast<double>(alignment.size())) * coverage;
}

std::vector<UnionMatch> UnionSearch::TopKUnionableTables(size_t query_table,
                                                         size_t k) const {
  std::vector<UnionMatch> out;
  for (size_t t = 0; t < corpus_->num_tables(); ++t) {
    if (t == query_table) continue;
    std::vector<AttributeAlignment> alignment = AlignTables(query_table, t);
    if (alignment.empty()) continue;
    double sum = 0;
    for (const AttributeAlignment& a : alignment) sum += a.score;
    const double query_cols =
        static_cast<double>(corpus_->TableSketches(query_table).size());
    double score = (sum / static_cast<double>(alignment.size())) *
                   (static_cast<double>(alignment.size()) / query_cols);
    UnionMatch match;
    match.table_idx = t;
    match.table_name = corpus_->table(t).name();
    match.score = score;
    match.alignment = std::move(alignment);
    out.push_back(std::move(match));
  }
  std::sort(out.begin(), out.end(), [](const UnionMatch& a, const UnionMatch& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.table_idx < b.table_idx;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace lakekit::discovery
