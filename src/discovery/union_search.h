#ifndef LAKEKIT_DISCOVERY_UNION_SEARCH_H_
#define LAKEKIT_DISCOVERY_UNION_SEARCH_H_

#include <vector>

#include "discovery/common.h"

namespace lakekit::discovery {

struct UnionSearchOptions {
  /// Minimum per-attribute unionability for two columns to align.
  double attribute_threshold = 0.4;
  /// Weights of the three attribute-unionability signals.
  double name_weight = 0.4;
  double value_weight = 0.3;
  double embedding_weight = 0.3;
};

/// One aligned attribute pair in a unionability result.
struct AttributeAlignment {
  ColumnId query_column;
  ColumnId candidate_column;
  double score = 0;
};

/// A unionable-table result: the candidate table, its aggregate score, and
/// the attribute alignment that produced it.
struct UnionMatch {
  size_t table_idx = 0;
  std::string table_name;
  double score = 0;
  std::vector<AttributeAlignment> alignment;
};

/// Table union search (Nargesian et al., cited throughout survey Sec. 6.1.3
/// and 6.2 as the unionability counterpart of join discovery): two tables
/// are unionable when their attributes can be aligned so that aligned
/// attributes draw from the same domain. Attribute unionability blends a
/// name signal (q-gram Jaccard), a value-domain signal (MinHash Jaccard)
/// and a semantic signal (embedding cosine); table unionability is the mean
/// aligned-attribute score scaled by alignment coverage.
class UnionSearch {
 public:
  UnionSearch(const Corpus* corpus, UnionSearchOptions options = {});

  /// Unionability of one attribute pair in [0,1].
  double AttributeUnionability(ColumnId a, ColumnId b) const;

  /// Greedy best-first alignment between the columns of two tables; pairs
  /// below attribute_threshold are left unaligned.
  std::vector<AttributeAlignment> AlignTables(size_t query_table,
                                              size_t candidate_table) const;

  /// Unionability score of a candidate table: mean aligned score *
  /// (aligned / query columns).
  double TableUnionability(size_t query_table, size_t candidate_table) const;

  /// Top-k unionable tables for the query table.
  std::vector<UnionMatch> TopKUnionableTables(size_t query_table,
                                              size_t k) const;

 private:
  const Corpus* corpus_;
  UnionSearchOptions options_;
};

}  // namespace lakekit::discovery

#endif  // LAKEKIT_DISCOVERY_UNION_SEARCH_H_
