#include "enrich/d4.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <unordered_map>

namespace lakekit::enrich {

D4DomainDiscovery::D4DomainDiscovery(D4Options options) : options_(options) {}

std::vector<Domain> D4DomainDiscovery::Discover(
    const discovery::Corpus& corpus) const {
  // Participating columns.
  std::vector<const discovery::ColumnSketch*> columns;
  for (const discovery::ColumnSketch& s : corpus.sketches()) {
    if (s.is_textual() &&
        s.distinct_values.size() >= options_.min_column_terms) {
      columns.push_back(&s);
    }
  }

  // Union-find clustering by exact term-set Jaccard.
  std::vector<size_t> parent(columns.size());
  std::iota(parent.begin(), parent.end(), 0);
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (size_t i = 0; i < columns.size(); ++i) {
    for (size_t j = i + 1; j < columns.size(); ++j) {
      if (discovery::ExactJaccard(*columns[i], *columns[j]) >=
          options_.column_similarity_threshold) {
        parent[find(i)] = find(j);
      }
    }
  }

  // Collect clusters and derive domain term sets by local support.
  std::unordered_map<size_t, std::vector<size_t>> clusters;
  for (size_t i = 0; i < columns.size(); ++i) {
    clusters[find(i)].push_back(i);
  }
  std::vector<Domain> domains;
  for (auto& [root, members] : clusters) {
    Domain d;
    d.id = domains.size();
    std::unordered_map<std::string, size_t> term_support;
    for (size_t m : members) {
      d.columns.push_back(columns[m]->id);
      for (const std::string& term : columns[m]->distinct_values) {
        ++term_support[term];
      }
    }
    const double min_support = std::max(
        1.0, options_.term_support_fraction *
                 static_cast<double>(members.size()));
    for (const auto& [term, support] : term_support) {
      if (static_cast<double>(support) >= min_support) {
        d.terms.push_back(term);
      }
    }
    std::sort(d.terms.begin(), d.terms.end());
    std::sort(d.columns.begin(), d.columns.end());
    domains.push_back(std::move(d));
  }
  // Deterministic order: largest domain first, then by first column id.
  std::sort(domains.begin(), domains.end(), [](const Domain& a, const Domain& b) {
    if (a.columns.size() != b.columns.size()) {
      return a.columns.size() > b.columns.size();
    }
    return a.columns.front().Packed() < b.columns.front().Packed();
  });
  for (size_t i = 0; i < domains.size(); ++i) domains[i].id = i;
  return domains;
}

std::vector<size_t> D4DomainDiscovery::DomainsOfTerm(
    const std::vector<Domain>& domains, const std::string& term) {
  std::vector<size_t> out;
  for (const Domain& d : domains) {
    if (std::binary_search(d.terms.begin(), d.terms.end(), term)) {
      out.push_back(d.id);
    }
  }
  return out;
}

}  // namespace lakekit::enrich
