#ifndef LAKEKIT_ENRICH_D4_H_
#define LAKEKIT_ENRICH_D4_H_

#include <map>
#include <string>
#include <vector>

#include "discovery/corpus.h"

namespace lakekit::enrich {

/// One discovered semantic domain: a set of terms plus the columns it draws
/// from (D4's "domain as a set of terms", survey Sec. 6.4.1 — e.g.
/// {red, white, black, ...} recovered from vehicle_color, cloth_color, ...).
struct Domain {
  size_t id = 0;
  std::vector<std::string> terms;
  std::vector<discovery::ColumnId> columns;
};

struct D4Options {
  /// Columns whose term sets have Jaccard >= this are assumed to draw from
  /// one domain.
  double column_similarity_threshold = 0.25;
  /// A term belongs to a domain when it appears in at least this fraction
  /// of the domain's columns (robustness against ambiguous terms — D4's
  /// local-frequency signal).
  double term_support_fraction = 0.3;
  /// Only textual columns with at least this many distinct terms take part.
  size_t min_column_terms = 3;
};

/// D4 — data-driven domain discovery over all textual columns of a corpus:
/// columns cluster by term-set overlap (transitive, union-find), and each
/// cluster's domain keeps the terms with sufficient local support, so an
/// ambiguous term (D4's "Apple" example) joins every domain where it is
/// locally frequent rather than gluing unrelated domains together.
class D4DomainDiscovery {
 public:
  explicit D4DomainDiscovery(D4Options options = {});

  /// Runs discovery over every textual column of the corpus.
  std::vector<Domain> Discover(const discovery::Corpus& corpus) const;

  /// Domains containing `term` (by id), given a Discover() result.
  static std::vector<size_t> DomainsOfTerm(const std::vector<Domain>& domains,
                                           const std::string& term);

 private:
  D4Options options_;
};

}  // namespace lakekit::enrich

#endif  // LAKEKIT_ENRICH_D4_H_
