#include "enrich/domain_net.h"

#include <algorithm>
#include <set>

namespace lakekit::enrich {

DomainNet::DomainNet(DomainNetOptions options) : options_(options) {}

void DomainNet::Build(const discovery::Corpus& corpus) {
  attributes_of_value_.clear();
  community_of_.clear();

  std::vector<uint64_t> attribute_ids;
  for (const discovery::ColumnSketch& s : corpus.sketches()) {
    if (!s.is_textual()) continue;
    attribute_ids.push_back(s.id.Packed());
    for (const std::string& v : s.distinct_values) {
      attributes_of_value_[v].push_back(s.id.Packed());
    }
  }

  // Initialize each attribute to its own community label.
  for (uint64_t id : attribute_ids) community_of_[id] = id;

  // Shared-value edge weights of the attribute projection: two attributes
  // are neighbors when they share a value.
  std::map<uint64_t, std::map<uint64_t, size_t>> neighbor_weight;
  for (const auto& [value, attrs] : attributes_of_value_) {
    for (uint64_t a : attrs) {
      for (uint64_t b : attrs) {
        if (a != b) ++neighbor_weight[a][b];
      }
    }
  }

  // Asynchronous label propagation: attributes (in sorted order for
  // determinism) adopt the weight-dominant label among their neighbors,
  // updating in place — the asynchronous schedule avoids the label-swap
  // oscillation of synchronous updates. Ties keep the smaller label.
  for (int iter = 0; iter < options_.propagation_iterations; ++iter) {
    bool changed = false;
    for (uint64_t attr : attribute_ids) {
      auto it = neighbor_weight.find(attr);
      if (it == neighbor_weight.end()) continue;
      std::map<uint64_t, size_t> ballot;  // label -> weight
      for (const auto& [neighbor, weight] : it->second) {
        ballot[community_of_[neighbor]] += weight;
      }
      uint64_t best_label = community_of_[attr];
      size_t best_votes = 0;
      for (const auto& [label, count] : ballot) {
        if (count > best_votes ||
            (count == best_votes && label < best_label)) {
          best_votes = count;
          best_label = label;
        }
      }
      if (best_label != community_of_[attr]) {
        community_of_[attr] = best_label;
        changed = true;
      }
    }
    if (!changed) break;
  }
}

Result<uint64_t> DomainNet::CommunityOf(discovery::ColumnId column) const {
  auto it = community_of_.find(column.Packed());
  if (it == community_of_.end()) {
    return Status::NotFound("column not part of the DomainNet network");
  }
  return it->second;
}

size_t DomainNet::num_communities() const {
  std::set<uint64_t> labels;
  for (const auto& [attr, label] : community_of_) labels.insert(label);
  return labels.size();
}

double DomainNet::HomographScore(const std::string& value) const {
  auto it = attributes_of_value_.find(value);
  if (it == attributes_of_value_.end()) return 0.0;
  std::set<uint64_t> communities;
  for (uint64_t attr : it->second) {
    communities.insert(community_of_.at(attr));
  }
  return static_cast<double>(communities.size());
}

std::vector<Homograph> DomainNet::FindHomographs() const {
  std::vector<Homograph> out;
  for (const auto& [value, attrs] : attributes_of_value_) {
    if (attrs.size() < options_.min_attribute_count) continue;
    std::set<uint64_t> communities;
    for (uint64_t attr : attrs) communities.insert(community_of_.at(attr));
    if (communities.size() >= 2) {
      out.push_back(Homograph{value, communities.size(),
                              static_cast<double>(communities.size())});
    }
  }
  std::sort(out.begin(), out.end(), [](const Homograph& a, const Homograph& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.value < b.value;
  });
  return out;
}

}  // namespace lakekit::enrich
