#ifndef LAKEKIT_ENRICH_DOMAIN_NET_H_
#define LAKEKIT_ENRICH_DOMAIN_NET_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "discovery/corpus.h"

namespace lakekit::enrich {

/// A value flagged as a homograph: it appears in attributes belonging to
/// multiple value communities (DomainNet's "Apple: fruit or brand?",
/// survey Sec. 6.4.1).
struct Homograph {
  std::string value;
  /// Distinct communities among the attributes containing the value.
  size_t num_communities = 0;
  /// Homograph score: num_communities (>= 2 means ambiguous).
  double score = 0;
};

struct DomainNetOptions {
  /// Label-propagation iterations over the value-attribute graph.
  int propagation_iterations = 10;
  /// Minimum attribute count for a value to be considered (values in one
  /// attribute cannot be homographs).
  size_t min_attribute_count = 2;
};

/// DomainNet: builds the bipartite network of data values and the attributes
/// (columns) containing them, detects communities with synchronous label
/// propagation on the attribute side, and flags values whose attribute
/// neighborhoods span multiple communities as homographs.
class DomainNet {
 public:
  explicit DomainNet(DomainNetOptions options = {});

  /// Runs community detection over the corpus's textual columns.
  void Build(const discovery::Corpus& corpus);

  /// Community label of an attribute (column), by packed id.
  Result<uint64_t> CommunityOf(discovery::ColumnId column) const;

  size_t num_communities() const;

  /// All values bridging >= 2 communities, by descending score.
  std::vector<Homograph> FindHomographs() const;

  /// Homograph score of one value (1 when unambiguous, 0 when unknown).
  double HomographScore(const std::string& value) const;

 private:
  DomainNetOptions options_;
  /// value -> packed column ids containing it.
  std::unordered_map<std::string, std::vector<uint64_t>> attributes_of_value_;
  /// packed column id -> community label.
  std::map<uint64_t, uint64_t> community_of_;
};

}  // namespace lakekit::enrich

#endif  // LAKEKIT_ENRICH_DOMAIN_NET_H_
