#include "enrich/rfd.h"

#include <map>
#include <unordered_map>

#include "ingest/profiler.h"

namespace lakekit::enrich {

namespace {

/// Composite key of LHS values for one row.
std::string LhsKey(const table::Table& t, const std::vector<size_t>& lhs_cols,
                   size_t row) {
  std::string key;
  for (size_t c : lhs_cols) {
    const table::Value& v = t.at(row, c);
    key += v.is_null() ? "\x01" : v.ToString();
    key += "\x02";
  }
  return key;
}

RelaxedFd Evaluate(const table::Table& t, const std::vector<size_t>& lhs_cols,
                   size_t rhs_col) {
  RelaxedFd fd;
  for (size_t c : lhs_cols) fd.lhs.push_back(t.schema().field(c).name);
  fd.rhs = t.schema().field(rhs_col).name;

  // Group rows by LHS key; find per-group majority RHS value.
  std::unordered_map<std::string, std::map<std::string, std::vector<size_t>>>
      groups;  // lhs key -> rhs value -> rows
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const table::Value& rhs = t.at(r, rhs_col);
    groups[LhsKey(t, lhs_cols, r)][rhs.is_null() ? "\x01" : rhs.ToString()]
        .push_back(r);
  }
  size_t consistent = 0;
  for (const auto& [key, rhs_counts] : groups) {
    // Majority RHS value in this group.
    size_t best = 0;
    const std::vector<size_t>* best_rows = nullptr;
    for (const auto& [rhs_value, rows] : rhs_counts) {
      if (rows.size() > best) {
        best = rows.size();
        best_rows = &rows;
      }
    }
    consistent += best;
    for (const auto& [rhs_value, rows] : rhs_counts) {
      if (&rows == best_rows) continue;
      for (size_t r : rows) fd.violating_rows.push_back(r);
    }
  }
  fd.confidence = t.num_rows() == 0
                      ? 1.0
                      : static_cast<double>(consistent) /
                            static_cast<double>(t.num_rows());
  std::sort(fd.violating_rows.begin(), fd.violating_rows.end());
  return fd;
}

}  // namespace

RelaxedFd EvaluateFd(const table::Table& t,
                     const std::vector<std::string>& lhs,
                     const std::string& rhs) {
  std::vector<size_t> lhs_cols;
  for (const std::string& name : lhs) {
    auto idx = t.schema().IndexOf(name);
    if (idx) lhs_cols.push_back(*idx);
  }
  auto rhs_idx = t.schema().IndexOf(rhs);
  if (lhs_cols.size() != lhs.size() || !rhs_idx) {
    RelaxedFd empty;
    empty.lhs = lhs;
    empty.rhs = rhs;
    return empty;
  }
  return Evaluate(t, lhs_cols, *rhs_idx);
}

std::vector<RelaxedFd> DiscoverRelaxedFds(const table::Table& t,
                                          const RfdOptions& options) {
  std::vector<RelaxedFd> out;
  const size_t n = t.num_columns();

  // Column uniqueness for key pruning.
  std::vector<double> uniqueness(n);
  for (size_t c = 0; c < n; ++c) {
    uniqueness[c] =
        ingest::Profiler::ProfileColumn(t.schema().field(c).name, t.column(c))
            .uniqueness();
  }

  // Level 1: single-attribute LHS.
  std::vector<std::vector<bool>> holds_single(n, std::vector<bool>(n, false));
  for (size_t x = 0; x < n; ++x) {
    if (uniqueness[x] > options.max_lhs_uniqueness) continue;
    for (size_t y = 0; y < n; ++y) {
      if (x == y) continue;
      RelaxedFd fd = Evaluate(t, {x}, y);
      if (fd.confidence >= options.min_confidence) {
        holds_single[x][y] = true;
        out.push_back(std::move(fd));
      }
    }
  }

  // Level 2: pair LHS, pruned by minimality (skip when either single side
  // already determines y).
  if (options.search_pairs) {
    for (size_t x1 = 0; x1 < n; ++x1) {
      if (uniqueness[x1] > options.max_lhs_uniqueness) continue;
      for (size_t x2 = x1 + 1; x2 < n; ++x2) {
        if (uniqueness[x2] > options.max_lhs_uniqueness) continue;
        for (size_t y = 0; y < n; ++y) {
          if (y == x1 || y == x2) continue;
          if (holds_single[x1][y] || holds_single[x2][y]) continue;
          RelaxedFd fd = Evaluate(t, {x1, x2}, y);
          if (fd.confidence >= options.min_confidence) {
            out.push_back(std::move(fd));
          }
        }
      }
    }
  }
  return out;
}

}  // namespace lakekit::enrich
