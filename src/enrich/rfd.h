#ifndef LAKEKIT_ENRICH_RFD_H_
#define LAKEKIT_ENRICH_RFD_H_

#include <string>
#include <vector>

#include "table/table.h"

namespace lakekit::enrich {

/// A discovered relaxed functional dependency lhs -> rhs holding on at
/// least `confidence` of the tuples (Constance's RFD discovery, survey
/// Sec. 6.4.2): dependencies that survive a controlled fraction of
/// inconsistent tuples in raw lake data.
struct RelaxedFd {
  std::vector<std::string> lhs;
  std::string rhs;
  /// Fraction of rows consistent with the dependency (per-LHS-group
  /// majority).
  double confidence = 0;
  /// Rows violating the majority mapping.
  std::vector<size_t> violating_rows;
};

struct RfdOptions {
  /// Minimum confidence for a dependency to be reported.
  double min_confidence = 0.9;
  /// Also search 2-attribute LHS (level 2 of the lattice). Singles that
  /// already satisfy min_confidence prune their supersets (minimality).
  bool search_pairs = true;
  /// LHS columns with uniqueness above this are skipped: keys trivially
  /// determine everything.
  double max_lhs_uniqueness = 0.99;
};

/// Discovers relaxed FDs in one table: for every candidate LHS, rows group
/// by LHS value; the majority RHS value per group defines the dependency;
/// confidence = consistent rows / rows. Violating row indexes are recorded
/// for the data-cleaning tier (Sec. 6.5 uses them as error candidates).
std::vector<RelaxedFd> DiscoverRelaxedFds(const table::Table& t,
                                          const RfdOptions& options = {});

/// Confidence of a specific lhs -> rhs dependency, with violating rows.
RelaxedFd EvaluateFd(const table::Table& t,
                     const std::vector<std::string>& lhs,
                     const std::string& rhs);

}  // namespace lakekit::enrich

#endif  // LAKEKIT_ENRICH_RFD_H_
