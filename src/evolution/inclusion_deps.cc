#include "evolution/inclusion_deps.h"

#include <unordered_set>

namespace lakekit::evolution {

std::string InclusionDependency::ToString() const {
  std::string out = dependent_table + "[";
  for (size_t i = 0; i < dependent_columns.size(); ++i) {
    if (i > 0) out += ",";
    out += dependent_columns[i];
  }
  out += "] <= " + referenced_table + "[";
  for (size_t i = 0; i < referenced_columns.size(); ++i) {
    if (i > 0) out += ",";
    out += referenced_columns[i];
  }
  out += "]";
  return out;
}

namespace {

std::string TupleKey(const table::Table& t, const std::vector<size_t>& cols,
                     size_t row) {
  std::string key;
  for (size_t c : cols) {
    const table::Value& v = t.at(row, c);
    key += v.is_null() ? "\x01" : v.ToString();
    key += "\x02";
  }
  return key;
}

}  // namespace

bool HoldsInclusion(const table::Table& dependent,
                    const std::vector<size_t>& dep_cols,
                    const table::Table& referenced,
                    const std::vector<size_t>& ref_cols) {
  std::unordered_set<std::string> referenced_tuples;
  for (size_t r = 0; r < referenced.num_rows(); ++r) {
    referenced_tuples.insert(TupleKey(referenced, ref_cols, r));
  }
  for (size_t r = 0; r < dependent.num_rows(); ++r) {
    if (referenced_tuples.count(TupleKey(dependent, dep_cols, r)) == 0) {
      return false;
    }
  }
  return dependent.num_rows() > 0;
}

std::vector<InclusionDependency> DiscoverInclusionDependencies(
    const std::vector<table::Table>& tables, const IndOptions& options) {
  std::vector<InclusionDependency> out;

  // Distinct counts for the min_distinct filter.
  auto distinct_count = [](const table::Table& t, size_t col) {
    std::unordered_set<std::string> values;
    for (const table::Value& v : t.column(col)) {
      if (!v.is_null()) values.insert(v.ToString());
    }
    return values.size();
  };

  // Unary INDs between all cross-table column pairs.
  struct Unary {
    size_t dep_table;
    size_t dep_col;
    size_t ref_table;
    size_t ref_col;
  };
  std::vector<Unary> unary;
  for (size_t a = 0; a < tables.size(); ++a) {
    for (size_t b = 0; b < tables.size(); ++b) {
      if (a == b) continue;
      for (size_t ca = 0; ca < tables[a].num_columns(); ++ca) {
        if (distinct_count(tables[a], ca) < options.min_distinct) continue;
        for (size_t cb = 0; cb < tables[b].num_columns(); ++cb) {
          if (distinct_count(tables[b], cb) < options.min_distinct) continue;
          if (HoldsInclusion(tables[a], {ca}, tables[b], {cb})) {
            unary.push_back(Unary{a, ca, b, cb});
            out.push_back(InclusionDependency{
                tables[a].name(),
                {tables[a].schema().field(ca).name},
                tables[b].name(),
                {tables[b].schema().field(cb).name}});
          }
        }
      }
    }
  }

  // k-ary (k=2 here; higher arities extend the same candidate join): pair
  // two unary INDs over the same table pair with distinct columns, verify
  // on tuples.
  if (options.max_arity >= 2) {
    for (size_t i = 0; i < unary.size(); ++i) {
      for (size_t j = i + 1; j < unary.size(); ++j) {
        const Unary& u = unary[i];
        const Unary& v = unary[j];
        if (u.dep_table != v.dep_table || u.ref_table != v.ref_table) continue;
        if (u.dep_col == v.dep_col || u.ref_col == v.ref_col) continue;
        if (HoldsInclusion(tables[u.dep_table], {u.dep_col, v.dep_col},
                           tables[u.ref_table], {u.ref_col, v.ref_col})) {
          out.push_back(InclusionDependency{
              tables[u.dep_table].name(),
              {tables[u.dep_table].schema().field(u.dep_col).name,
               tables[u.dep_table].schema().field(v.dep_col).name},
              tables[u.ref_table].name(),
              {tables[u.ref_table].schema().field(u.ref_col).name,
               tables[u.ref_table].schema().field(v.ref_col).name}});
        }
      }
    }
  }
  return out;
}

}  // namespace lakekit::evolution
