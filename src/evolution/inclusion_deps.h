#ifndef LAKEKIT_EVOLUTION_INCLUSION_DEPS_H_
#define LAKEKIT_EVOLUTION_INCLUSION_DEPS_H_

#include <string>
#include <vector>

#include "table/table.h"

namespace lakekit::evolution {

/// A (k-ary) inclusion dependency R[X1..Xk] ⊆ S[Y1..Yk]: every value tuple
/// of the dependent columns appears among the referenced columns
/// (Klettke et al.'s k-ary IND detection, survey Sec. 6.6 — NoSQL schemas
/// are "less normalized", so INDs often span multiple attributes).
struct InclusionDependency {
  std::string dependent_table;
  std::vector<std::string> dependent_columns;
  std::string referenced_table;
  std::vector<std::string> referenced_columns;

  size_t arity() const { return dependent_columns.size(); }
  std::string ToString() const;
};

struct IndOptions {
  /// Maximum LHS arity searched.
  size_t max_arity = 2;
  /// Columns participating in an IND must have at least this many distinct
  /// values (tiny columns produce spurious inclusions).
  size_t min_distinct = 2;
};

/// Checks one specific inclusion dependency exactly.
bool HoldsInclusion(const table::Table& dependent,
                    const std::vector<size_t>& dep_cols,
                    const table::Table& referenced,
                    const std::vector<size_t>& ref_cols);

/// Discovers INDs up to `max_arity` across a set of tables. Unary INDs are
/// found by exact value-set containment; k-ary candidates are generated
/// only from combinations whose unary projections all hold (the standard
/// apriori-style pruning), then verified on value tuples.
std::vector<InclusionDependency> DiscoverInclusionDependencies(
    const std::vector<table::Table>& tables, const IndOptions& options = {});

}  // namespace lakekit::evolution

#endif  // LAKEKIT_EVOLUTION_INCLUSION_DEPS_H_
