#include "evolution/schema_history.h"

#include <algorithm>

namespace lakekit::evolution {

const PropertySpec* EntityTypeVersion::FindProperty(
    const std::string& name) const {
  for (const PropertySpec& p : properties) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

std::string_view ChangeKindName(ChangeKind kind) {
  switch (kind) {
    case ChangeKind::kAddProperty:
      return "add";
    case ChangeKind::kRemoveProperty:
      return "remove";
    case ChangeKind::kRenameProperty:
      return "rename";
    case ChangeKind::kTypeChange:
      return "type_change";
  }
  return "unknown";
}

std::string SchemaChange::ToString() const {
  std::string out(ChangeKindName(kind));
  out += " " + property;
  if (!detail.empty()) out += " -> " + detail;
  return out;
}

namespace {

std::vector<PropertySpec> PropertiesOf(const json::Value& doc,
                                       const std::string& ts_field) {
  std::vector<PropertySpec> out;
  if (!doc.is_object()) return out;
  for (const auto& [key, value] : doc.as_object().entries()) {
    if (key == ts_field) continue;
    out.push_back(PropertySpec{key, std::string(value.TypeName())});
  }
  std::sort(out.begin(), out.end(),
            [](const PropertySpec& a, const PropertySpec& b) {
              return a.name < b.name;
            });
  return out;
}

}  // namespace

Result<std::vector<EntityTypeVersion>> SchemaHistory::ExtractVersions(
    const std::vector<json::Value>& docs, const std::string& ts_field) {
  if (docs.empty()) {
    return Status::InvalidArgument("no documents");
  }
  // Order by timestamp.
  std::vector<const json::Value*> ordered;
  ordered.reserve(docs.size());
  for (const json::Value& d : docs) {
    if (!d.is_object() || d.Get(ts_field) == nullptr) {
      return Status::InvalidArgument("document missing timestamp field '" +
                                     ts_field + "'");
    }
    ordered.push_back(&d);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [&](const json::Value* a, const json::Value* b) {
                     return a->GetInt(ts_field) < b->GetInt(ts_field);
                   });

  std::vector<EntityTypeVersion> versions;
  for (const json::Value* doc : ordered) {
    std::vector<PropertySpec> props = PropertiesOf(*doc, ts_field);
    int64_t ts = doc->GetInt(ts_field);
    if (!versions.empty() && versions.back().properties == props) {
      versions.back().last_ts = ts;
      ++versions.back().num_documents;
      continue;
    }
    EntityTypeVersion v;
    v.version = versions.size() + 1;
    v.first_ts = ts;
    v.last_ts = ts;
    v.num_documents = 1;
    v.properties = std::move(props);
    versions.push_back(std::move(v));
  }
  return versions;
}

std::vector<SchemaChange> SchemaHistory::DiffVersions(
    const EntityTypeVersion& from, const EntityTypeVersion& to) {
  std::vector<SchemaChange> changes;
  std::vector<PropertySpec> removed;
  std::vector<PropertySpec> added;
  for (const PropertySpec& p : from.properties) {
    const PropertySpec* other = to.FindProperty(p.name);
    if (other == nullptr) {
      removed.push_back(p);
    } else if (other->type != p.type) {
      changes.push_back(
          SchemaChange{ChangeKind::kTypeChange, p.name, other->type});
    }
  }
  for (const PropertySpec& p : to.properties) {
    if (from.FindProperty(p.name) == nullptr) added.push_back(p);
  }
  // Pair removed/added of the same type as renames (first-match heuristic;
  // the paper defers ambiguous cases to user validation).
  std::vector<bool> added_used(added.size(), false);
  for (const PropertySpec& r : removed) {
    bool renamed = false;
    for (size_t i = 0; i < added.size(); ++i) {
      if (!added_used[i] && added[i].type == r.type) {
        added_used[i] = true;
        changes.push_back(
            SchemaChange{ChangeKind::kRenameProperty, r.name, added[i].name});
        renamed = true;
        break;
      }
    }
    if (!renamed) {
      changes.push_back(SchemaChange{ChangeKind::kRemoveProperty, r.name, ""});
    }
  }
  for (size_t i = 0; i < added.size(); ++i) {
    if (!added_used[i]) {
      changes.push_back(
          SchemaChange{ChangeKind::kAddProperty, added[i].name, ""});
    }
  }
  return changes;
}

Result<std::vector<SchemaChange>> SchemaHistory::ExtractChanges(
    const std::vector<json::Value>& docs, const std::string& ts_field) {
  LAKEKIT_ASSIGN_OR_RETURN(auto versions, ExtractVersions(docs, ts_field));
  std::vector<SchemaChange> out;
  for (size_t i = 1; i < versions.size(); ++i) {
    for (SchemaChange& c : DiffVersions(versions[i - 1], versions[i])) {
      out.push_back(std::move(c));
    }
  }
  return out;
}

}  // namespace lakekit::evolution
