#ifndef LAKEKIT_EVOLUTION_SCHEMA_HISTORY_H_
#define LAKEKIT_EVOLUTION_SCHEMA_HISTORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "json/value.h"

namespace lakekit::evolution {

/// One property of an entity-type version.
struct PropertySpec {
  std::string name;
  std::string type;  // json type name: "int", "string", ...

  bool operator==(const PropertySpec&) const = default;
};

/// One structure version of an entity type with its residing time interval
/// (Klettke et al., survey Sec. 6.6).
struct EntityTypeVersion {
  size_t version = 0;
  int64_t first_ts = 0;
  int64_t last_ts = 0;
  size_t num_documents = 0;
  std::vector<PropertySpec> properties;

  bool SameStructure(const EntityTypeVersion& other) const {
    return properties == other.properties;
  }
  const PropertySpec* FindProperty(const std::string& name) const;
};

/// A detected operation between two consecutive versions.
enum class ChangeKind {
  kAddProperty,
  kRemoveProperty,
  kRenameProperty,
  kTypeChange,
};

std::string_view ChangeKindName(ChangeKind kind);

struct SchemaChange {
  ChangeKind kind = ChangeKind::kAddProperty;
  std::string property;
  /// Rename: the new name. Type change: the new type. Otherwise empty.
  std::string detail;

  std::string ToString() const;
};

/// Reconstructs the evolution history of an entity type from timestamped
/// JSON documents: documents are ordered by `ts_field`; every change of the
/// property-set signature opens a new version; consecutive versions are
/// diffed into add/remove/rename/type-change operations. Rename detection
/// pairs a removed and an added property of identical type (the
/// user-validated heuristic in the paper).
class SchemaHistory {
 public:
  static Result<std::vector<EntityTypeVersion>> ExtractVersions(
      const std::vector<json::Value>& docs,
      const std::string& ts_field = "_ts");

  static std::vector<SchemaChange> DiffVersions(
      const EntityTypeVersion& from, const EntityTypeVersion& to);

  /// Versions + the change list between each consecutive pair, flattened.
  static Result<std::vector<SchemaChange>> ExtractChanges(
      const std::vector<json::Value>& docs,
      const std::string& ts_field = "_ts");
};

}  // namespace lakekit::evolution

#endif  // LAKEKIT_EVOLUTION_SCHEMA_HISTORY_H_
