#include "ingest/format_detect.h"

#include <cctype>
#include <string>

#include "common/string_util.h"
#include "json/parser.h"

namespace lakekit::ingest {

using storage::DataFormat;

namespace {

bool LooksBinary(std::string_view content) {
  size_t inspect = std::min<size_t>(content.size(), 4096);
  for (size_t i = 0; i < inspect; ++i) {
    unsigned char c = static_cast<unsigned char>(content[i]);
    if (c == 0) return true;
  }
  return false;
}

/// A CSV-looking file has a consistent comma count >= 1 across its first
/// lines.
bool LooksCsv(std::string_view content) {
  size_t start = 0;
  int expected = -1;
  int lines = 0;
  while (start < content.size() && lines < 10) {
    size_t end = content.find('\n', start);
    if (end == std::string_view::npos) end = content.size();
    std::string_view line = content.substr(start, end - start);
    if (!Trim(line).empty()) {
      int commas = 0;
      bool in_quotes = false;
      for (char c : line) {
        if (c == '"') in_quotes = !in_quotes;
        if (c == ',' && !in_quotes) ++commas;
      }
      if (commas == 0) return false;
      if (expected == -1) {
        expected = commas;
      } else if (commas != expected) {
        return false;
      }
      ++lines;
    }
    if (end == content.size()) break;
    start = end + 1;
  }
  return lines > 0;
}

/// Log files: lines that mostly start with a timestamp-ish or bracketed
/// prefix and are not uniform CSV.
bool LooksLog(std::string_view content) {
  size_t start = 0;
  int lines = 0;
  int log_like = 0;
  while (start < content.size() && lines < 20) {
    size_t end = content.find('\n', start);
    if (end == std::string_view::npos) end = content.size();
    std::string_view line = Trim(content.substr(start, end - start));
    if (!line.empty()) {
      ++lines;
      bool starts_digit = std::isdigit(static_cast<unsigned char>(line[0]));
      bool starts_bracket = line[0] == '[';
      if (starts_digit || starts_bracket) ++log_like;
    }
    if (end == content.size()) break;
    start = end + 1;
  }
  return lines > 0 && log_like * 2 >= lines;
}

}  // namespace

DataFormat SniffContent(std::string_view content) {
  if (content.empty()) return DataFormat::kUnknown;
  if (LooksBinary(content)) return DataFormat::kBinary;
  std::string_view trimmed = Trim(content);
  if (!trimmed.empty() && (trimmed.front() == '{' || trimmed.front() == '[')) {
    // Validate the first document (full file, or first NDJSON line).
    size_t eol = trimmed.find('\n');
    std::string_view head =
        eol == std::string_view::npos ? trimmed : Trim(trimmed.substr(0, eol));
    if (json::Parse(trimmed).ok() || json::Parse(head).ok()) {
      return DataFormat::kJson;
    }
  }
  if (LooksCsv(content)) return DataFormat::kCsv;
  if (LooksLog(content)) return DataFormat::kLog;
  return DataFormat::kUnknown;
}

DataFormat DetectFormat(std::string_view filename, std::string_view content) {
  std::string lower = ToLower(filename);
  if (EndsWith(lower, ".csv") || EndsWith(lower, ".tsv")) {
    return DataFormat::kCsv;
  }
  if (EndsWith(lower, ".json") || EndsWith(lower, ".ndjson") ||
      EndsWith(lower, ".jsonl")) {
    return DataFormat::kJson;
  }
  if (EndsWith(lower, ".log")) return DataFormat::kLog;
  if (EndsWith(lower, ".graphml") || EndsWith(lower, ".graph")) {
    return DataFormat::kGraph;
  }
  if (EndsWith(lower, ".bin") || EndsWith(lower, ".png") ||
      EndsWith(lower, ".jpg") || EndsWith(lower, ".parquet")) {
    return DataFormat::kBinary;
  }
  return SniffContent(content);
}

}  // namespace lakekit::ingest
