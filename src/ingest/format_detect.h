#ifndef LAKEKIT_INGEST_FORMAT_DETECT_H_
#define LAKEKIT_INGEST_FORMAT_DETECT_H_

#include <string_view>

#include "storage/polystore.h"

namespace lakekit::ingest {

/// Detects the format of a raw payload, GEMMS-style (survey Sec. 5.1):
/// first from the filename extension, then — when the extension is missing
/// or unknown — by sniffing content (JSON bracket structure, CSV delimiter
/// consistency, log-line timestamps, binary bytes).
storage::DataFormat DetectFormat(std::string_view filename,
                                 std::string_view content);

/// Content-only sniffing (used when no filename is available).
storage::DataFormat SniffContent(std::string_view content);

}  // namespace lakekit::ingest

#endif  // LAKEKIT_INGEST_FORMAT_DETECT_H_
