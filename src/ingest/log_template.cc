#include "ingest/log_template.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>

#include "common/string_util.h"

namespace lakekit::ingest {

namespace {
constexpr std::string_view kWildcard = "<*>";
}  // namespace

std::string LogTemplate::Pattern() const {
  return Join(tokens, " ");
}

bool LogTemplate::Matches(std::string_view line) const {
  std::vector<std::string> line_tokens =
      LogTemplateExtractor::TokenizeLine(line);
  if (line_tokens.size() != tokens.size()) return false;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i] != kWildcard && tokens[i] != line_tokens[i]) return false;
  }
  return true;
}

LogTemplateExtractor::LogTemplateExtractor(LogTemplateOptions options)
    : options_(options) {}

std::vector<std::string> LogTemplateExtractor::TokenizeLine(
    std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

bool LogTemplateExtractor::IsVariableToken(std::string_view token) {
  if (token.size() > 32) return true;
  for (char c : token) {
    if (std::isdigit(static_cast<unsigned char>(c))) return true;
  }
  return false;
}

std::vector<LogTemplate> LogTemplateExtractor::Extract(
    std::string_view log_text) const {
  // Step 1: candidate generation into a counting hash table.
  std::unordered_map<std::string, LogTemplate> candidates;
  size_t num_lines = 0;
  size_t start = 0;
  while (start <= log_text.size()) {
    size_t end = log_text.find('\n', start);
    if (end == std::string_view::npos) end = log_text.size();
    std::string_view line = Trim(log_text.substr(start, end - start));
    if (!line.empty()) {
      ++num_lines;
      std::vector<std::string> tokens = TokenizeLine(line);
      for (std::string& t : tokens) {
        if (IsVariableToken(t)) t = std::string(kWildcard);
      }
      std::string key = Join(tokens, " ");
      auto [it, inserted] = candidates.try_emplace(key);
      if (inserted) it->second.tokens = std::move(tokens);
      ++it->second.support;
    }
    if (end == log_text.size()) break;
    start = end + 1;
  }
  if (num_lines == 0) return {};

  // Step 2: coverage-threshold pruning.
  const size_t min_support = std::max<size_t>(
      1, static_cast<size_t>(options_.min_coverage *
                             static_cast<double>(num_lines)));
  std::vector<LogTemplate> templates;
  for (auto& [key, tmpl] : candidates) {
    if (tmpl.support >= min_support) templates.push_back(std::move(tmpl));
  }

  // Step 3: refinement — merge same-arity templates differing in exactly one
  // position by generalizing that position.
  for (int pass = 0; pass < options_.refinement_passes; ++pass) {
    bool merged_any = false;
    for (size_t i = 0; i < templates.size(); ++i) {
      for (size_t j = i + 1; j < templates.size(); ++j) {
        if (templates[i].tokens.size() != templates[j].tokens.size()) continue;
        size_t diff_pos = 0;
        int diffs = 0;
        for (size_t p = 0; p < templates[i].tokens.size() && diffs <= 1; ++p) {
          if (templates[i].tokens[p] != templates[j].tokens[p]) {
            diff_pos = p;
            ++diffs;
          }
        }
        if (diffs == 1) {
          templates[i].tokens[diff_pos] = std::string(kWildcard);
          templates[i].support += templates[j].support;
          templates.erase(templates.begin() + static_cast<ptrdiff_t>(j));
          --j;
          merged_any = true;
        }
      }
    }
    if (!merged_any) break;
  }
  // Re-deduplicate templates made identical by refinement.
  {
    std::unordered_map<std::string, size_t> index;
    std::vector<LogTemplate> deduped;
    for (LogTemplate& t : templates) {
      std::string key = t.Pattern();
      auto it = index.find(key);
      if (it == index.end()) {
        index[key] = deduped.size();
        deduped.push_back(std::move(t));
      } else {
        deduped[it->second].support += t.support;
      }
    }
    templates = std::move(deduped);
  }

  // Rank: support first, then more literal tokens (specificity) as the
  // tiebreak — DATAMARAN's score favors structure that explains more data
  // with more fixed content.
  auto literal_count = [](const LogTemplate& t) {
    size_t literals = 0;
    for (const std::string& tok : t.tokens) {
      if (tok != kWildcard) ++literals;
    }
    return literals;
  };
  std::sort(templates.begin(), templates.end(),
            [&](const LogTemplate& a, const LogTemplate& b) {
              if (a.support != b.support) return a.support > b.support;
              return literal_count(a) > literal_count(b);
            });
  if (templates.size() > options_.max_templates) {
    templates.resize(options_.max_templates);
  }
  return templates;
}

std::optional<size_t> LogTemplateExtractor::Match(
    const std::vector<LogTemplate>& templates, std::string_view line) {
  for (size_t i = 0; i < templates.size(); ++i) {
    if (templates[i].Matches(line)) return i;
  }
  return std::nullopt;
}

}  // namespace lakekit::ingest
