#ifndef LAKEKIT_INGEST_LOG_TEMPLATE_H_
#define LAKEKIT_INGEST_LOG_TEMPLATE_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lakekit::ingest {

/// A recovered log record structure: literal tokens with "<*>" wildcards for
/// variable fields, e.g. "INFO user <*> logged in from <*>".
struct LogTemplate {
  std::vector<std::string> tokens;
  /// Number of input lines this template covers.
  size_t support = 0;

  /// Space-joined pattern string.
  std::string Pattern() const;

  /// Whether `line` matches this template (same token count; literals must
  /// equal, wildcards match anything).
  bool Matches(std::string_view line) const;
};

/// Tuning for template extraction.
struct LogTemplateOptions {
  /// A template must cover at least this fraction of input lines to survive
  /// (DATAMARAN's coverage-threshold assumption).
  double min_coverage = 0.01;
  /// Cap on the number of emitted templates.
  size_t max_templates = 64;
  /// Number of refinement passes merging near-identical templates.
  int refinement_passes = 3;
};

/// DATAMARAN-style unsupervised structure extraction from log files
/// (survey Sec. 5.1), in the paper's three steps:
///  1. candidate generation — each line yields a template by masking
///     digit-bearing tokens as variables, hashed into a counting table;
///  2. pruning — templates below the coverage threshold are dropped and the
///     rest ranked by a score favoring high support and more literals;
///  3. refinement — same-arity templates differing in a single position are
///     generalized and merged until fixpoint.
class LogTemplateExtractor {
 public:
  explicit LogTemplateExtractor(LogTemplateOptions options = {});

  /// Extracts templates from raw log text (one record per line), ordered by
  /// descending support.
  std::vector<LogTemplate> Extract(std::string_view log_text) const;

  /// Index of the first template in `templates` matching `line`.
  static std::optional<size_t> Match(const std::vector<LogTemplate>& templates,
                                     std::string_view line);

  /// Whitespace tokenization of one log line.
  static std::vector<std::string> TokenizeLine(std::string_view line);

  /// True when a token should be treated as a variable field (contains a
  /// digit, or is longer than 32 characters).
  static bool IsVariableToken(std::string_view token);

 private:
  LogTemplateOptions options_;
};

}  // namespace lakekit::ingest

#endif  // LAKEKIT_INGEST_LOG_TEMPLATE_H_
