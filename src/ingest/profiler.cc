#include "ingest/profiler.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "ingest/format_detect.h"
#include "json/parser.h"
#include "text/tokenize.h"

namespace lakekit::ingest {

using storage::DataFormat;
using table::DataType;
using table::Table;
using table::Value;

ColumnProfile Profiler::ProfileColumn(std::string name,
                                      const std::vector<Value>& values,
                                      size_t top_k) {
  ColumnProfile p;
  p.name = std::move(name);
  p.row_count = values.size();

  std::unordered_map<std::string, size_t> counts;
  DataType widest = DataType::kNull;
  double sum = 0;
  double sq_sum = 0;
  size_t numeric_count = 0;
  size_t string_length_sum = 0;
  size_t string_count = 0;
  bool first_numeric = true;

  for (const Value& v : values) {
    if (v.is_null()) {
      ++p.null_count;
      continue;
    }
    DataType t = v.type();
    if (widest == DataType::kNull) {
      widest = t;
    } else if (widest != t) {
      widest = ((widest == DataType::kInt64 && t == DataType::kDouble) ||
                (widest == DataType::kDouble && t == DataType::kInt64))
                   ? DataType::kDouble
                   : DataType::kString;
    }
    ++counts[v.ToString()];
    if (v.is_numeric()) {
      double d = v.as_double();
      if (first_numeric) {
        p.min = d;
        p.max = d;
        first_numeric = false;
      } else {
        p.min = std::min(p.min, d);
        p.max = std::max(p.max, d);
      }
      sum += d;
      sq_sum += d * d;
      ++numeric_count;
    }
    if (v.is_string()) {
      string_length_sum += v.as_string().size();
      ++string_count;
    }
  }
  p.type = widest == DataType::kNull ? DataType::kString : widest;
  p.distinct_count = counts.size();
  if (numeric_count > 0) {
    p.mean = sum / static_cast<double>(numeric_count);
    double variance =
        sq_sum / static_cast<double>(numeric_count) - p.mean * p.mean;
    p.stddev = variance > 0 ? std::sqrt(variance) : 0.0;
  }
  if (string_count > 0) {
    p.avg_length = static_cast<double>(string_length_sum) /
                   static_cast<double>(string_count);
  }
  const size_t non_null = p.row_count - p.null_count;
  p.is_candidate_key =
      non_null > 0 && p.null_count == 0 && p.distinct_count == non_null;

  std::vector<std::pair<std::string, size_t>> freq(counts.begin(),
                                                   counts.end());
  std::sort(freq.begin(), freq.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (freq.size() > top_k) freq.resize(top_k);
  p.top_values = std::move(freq);
  return p;
}

std::vector<ColumnProfile> Profiler::ProfileTable(const Table& t,
                                                  size_t top_k) {
  std::vector<ColumnProfile> out;
  out.reserve(t.num_columns());
  for (size_t c = 0; c < t.num_columns(); ++c) {
    out.push_back(
        ProfileColumn(t.schema().field(c).name, t.column(c), top_k));
  }
  return out;
}

std::vector<std::string> Profiler::ExtractKeywords(std::string_view content,
                                                   size_t k) {
  static const std::unordered_set<std::string> kStopwords = {
      "the", "a",  "an",  "of", "to",  "in",  "and", "or",  "is",  "are",
      "for", "on", "at",  "by", "with", "from", "as", "it",  "this", "that",
      "was", "be", "has", "had", "not", "but",  "if", "then", "else"};
  std::unordered_map<std::string, size_t> counts;
  for (const std::string& token : text::Tokenize(content)) {
    if (token.size() < 3) continue;
    if (kStopwords.count(token) > 0) continue;
    if (LooksLikeInteger(token)) continue;
    ++counts[token];
  }
  std::vector<std::pair<std::string, size_t>> freq(counts.begin(),
                                                   counts.end());
  std::sort(freq.begin(), freq.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<std::string> keywords;
  for (size_t i = 0; i < freq.size() && i < k; ++i) {
    keywords.push_back(freq[i].first);
  }
  return keywords;
}

Result<FileProfile> Profiler::ProfileFile(std::string_view name,
                                          std::string_view path,
                                          std::string_view content) {
  FileProfile profile;
  profile.name = std::string(name);
  profile.path = std::string(path);
  profile.size_bytes = content.size();
  size_t dot = name.rfind('.');
  profile.extension =
      dot == std::string_view::npos ? "" : std::string(name.substr(dot + 1));
  profile.format = DetectFormat(name, content);

  switch (profile.format) {
    case DataFormat::kCsv: {
      LAKEKIT_ASSIGN_OR_RETURN(Table t,
                               Table::FromCsv(profile.name, content));
      profile.num_records = t.num_rows();
      profile.columns = ProfileTable(t);
      break;
    }
    case DataFormat::kJson: {
      // Whole-file array, single object, or NDJSON.
      json::Array docs;
      Result<json::Value> whole = json::Parse(content);
      if (whole.ok() && whole->is_array()) {
        docs = whole->as_array();
      } else if (whole.ok() && whole->is_object()) {
        docs.push_back(std::move(whole).value());
      } else {
        LAKEKIT_ASSIGN_OR_RETURN(auto lines, json::ParseLines(content));
        docs = std::move(lines);
      }
      profile.num_records = docs.size();
      LAKEKIT_ASSIGN_OR_RETURN(
          Table t, Table::FromJson(profile.name,
                                   json::Value(std::move(docs))));
      profile.columns = ProfileTable(t);
      break;
    }
    case DataFormat::kLog:
    case DataFormat::kUnknown: {
      size_t lines = 0;
      for (char c : content) {
        if (c == '\n') ++lines;
      }
      profile.num_records = lines;
      profile.keywords = ExtractKeywords(content);
      break;
    }
    case DataFormat::kBinary:
    case DataFormat::kGraph:
      // Context metadata only.
      break;
  }
  return profile;
}

}  // namespace lakekit::ingest
