#ifndef LAKEKIT_INGEST_PROFILER_H_
#define LAKEKIT_INGEST_PROFILER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/polystore.h"
#include "table/table.h"

namespace lakekit::ingest {

/// Content statistics of one column (Skluma-style, survey Sec. 5.1; these
/// are also the "signatures" Aurum profiles columns with in Sec. 6.2.1).
struct ColumnProfile {
  std::string name;
  table::DataType type = table::DataType::kString;
  size_t row_count = 0;
  size_t null_count = 0;
  size_t distinct_count = 0;
  /// Numeric columns only.
  double min = 0;
  double max = 0;
  double mean = 0;
  double stddev = 0;
  /// String columns only.
  double avg_length = 0;
  /// Most frequent non-null values (value, count), descending.
  std::vector<std::pair<std::string, size_t>> top_values;
  /// True when every non-null value is distinct and nulls are absent —
  /// a candidate (primary) key.
  bool is_candidate_key = false;

  double null_fraction() const {
    return row_count == 0 ? 0.0
                          : static_cast<double>(null_count) /
                                static_cast<double>(row_count);
  }
  double uniqueness() const {
    size_t non_null = row_count - null_count;
    return non_null == 0 ? 0.0
                         : static_cast<double>(distinct_count) /
                               static_cast<double>(non_null);
  }
};

/// Content- and context-metadata of one ingested file (Skluma).
struct FileProfile {
  std::string name;
  std::string path;
  std::string extension;
  uint64_t size_bytes = 0;
  storage::DataFormat format = storage::DataFormat::kUnknown;
  size_t num_records = 0;
  std::vector<ColumnProfile> columns;
  /// Top content keywords (free-text and unknown formats).
  std::vector<std::string> keywords;
};

/// Skluma-style extensible profiling: file context (name/path/size/extension)
/// first, then format-specific content extractors.
class Profiler {
 public:
  /// Profiles a single column of values.
  static ColumnProfile ProfileColumn(std::string name,
                                     const std::vector<table::Value>& values,
                                     size_t top_k = 5);

  /// Profiles every column of a table.
  static std::vector<ColumnProfile> ProfileTable(const table::Table& t,
                                                 size_t top_k = 5);

  /// Full file profile: detects format, dispatches the right extractor
  /// (CSV -> column profiles, JSON -> flattened column profiles, logs and
  /// unknown text -> keywords).
  static Result<FileProfile> ProfileFile(std::string_view name,
                                         std::string_view path,
                                         std::string_view content);

  /// Top-k content keywords: most frequent word tokens, stopwords and pure
  /// numbers removed.
  static std::vector<std::string> ExtractKeywords(std::string_view text,
                                                  size_t k = 10);
};

}  // namespace lakekit::ingest

#endif  // LAKEKIT_INGEST_PROFILER_H_
