#include "ingest/structural_extractor.h"

#include "table/table.h"

namespace lakekit::ingest {

std::string StructureNode::ToString(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += name;
  out += ": ";
  out += type;
  if (optional) out += " (optional)";
  out += "\n";
  for (const StructureNode& child : children) {
    out += child.ToString(indent + 1);
  }
  return out;
}

const StructureNode* StructureNode::FindChild(
    std::string_view child_name) const {
  for (const StructureNode& child : children) {
    if (child.name == child_name) return &child;
  }
  return nullptr;
}

size_t StructureNode::TreeSize() const {
  size_t n = 1;
  for (const StructureNode& child : children) n += child.TreeSize();
  return n;
}

StructureNode StructuralExtractor::InferJson(const json::Value& doc,
                                             std::string_view name) {
  StructureNode node;
  node.name = std::string(name);
  switch (doc.type()) {
    case json::Type::kNull:
      node.type = "null";
      break;
    case json::Type::kBool:
      node.type = "bool";
      break;
    case json::Type::kInt:
      node.type = "int";
      break;
    case json::Type::kDouble:
      node.type = "double";
      break;
    case json::Type::kString:
      node.type = "string";
      break;
    case json::Type::kObject:
      node.type = "object";
      for (const auto& [key, value] : doc.as_object().entries()) {
        node.children.push_back(InferJson(value, key));
      }
      break;
    case json::Type::kArray: {
      node.type = "array";
      // Merge the structures of all elements into one "item" child.
      bool first = true;
      StructureNode item;
      for (const json::Value& element : doc.as_array()) {
        StructureNode current = InferJson(element, "item");
        item = first ? current : Merge(item, current);
        first = false;
      }
      if (!first) node.children.push_back(std::move(item));
      break;
    }
  }
  return node;
}

StructureNode StructuralExtractor::Merge(const StructureNode& a,
                                         const StructureNode& b) {
  StructureNode out;
  out.name = a.name;
  out.optional = a.optional || b.optional;
  if (a.type == b.type) {
    out.type = a.type;
  } else if ((a.type == "int" && b.type == "double") ||
             (a.type == "double" && b.type == "int")) {
    out.type = "double";
  } else if (a.type == "null") {
    out.type = b.type;
    out.optional = true;
  } else if (b.type == "null") {
    out.type = a.type;
    out.optional = true;
  } else {
    out.type = "mixed";
  }
  // Union of children: shared children merge recursively; one-sided children
  // become optional.
  for (const StructureNode& child : a.children) {
    const StructureNode* other = b.FindChild(child.name);
    if (other != nullptr) {
      out.children.push_back(Merge(child, *other));
    } else {
      StructureNode optional_child = child;
      optional_child.optional = true;
      out.children.push_back(std::move(optional_child));
    }
  }
  for (const StructureNode& child : b.children) {
    if (a.FindChild(child.name) == nullptr) {
      StructureNode optional_child = child;
      optional_child.optional = true;
      out.children.push_back(std::move(optional_child));
    }
  }
  return out;
}

Result<StructureNode> StructuralExtractor::InferJsonDocuments(
    const std::vector<json::Value>& docs, std::string_view name) {
  if (docs.empty()) {
    return Status::InvalidArgument("no documents to infer structure from");
  }
  StructureNode merged = InferJson(docs[0], name);
  for (size_t i = 1; i < docs.size(); ++i) {
    merged = Merge(merged, InferJson(docs[i], name));
  }
  return merged;
}

Result<StructureNode> StructuralExtractor::InferCsv(std::string_view csv_text,
                                                    std::string_view name) {
  LAKEKIT_ASSIGN_OR_RETURN(table::Table t,
                           table::Table::FromCsv(std::string(name), csv_text));
  StructureNode node;
  node.name = std::string(name);
  node.type = "table";
  for (const table::Field& field : t.schema().fields()) {
    StructureNode column;
    column.name = field.name;
    column.type = "column:" + std::string(table::DataTypeName(field.type));
    node.children.push_back(std::move(column));
  }
  return node;
}

}  // namespace lakekit::ingest
