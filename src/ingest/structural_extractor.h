#ifndef LAKEKIT_INGEST_STRUCTURAL_EXTRACTOR_H_
#define LAKEKIT_INGEST_STRUCTURAL_EXTRACTOR_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "json/value.h"

namespace lakekit::ingest {

/// One node of a structural-metadata tree (GEMMS, survey Sec. 5.1): the
/// inferred structure of a semi-structured dataset, with field names, type
/// labels, and optionality across instances.
struct StructureNode {
  std::string name;
  /// "object", "array", "string", "int", "double", "bool", "null", "mixed",
  /// "table", or "column:<type>".
  std::string type;
  /// True when the field is absent in at least one observed instance.
  bool optional = false;
  std::vector<StructureNode> children;

  bool operator==(const StructureNode&) const = default;

  /// Indented human-readable rendering of the subtree.
  std::string ToString(int indent = 0) const;

  /// Finds a direct child by name; nullptr when absent.
  const StructureNode* FindChild(std::string_view child_name) const;

  /// Total node count of the subtree (including this node).
  size_t TreeSize() const;
};

/// GEMMS-style structural metadata extraction: infers schema trees from raw
/// JSON documents and CSV files. The JSON inference walks documents
/// breadth-first and merges per-instance structures, widening conflicting
/// types to "mixed" and marking fields missing from some instances as
/// optional — exactly the flexible, source-evolving extraction the survey
/// attributes to GEMMS/Constance.
class StructuralExtractor {
 public:
  /// Structure of one JSON value.
  static StructureNode InferJson(const json::Value& doc,
                                 std::string_view name = "root");

  /// Merged structure across many documents of the same source.
  static Result<StructureNode> InferJsonDocuments(
      const std::vector<json::Value>& docs, std::string_view name = "root");

  /// Structure of a CSV payload: a "table" node with "column:<type>"
  /// children.
  static Result<StructureNode> InferCsv(std::string_view csv_text,
                                        std::string_view name = "root");

  /// Merges two structure trees (union of children; conflicting scalar types
  /// widen to "mixed"; children present on only one side become optional).
  static StructureNode Merge(const StructureNode& a, const StructureNode& b);
};

}  // namespace lakekit::ingest

#endif  // LAKEKIT_INGEST_STRUCTURAL_EXTRACTOR_H_
