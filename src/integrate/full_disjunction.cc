#include "integrate/full_disjunction.h"

#include <set>
#include <string>
#include <unordered_set>

namespace lakekit::integrate {

namespace {

using Tuple = std::vector<table::Value>;

/// Whether two padded tuples can combine: agree wherever both non-null and
/// overlap on at least one non-null attribute.
bool CanCombine(const Tuple& a, const Tuple& b) {
  bool shares = false;
  for (size_t i = 0; i < a.size(); ++i) {
    const bool an = a[i].is_null();
    const bool bn = b[i].is_null();
    if (!an && !bn) {
      if (!(a[i] == b[i])) return false;
      shares = true;
    }
  }
  return shares;
}

Tuple Combine(const Tuple& a, const Tuple& b) {
  Tuple out = a;
  for (size_t i = 0; i < out.size(); ++i) {
    if (out[i].is_null()) out[i] = b[i];
  }
  return out;
}

/// a subsumed by b: b is defined wherever a is and equal there, and b has
/// strictly more defined attributes (or equal tuples dedup elsewhere).
bool Subsumes(const Tuple& b, const Tuple& a) {
  bool extra = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].is_null()) {
      if (b[i].is_null() || !(a[i] == b[i])) return false;
    } else if (!b[i].is_null()) {
      extra = true;
    }
  }
  return extra;
}

std::string TupleKey(const Tuple& t) {
  std::string key;
  for (const table::Value& v : t) {
    key += v.is_null() ? "\x01" : v.ToString();
    key += "\x02";
  }
  return key;
}

}  // namespace

Result<table::Table> FullDisjunction(const std::vector<table::Table>& sources,
                                     const IntegrationResult& integration,
                                     const FullDisjunctionOptions& options) {
  // Start from the padded outer union.
  LAKEKIT_ASSIGN_OR_RETURN(table::Table padded,
                           ApplyMappings(sources, integration, "fd"));
  std::vector<Tuple> tuples;
  tuples.reserve(padded.num_rows());
  std::unordered_set<std::string> seen;
  for (size_t r = 0; r < padded.num_rows(); ++r) {
    Tuple t = padded.Row(r);
    if (seen.insert(TupleKey(t)).second) tuples.push_back(std::move(t));
  }

  // Fixpoint: combine joinable tuples until no new tuple appears.
  for (size_t round = 0; round < options.max_rounds; ++round) {
    std::vector<Tuple> fresh;
    for (size_t i = 0; i < tuples.size(); ++i) {
      for (size_t j = i + 1; j < tuples.size(); ++j) {
        if (!CanCombine(tuples[i], tuples[j])) continue;
        Tuple merged = Combine(tuples[i], tuples[j]);
        if (seen.insert(TupleKey(merged)).second) {
          fresh.push_back(std::move(merged));
        }
      }
      if (tuples.size() + fresh.size() > options.max_tuples) {
        return Status::FailedPrecondition(
            "full disjunction exceeded tuple budget");
      }
    }
    if (fresh.empty()) break;
    for (Tuple& t : fresh) tuples.push_back(std::move(t));
  }

  // Remove subsumed tuples.
  std::vector<bool> dead(tuples.size(), false);
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (dead[i]) continue;
    for (size_t j = 0; j < tuples.size(); ++j) {
      if (i == j || dead[j]) continue;
      if (Subsumes(tuples[j], tuples[i])) {
        dead[i] = true;
        break;
      }
    }
  }

  table::Table out("full_disjunction", integration.integrated);
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (!dead[i]) {
      LAKEKIT_RETURN_IF_ERROR(out.AppendRow(std::move(tuples[i])));
    }
  }
  return out;
}

Result<table::Table> IntegrateTables(const std::vector<table::Table>& sources,
                                     const SchemaMatcher& matcher,
                                     const FullDisjunctionOptions& options) {
  LAKEKIT_ASSIGN_OR_RETURN(IntegrationResult integration,
                           IntegrateSchemas(sources, matcher));
  return FullDisjunction(sources, integration, options);
}

}  // namespace lakekit::integrate
