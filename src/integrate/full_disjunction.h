#ifndef LAKEKIT_INTEGRATE_FULL_DISJUNCTION_H_
#define LAKEKIT_INTEGRATE_FULL_DISJUNCTION_H_

#include <vector>

#include "common/result.h"
#include "integrate/mapping.h"
#include "table/table.h"

namespace lakekit::integrate {

struct FullDisjunctionOptions {
  /// Safety bound on merge rounds (the fixpoint normally arrives in
  /// #tables - 1 rounds).
  size_t max_rounds = 8;
  /// Safety bound on intermediate tuples.
  size_t max_tuples = 200000;
};

/// ALITE-style integration of related lake tables (survey Sec. 6.3):
/// given tables whose columns have been aligned into one integrated schema,
/// computes the *Full Disjunction* — the maximal natural-outer-join
/// association of tuples across all tables. Two padded tuples combine when
/// they agree on every attribute where both are non-null and share at
/// least one non-null attribute; the result keeps only unsubsumed tuples
/// (a tuple is subsumed when another tuple equals it on all its non-null
/// attributes and is defined on more).
///
/// The alignment step (ALITE's embedding-based holistic matching) is
/// provided by IntegrateSchemas; pass its result here.
Result<table::Table> FullDisjunction(
    const std::vector<table::Table>& sources,
    const IntegrationResult& integration,
    const FullDisjunctionOptions& options = {});

/// Convenience: integrate + full-disjoin in one call.
Result<table::Table> IntegrateTables(const std::vector<table::Table>& sources,
                                     const SchemaMatcher& matcher = SchemaMatcher(),
                                     const FullDisjunctionOptions& options = {});

}  // namespace lakekit::integrate

#endif  // LAKEKIT_INTEGRATE_FULL_DISJUNCTION_H_
