#include "integrate/mapping.h"

#include <numeric>

namespace lakekit::integrate {

namespace {

/// Union-find over (source, column) slots.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

Result<IntegrationResult> IntegrateSchemas(
    const std::vector<table::Table>& sources, const SchemaMatcher& matcher) {
  if (sources.empty()) {
    return Status::InvalidArgument("no sources to integrate");
  }
  // Global slot numbering across sources.
  std::vector<size_t> slot_offset(sources.size());
  size_t total_slots = 0;
  for (size_t s = 0; s < sources.size(); ++s) {
    slot_offset[s] = total_slots;
    total_slots += sources[s].num_columns();
  }
  UnionFind uf(total_slots);

  // Pairwise matching; union matched slots (transitively merges columns
  // matched through intermediaries).
  for (size_t a = 0; a < sources.size(); ++a) {
    for (size_t b = a + 1; b < sources.size(); ++b) {
      for (const AttributeMatch& m : matcher.Match(sources[a], sources[b])) {
        uf.Union(slot_offset[a] + m.left_col, slot_offset[b] + m.right_col);
      }
    }
  }

  // One integrated attribute per union-find root, named and typed by the
  // earliest slot in the group.
  IntegrationResult result;
  std::map<size_t, size_t> integrated_of_root;  // root slot -> column index
  for (size_t s = 0; s < sources.size(); ++s) {
    SchemaMapping mapping;
    mapping.source_table = sources[s].name();
    for (size_t c = 0; c < sources[s].num_columns(); ++c) {
      size_t root = uf.Find(slot_offset[s] + c);
      auto it = integrated_of_root.find(root);
      size_t integrated_col;
      if (it == integrated_of_root.end()) {
        integrated_col = result.integrated.num_fields();
        integrated_of_root[root] = integrated_col;
        result.integrated.AddField(sources[s].schema().field(c));
      } else {
        integrated_col = it->second;
        // Type widening on conflict.
        table::Field merged = result.integrated.field(integrated_col);
        table::DataType other = sources[s].schema().field(c).type;
        if (merged.type != other) {
          bool numeric_pair =
              (merged.type == table::DataType::kInt64 &&
               other == table::DataType::kDouble) ||
              (merged.type == table::DataType::kDouble &&
               other == table::DataType::kInt64);
          table::Schema widened;
          for (size_t f = 0; f < result.integrated.num_fields(); ++f) {
            table::Field field = result.integrated.field(f);
            if (f == integrated_col) {
              field.type = numeric_pair ? table::DataType::kDouble
                                        : table::DataType::kString;
            }
            widened.AddField(field);
          }
          result.integrated = widened;
        }
      }
      mapping.column_map[c] = integrated_col;
    }
    result.mappings.push_back(std::move(mapping));
  }
  return result;
}

Result<table::Table> ApplyMappings(const std::vector<table::Table>& sources,
                                   const IntegrationResult& integration,
                                   std::string result_name) {
  if (sources.size() != integration.mappings.size()) {
    return Status::InvalidArgument(
        "source count does not match mapping count");
  }
  table::Table out(std::move(result_name), integration.integrated);
  for (size_t s = 0; s < sources.size(); ++s) {
    const SchemaMapping& mapping = integration.mappings[s];
    for (size_t r = 0; r < sources[s].num_rows(); ++r) {
      std::vector<table::Value> row(integration.integrated.num_fields(),
                                    table::Value::Null());
      for (const auto& [src_col, dst_col] : mapping.column_map) {
        table::Value v = sources[s].at(r, src_col);
        const table::DataType want =
            integration.integrated.field(dst_col).type;
        if (!v.is_null() && v.type() != want) {
          if (want == table::DataType::kDouble && v.is_int()) {
            v = table::Value(static_cast<double>(v.as_int()));
          } else if (want == table::DataType::kString) {
            v = table::Value(v.ToString());
          }
        }
        row[dst_col] = std::move(v);
      }
      LAKEKIT_RETURN_IF_ERROR(out.AppendRow(std::move(row)));
    }
  }
  return out;
}

}  // namespace lakekit::integrate
