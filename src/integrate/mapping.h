#ifndef LAKEKIT_INTEGRATE_MAPPING_H_
#define LAKEKIT_INTEGRATE_MAPPING_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "integrate/schema_match.h"
#include "table/table.h"

namespace lakekit::integrate {

/// A schema mapping from one source table into the integrated schema:
/// source column index -> integrated column index (Constance's
/// source-to-target mappings, survey Sec. 6.3).
struct SchemaMapping {
  std::string source_table;
  std::map<size_t, size_t> column_map;
};

/// The result of schema integration: a merged schema plus one mapping per
/// source.
struct IntegrationResult {
  table::Schema integrated;
  std::vector<SchemaMapping> mappings;
};

/// Integrates the schemas of `sources`: matched columns (transitively, via
/// union-find over pairwise matches) collapse into one integrated
/// attribute; unmatched columns are carried over verbatim. Integrated
/// attribute names take the first source's spelling; types widen to string
/// on conflict.
Result<IntegrationResult> IntegrateSchemas(
    const std::vector<table::Table>& sources,
    const SchemaMatcher& matcher = SchemaMatcher());

/// Materializes the integrated table: every source row is mapped into the
/// integrated schema (missing attributes become NULL) — the outer-union
/// semantics Constance uses before conflict resolution.
Result<table::Table> ApplyMappings(const std::vector<table::Table>& sources,
                                   const IntegrationResult& integration,
                                   std::string result_name = "integrated");

}  // namespace lakekit::integrate

#endif  // LAKEKIT_INTEGRATE_MAPPING_H_
