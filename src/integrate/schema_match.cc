#include "integrate/schema_match.h"

#include <algorithm>
#include <unordered_set>

#include "text/tokenize.h"

namespace lakekit::integrate {

SchemaMatcher::SchemaMatcher(SchemaMatchOptions options)
    : options_(options) {}

double SchemaMatcher::ColumnSimilarity(const table::Table& left,
                                       size_t left_col,
                                       const table::Table& right,
                                       size_t right_col) const {
  const table::Field& lf = left.schema().field(left_col);
  const table::Field& rf = right.schema().field(right_col);

  double name = text::JaccardSimilarity(text::QGrams(lf.name, 3),
                                        text::QGrams(rf.name, 3));

  // Instance signal: Jaccard over sampled distinct values.
  auto sample_values = [&](const table::Table& t, size_t col) {
    std::unordered_set<std::string> values;
    for (const table::Value& v : t.column(col)) {
      if (v.is_null()) continue;
      values.insert(v.ToString());
      if (values.size() >= options_.value_sample) break;
    }
    return values;
  };
  std::unordered_set<std::string> lv = sample_values(left, left_col);
  std::unordered_set<std::string> rv = sample_values(right, right_col);
  double value_sim = 0;
  if (!lv.empty() || !rv.empty()) {
    size_t inter = 0;
    const auto& small = lv.size() <= rv.size() ? lv : rv;
    const auto& large = lv.size() <= rv.size() ? rv : lv;
    for (const std::string& v : small) {
      if (large.count(v) > 0) ++inter;
    }
    size_t uni = lv.size() + rv.size() - inter;
    value_sim = uni == 0 ? 0.0
                         : static_cast<double>(inter) /
                               static_cast<double>(uni);
  }

  double score =
      options_.name_weight * name + options_.value_weight * value_sim;
  if (lf.type != rf.type) score *= 0.6;
  return score;
}

std::vector<AttributeMatch> SchemaMatcher::Match(
    const table::Table& left, const table::Table& right) const {
  std::vector<AttributeMatch> candidates;
  for (size_t l = 0; l < left.num_columns(); ++l) {
    for (size_t r = 0; r < right.num_columns(); ++r) {
      double score = ColumnSimilarity(left, l, right, r);
      if (score >= options_.threshold) {
        candidates.push_back(AttributeMatch{l, r, score});
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const AttributeMatch& a, const AttributeMatch& b) {
              return a.score > b.score;
            });
  std::vector<bool> left_used(left.num_columns(), false);
  std::vector<bool> right_used(right.num_columns(), false);
  std::vector<AttributeMatch> matches;
  for (const AttributeMatch& c : candidates) {
    if (left_used[c.left_col] || right_used[c.right_col]) continue;
    left_used[c.left_col] = true;
    right_used[c.right_col] = true;
    matches.push_back(c);
  }
  return matches;
}

}  // namespace lakekit::integrate
