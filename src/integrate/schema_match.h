#ifndef LAKEKIT_INTEGRATE_SCHEMA_MATCH_H_
#define LAKEKIT_INTEGRATE_SCHEMA_MATCH_H_

#include <cstddef>
#include <vector>

#include "table/table.h"

namespace lakekit::integrate {

/// One matched attribute pair between two schemas.
struct AttributeMatch {
  size_t left_col = 0;
  size_t right_col = 0;
  double score = 0;
};

struct SchemaMatchOptions {
  /// Blend of the two matcher signals.
  double name_weight = 0.5;
  double value_weight = 0.5;
  /// Pairs scoring below this are not matched. A pure value-overlap match
  /// (renamed columns with shared instances) scores value_weight * Jaccard,
  /// so the default admits renamed columns with >= ~60% value overlap.
  double threshold = 0.3;
  /// Values sampled per column for the instance-based matcher.
  size_t value_sample = 256;
};

/// Hybrid schema matching (survey Sec. 6.3): a name-based matcher (q-gram
/// Jaccard over attribute names) combined with an instance-based matcher
/// (value-set Jaccard over sampled distinct values), with a type-mismatch
/// penalty, then greedy 1:1 stable matching — the classic first step of
/// every lake data-integration pipeline (Constance, ALITE).
class SchemaMatcher {
 public:
  explicit SchemaMatcher(SchemaMatchOptions options = {});

  /// Similarity of one column pair in [0,1].
  double ColumnSimilarity(const table::Table& left, size_t left_col,
                          const table::Table& right, size_t right_col) const;

  /// Greedy 1:1 matching between the two schemas, highest score first.
  std::vector<AttributeMatch> Match(const table::Table& left,
                                    const table::Table& right) const;

 private:
  SchemaMatchOptions options_;
};

}  // namespace lakekit::integrate

#endif  // LAKEKIT_INTEGRATE_SCHEMA_MATCH_H_
