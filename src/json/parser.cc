#include "json/parser.h"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <string>

namespace lakekit::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> ParseDocument() {
    SkipWhitespace();
    LAKEKIT_ASSIGN_OR_RETURN(Value v, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing content after JSON document");
    }
    return v;
  }

 private:
  Status Error(std::string message) const {
    return Status::Corruption("JSON parse error at byte " +
                              std::to_string(pos_) + ": " +
                              std::move(message));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Value> ParseValue() {
    if (depth_ > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        LAKEKIT_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Value(std::move(s));
      }
      case 't':
        return ParseKeyword("true", Value(true));
      case 'f':
        return ParseKeyword("false", Value(false));
      case 'n':
        return ParseKeyword("null", Value(nullptr));
      default:
        return ParseNumber();
    }
  }

  Result<Value> ParseKeyword(std::string_view keyword, Value value) {
    if (text_.substr(pos_, keyword.size()) != keyword) {
      return Error("invalid literal");
    }
    pos_ += keyword.size();
    return value;
  }

  Result<Value> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return Error("invalid number");
    }
    std::string_view token = text_.substr(start, pos_ - start);
    if (!is_double) {
      int64_t i = 0;
      auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), i);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        return Value(i);
      }
      // Overflowing integers fall through to double.
    }
    // std::from_chars<double> is available in GCC 12; use it for locale
    // independence.
    double d = 0;
    auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), d);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      return Error("invalid number '" + std::string(token) + "'");
    }
    return Value(d);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("unterminated escape");
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("bad \\u escape");
              }
            }
            AppendUtf8(code, &out);
            break;
          }
          default:
            return Error("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return Error("unterminated string");
  }

  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Result<Value> ParseObject() {
    ++depth_;
    if (!Consume('{')) return Error("expected '{'");
    Object obj;
    SkipWhitespace();
    if (Consume('}')) {
      --depth_;
      return Value(std::move(obj));
    }
    while (true) {
      SkipWhitespace();
      LAKEKIT_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' in object");
      SkipWhitespace();
      LAKEKIT_ASSIGN_OR_RETURN(Value v, ParseValue());
      obj.Set(key, std::move(v));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}' in object");
    }
    --depth_;
    return Value(std::move(obj));
  }

  Result<Value> ParseArray() {
    ++depth_;
    if (!Consume('[')) return Error("expected '['");
    Array arr;
    SkipWhitespace();
    if (Consume(']')) {
      --depth_;
      return Value(std::move(arr));
    }
    while (true) {
      SkipWhitespace();
      LAKEKIT_ASSIGN_OR_RETURN(Value v, ParseValue());
      arr.push_back(std::move(v));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Error("expected ',' or ']' in array");
    }
    --depth_;
    return Value(std::move(arr));
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

Result<std::vector<Value>> ParseLines(std::string_view text) {
  std::vector<Value> out;
  size_t start = 0;
  size_t line_no = 1;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    // Skip blank lines (including a trailing newline's empty remainder).
    bool blank = true;
    for (char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        blank = false;
        break;
      }
    }
    if (!blank) {
      Result<Value> v = Parse(line);
      if (!v.ok()) {
        return Status::Corruption("line " + std::to_string(line_no) + ": " +
                                  v.status().message());
      }
      out.push_back(std::move(v).value());
    }
    if (end == text.size()) break;
    start = end + 1;
    ++line_no;
  }
  return out;
}

}  // namespace lakekit::json
