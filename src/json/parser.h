#ifndef LAKEKIT_JSON_PARSER_H_
#define LAKEKIT_JSON_PARSER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "json/value.h"

namespace lakekit::json {

/// Parses a single JSON document. Trailing whitespace is allowed; any other
/// trailing content is an error. Errors carry a byte offset in the message.
Result<Value> Parse(std::string_view text);

/// Parses newline-delimited JSON (one document per non-empty line), the
/// interchange format used by lakehouse commit logs and document ingestion.
Result<std::vector<Value>> ParseLines(std::string_view text);

}  // namespace lakekit::json

#endif  // LAKEKIT_JSON_PARSER_H_
