#include "json/value.h"

namespace lakekit::json {

const Value* Object::Find(std::string_view key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value* Object::Find(std::string_view key) {
  for (auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Object::Set(std::string_view key, Value value) {
  if (Value* existing = Find(key)) {
    *existing = std::move(value);
    return;
  }
  entries_.emplace_back(std::string(key), std::move(value));
}

bool Object::Erase(std::string_view key) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->first == key) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

bool Object::operator==(const Object& other) const {
  return entries_ == other.entries_;
}

std::string Value::GetString(std::string_view key, std::string fallback) const {
  const Value* v = Get(key);
  if (v != nullptr && v->is_string()) return v->as_string();
  return fallback;
}

int64_t Value::GetInt(std::string_view key, int64_t fallback) const {
  const Value* v = Get(key);
  if (v != nullptr && v->is_int()) return v->as_int();
  if (v != nullptr && v->is_double()) return static_cast<int64_t>(v->as_double());
  return fallback;
}

std::string_view Value::TypeName() const {
  switch (type()) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return "bool";
    case Type::kInt:
      return "int";
    case Type::kDouble:
      return "double";
    case Type::kString:
      return "string";
    case Type::kArray:
      return "array";
    case Type::kObject:
      return "object";
  }
  return "unknown";
}

}  // namespace lakekit::json
