#ifndef LAKEKIT_JSON_VALUE_H_
#define LAKEKIT_JSON_VALUE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace lakekit::json {

class Value;

/// JSON object with insertion-ordered keys (order matters for schema
/// inference and for byte-stable serialization of lakehouse commits).
class Object {
 public:
  using Entry = std::pair<std::string, Value>;

  Object() = default;

  /// Returns the value for `key`, or nullptr if absent.
  const Value* Find(std::string_view key) const;
  Value* Find(std::string_view key);

  /// Inserts or overwrites `key`. Insertion order is preserved; overwriting
  /// keeps the original position.
  void Set(std::string_view key, Value value);

  /// Removes `key` if present; returns whether it was present.
  bool Erase(std::string_view key);

  bool contains(std::string_view key) const { return Find(key) != nullptr; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const std::vector<Entry>& entries() const { return entries_; }
  std::vector<Entry>& entries() { return entries_; }

  bool operator==(const Object& other) const;

 private:
  std::vector<Entry> entries_;
};

using Array = std::vector<Value>;

/// Type tag of a JSON value.
enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

/// A JSON value: null, bool, 64-bit integer, double, string, array or object.
///
/// Integers are kept distinct from doubles (as produced by the parser when a
/// literal has no fraction/exponent) so that schema inference can distinguish
/// integer columns from floating-point columns.
class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}          // NOLINT
  Value(bool b) : data_(b) {}                        // NOLINT
  Value(int64_t i) : data_(i) {}                     // NOLINT
  Value(int i) : data_(static_cast<int64_t>(i)) {}   // NOLINT
  Value(double d) : data_(d) {}                      // NOLINT
  Value(std::string s) : data_(std::move(s)) {}      // NOLINT
  Value(const char* s) : data_(std::string(s)) {}    // NOLINT
  Value(std::string_view s) : data_(std::string(s)) {}  // NOLINT
  Value(Array a) : data_(std::move(a)) {}            // NOLINT
  Value(Object o) : data_(std::move(o)) {}           // NOLINT

  Type type() const { return static_cast<Type>(data_.index()); }

  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_int() const { return type() == Type::kInt; }
  bool is_double() const { return type() == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  /// Typed accessors; callers must check the type first.
  bool as_bool() const { return std::get<bool>(data_); }
  int64_t as_int() const { return std::get<int64_t>(data_); }
  double as_double() const {
    return is_int() ? static_cast<double>(as_int()) : std::get<double>(data_);
  }
  const std::string& as_string() const { return std::get<std::string>(data_); }
  const Array& as_array() const { return std::get<Array>(data_); }
  Array& as_array() { return std::get<Array>(data_); }
  const Object& as_object() const { return std::get<Object>(data_); }
  Object& as_object() { return std::get<Object>(data_); }

  /// Object member lookup; returns nullptr when this is not an object or the
  /// key is absent. Enables chained navigation: v.Get("a") -> Get("b").
  const Value* Get(std::string_view key) const {
    return is_object() ? as_object().Find(key) : nullptr;
  }

  /// String value of `key`, or `fallback` when absent / wrong type.
  std::string GetString(std::string_view key,
                        std::string fallback = "") const;
  /// Integer value of `key`, or `fallback` when absent / wrong type.
  int64_t GetInt(std::string_view key, int64_t fallback = 0) const;

  bool operator==(const Value& other) const { return data_ == other.data_; }

  /// Short type name ("null", "bool", "int", ...). Useful in diagnostics.
  std::string_view TypeName() const;

 private:
  std::variant<std::nullptr_t, bool, int64_t, double, std::string, Array,
               Object>
      data_;
};

}  // namespace lakekit::json

#endif  // LAKEKIT_JSON_VALUE_H_
