#include "json/writer.h"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace lakekit::json {

namespace {

void AppendDouble(double d, std::string* out) {
  if (std::isnan(d) || std::isinf(d)) {
    // JSON has no NaN/Inf; serialize as null per common practice.
    out->append("null");
    return;
  }
  std::array<char, 32> buf;
  auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), d);
  out->append(buf.data(), ptr);
  // Ensure doubles round-trip as doubles (not re-parsed as ints).
  std::string_view written(buf.data(), static_cast<size_t>(ptr - buf.data()));
  if (written.find('.') == std::string_view::npos &&
      written.find('e') == std::string_view::npos &&
      written.find("null") == std::string_view::npos) {
    out->append(".0");
  }
}

void WriteValue(const Value& v, int indent, int depth, std::string* out);

void AppendIndent(int indent, int depth, std::string* out) {
  if (indent > 0) {
    out->push_back('\n');
    out->append(static_cast<size_t>(indent) * depth, ' ');
  }
}

void WriteObject(const Object& obj, int indent, int depth, std::string* out) {
  out->push_back('{');
  bool first = true;
  for (const auto& [k, v] : obj.entries()) {
    if (!first) out->push_back(',');
    first = false;
    AppendIndent(indent, depth + 1, out);
    out->append(EscapeString(k));
    out->push_back(':');
    if (indent > 0) out->push_back(' ');
    WriteValue(v, indent, depth + 1, out);
  }
  if (!obj.empty()) AppendIndent(indent, depth, out);
  out->push_back('}');
}

void WriteArray(const Array& arr, int indent, int depth, std::string* out) {
  out->push_back('[');
  bool first = true;
  for (const Value& v : arr) {
    if (!first) out->push_back(',');
    first = false;
    AppendIndent(indent, depth + 1, out);
    WriteValue(v, indent, depth + 1, out);
  }
  if (!arr.empty()) AppendIndent(indent, depth, out);
  out->push_back(']');
}

void WriteValue(const Value& v, int indent, int depth, std::string* out) {
  switch (v.type()) {
    case Type::kNull:
      out->append("null");
      break;
    case Type::kBool:
      out->append(v.as_bool() ? "true" : "false");
      break;
    case Type::kInt:
      out->append(std::to_string(v.as_int()));
      break;
    case Type::kDouble:
      AppendDouble(v.as_double(), out);
      break;
    case Type::kString:
      out->append(EscapeString(v.as_string()));
      break;
    case Type::kArray:
      WriteArray(v.as_array(), indent, depth, out);
      break;
    case Type::kObject:
      WriteObject(v.as_object(), indent, depth, out);
      break;
  }
}

}  // namespace

std::string EscapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\b':
        out.append("\\b");
        break;
      case '\f':
        out.append("\\f");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\r':
        out.append("\\r");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out.append(buf);
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string Write(const Value& value) {
  std::string out;
  WriteValue(value, /*indent=*/0, /*depth=*/0, &out);
  return out;
}

std::string WritePretty(const Value& value) {
  std::string out;
  WriteValue(value, /*indent=*/2, /*depth=*/0, &out);
  return out;
}

}  // namespace lakekit::json
