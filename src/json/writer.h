#ifndef LAKEKIT_JSON_WRITER_H_
#define LAKEKIT_JSON_WRITER_H_

#include <string>

#include "json/value.h"

namespace lakekit::json {

/// Serializes `value` to a compact, byte-stable JSON string. Object keys keep
/// their insertion order, so Write(Parse(x)) is idempotent for canonical
/// input — a property the lakehouse commit log relies on.
std::string Write(const Value& value);

/// Serializes with 2-space indentation for human inspection.
std::string WritePretty(const Value& value);

/// Escapes `s` as a JSON string literal, including the surrounding quotes.
std::string EscapeString(const std::string& s);

}  // namespace lakekit::json

#endif  // LAKEKIT_JSON_WRITER_H_
