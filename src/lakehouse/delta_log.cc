#include "lakehouse/delta_log.h"

#include <algorithm>
#include <cstdio>

#include "json/parser.h"
#include "json/writer.h"

namespace lakekit::lakehouse {

namespace {

std::string VersionString(int64_t version) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%020lld",
                static_cast<long long>(version));
  return buf;
}

json::Value CommitToJson(const Commit& commit) {
  // NDJSON: one action per line, Delta-style. Here we emit a single JSON
  // document with an "actions" array for byte-stable parsing simplicity.
  json::Object root;
  json::Object info;
  info.Set("operation", json::Value(commit.operation));
  root.Set("commitInfo", json::Value(std::move(info)));
  if (commit.metadata) {
    json::Object meta;
    meta.Set("name", json::Value(commit.metadata->table_name));
    meta.Set("schema", json::Value(commit.metadata->schema));
    root.Set("metaData", json::Value(std::move(meta)));
  }
  json::Array adds;
  for (const AddFile& f : commit.adds) {
    json::Object add;
    add.Set("path", json::Value(f.path));
    add.Set("size", json::Value(static_cast<int64_t>(f.size)));
    adds.emplace_back(std::move(add));
  }
  root.Set("add", json::Value(std::move(adds)));
  json::Array removes;
  for (const RemoveFile& f : commit.removes) {
    json::Object remove;
    remove.Set("path", json::Value(f.path));
    removes.emplace_back(std::move(remove));
  }
  root.Set("remove", json::Value(std::move(removes)));
  return json::Value(std::move(root));
}

Result<Commit> CommitFromJson(const json::Value& v) {
  if (!v.is_object()) return Status::Corruption("commit is not an object");
  Commit commit;
  if (const json::Value* info = v.Get("commitInfo")) {
    commit.operation = info->GetString("operation");
  }
  if (const json::Value* meta = v.Get("metaData")) {
    TableMetadata metadata;
    metadata.table_name = meta->GetString("name");
    metadata.schema = meta->GetString("schema");
    commit.metadata = std::move(metadata);
  }
  if (const json::Value* adds = v.Get("add"); adds != nullptr && adds->is_array()) {
    for (const json::Value& a : adds->as_array()) {
      commit.adds.push_back(AddFile{
          a.GetString("path"), static_cast<uint64_t>(a.GetInt("size"))});
    }
  }
  if (const json::Value* removes = v.Get("remove");
      removes != nullptr && removes->is_array()) {
    for (const json::Value& r : removes->as_array()) {
      commit.removes.push_back(RemoveFile{r.GetString("path")});
    }
  }
  return commit;
}

}  // namespace

DeltaLog::DeltaLog(storage::ObjectStore* store, std::string table_prefix)
    : store_(store), prefix_(std::move(table_prefix)) {}

std::string DeltaLog::CommitKey(int64_t version) const {
  return prefix_ + "/_delta_log/" + VersionString(version) + ".json";
}

std::string DeltaLog::CheckpointKey(int64_t version) const {
  return prefix_ + "/_delta_log/" + VersionString(version) +
         ".checkpoint.json";
}

Result<int64_t> DeltaLog::LatestVersion() const {
  // Fast path via _last_checkpoint, then linear probe forward.
  int64_t version = FindCheckpoint(INT64_MAX);
  // Probe forward from max(checkpoint, 0).
  int64_t candidate = std::max<int64_t>(version, -1);
  while (store_->Exists(CommitKey(candidate + 1))) {
    ++candidate;
  }
  if (candidate < 0) {
    // Maybe version 0 doesn't exist at all.
    return store_->Exists(CommitKey(0)) ? Result<int64_t>(0)
                                        : Result<int64_t>(-1);
  }
  return candidate;
}

Result<Commit> DeltaLog::ReadCommit(int64_t version) const {
  LAKEKIT_ASSIGN_OR_RETURN(std::string payload,
                           store_->Get(CommitKey(version)));
  LAKEKIT_ASSIGN_OR_RETURN(json::Value v, json::Parse(payload));
  return CommitFromJson(v);
}

Status DeltaLog::ApplyCommit(const Commit& commit, Snapshot* snapshot) const {
  if (commit.metadata) snapshot->metadata = *commit.metadata;
  for (const RemoveFile& r : commit.removes) {
    snapshot->files.erase(
        std::remove_if(snapshot->files.begin(), snapshot->files.end(),
                       [&](const AddFile& f) { return f.path == r.path; }),
        snapshot->files.end());
  }
  for (const AddFile& a : commit.adds) {
    snapshot->files.push_back(a);
  }
  return Status::OK();
}

int64_t DeltaLog::FindCheckpoint(int64_t version) const {
  Result<std::string> last =
      store_->Get(prefix_ + "/_delta_log/_last_checkpoint");
  if (!last.ok()) return -1;
  int64_t checkpoint_version = std::stoll(*last);
  if (checkpoint_version > version) {
    // Requested an older state: scan backwards for an older checkpoint (we
    // only track the latest pointer; fall back to full replay).
    for (int64_t v = version; v >= 0; --v) {
      if (store_->Exists(CheckpointKey(v))) return v;
    }
    return -1;
  }
  return checkpoint_version;
}

Result<Snapshot> DeltaLog::GetSnapshot(std::optional<int64_t> version) const {
  int64_t target;
  if (version) {
    target = *version;
    if (!store_->Exists(CommitKey(target))) {
      return Status::NotFound("no version " + std::to_string(target));
    }
  } else {
    LAKEKIT_ASSIGN_OR_RETURN(target, LatestVersion());
    if (target < 0) {
      return Status::NotFound("empty table log at '" + prefix_ + "'");
    }
  }

  Snapshot snapshot;
  int64_t start = 0;
  int64_t checkpoint = FindCheckpoint(target);
  if (checkpoint >= 0) {
    LAKEKIT_ASSIGN_OR_RETURN(std::string payload,
                             store_->Get(CheckpointKey(checkpoint)));
    LAKEKIT_ASSIGN_OR_RETURN(json::Value v, json::Parse(payload));
    LAKEKIT_ASSIGN_OR_RETURN(Commit state, CommitFromJson(v));
    LAKEKIT_RETURN_IF_ERROR(ApplyCommit(state, &snapshot));
    start = checkpoint + 1;
  }
  for (int64_t v = start; v <= target; ++v) {
    LAKEKIT_ASSIGN_OR_RETURN(Commit commit, ReadCommit(v));
    LAKEKIT_RETURN_IF_ERROR(ApplyCommit(commit, &snapshot));
  }
  snapshot.version = target;
  return snapshot;
}

Result<int64_t> DeltaLog::TryCommit(const Commit& commit, int64_t read_version,
                                    int max_retries) {
  std::string payload = json::Write(CommitToJson(commit));
  int64_t attempt_version = read_version + 1;
  for (int attempt = 0; attempt < max_retries; ++attempt) {
    Status s = store_->PutIfAbsent(CommitKey(attempt_version), payload);
    if (s.ok()) return attempt_version;
    if (!s.IsAlreadyExists()) return s;
    // Lost the race. Append-only commits rebase onto the new tip; anything
    // else is a logical conflict with the concurrent writer.
    if (!commit.IsAppendOnly()) {
      return Status::Aborted(
          "concurrent commit at version " + std::to_string(attempt_version) +
          " conflicts with non-append operation '" + commit.operation + "'");
    }
    LAKEKIT_ASSIGN_OR_RETURN(int64_t latest, LatestVersion());
    attempt_version = latest + 1;
  }
  return Status::Aborted("commit retries exhausted");
}

Status DeltaLog::WriteCheckpoint(int64_t version) {
  LAKEKIT_ASSIGN_OR_RETURN(Snapshot snapshot, GetSnapshot(version));
  Commit state;
  state.metadata = snapshot.metadata;
  state.adds = snapshot.files;
  state.operation = "CHECKPOINT";
  LAKEKIT_RETURN_IF_ERROR(store_->Put(CheckpointKey(version),
                                      json::Write(CommitToJson(state))));
  return store_->Put(prefix_ + "/_delta_log/_last_checkpoint",
                     std::to_string(version));
}

Result<std::vector<std::string>> DeltaLog::History() const {
  LAKEKIT_ASSIGN_OR_RETURN(int64_t latest, LatestVersion());
  std::vector<std::string> out;
  for (int64_t v = 0; v <= latest; ++v) {
    LAKEKIT_ASSIGN_OR_RETURN(Commit commit, ReadCommit(v));
    out.push_back(commit.operation);
  }
  return out;
}

}  // namespace lakekit::lakehouse
