#ifndef LAKEKIT_LAKEHOUSE_DELTA_LOG_H_
#define LAKEKIT_LAKEHOUSE_DELTA_LOG_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/object_store.h"

namespace lakekit::lakehouse {

/// A data file added to the table.
struct AddFile {
  std::string path;
  uint64_t size = 0;
  bool operator==(const AddFile&) const = default;
};

/// A previously added file logically removed.
struct RemoveFile {
  std::string path;
};

/// Table-level metadata carried in the log.
struct TableMetadata {
  std::string table_name;
  /// Schema signature "col:type,..." (table::Schema::ToString format).
  std::string schema;
};

/// One atomic commit: optional metadata update plus file adds/removes,
/// tagged with the operation name for the history.
struct Commit {
  std::optional<TableMetadata> metadata;
  std::vector<AddFile> adds;
  std::vector<RemoveFile> removes;
  std::string operation;  // "CREATE", "APPEND", "OVERWRITE", "DELETE", ...

  /// An append-only commit can always rebase onto concurrent commits;
  /// anything that removes files or changes metadata conflicts with them.
  bool IsAppendOnly() const {
    return removes.empty() && !metadata.has_value();
  }
};

/// The reconstructed state of the table at one version.
struct Snapshot {
  int64_t version = -1;
  TableMetadata metadata;
  std::vector<AddFile> files;
};

/// A Delta-Lake-style transaction log over the object store (survey
/// Sec. 8.3): the table state is the fold of JSON commit files
/// `_delta_log/<v>.json`; commits are made atomic by the object store's
/// put-if-absent, giving optimistic concurrency — a losing writer re-reads,
/// checks for logical conflicts, and retries. Checkpoints collapse log
/// prefixes so snapshot reconstruction is O(commits since checkpoint)
/// instead of O(all commits).
class DeltaLog {
 public:
  DeltaLog(storage::ObjectStore* store, std::string table_prefix);

  /// Latest committed version; -1 when the log is empty.
  Result<int64_t> LatestVersion() const;

  /// State at `version` (default: latest). Uses the newest checkpoint at or
  /// before the requested version.
  Result<Snapshot> GetSnapshot(std::optional<int64_t> version = {}) const;

  /// Attempts to commit against the state read at `read_version`
  /// (use LatestVersion() before preparing the commit). Returns the
  /// committed version. Append-only commits rebase transparently past
  /// concurrent commits; conflicting commits return Aborted after
  /// `max_retries` attempts.
  Result<int64_t> TryCommit(const Commit& commit, int64_t read_version,
                            int max_retries = 10);

  /// Writes a checkpoint of the state at `version` and records it in
  /// `_last_checkpoint`.
  Status WriteCheckpoint(int64_t version);

  /// Operation names of commits 0..latest, in order.
  Result<std::vector<std::string>> History() const;

  const std::string& prefix() const { return prefix_; }

 private:
  std::string CommitKey(int64_t version) const;
  std::string CheckpointKey(int64_t version) const;
  Result<Commit> ReadCommit(int64_t version) const;
  Status ApplyCommit(const Commit& commit, Snapshot* snapshot) const;
  /// Newest checkpoint version <= `version`, or -1.
  int64_t FindCheckpoint(int64_t version) const;

  storage::ObjectStore* store_;
  std::string prefix_;
};

}  // namespace lakekit::lakehouse

#endif  // LAKEKIT_LAKEHOUSE_DELTA_LOG_H_
