#include "lakehouse/delta_table.h"

#include "common/hash.h"
#include "common/string_util.h"
#include "query/operators.h"

namespace lakekit::lakehouse {

Result<table::Schema> SchemaFromSignature(const std::string& signature) {
  table::Schema schema;
  if (signature.empty()) return schema;
  for (const std::string& part : Split(signature, ',')) {
    std::vector<std::string> kv = Split(part, ':');
    if (kv.size() != 2) {
      return Status::Corruption("bad schema signature segment '" + part + "'");
    }
    schema.AddField(table::Field{kv[0], table::DataTypeFromName(kv[1]), true});
  }
  return schema;
}

DeltaTable::DeltaTable(storage::ObjectStore* store, std::string name,
                       table::Schema schema)
    : store_(store),
      name_(std::move(name)),
      schema_(std::move(schema)),
      log_(store, "tables/" + name_) {}

Result<DeltaTable> DeltaTable::Create(storage::ObjectStore* store,
                                      const std::string& name,
                                      const table::Schema& schema) {
  DeltaTable t(store, name, schema);
  LAKEKIT_ASSIGN_OR_RETURN(int64_t latest, t.log_.LatestVersion());
  if (latest >= 0) {
    return Status::AlreadyExists("delta table '" + name + "' already exists");
  }
  Commit commit;
  commit.operation = "CREATE";
  commit.metadata = TableMetadata{name, schema.ToString()};
  LAKEKIT_RETURN_IF_ERROR(t.log_.TryCommit(commit, -1).status());
  return t;
}

Result<DeltaTable> DeltaTable::Open(storage::ObjectStore* store,
                                    const std::string& name) {
  DeltaLog log(store, "tables/" + name);
  LAKEKIT_ASSIGN_OR_RETURN(Snapshot snapshot, log.GetSnapshot());
  LAKEKIT_ASSIGN_OR_RETURN(table::Schema schema,
                           SchemaFromSignature(snapshot.metadata.schema));
  DeltaTable t(store, name, std::move(schema));
  // Continue part numbering past existing files.
  t.next_part_ = static_cast<uint64_t>(snapshot.version + 1) * 1000;
  return t;
}

Status DeltaTable::CheckSchema(const table::Table& rows) const {
  if (rows.schema() == schema_) return Status::OK();
  return Status::InvalidArgument(
      "schema mismatch: table has [" + schema_.ToString() + "], rows have [" +
      rows.schema().ToString() + "]");
}

Result<AddFile> DeltaTable::WritePart(const table::Table& rows) {
  // Content-addressed-ish unique name: counter + content hash avoids
  // collisions across writers.
  std::string csv = rows.ToCsv();
  std::string path = "tables/" + name_ + "/part-" +
                     std::to_string(next_part_++) + "-" +
                     std::to_string(Fnv1a64(csv) & 0xFFFFFF) + ".csv";
  LAKEKIT_RETURN_IF_ERROR(store_->Put(path, csv));
  return AddFile{path, csv.size()};
}

Status DeltaTable::Append(const table::Table& rows) {
  LAKEKIT_RETURN_IF_ERROR(CheckSchema(rows));
  if (rows.num_rows() == 0) return Status::OK();
  LAKEKIT_ASSIGN_OR_RETURN(AddFile add, WritePart(rows));
  LAKEKIT_ASSIGN_OR_RETURN(int64_t read_version, log_.LatestVersion());
  Commit commit;
  commit.operation = "APPEND";
  commit.adds.push_back(std::move(add));
  return log_.TryCommit(commit, read_version).status();
}

Status DeltaTable::Overwrite(const table::Table& rows) {
  LAKEKIT_RETURN_IF_ERROR(CheckSchema(rows));
  LAKEKIT_ASSIGN_OR_RETURN(int64_t read_version, log_.LatestVersion());
  LAKEKIT_ASSIGN_OR_RETURN(Snapshot snapshot, log_.GetSnapshot(read_version));
  Commit commit;
  commit.operation = "OVERWRITE";
  for (const AddFile& f : snapshot.files) {
    commit.removes.push_back(RemoveFile{f.path});
  }
  if (rows.num_rows() > 0) {
    LAKEKIT_ASSIGN_OR_RETURN(AddFile add, WritePart(rows));
    commit.adds.push_back(std::move(add));
  }
  // Overwrite must carry metadata so IsAppendOnly() is false... it already
  // has removes; metadata unchanged.
  return log_.TryCommit(commit, read_version).status();
}

Status DeltaTable::DeleteWhere(const query::Expr& predicate) {
  LAKEKIT_ASSIGN_OR_RETURN(int64_t read_version, log_.LatestVersion());
  LAKEKIT_ASSIGN_OR_RETURN(Snapshot snapshot, log_.GetSnapshot(read_version));
  Commit commit;
  commit.operation = "DELETE";
  for (const AddFile& f : snapshot.files) {
    LAKEKIT_ASSIGN_OR_RETURN(std::string csv, store_->Get(f.path));
    LAKEKIT_ASSIGN_OR_RETURN(table::Table part,
                             table::Table::FromCsv(name_, csv));
    // Keep rows NOT matching the predicate.
    LAKEKIT_ASSIGN_OR_RETURN(table::Table matching,
                             query::Filter(part, predicate));
    if (matching.num_rows() == 0) continue;  // file untouched
    commit.removes.push_back(RemoveFile{f.path});
    // Rewrite: rows where the predicate is false or NULL survive.
    table::Table survivors(name_, part.schema());
    for (size_t r = 0; r < part.num_rows(); ++r) {
      std::vector<table::Value> row = part.Row(r);
      LAKEKIT_ASSIGN_OR_RETURN(
          bool matches, query::EvalPredicate(predicate, part.schema(), row));
      if (!matches) {
        LAKEKIT_RETURN_IF_ERROR(survivors.AppendRow(std::move(row)));
      }
    }
    if (survivors.num_rows() > 0) {
      LAKEKIT_ASSIGN_OR_RETURN(AddFile add, WritePart(survivors));
      commit.adds.push_back(std::move(add));
    }
  }
  if (commit.removes.empty()) return Status::OK();  // nothing matched
  return log_.TryCommit(commit, read_version).status();
}

Result<table::Table> DeltaTable::Read(std::optional<int64_t> version) const {
  LAKEKIT_ASSIGN_OR_RETURN(Snapshot snapshot, log_.GetSnapshot(version));
  LAKEKIT_ASSIGN_OR_RETURN(table::Schema schema,
                           SchemaFromSignature(snapshot.metadata.schema));
  table::Table out(name_, schema);
  for (const AddFile& f : snapshot.files) {
    LAKEKIT_ASSIGN_OR_RETURN(std::string csv, store_->Get(f.path));
    LAKEKIT_ASSIGN_OR_RETURN(table::Table part,
                             table::Table::FromCsv(name_, csv));
    if (part.num_columns() != schema.num_fields()) {
      return Status::Corruption("part file '" + f.path +
                                "' does not match table schema");
    }
    for (size_t r = 0; r < part.num_rows(); ++r) {
      // Coerce part cell types to the table schema (CSV re-sniffing can
      // narrow, e.g. an all-integral double column).
      std::vector<table::Value> row = part.Row(r);
      for (size_t c = 0; c < row.size(); ++c) {
        if (row[c].is_null()) continue;
        const table::DataType want = schema.field(c).type;
        if (row[c].type() != want) {
          if (want == table::DataType::kDouble && row[c].is_int()) {
            row[c] = table::Value(static_cast<double>(row[c].as_int()));
          } else if (want == table::DataType::kString) {
            row[c] = table::Value(row[c].ToString());
          }
        }
      }
      LAKEKIT_RETURN_IF_ERROR(out.AppendRow(std::move(row)));
    }
  }
  return out;
}

Result<int64_t> DeltaTable::Version() const { return log_.LatestVersion(); }

Status DeltaTable::Checkpoint() {
  LAKEKIT_ASSIGN_OR_RETURN(int64_t version, log_.LatestVersion());
  if (version < 0) return Status::FailedPrecondition("empty table");
  return log_.WriteCheckpoint(version);
}

}  // namespace lakekit::lakehouse
