#ifndef LAKEKIT_LAKEHOUSE_DELTA_TABLE_H_
#define LAKEKIT_LAKEHOUSE_DELTA_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "lakehouse/delta_log.h"
#include "query/expr.h"
#include "table/table.h"

namespace lakekit::lakehouse {

/// An ACID table over the object store (the Lakehouse pattern, survey
/// Sec. 8.3): rows live in immutable CSV part files; the DeltaLog commits
/// which parts are live. Appends are optimistic-concurrency safe;
/// overwrites and deletes conflict with concurrent writers; any historical
/// version remains readable (time travel).
class DeltaTable {
 public:
  /// Creates a new table (commit 0 = CREATE with the schema).
  static Result<DeltaTable> Create(storage::ObjectStore* store,
                                   const std::string& name,
                                   const table::Schema& schema);

  /// Opens an existing table.
  static Result<DeltaTable> Open(storage::ObjectStore* store,
                                 const std::string& name);

  /// Appends rows (schema must match by field names/types).
  Status Append(const table::Table& rows);

  /// Replaces the entire content.
  Status Overwrite(const table::Table& rows);

  /// Deletes rows matching `predicate` by rewriting affected part files.
  Status DeleteWhere(const query::Expr& predicate);

  /// Reads the table at `version` (default: latest).
  Result<table::Table> Read(std::optional<int64_t> version = {}) const;

  /// Latest version number.
  Result<int64_t> Version() const;

  /// Collapses the log prefix at the current version.
  Status Checkpoint();

  /// Commit operations in order.
  Result<std::vector<std::string>> History() const { return log_.History(); }

  const std::string& name() const { return name_; }
  const table::Schema& schema() const { return schema_; }
  DeltaLog& log() { return log_; }

 private:
  DeltaTable(storage::ObjectStore* store, std::string name,
             table::Schema schema);

  /// Writes rows as a new part file; returns its AddFile.
  Result<AddFile> WritePart(const table::Table& rows);
  Status CheckSchema(const table::Table& rows) const;

  storage::ObjectStore* store_;
  std::string name_;
  table::Schema schema_;
  DeltaLog log_;
  uint64_t next_part_ = 0;
};

/// Reconstructs a Schema from its ToString() signature.
Result<table::Schema> SchemaFromSignature(const std::string& signature);

}  // namespace lakekit::lakehouse

#endif  // LAKEKIT_LAKEHOUSE_DELTA_TABLE_H_
