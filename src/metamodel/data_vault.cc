#include "metamodel/data_vault.h"

#include <map>

namespace lakekit::metamodel {

const Hub* DataVaultModel::FindHub(std::string_view name) const {
  for (const Hub& h : hubs) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

const Link* DataVaultModel::FindLink(std::string_view name) const {
  for (const Link& l : links) {
    if (l.name == name) return &l;
  }
  return nullptr;
}

std::vector<const Satellite*> DataVaultModel::SatellitesOf(
    std::string_view parent) const {
  std::vector<const Satellite*> out;
  for (const Satellite& s : satellites) {
    if (s.parent == parent) out.push_back(&s);
  }
  return out;
}

std::string DataVaultModel::ToString() const {
  std::string out;
  for (const Hub& h : hubs) {
    out += "hub " + h.name + " (key=" + h.business_key + ")\n";
  }
  for (const Link& l : links) {
    out += "link " + l.name + " (";
    for (size_t i = 0; i < l.hub_names.size(); ++i) {
      if (i > 0) out += ", ";
      out += l.hub_names[i];
    }
    out += ")\n";
  }
  for (const Satellite& s : satellites) {
    out += "sat " + s.name + " -> " + s.parent + " [" +
           std::to_string(s.attributes.size()) + " attrs]\n";
  }
  return out;
}

Result<DataVaultModel> DeriveDataVault(
    const std::vector<table::Table>& tables,
    const std::vector<TableRelation>& relations) {
  DataVaultModel model;
  std::map<std::string, std::string> hub_of_table;  // table -> hub name

  for (const table::Table& t : tables) {
    // Find a candidate key column via profiling.
    std::vector<ingest::ColumnProfile> profiles =
        ingest::Profiler::ProfileTable(t);
    const ingest::ColumnProfile* key = nullptr;
    for (const ingest::ColumnProfile& p : profiles) {
      if (p.is_candidate_key) {
        key = &p;
        break;
      }
    }
    if (key == nullptr) continue;  // keyless tables do not form hubs
    Hub hub;
    hub.name = "hub_" + t.name();
    hub.business_key = key->name;
    hub.source_table = t.name();
    hub_of_table[t.name()] = hub.name;
    model.hubs.push_back(hub);

    Satellite sat;
    sat.name = "sat_" + t.name();
    sat.parent = hub.name;
    for (const table::Field& f : t.schema().fields()) {
      if (f.name != key->name) sat.attributes.push_back(f.name);
    }
    if (!sat.attributes.empty()) model.satellites.push_back(std::move(sat));
  }

  for (const TableRelation& r : relations) {
    auto from_it = hub_of_table.find(r.from_table);
    auto to_it = hub_of_table.find(r.to_table);
    if (from_it == hub_of_table.end() || to_it == hub_of_table.end()) {
      continue;  // a relation between keyless tables cannot form a link
    }
    Link link;
    link.name = "link_" + r.from_table + "_" + r.to_table;
    link.hub_names = {from_it->second, to_it->second};
    link.source_table = r.from_table;
    model.links.push_back(std::move(link));
  }

  if (model.hubs.empty()) {
    return Status::FailedPrecondition(
        "no table has a candidate key; cannot derive a data vault");
  }
  return model;
}

}  // namespace lakekit::metamodel
