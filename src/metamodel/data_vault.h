#ifndef LAKEKIT_METAMODEL_DATA_VAULT_H_
#define LAKEKIT_METAMODEL_DATA_VAULT_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "ingest/profiler.h"
#include "table/table.h"

namespace lakekit::metamodel {

/// A data-vault conceptual model (survey Sec. 5.2.2) with its three element
/// types: *hubs* for business concepts keyed by a business key, *links* for
/// many-to-many relationships among hubs, and *satellites* carrying the
/// descriptive attributes of a hub or link.
struct Hub {
  std::string name;
  std::string business_key;  // the key attribute
  std::string source_table;
};

struct Link {
  std::string name;
  std::vector<std::string> hub_names;  // connected hubs
  std::string source_table;
};

struct Satellite {
  std::string name;
  /// Hub or link this satellite describes.
  std::string parent;
  std::vector<std::string> attributes;
};

/// A complete data-vault model.
struct DataVaultModel {
  std::vector<Hub> hubs;
  std::vector<Link> links;
  std::vector<Satellite> satellites;

  const Hub* FindHub(std::string_view name) const;
  const Link* FindLink(std::string_view name) const;
  /// Satellites of a hub or link.
  std::vector<const Satellite*> SatellitesOf(std::string_view parent) const;

  /// Human-readable summary of the model.
  std::string ToString() const;
};

/// A detected foreign-key style relationship between two tables' columns,
/// used to derive links.
struct TableRelation {
  std::string from_table;
  std::string from_column;
  std::string to_table;
  std::string to_column;
};

/// Derives a data-vault model from a set of tables (Nogueira et al.'s and
/// Giebler et al.'s practice, Sec. 5.2.2): each table with a candidate key
/// becomes a hub (key = business key) plus one satellite with its remaining
/// attributes; each provided relation becomes a link between the involved
/// hubs. Tables without a candidate key contribute only satellites attached
/// to the hub their relation points to (or are skipped when unrelated).
Result<DataVaultModel> DeriveDataVault(
    const std::vector<table::Table>& tables,
    const std::vector<TableRelation>& relations);

}  // namespace lakekit::metamodel

#endif  // LAKEKIT_METAMODEL_DATA_VAULT_H_
