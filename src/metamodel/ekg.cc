#include "metamodel/ekg.h"

#include <algorithm>
#include <deque>

#include "common/hash.h"

namespace lakekit::metamodel {

std::string_view RelationName(Relation r) {
  switch (r) {
    case Relation::kContentSimilar:
      return "content_similar";
    case Relation::kSchemaSimilar:
      return "schema_similar";
    case Relation::kPkFk:
      return "pk_fk";
  }
  return "unknown";
}

Ekg::NodeId Ekg::AddNode(std::string_view table, std::string_view column) {
  std::string name = std::string(table) + "." + std::string(column);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  NodeId id = nodes_.size() + 1;
  nodes_.push_back(Node{id, std::string(table), std::string(column)});
  by_name_[name] = id;
  return id;
}

std::optional<Ekg::NodeId> Ekg::FindNode(std::string_view table,
                                         std::string_view column) const {
  auto it =
      by_name_.find(std::string(table) + "." + std::string(column));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

Result<Ekg::Node> Ekg::GetNode(NodeId id) const {
  if (id == 0 || id > nodes_.size()) {
    return Status::NotFound("no EKG node " + std::to_string(id));
  }
  return nodes_[id - 1];
}

uint64_t Ekg::PairKey(NodeId a, NodeId b, Relation r) {
  if (a > b) std::swap(a, b);
  return HashCombine(HashCombine(a, b), static_cast<uint64_t>(r));
}

Status Ekg::AddEdge(NodeId a, NodeId b, Relation relation, double weight) {
  if (a == b) return Status::InvalidArgument("self edge in EKG");
  LAKEKIT_RETURN_IF_ERROR(GetNode(a).status());
  LAKEKIT_RETURN_IF_ERROR(GetNode(b).status());
  uint64_t key = PairKey(a, b, relation);
  auto it = edge_index_.find(key);
  if (it != edge_index_.end()) {
    edges_[it->second].weight = weight;
    return Status::OK();
  }
  edge_index_[key] = edges_.size();
  adjacency_[a].push_back(edges_.size());
  adjacency_[b].push_back(edges_.size());
  edges_.push_back(Edge{a, b, relation, weight});
  return Status::OK();
}

Ekg::HyperedgeId Ekg::AddHyperedge(std::string_view label,
                                   std::vector<NodeId> nodes) {
  HyperedgeId id = hyperedges_.size() + 1;
  hyperedges_.push_back(Hyperedge{id, std::string(label), std::move(nodes)});
  return id;
}

std::vector<std::pair<Ekg::NodeId, double>> Ekg::Neighbors(
    NodeId node, Relation relation, double min_weight) const {
  std::vector<std::pair<NodeId, double>> out;
  auto it = adjacency_.find(node);
  if (it == adjacency_.end()) return out;
  for (size_t edge_idx : it->second) {
    const Edge& e = edges_[edge_idx];
    if (e.relation != relation || e.weight < min_weight) continue;
    out.emplace_back(e.a == node ? e.b : e.a, e.weight);
  }
  std::sort(out.begin(), out.end(), [](const auto& x, const auto& y) {
    if (x.second != y.second) return x.second > y.second;
    return x.first < y.first;
  });
  return out;
}

std::vector<Ekg::NodeId> Ekg::FindPath(NodeId from, NodeId to,
                                       Relation relation, size_t max_hops,
                                       double min_weight) const {
  if (from == to) return {from};
  std::unordered_map<NodeId, NodeId> parent;
  std::deque<std::pair<NodeId, size_t>> queue{{from, 0}};
  parent[from] = from;
  while (!queue.empty()) {
    auto [current, depth] = queue.front();
    queue.pop_front();
    if (depth >= max_hops) continue;
    for (const auto& [neighbor, weight] :
         Neighbors(current, relation, min_weight)) {
      if (parent.find(neighbor) != parent.end()) continue;
      parent[neighbor] = current;
      if (neighbor == to) {
        std::vector<NodeId> path;
        for (NodeId n = to; n != from; n = parent[n]) path.push_back(n);
        path.push_back(from);
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.emplace_back(neighbor, depth + 1);
    }
  }
  return {};
}

std::vector<Ekg::Hyperedge> Ekg::HyperedgesOf(NodeId node) const {
  std::vector<Hyperedge> out;
  for (const Hyperedge& h : hyperedges_) {
    if (std::find(h.nodes.begin(), h.nodes.end(), node) != h.nodes.end()) {
      out.push_back(h);
    }
  }
  return out;
}

std::vector<Ekg::NodeId> Ekg::HyperedgeNodes(std::string_view label) const {
  for (const Hyperedge& h : hyperedges_) {
    if (h.label == label) return h.nodes;
  }
  return {};
}

}  // namespace lakekit::metamodel
