#ifndef LAKEKIT_METAMODEL_EKG_H_
#define LAKEKIT_METAMODEL_EKG_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace lakekit::metamodel {

/// Relationship kinds between EKG nodes (column attributes).
enum class Relation {
  kContentSimilar,  // instance-value overlap (MinHash/Jaccard)
  kSchemaSimilar,   // attribute-name similarity
  kPkFk,            // inferred primary-key / foreign-key
};

std::string_view RelationName(Relation r);

/// Aurum's Enterprise Knowledge Graph (survey Sec. 5.2.3, 6.2.1): a
/// hypergraph whose nodes are dataset attributes (columns), whose weighted
/// edges record pairwise relationships, and whose hyperedges group arbitrary
/// node sets — most importantly, the columns of one table.
class Ekg {
 public:
  using NodeId = uint64_t;
  using HyperedgeId = uint64_t;

  struct Node {
    NodeId id = 0;
    std::string table;
    std::string column;
    std::string FullName() const { return table + "." + column; }
  };

  struct Edge {
    NodeId a = 0;
    NodeId b = 0;
    Relation relation = Relation::kContentSimilar;
    double weight = 0;
  };

  struct Hyperedge {
    HyperedgeId id = 0;
    std::string label;
    std::vector<NodeId> nodes;
  };

  /// Adds (or returns the existing) node for table.column.
  NodeId AddNode(std::string_view table, std::string_view column);

  /// Node lookup by full name; nullopt when absent.
  std::optional<NodeId> FindNode(std::string_view table,
                                 std::string_view column) const;

  Result<Node> GetNode(NodeId id) const;

  /// Adds an undirected weighted relation edge (idempotent per
  /// (pair, relation): re-adding updates the weight).
  Status AddEdge(NodeId a, NodeId b, Relation relation, double weight);

  /// Groups nodes under a labeled hyperedge (e.g. all columns of a table).
  HyperedgeId AddHyperedge(std::string_view label, std::vector<NodeId> nodes);

  /// Neighbors of `node` via `relation` with weight >= min_weight,
  /// (neighbor, weight) pairs sorted by descending weight.
  std::vector<std::pair<NodeId, double>> Neighbors(
      NodeId node, Relation relation, double min_weight = 0.0) const;

  /// BFS path between attributes following `relation` edges with weight >=
  /// min_weight; empty when unreachable within max_hops.
  std::vector<NodeId> FindPath(NodeId from, NodeId to, Relation relation,
                               size_t max_hops = 6,
                               double min_weight = 0.0) const;

  /// All hyperedges containing `node`.
  std::vector<Hyperedge> HyperedgesOf(NodeId node) const;

  /// Nodes of the hyperedge labeled `label` (first match).
  std::vector<NodeId> HyperedgeNodes(std::string_view label) const;

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return edges_.size(); }
  size_t num_hyperedges() const { return hyperedges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }

 private:
  static uint64_t PairKey(NodeId a, NodeId b, Relation r);

  std::vector<Node> nodes_;  // id == index + 1
  std::vector<Edge> edges_;
  std::unordered_map<uint64_t, size_t> edge_index_;
  std::unordered_map<NodeId, std::vector<size_t>> adjacency_;
  std::unordered_map<std::string, NodeId> by_name_;
  std::vector<Hyperedge> hyperedges_;
};

}  // namespace lakekit::metamodel

#endif  // LAKEKIT_METAMODEL_EKG_H_
