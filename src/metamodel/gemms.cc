#include "metamodel/gemms.h"

#include "common/string_util.h"

namespace lakekit::metamodel {

json::Value MetadataUnit::ToJson() const {
  json::Object o;
  o.Set("dataset", json::Value(dataset));
  json::Object props;
  for (const auto& [k, v] : properties) props.Set(k, json::Value(v));
  o.Set("properties", json::Value(std::move(props)));
  o.Set("structure", json::Value(structure.ToString()));
  json::Array anns;
  for (const SemanticAnnotation& a : annotations) {
    json::Object ann;
    ann.Set("element", json::Value(a.element_path));
    ann.Set("term", json::Value(a.ontology_term));
    anns.emplace_back(std::move(ann));
  }
  o.Set("annotations", json::Value(std::move(anns)));
  return json::Value(std::move(o));
}

const ingest::StructureNode* GemmsModel::ResolvePath(
    const ingest::StructureNode& root, std::string_view path) {
  std::vector<std::string> parts = Split(path, '/');
  if (parts.empty() || parts[0] != root.name) return nullptr;
  const ingest::StructureNode* current = &root;
  for (size_t i = 1; i < parts.size(); ++i) {
    current = current->FindChild(parts[i]);
    if (current == nullptr) return nullptr;
  }
  return current;
}

Status GemmsModel::AddUnit(MetadataUnit unit) {
  if (unit.dataset.empty()) {
    return Status::InvalidArgument("metadata unit needs a dataset name");
  }
  auto [it, inserted] = units_.try_emplace(unit.dataset, std::move(unit));
  if (!inserted) {
    return Status::AlreadyExists("metadata unit for '" + it->first +
                                 "' already exists");
  }
  return Status::OK();
}

Result<const MetadataUnit*> GemmsModel::GetUnit(
    std::string_view dataset) const {
  auto it = units_.find(dataset);
  if (it == units_.end()) {
    return Status::NotFound("no metadata unit for '" + std::string(dataset) +
                            "'");
  }
  return &it->second;
}

Status GemmsModel::SetProperty(std::string_view dataset, std::string_view key,
                               std::string_view value) {
  auto it = units_.find(dataset);
  if (it == units_.end()) {
    return Status::NotFound("no metadata unit for '" + std::string(dataset) +
                            "'");
  }
  it->second.properties[std::string(key)] = std::string(value);
  return Status::OK();
}

Status GemmsModel::Annotate(std::string_view dataset,
                            std::string_view element_path,
                            std::string_view ontology_term) {
  auto it = units_.find(dataset);
  if (it == units_.end()) {
    return Status::NotFound("no metadata unit for '" + std::string(dataset) +
                            "'");
  }
  if (ResolvePath(it->second.structure, element_path) == nullptr) {
    return Status::NotFound("no structure element at path '" +
                            std::string(element_path) + "'");
  }
  it->second.annotations.push_back(SemanticAnnotation{
      std::string(element_path), std::string(ontology_term)});
  return Status::OK();
}

std::vector<std::string> GemmsModel::FindByOntologyTerm(
    std::string_view ontology_term) const {
  std::vector<std::string> out;
  for (const auto& [name, unit] : units_) {
    for (const SemanticAnnotation& a : unit.annotations) {
      if (a.ontology_term == ontology_term) {
        out.push_back(name);
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> GemmsModel::FindByProperty(
    std::string_view key, std::string_view value) const {
  std::vector<std::string> out;
  for (const auto& [name, unit] : units_) {
    auto it = unit.properties.find(std::string(key));
    if (it != unit.properties.end() && it->second == value) {
      out.push_back(name);
    }
  }
  return out;
}

std::vector<std::string> GemmsModel::DatasetNames() const {
  std::vector<std::string> out;
  out.reserve(units_.size());
  for (const auto& [name, unit] : units_) out.push_back(name);
  return out;
}

}  // namespace lakekit::metamodel
