#ifndef LAKEKIT_METAMODEL_GEMMS_H_
#define LAKEKIT_METAMODEL_GEMMS_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "ingest/structural_extractor.h"
#include "json/value.h"

namespace lakekit::metamodel {

/// A semantic annotation: attaches an ontology term to a structural element
/// of a dataset (GEMMS' semantic metadata, survey Sec. 5.2.1).
struct SemanticAnnotation {
  /// Slash-separated path into the structure tree, e.g. "root/address/city".
  std::string element_path;
  /// Ontology term, e.g. "schema.org/City".
  std::string ontology_term;

  bool operator==(const SemanticAnnotation&) const = default;
};

/// One GEMMS metadata unit: the metadata of one dataset, separated into the
/// three element kinds of the GEMMS metamodel — general properties
/// (key-value), structural metadata (a structure tree), and semantic
/// metadata (ontology annotations on structure elements).
struct MetadataUnit {
  std::string dataset;
  std::map<std::string, std::string> properties;
  ingest::StructureNode structure;
  std::vector<SemanticAnnotation> annotations;

  json::Value ToJson() const;
};

/// The Generic and Extensible Metadata Management System model: a registry
/// of metadata units, queryable by property and by ontology term.
class GemmsModel {
 public:
  /// Registers a unit; AlreadyExists on duplicate dataset names.
  Status AddUnit(MetadataUnit unit);

  Result<const MetadataUnit*> GetUnit(std::string_view dataset) const;

  /// Sets a general property on an existing unit.
  Status SetProperty(std::string_view dataset, std::string_view key,
                     std::string_view value);

  /// Attaches an ontology term to a structure element. The element path must
  /// resolve in the unit's structure tree.
  Status Annotate(std::string_view dataset, std::string_view element_path,
                  std::string_view ontology_term);

  /// Datasets having an element annotated with `ontology_term`.
  std::vector<std::string> FindByOntologyTerm(
      std::string_view ontology_term) const;

  /// Datasets whose property `key` equals `value`.
  std::vector<std::string> FindByProperty(std::string_view key,
                                          std::string_view value) const;

  std::vector<std::string> DatasetNames() const;
  size_t num_units() const { return units_.size(); }

  /// Resolves a slash path ("root/a/b") inside a structure tree.
  static const ingest::StructureNode* ResolvePath(
      const ingest::StructureNode& root, std::string_view path);

 private:
  std::map<std::string, MetadataUnit, std::less<>> units_;
};

}  // namespace lakekit::metamodel

#endif  // LAKEKIT_METAMODEL_GEMMS_H_
