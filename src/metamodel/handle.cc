#include "metamodel/handle.h"

namespace lakekit::metamodel {

HandleModel::ItemId HandleModel::AddData(std::string_view name,
                                         std::string_view zone) {
  json::Object props;
  props.Set("name", json::Value(std::string(name)));
  props.Set("zone", json::Value(std::string(zone)));
  return graph_.AddNode("data", std::move(props));
}

Result<HandleModel::ItemId> HandleModel::AttachMetadata(ItemId target,
                                                        std::string_view category,
                                                        json::Value value) {
  LAKEKIT_RETURN_IF_ERROR(graph_.GetNode(target).status());
  json::Object props;
  props.Set("category", json::Value(std::string(category)));
  props.Set("value", std::move(value));
  ItemId meta = graph_.AddNode("metadata", std::move(props));
  LAKEKIT_RETURN_IF_ERROR(graph_.AddEdge(meta, target, "describes").status());
  return meta;
}

Status HandleModel::SetProperty(ItemId item, std::string_view key,
                                json::Value value) {
  return graph_.SetNodeProperty(item, key, std::move(value));
}

Status HandleModel::MoveToZone(ItemId data_item, std::string_view zone) {
  LAKEKIT_ASSIGN_OR_RETURN(auto node, graph_.GetNode(data_item));
  if (node.label != "data") {
    return Status::InvalidArgument("item " + std::to_string(data_item) +
                                   " is not a data item");
  }
  return graph_.SetNodeProperty(data_item, "zone",
                                json::Value(std::string(zone)));
}

Result<std::string> HandleModel::ZoneOf(ItemId data_item) const {
  LAKEKIT_ASSIGN_OR_RETURN(auto node, graph_.GetNode(data_item));
  const json::Value* zone = node.properties.Find("zone");
  if (zone == nullptr || !zone->is_string()) {
    return Status::NotFound("item has no zone");
  }
  return zone->as_string();
}

std::vector<HandleModel::ItemId> HandleModel::DataInZone(
    std::string_view zone) const {
  std::vector<ItemId> out;
  for (const auto& node : graph_.FindNodesIf([&](const auto& n) {
         if (n.label != "data") return false;
         const json::Value* z = n.properties.Find("zone");
         return z != nullptr && z->is_string() && z->as_string() == zone;
       })) {
    out.push_back(node.id);
  }
  return out;
}

std::vector<std::pair<std::string, json::Value>> HandleModel::MetadataOf(
    ItemId target, std::optional<std::string> category) const {
  std::vector<std::pair<std::string, json::Value>> out;
  for (const auto& edge : graph_.InEdges(target, "describes")) {
    Result<storage::GraphStore::Node> meta = graph_.GetNode(edge.from);
    if (!meta.ok()) continue;
    const json::Value* cat = meta->properties.Find("category");
    const json::Value* value = meta->properties.Find("value");
    if (cat == nullptr || !cat->is_string() || value == nullptr) continue;
    if (category && cat->as_string() != *category) continue;
    out.emplace_back(cat->as_string(), *value);
  }
  return out;
}

std::optional<HandleModel::ItemId> HandleModel::FindData(
    std::string_view name) const {
  auto nodes = graph_.FindNodesIf([&](const auto& n) {
    if (n.label != "data") return false;
    const json::Value* v = n.properties.Find("name");
    return v != nullptr && v->is_string() && v->as_string() == name;
  });
  if (nodes.empty()) return std::nullopt;
  return nodes.front().id;
}

Result<HandleModel::ItemId> HandleModel::ImportGemmsUnit(
    const MetadataUnit& unit, std::string_view zone) {
  ItemId data = AddData(unit.dataset, zone);
  for (const auto& [key, value] : unit.properties) {
    json::Object prop;
    prop.Set(key, json::Value(value));
    LAKEKIT_RETURN_IF_ERROR(
        AttachMetadata(data, "property", json::Value(std::move(prop)))
            .status());
  }
  LAKEKIT_RETURN_IF_ERROR(
      AttachMetadata(data, "structure", json::Value(unit.structure.ToString()))
          .status());
  for (const SemanticAnnotation& a : unit.annotations) {
    json::Object ann;
    ann.Set("element", json::Value(a.element_path));
    ann.Set("term", json::Value(a.ontology_term));
    LAKEKIT_RETURN_IF_ERROR(
        AttachMetadata(data, "semantic", json::Value(std::move(ann)))
            .status());
  }
  return data;
}

}  // namespace lakekit::metamodel
