#ifndef LAKEKIT_METAMODEL_HANDLE_H_
#define LAKEKIT_METAMODEL_HANDLE_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "metamodel/gemms.h"
#include "storage/graph_store.h"

namespace lakekit::metamodel {

/// HANDLE — a generic, graph-backed metadata model (survey Sec. 5.2.1) with
/// three abstract entities: *data* items, *metadata* items describing them,
/// and *properties* attached to either. HANDLE adopts the zone architecture
/// (Sec. 3.1): every data item lives in a zone ("raw", "curated", ...), and
/// metadata can be attached at any granularity. Implemented over lakekit's
/// property-graph store, mirroring the paper's Neo4j realization.
class HandleModel {
 public:
  using ItemId = storage::GraphStore::NodeId;

  /// Adds a data item to a zone; returns its id.
  ItemId AddData(std::string_view name, std::string_view zone);

  /// Attaches a metadata item (category + JSON value) to a data or metadata
  /// item, enabling metadata-on-metadata granularity.
  Result<ItemId> AttachMetadata(ItemId target, std::string_view category,
                                json::Value value);

  /// Sets a scalar property on any item.
  Status SetProperty(ItemId item, std::string_view key, json::Value value);

  /// Moves a data item to a different zone.
  Status MoveToZone(ItemId data_item, std::string_view zone);

  /// Zone of a data item.
  Result<std::string> ZoneOf(ItemId data_item) const;

  /// Ids of all data items currently in `zone`.
  std::vector<ItemId> DataInZone(std::string_view zone) const;

  /// Metadata items of `target` (optionally filtered by category), as
  /// (category, value) pairs.
  std::vector<std::pair<std::string, json::Value>> MetadataOf(
      ItemId target, std::optional<std::string> category = {}) const;

  /// Id of the data item named `name`, if any.
  std::optional<ItemId> FindData(std::string_view name) const;

  /// Imports a GEMMS metadata unit: the dataset becomes a data item in
  /// `zone`; its properties, structure, and annotations become metadata
  /// items — demonstrating the survey's observation that GEMMS elements map
  /// onto HANDLE.
  Result<ItemId> ImportGemmsUnit(const MetadataUnit& unit,
                                 std::string_view zone);

  const storage::GraphStore& graph() const { return graph_; }

 private:
  storage::GraphStore graph_;
};

}  // namespace lakekit::metamodel

#endif  // LAKEKIT_METAMODEL_HANDLE_H_
