#include "organize/dsknn.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "ingest/profiler.h"
#include "text/levenshtein.h"

namespace lakekit::organize {

DsKnnOrganizer::DsKnnOrganizer(DsKnnOptions options) : options_(options) {}

DatasetFeatures DsKnnOrganizer::ExtractFeatures(const table::Table& t) {
  DatasetFeatures f;
  f.dataset_name = t.name();
  f.num_columns = static_cast<double>(t.num_columns());
  f.num_rows = static_cast<double>(t.num_rows());
  std::vector<ingest::ColumnProfile> profiles =
      ingest::Profiler::ProfileTable(t);
  size_t numeric = 0;
  double uniq_sum = 0;
  double null_sum = 0;
  double mean_sum = 0;
  double len_sum = 0;
  size_t mean_count = 0;
  size_t len_count = 0;
  for (const ingest::ColumnProfile& p : profiles) {
    if (p.type == table::DataType::kInt64 ||
        p.type == table::DataType::kDouble) {
      ++numeric;
      mean_sum += p.mean;
      ++mean_count;
    }
    if (p.type == table::DataType::kString) {
      len_sum += p.avg_length;
      ++len_count;
    }
    uniq_sum += p.uniqueness();
    null_sum += p.null_fraction();
  }
  const double cols = std::max(1.0, f.num_columns);
  f.numeric_column_fraction = static_cast<double>(numeric) / cols;
  f.avg_uniqueness = uniq_sum / cols;
  f.avg_null_fraction = null_sum / cols;
  f.avg_numeric_mean = mean_count == 0 ? 0 : mean_sum / static_cast<double>(mean_count);
  f.avg_string_length = len_count == 0 ? 0 : len_sum / static_cast<double>(len_count);

  std::vector<std::string> names = t.schema().FieldNames();
  std::sort(names.begin(), names.end());
  for (const std::string& n : names) {
    if (!f.schema_signature.empty()) f.schema_signature += "|";
    f.schema_signature += n;
  }
  return f;
}

double DsKnnOrganizer::Similarity(const DatasetFeatures& a,
                                  const DatasetFeatures& b) const {
  // Numeric features: each axis contributes a ratio-based similarity.
  auto ratio_sim = [](double x, double y) {
    double m = std::max(std::abs(x), std::abs(y));
    if (m == 0) return 1.0;
    return 1.0 - std::abs(x - y) / m;
  };
  double feature_sim =
      (ratio_sim(a.num_columns, b.num_columns) +
       ratio_sim(std::log1p(a.num_rows), std::log1p(b.num_rows)) +
       ratio_sim(a.numeric_column_fraction, b.numeric_column_fraction) +
       ratio_sim(a.avg_uniqueness, b.avg_uniqueness) +
       ratio_sim(a.avg_null_fraction, b.avg_null_fraction) +
       ratio_sim(a.avg_string_length, b.avg_string_length)) /
      6.0;
  double name_sim =
      text::LevenshteinSimilarity(a.schema_signature, b.schema_signature);
  return options_.name_weight * name_sim +
         (1.0 - options_.name_weight) * feature_sim;
}

size_t DsKnnOrganizer::AddDataset(const table::Table& t) {
  DatasetFeatures features = ExtractFeatures(t);

  // k nearest neighbors among classified datasets.
  std::vector<std::pair<double, size_t>> scored;  // (similarity, index)
  for (size_t i = 0; i < classified_.size(); ++i) {
    scored.emplace_back(Similarity(features, classified_[i]), i);
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  if (scored.size() > options_.k) scored.resize(options_.k);

  size_t category;
  if (scored.empty() || scored[0].first < options_.new_category_threshold) {
    category = categories_.size();
    categories_.emplace_back();
  } else {
    // Majority vote among neighbors above the threshold.
    std::map<size_t, size_t> votes;
    for (const auto& [sim, idx] : scored) {
      if (sim >= options_.new_category_threshold) {
        ++votes[category_of_[idx]];
      }
    }
    category = scored[0].second;  // placeholder
    size_t best_votes = 0;
    size_t best_category = category_of_[scored[0].second];
    for (const auto& [cat, count] : votes) {
      if (count > best_votes) {
        best_votes = count;
        best_category = cat;
      }
    }
    category = best_category;
  }
  categories_[category].push_back(features.dataset_name);
  classified_.push_back(std::move(features));
  category_of_.push_back(category);
  return category;
}

size_t DsKnnOrganizer::CategoryOf(const std::string& dataset_name) const {
  for (size_t i = 0; i < classified_.size(); ++i) {
    if (classified_[i].dataset_name == dataset_name) return category_of_[i];
  }
  return static_cast<size_t>(-1);
}

}  // namespace lakekit::organize
