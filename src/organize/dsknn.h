#ifndef LAKEKIT_ORGANIZE_DSKNN_H_
#define LAKEKIT_ORGANIZE_DSKNN_H_

#include <string>
#include <vector>

#include "table/table.h"

namespace lakekit::organize {

/// Numeric features of a dataset used for proximity mining (DS-Prox /
/// DS-kNN, survey Sec. 6.1.2): metadata-based features (attribute counts,
/// type mix) plus data-based features (uniqueness, null fractions,
/// numeric means).
struct DatasetFeatures {
  std::string dataset_name;
  double num_columns = 0;
  double num_rows = 0;
  double numeric_column_fraction = 0;
  double avg_uniqueness = 0;
  double avg_null_fraction = 0;
  double avg_numeric_mean = 0;
  double avg_string_length = 0;
  /// Concatenated, sorted attribute names for the Levenshtein schema signal.
  std::string schema_signature;
};

struct DsKnnOptions {
  /// Neighbors consulted per classification.
  size_t k = 3;
  /// Below this similarity to every neighbor, the dataset founds a new
  /// category.
  double new_category_threshold = 0.55;
  /// Blend of schema-name Levenshtein similarity vs numeric feature
  /// similarity.
  double name_weight = 0.5;
};

/// DS-kNN: incremental dataset categorization. Each arriving dataset is
/// compared (feature distance + Levenshtein over schema signatures) to the
/// already-classified datasets; the majority category among its k nearest
/// neighbors wins, or a new category is founded when nothing is close —
/// exactly the incremental organization loop the survey describes.
class DsKnnOrganizer {
 public:
  explicit DsKnnOrganizer(DsKnnOptions options = {});

  /// Feature extraction (data preparation step).
  static DatasetFeatures ExtractFeatures(const table::Table& t);

  /// Similarity in [0,1] of two feature vectors.
  double Similarity(const DatasetFeatures& a, const DatasetFeatures& b) const;

  /// Classifies a dataset; returns its category id (possibly new).
  size_t AddDataset(const table::Table& t);

  size_t num_categories() const { return categories_.size(); }

  /// Dataset names per category.
  const std::vector<std::vector<std::string>>& categories() const {
    return categories_;
  }

  /// Category of a previously added dataset; SIZE_MAX when unknown.
  size_t CategoryOf(const std::string& dataset_name) const;

 private:
  DsKnnOptions options_;
  std::vector<DatasetFeatures> classified_;
  std::vector<size_t> category_of_;  // parallel to classified_
  std::vector<std::vector<std::string>> categories_;
};

}  // namespace lakekit::organize

#endif  // LAKEKIT_ORGANIZE_DSKNN_H_
