#include "organize/kayak.h"

#include <deque>

namespace lakekit::organize {

size_t TaskDag::AddTask(std::string name, TaskFn fn) {
  names_.push_back(std::move(name));
  fns_.push_back(std::move(fn));
  edges_.emplace_back();
  in_degree_.push_back(0);
  return names_.size() - 1;
}

Status TaskDag::AddDependency(size_t before, size_t after) {
  if (before >= names_.size() || after >= names_.size()) {
    return Status::InvalidArgument("dependency references unknown task");
  }
  if (before == after) {
    return Status::InvalidArgument("task cannot depend on itself");
  }
  edges_[before].push_back(after);
  ++in_degree_[after];
  return Status::OK();
}

Result<std::vector<size_t>> TaskDag::TopologicalOrder() const {
  std::vector<size_t> degree = in_degree_;
  std::deque<size_t> ready;
  for (size_t i = 0; i < degree.size(); ++i) {
    if (degree[i] == 0) ready.push_back(i);
  }
  std::vector<size_t> order;
  while (!ready.empty()) {
    size_t t = ready.front();
    ready.pop_front();
    order.push_back(t);
    for (size_t next : edges_[t]) {
      if (--degree[next] == 0) ready.push_back(next);
    }
  }
  if (order.size() != names_.size()) {
    return Status::Aborted("task dependency cycle detected");
  }
  return order;
}

Result<std::vector<std::vector<size_t>>> TaskDag::ParallelLevels() const {
  LAKEKIT_ASSIGN_OR_RETURN(auto order, TopologicalOrder());
  std::vector<size_t> level(names_.size(), 0);
  for (size_t t : order) {
    for (size_t next : edges_[t]) {
      level[next] = std::max(level[next], level[t] + 1);
    }
  }
  size_t max_level = 0;
  for (size_t l : level) max_level = std::max(max_level, l);
  std::vector<std::vector<size_t>> levels(max_level + 1);
  for (size_t t : order) levels[level[t]].push_back(t);
  return levels;
}

Status TaskDag::Execute() {
  LAKEKIT_ASSIGN_OR_RETURN(auto order, TopologicalOrder());
  execution_order_.clear();
  for (size_t t : order) {
    if (fns_[t]) {
      Status s = fns_[t]();
      if (!s.ok()) {
        return Status(s.code(),
                      "task '" + names_[t] + "' failed: " + s.message());
      }
    }
    execution_order_.push_back(t);
  }
  return Status::OK();
}

size_t KayakPipeline::DefinePrimitive(
    std::string name, std::vector<std::pair<std::string, TaskFn>> tasks) {
  primitives_.push_back(Primitive{std::move(name), std::move(tasks)});
  return primitives_.size() - 1;
}

Result<size_t> KayakPipeline::AddStep(size_t primitive_id) {
  if (primitive_id >= primitives_.size()) {
    return Status::InvalidArgument("unknown primitive");
  }
  steps_.push_back(primitive_id);
  return steps_.size() - 1;
}

Status KayakPipeline::AddStepDependency(size_t before, size_t after) {
  if (before >= steps_.size() || after >= steps_.size()) {
    return Status::InvalidArgument("dependency references unknown step");
  }
  step_edges_.emplace_back(before, after);
  return Status::OK();
}

Status KayakPipeline::Run() {
  expanded_ = TaskDag();
  // Expand primitives: tasks within one step run sequentially.
  std::vector<size_t> first_task_of(steps_.size());
  std::vector<size_t> last_task_of(steps_.size());
  for (size_t s = 0; s < steps_.size(); ++s) {
    const Primitive& prim = primitives_[steps_[s]];
    if (prim.tasks.empty()) {
      return Status::FailedPrecondition("primitive '" + prim.name +
                                        "' has no tasks");
    }
    size_t prev = 0;
    for (size_t i = 0; i < prim.tasks.size(); ++i) {
      size_t id = expanded_.AddTask(
          prim.name + "#" + std::to_string(s) + "/" + prim.tasks[i].first,
          prim.tasks[i].second);
      if (i == 0) {
        first_task_of[s] = id;
      } else {
        LAKEKIT_RETURN_IF_ERROR(expanded_.AddDependency(prev, id));
      }
      prev = id;
    }
    last_task_of[s] = prev;
  }
  // Bridge step dependencies: last task of `before` -> first task of
  // `after`.
  for (const auto& [before, after] : step_edges_) {
    LAKEKIT_RETURN_IF_ERROR(
        expanded_.AddDependency(last_task_of[before], first_task_of[after]));
  }
  return expanded_.Execute();
}

}  // namespace lakekit::organize
