#ifndef LAKEKIT_ORGANIZE_KAYAK_H_
#define LAKEKIT_ORGANIZE_KAYAK_H_

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace lakekit::organize {

/// An atomic KAYAK task: a named unit of data-preparation work.
using TaskFn = std::function<Status()>;

/// A DAG of atomic tasks with dependency-respecting execution — KAYAK's
/// *task dependency* DAG (survey Table 2): nodes are atomic tasks, directed
/// edges enforce execution order, and the level structure identifies which
/// tasks could run in parallel.
class TaskDag {
 public:
  /// Adds a task; returns its id.
  size_t AddTask(std::string name, TaskFn fn);

  /// Requires `before` to execute before `after`.
  Status AddDependency(size_t before, size_t after);

  size_t num_tasks() const { return names_.size(); }
  const std::string& task_name(size_t id) const { return names_[id]; }

  /// Topological order; Aborted on a cycle.
  Result<std::vector<size_t>> TopologicalOrder() const;

  /// Tasks grouped into parallelizable levels: every task's dependencies
  /// live in strictly earlier levels.
  Result<std::vector<std::vector<size_t>>> ParallelLevels() const;

  /// Runs all tasks in a valid order; stops at the first failure. The
  /// executed order is recorded for inspection.
  Status Execute();

  const std::vector<size_t>& execution_order() const {
    return execution_order_;
  }

 private:
  std::vector<std::string> names_;
  std::vector<TaskFn> fns_;
  std::vector<std::vector<size_t>> edges_;  // before -> afters
  std::vector<size_t> in_degree_;
  std::vector<size_t> execution_order_;
};

/// KAYAK (survey Sec. 6.1.3): data-preparation *primitives* composed of
/// atomic tasks, arranged into a *pipeline* DAG. Executing the pipeline
/// expands every primitive into its task sequence inside one TaskDag, with
/// pipeline edges bridging the last task of a step to the first task of its
/// dependents — the two DAG levels of Table 2 in one engine.
class KayakPipeline {
 public:
  /// Registers a primitive (an ordered list of named tasks); returns its id.
  size_t DefinePrimitive(std::string name,
                         std::vector<std::pair<std::string, TaskFn>> tasks);

  /// Adds a pipeline step instantiating a primitive; returns the step id.
  Result<size_t> AddStep(size_t primitive_id);

  /// Requires step `before` to complete before step `after` starts.
  Status AddStepDependency(size_t before, size_t after);

  /// Expands the pipeline into a TaskDag and executes it.
  Status Run();

  /// The task DAG from the last Run() expansion (empty before Run).
  const TaskDag& expanded() const { return expanded_; }

  size_t num_steps() const { return steps_.size(); }

 private:
  struct Primitive {
    std::string name;
    std::vector<std::pair<std::string, TaskFn>> tasks;
  };
  std::vector<Primitive> primitives_;
  std::vector<size_t> steps_;  // primitive id per step
  std::vector<std::pair<size_t, size_t>> step_edges_;
  TaskDag expanded_;
};

}  // namespace lakekit::organize

#endif  // LAKEKIT_ORGANIZE_KAYAK_H_
