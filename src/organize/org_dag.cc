#include "organize/org_dag.h"

#include <algorithm>
#include <cmath>

#include "text/tokenize.h"

namespace lakekit::organize {

namespace {

text::DenseVector MeanVector(const std::vector<text::DenseVector>& vectors) {
  text::DenseVector mean;
  if (vectors.empty()) return mean;
  mean.assign(vectors[0].size(), 0.0);
  for (const auto& v : vectors) {
    for (size_t i = 0; i < mean.size(); ++i) mean[i] += v[i];
  }
  double norm = 0;
  for (double x : mean) norm += x * x;
  norm = std::sqrt(norm);
  if (norm > 0) {
    for (double& x : mean) x /= norm;
  }
  return mean;
}

}  // namespace

Result<Organization> Organization::Build(const discovery::Corpus* corpus,
                                         OrganizationOptions options) {
  if (corpus->num_tables() == 0) {
    return Status::InvalidArgument("cannot organize an empty corpus");
  }
  Organization org(corpus, options);

  // Leaves: one per table, topic = mean of textual column embeddings
  // (falling back to name-token embeddings when a table has no text).
  std::vector<size_t> frontier;
  for (size_t t = 0; t < corpus->num_tables(); ++t) {
    OrgNode leaf;
    leaf.id = org.nodes_.size();
    leaf.table_idx = t;
    std::vector<text::DenseVector> vectors;
    for (const discovery::ColumnSketch* s : corpus->TableSketches(t)) {
      leaf.attribute_names.push_back(s->column_name);
      if (s->is_textual()) {
        vectors.push_back(s->embedding);
      }
    }
    if (vectors.empty()) {
      std::vector<std::string> tokens;
      for (const std::string& n : leaf.attribute_names) {
        for (const std::string& tok : text::Tokenize(n)) tokens.push_back(tok);
      }
      vectors.push_back(corpus->embedder().EmbedAll(tokens));
    }
    leaf.topic = MeanVector(vectors);
    frontier.push_back(leaf.id);
    org.nodes_.push_back(std::move(leaf));
  }

  // Agglomerate bottom-up: greedily group the frontier into clusters of
  // `fanout` topic-similar nodes until a single root remains.
  while (frontier.size() > 1) {
    std::vector<bool> used(frontier.size(), false);
    std::vector<size_t> next_frontier;
    for (size_t i = 0; i < frontier.size(); ++i) {
      if (used[i]) continue;
      used[i] = true;
      std::vector<size_t> group{frontier[i]};
      // Pick the most similar unused nodes as siblings.
      std::vector<std::pair<double, size_t>> sims;
      for (size_t j = i + 1; j < frontier.size(); ++j) {
        if (used[j]) continue;
        sims.emplace_back(
            text::CosineSimilarity(org.nodes_[frontier[i]].topic,
                                   org.nodes_[frontier[j]].topic),
            j);
      }
      std::sort(sims.begin(), sims.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      for (size_t s = 0; s < sims.size() && group.size() < options.fanout;
           ++s) {
        used[sims[s].second] = true;
        group.push_back(frontier[sims[s].second]);
      }
      // Parent node summarizing the group.
      OrgNode parent;
      parent.id = org.nodes_.size();
      std::vector<text::DenseVector> topics;
      for (size_t child_id : group) {
        topics.push_back(org.nodes_[child_id].topic);
        for (const std::string& a : org.nodes_[child_id].attribute_names) {
          parent.attribute_names.push_back(a);
        }
      }
      parent.topic = MeanVector(topics);
      parent.children = group;
      next_frontier.push_back(parent.id);
      org.nodes_.push_back(parent);
      for (size_t child_id : group) {
        org.nodes_[child_id].parent = static_cast<int>(parent.id);
      }
    }
    frontier = std::move(next_frontier);
  }
  org.root_ = frontier[0];
  return org;
}

std::vector<double> Organization::TransitionProbabilities(
    const OrgNode& node, const text::DenseVector& query) const {
  std::vector<double> probs(node.children.size(), 0.0);
  if (node.children.empty()) return probs;
  double max_sim = -1e9;
  std::vector<double> sims(node.children.size());
  for (size_t i = 0; i < node.children.size(); ++i) {
    sims[i] = text::CosineSimilarity(nodes_[node.children[i]].topic, query);
    max_sim = std::max(max_sim, sims[i]);
  }
  double total = 0;
  for (size_t i = 0; i < sims.size(); ++i) {
    probs[i] = std::exp((sims[i] - max_sim) / options_.temperature);
    total += probs[i];
  }
  for (double& p : probs) p /= total;
  return probs;
}

namespace {

/// Query terms arrive as raw values ("vehicle_color"); column sketches are
/// embedded from *tokenized* values, so queries must tokenize the same way
/// for the vectors to align.
std::vector<std::string> QueryTokens(const std::vector<std::string>& terms) {
  std::vector<std::string> tokens;
  for (const std::string& term : terms) {
    for (const std::string& tok : text::Tokenize(term)) {
      tokens.push_back(tok);
    }
  }
  return tokens;
}

}  // namespace

double Organization::DiscoveryProbability(
    const std::vector<std::string>& query_terms, size_t table_idx) const {
  text::DenseVector query =
      corpus_->embedder().EmbedAll(QueryTokens(query_terms));
  // Find the leaf for table_idx, then multiply transition probabilities
  // down the root path.
  const OrgNode* leaf = nullptr;
  for (const OrgNode& n : nodes_) {
    if (n.is_leaf() && n.table_idx == table_idx) {
      leaf = &n;
      break;
    }
  }
  if (leaf == nullptr) return 0.0;
  // Path from leaf up to root.
  std::vector<size_t> path;
  for (int id = static_cast<int>(leaf->id); id != -1;
       id = nodes_[static_cast<size_t>(id)].parent) {
    path.push_back(static_cast<size_t>(id));
  }
  std::reverse(path.begin(), path.end());  // root .. leaf
  double prob = 1.0;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const OrgNode& node = nodes_[path[i]];
    std::vector<double> probs = TransitionProbabilities(node, query);
    for (size_t c = 0; c < node.children.size(); ++c) {
      if (node.children[c] == path[i + 1]) {
        prob *= probs[c];
        break;
      }
    }
  }
  return prob;
}

Result<size_t> Organization::Navigate(
    const std::vector<std::string>& query_terms) const {
  text::DenseVector query =
      corpus_->embedder().EmbedAll(QueryTokens(query_terms));
  size_t current = root_;
  while (!nodes_[current].is_leaf()) {
    const OrgNode& node = nodes_[current];
    if (node.children.empty()) {
      return Status::Internal("internal node without children");
    }
    std::vector<double> probs = TransitionProbabilities(node, query);
    size_t best = 0;
    for (size_t i = 1; i < probs.size(); ++i) {
      if (probs[i] > probs[best]) best = i;
    }
    current = node.children[best];
  }
  return nodes_[current].table_idx;
}

double Organization::FlatBaselineProbability() const {
  return corpus_->num_tables() == 0
             ? 0.0
             : 1.0 / static_cast<double>(corpus_->num_tables());
}

double Organization::MeanDepth() const {
  double total = 0;
  size_t leaves = 0;
  for (const OrgNode& n : nodes_) {
    if (!n.is_leaf()) continue;
    size_t depth = 0;
    for (int id = static_cast<int>(n.id); id != -1;
         id = nodes_[static_cast<size_t>(id)].parent) {
      ++depth;
    }
    total += static_cast<double>(depth - 1);
    ++leaves;
  }
  return leaves == 0 ? 0.0 : total / static_cast<double>(leaves);
}

}  // namespace lakekit::organize
