#ifndef LAKEKIT_ORGANIZE_ORG_DAG_H_
#define LAKEKIT_ORGANIZE_ORG_DAG_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "discovery/corpus.h"
#include "text/embedding.h"

namespace lakekit::organize {

/// One node of a data lake organization (Nargesian et al., survey
/// Sec. 6.1.3): a set of attributes summarized by a topic vector. Leaves
/// correspond to tables; internal nodes to merged attribute sets.
struct OrgNode {
  size_t id = 0;
  /// -1 for the root.
  int parent = -1;
  std::vector<size_t> children;
  /// Table index for leaves; SIZE_MAX for internal nodes.
  size_t table_idx = static_cast<size_t>(-1);
  /// Topic vector: mean of member attribute embeddings.
  text::DenseVector topic;
  /// Attribute names summarized by the node (debugging / labels).
  std::vector<std::string> attribute_names;

  bool is_leaf() const { return table_idx != static_cast<size_t>(-1); }
};

struct OrganizationOptions {
  /// Fan-out of internal nodes (children merged per agglomeration round).
  size_t fanout = 4;
  /// Softmax temperature of the navigation Markov model: lower = sharper
  /// child choices.
  double temperature = 0.2;
};

/// A navigable organization of a data lake: a DAG (here a tree, the common
/// case in the paper) over attribute sets, built bottom-up by grouping
/// topic-similar tables, with a Markov navigation model: from any node, the
/// probability of stepping to a child is the softmax of child-topic /
/// query similarities — future states depend only on the current node.
/// The quality measure is the probability a navigating user reaches the
/// table they want, which the organization maximizes versus a flat listing.
class Organization {
 public:
  /// Builds the organization over every table of the corpus.
  static Result<Organization> Build(const discovery::Corpus* corpus,
                                    OrganizationOptions options = {});

  const std::vector<OrgNode>& nodes() const { return nodes_; }
  size_t root() const { return root_; }

  /// Navigation probability of reaching `table_idx` when looking for
  /// `query` terms: the product of Markov transition probabilities along
  /// the root-to-leaf path.
  double DiscoveryProbability(const std::vector<std::string>& query_terms,
                              size_t table_idx) const;

  /// Greedy navigation: repeatedly follow the most probable child; returns
  /// the reached table index.
  Result<size_t> Navigate(const std::vector<std::string>& query_terms) const;

  /// The baseline a user faces without an organization: uniform choice over
  /// all tables.
  double FlatBaselineProbability() const;

  /// Expected path length from root to any leaf.
  double MeanDepth() const;

 private:
  Organization(const discovery::Corpus* corpus, OrganizationOptions options)
      : corpus_(corpus), options_(options) {}

  /// Transition distribution over `node`'s children for a query vector.
  std::vector<double> TransitionProbabilities(
      const OrgNode& node, const text::DenseVector& query) const;

  const discovery::Corpus* corpus_;
  OrganizationOptions options_;
  std::vector<OrgNode> nodes_;
  size_t root_ = 0;
};

}  // namespace lakekit::organize

#endif  // LAKEKIT_ORGANIZE_ORG_DAG_H_
