#include "organize/ronin.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "text/tokenize.h"

namespace lakekit::organize {

RoninExplorer::RoninExplorer(const discovery::Corpus* corpus,
                             const Organization* org,
                             const discovery::JosieFinder* josie,
                             RoninOptions options)
    : corpus_(corpus), org_(org), josie_(josie), options_(options) {}

double RoninExplorer::KeywordScore(
    size_t table_idx, const std::vector<std::string>& query_terms) const {
  // Token pool: attribute-name tokens + tokenized distinct values.
  std::unordered_set<std::string> pool;
  for (const discovery::ColumnSketch* s : corpus_->TableSketches(table_idx)) {
    for (const std::string& t : s->name_tokens) pool.insert(t);
    for (const std::string& v : s->distinct_values) {
      for (const std::string& t : text::Tokenize(v)) pool.insert(t);
    }
  }
  size_t hits = 0;
  size_t total = 0;
  for (const std::string& term : query_terms) {
    for (const std::string& token : text::Tokenize(term)) {
      ++total;
      if (pool.count(token) > 0) ++hits;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

std::vector<RoninHit> RoninExplorer::Explore(
    const std::vector<std::string>& query_terms, size_t k) const {
  std::map<size_t, RoninHit> hits;
  for (size_t t = 0; t < corpus_->num_tables(); ++t) {
    RoninHit hit;
    hit.table_idx = t;
    hit.table_name = corpus_->table(t).name();
    hit.navigation_score = org_->DiscoveryProbability(query_terms, t);
    hit.keyword_score = KeywordScore(t, query_terms);
    hit.score = options_.navigation_weight * hit.navigation_score +
                options_.keyword_weight * hit.keyword_score;
    hits[t] = std::move(hit);
  }

  // Join expansion from the current top seeds: a table joinable with a
  // high-scoring seed inherits part of its score.
  std::vector<size_t> seeds;
  {
    std::vector<std::pair<double, size_t>> ranked;
    for (const auto& [t, h] : hits) ranked.emplace_back(h.score, t);
    std::sort(ranked.begin(), ranked.end(), std::greater<>());
    for (size_t i = 0; i < ranked.size() && i < k; ++i) {
      if (ranked[i].first > 0) seeds.push_back(ranked[i].second);
    }
  }
  for (size_t seed : seeds) {
    const double seed_score = hits[seed].score;
    for (const auto& match : josie_->TopKJoinableTables(seed, k)) {
      RoninHit& hit = hits[match.table_idx];
      double bonus = seed_score * options_.join_expansion_factor;
      if (bonus > hit.join_score) {
        hit.score += bonus - hit.join_score;
        hit.join_score = bonus;
      }
    }
  }

  std::vector<RoninHit> out;
  out.reserve(hits.size());
  for (auto& [t, h] : hits) {
    if (h.score > 0) out.push_back(std::move(h));
  }
  std::sort(out.begin(), out.end(), [](const RoninHit& a, const RoninHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.table_idx < b.table_idx;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace lakekit::organize
