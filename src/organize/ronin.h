#ifndef LAKEKIT_ORGANIZE_RONIN_H_
#define LAKEKIT_ORGANIZE_RONIN_H_

#include <memory>
#include <string>
#include <vector>

#include "discovery/josie.h"
#include "organize/org_dag.h"

namespace lakekit::organize {

/// One exploration hit with the evidence that produced it.
struct RoninHit {
  size_t table_idx = 0;
  std::string table_name;
  double score = 0;
  /// Which signals contributed: navigation, keyword, join expansion.
  double navigation_score = 0;
  double keyword_score = 0;
  double join_score = 0;
};

struct RoninOptions {
  /// Blend weights of the three exploration modes.
  double navigation_weight = 0.5;
  double keyword_weight = 0.5;
  /// Joinable neighbors of seed tables get seed_score * this.
  double join_expansion_factor = 0.5;
};

/// RONIN (survey Sec. 6.1.3): interactive data lake exploration that
/// *combines* the organization DAG's navigation with metadata keyword
/// search and joinable-dataset search. A query of free-text terms is scored
/// against every table by (a) the organization's Markov discovery
/// probability and (b) keyword overlap with attribute names and values;
/// top seeds are then expanded with their JOSIE-joinable neighbors, so the
/// user reaches tables that match the topic *or* join what matches it.
class RoninExplorer {
 public:
  /// All inputs must outlive the explorer. `josie` must be built.
  RoninExplorer(const discovery::Corpus* corpus, const Organization* org,
                const discovery::JosieFinder* josie, RoninOptions options = {});

  /// Top-k tables for a free-text query.
  std::vector<RoninHit> Explore(const std::vector<std::string>& query_terms,
                                size_t k) const;

  /// Keyword score of one table in [0,1]: fraction of query tokens found
  /// among the table's attribute-name tokens or distinct values.
  double KeywordScore(size_t table_idx,
                      const std::vector<std::string>& query_terms) const;

 private:
  const discovery::Corpus* corpus_;
  const Organization* org_;
  const discovery::JosieFinder* josie_;
  RoninOptions options_;
};

}  // namespace lakekit::organize

#endif  // LAKEKIT_ORGANIZE_RONIN_H_
