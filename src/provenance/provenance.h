#ifndef LAKEKIT_PROVENANCE_PROVENANCE_H_
#define LAKEKIT_PROVENANCE_PROVENANCE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "json/value.h"
#include "storage/graph_store.h"

namespace lakekit::provenance {

/// A provenance graph over the lake's property-graph store (GOODS, CoreDB
/// and Juneau all preserve provenance as graphs — survey Sec. 6.7):
/// *entity* nodes are datasets/versions, *activity* nodes are jobs or
/// queries, *agent* nodes are users. Edges follow the W3C-PROV verbs:
/// activity --used--> entity, entity --wasGeneratedBy--> activity,
/// activity --wasAssociatedWith--> agent.
class ProvenanceGraph {
 public:
  using NodeId = storage::GraphStore::NodeId;

  /// Registers (or finds) the entity node for dataset `name`.
  NodeId Entity(std::string_view name);

  /// Registers an activity occurrence (a run of job `name` at logical time
  /// `at`). Every call creates a new node — activities are events.
  NodeId Activity(std::string_view name, int64_t at = 0);

  /// Registers (or finds) an agent (user/team).
  NodeId Agent(std::string_view name);

  /// PROV edges.
  Status Used(NodeId activity, NodeId entity);
  Status WasGeneratedBy(NodeId entity, NodeId activity);
  Status WasAssociatedWith(NodeId activity, NodeId agent);

  /// Records a whole derivation in one call: `job` read `inputs` and wrote
  /// `outputs`, run by `agent` (optional).
  Status RecordDerivation(std::string_view job,
                          const std::vector<std::string>& inputs,
                          const std::vector<std::string>& outputs,
                          std::optional<std::string> agent = {},
                          int64_t at = 0);

  /// Upstream lineage of a dataset: every dataset it transitively derives
  /// from, breadth-first order (nearest first).
  std::vector<std::string> Upstream(std::string_view dataset) const;

  /// Downstream impact: every dataset transitively derived from this one.
  std::vector<std::string> Downstream(std::string_view dataset) const;

  /// Activities that touched (read or wrote) a dataset, as names.
  std::vector<std::string> ActivitiesOf(std::string_view dataset) const;

  /// Who queried/produced an entity (CoreDB's "who queried this entity").
  std::vector<std::string> AgentsOf(std::string_view dataset) const;

  /// Exports the graph as subject-predicate-object triples (GOODS exports
  /// the catalog this way for path queries).
  std::vector<std::string> ToTriples() const;

  const storage::GraphStore& graph() const { return graph_; }

 private:
  std::optional<NodeId> FindEntity(std::string_view name) const;
  /// Entity names one derivation step from `dataset` in direction
  /// `upstream`.
  std::vector<std::string> Walk(std::string_view dataset, bool upstream) const;

  storage::GraphStore graph_;
};

}  // namespace lakekit::provenance

#endif  // LAKEKIT_PROVENANCE_PROVENANCE_H_
