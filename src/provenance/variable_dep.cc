#include "provenance/variable_dep.h"

#include <cstddef>
#include <deque>

namespace lakekit::provenance {

void VariableDependencyGraph::AddStep(const std::vector<std::string>& inputs,
                                      std::string_view function,
                                      std::string_view output) {
  variables_.insert(std::string(output));
  for (const std::string& in : inputs) {
    variables_.insert(in);
    size_t idx = edges_.size();
    edges_.push_back(Edge{in, std::string(output), std::string(function)});
    out_edges_[in].push_back(idx);
    in_edges_[std::string(output)].push_back(idx);
  }
}

std::vector<std::string> VariableDependencyGraph::AffectingVariables(
    std::string_view variable) const {
  std::vector<std::string> out;
  std::set<std::string> visited{std::string(variable)};
  std::deque<std::string> queue{std::string(variable)};
  while (!queue.empty()) {
    std::string current = queue.front();
    queue.pop_front();
    auto it = in_edges_.find(current);
    if (it == in_edges_.end()) continue;
    for (size_t idx : it->second) {
      const Edge& e = edges_[idx];
      if (visited.insert(e.from).second) {
        out.push_back(e.from);
        queue.push_back(e.from);
      }
    }
  }
  return out;
}

std::vector<std::string> VariableDependencyGraph::DerivedVariables(
    std::string_view variable) const {
  std::vector<std::string> out;
  std::set<std::string> visited{std::string(variable)};
  std::deque<std::string> queue{std::string(variable)};
  while (!queue.empty()) {
    std::string current = queue.front();
    queue.pop_front();
    auto it = out_edges_.find(current);
    if (it == out_edges_.end()) continue;
    for (size_t idx : it->second) {
      const Edge& e = edges_[idx];
      if (visited.insert(e.to).second) {
        out.push_back(e.to);
        queue.push_back(e.to);
      }
    }
  }
  return out;
}

std::multiset<std::string> VariableDependencyGraph::UpstreamSignature(
    std::string_view variable) const {
  std::multiset<std::string> signature;
  std::set<std::string> visited{std::string(variable)};
  std::deque<std::string> queue{std::string(variable)};
  while (!queue.empty()) {
    std::string current = queue.front();
    queue.pop_front();
    auto it = in_edges_.find(current);
    if (it == in_edges_.end()) continue;
    for (size_t idx : it->second) {
      const Edge& e = edges_[idx];
      signature.insert(e.function);
      if (visited.insert(e.from).second) queue.push_back(e.from);
    }
  }
  return signature;
}

double VariableDependencyGraph::ProvenanceSimilarity(
    const VariableDependencyGraph& ga, std::string_view va,
    const VariableDependencyGraph& gb, std::string_view vb) {
  std::multiset<std::string> sa = ga.UpstreamSignature(va);
  std::multiset<std::string> sb = gb.UpstreamSignature(vb);
  if (sa.empty() && sb.empty()) return 1.0;
  // Multiset intersection / union.
  size_t inter = 0;
  for (auto it = sa.begin(); it != sa.end();) {
    const std::string& label = *it;
    size_t ca = sa.count(label);
    size_t cb = sb.count(label);
    inter += std::min(ca, cb);
    std::advance(it, static_cast<ptrdiff_t>(ca));
  }
  size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace lakekit::provenance
