#ifndef LAKEKIT_PROVENANCE_VARIABLE_DEP_H_
#define LAKEKIT_PROVENANCE_VARIABLE_DEP_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace lakekit::provenance {

/// Juneau's variable dependency graph (survey Sec. 6.1.3, Table 2): nodes
/// are notebook variables; a labeled directed edge (input -> output,
/// label = function name) records that `output` was computed from `input`
/// through `function`. Provenance similarity of two tables is the
/// similarity of their variables' dependency subgraphs.
class VariableDependencyGraph {
 public:
  /// Records `output = function(inputs...)`.
  void AddStep(const std::vector<std::string>& inputs,
               std::string_view function, std::string_view output);

  size_t num_variables() const { return variables_.size(); }
  size_t num_edges() const { return edges_.size(); }

  /// All variables that (transitively) affect `variable`, with the
  /// functions on the paths — Juneau's "find all variables affecting v".
  std::vector<std::string> AffectingVariables(std::string_view variable) const;

  /// Variables transitively derived from `variable`.
  std::vector<std::string> DerivedVariables(std::string_view variable) const;

  /// The labeled edge multiset signature of the dependency subgraph rooted
  /// upstream of `variable`: "function" labels along all affecting paths.
  std::multiset<std::string> UpstreamSignature(std::string_view variable) const;

  /// Provenance similarity of two variables (possibly across graphs):
  /// Jaccard over upstream function-label multisets — the practical proxy
  /// Juneau uses in place of exact subgraph isomorphism for ranking.
  static double ProvenanceSimilarity(const VariableDependencyGraph& ga,
                                     std::string_view va,
                                     const VariableDependencyGraph& gb,
                                     std::string_view vb);

 private:
  struct Edge {
    std::string from;
    std::string to;
    std::string function;
  };
  std::set<std::string> variables_;
  std::vector<Edge> edges_;
  std::map<std::string, std::vector<size_t>> in_edges_;   // to -> edge idx
  std::map<std::string, std::vector<size_t>> out_edges_;  // from -> edge idx
};

}  // namespace lakekit::provenance

#endif  // LAKEKIT_PROVENANCE_VARIABLE_DEP_H_
