#include "quality/auto_validate.h"

#include <algorithm>
#include <cctype>
#include <map>

namespace lakekit::quality {

namespace {

char ClassOf(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  if (std::isdigit(u)) return 'd';
  if (std::isalpha(u)) return 'a';
  return 0;  // literal
}

}  // namespace

Pattern ValuePattern(std::string_view value, int level) {
  Pattern p;
  size_t i = 0;
  while (i < value.size()) {
    char cls = ClassOf(value[i]);
    if (cls == 0) {
      PatternSegment seg;
      seg.is_literal = true;
      seg.literal = value[i];
      p.segments.push_back(seg);
      ++i;
      continue;
    }
    size_t run = 1;
    while (i + run < value.size() && ClassOf(value[i + run]) == cls) ++run;
    PatternSegment seg;
    seg.cls = cls;
    seg.length = level == 0 ? run : 0;
    p.segments.push_back(seg);
    i += run;
  }
  return p;
}

bool Pattern::Matches(std::string_view value) const {
  // Greedy segment matching: literals must match exactly; class segments
  // consume an exact run (length > 0) or a maximal run of >= 1 (length 0).
  size_t pos = 0;
  for (const PatternSegment& seg : segments) {
    if (seg.is_literal) {
      if (pos >= value.size() || value[pos] != seg.literal) return false;
      ++pos;
      continue;
    }
    size_t run = 0;
    while (pos + run < value.size() && ClassOf(value[pos + run]) == seg.cls) {
      ++run;
    }
    if (run == 0) return false;
    if (seg.length > 0 && run != seg.length) return false;
    pos += run;
  }
  return pos == value.size();
}

std::string Pattern::ToString() const {
  std::string out;
  for (const PatternSegment& seg : segments) {
    if (seg.is_literal) {
      out.push_back(seg.literal);
    } else if (seg.length > 0) {
      out.push_back(seg.cls);
      out += "{" + std::to_string(seg.length) + "}";
    } else {
      out.push_back(seg.cls);
      out.push_back('+');
    }
  }
  return out;
}

Result<Validator> Validator::Train(const std::vector<std::string>& values,
                                   const AutoValidateOptions& options) {
  if (values.empty()) {
    return Status::InvalidArgument("no training values");
  }
  // Try specificity levels from exact lengths to open lengths; at each
  // level collect pattern frequencies and check whether the top
  // max_patterns cover min_coverage of values.
  for (int level = 0; level <= 1; ++level) {
    std::map<std::string, Pattern> unique;
    std::map<std::string, size_t> counts;
    for (const std::string& v : values) {
      Pattern p = ValuePattern(v, level);
      std::string key = p.ToString();
      unique.try_emplace(key, std::move(p));
      ++counts[key];
    }
    std::vector<std::pair<size_t, std::string>> ranked;
    for (const auto& [key, count] : counts) ranked.emplace_back(count, key);
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    size_t covered = 0;
    size_t taken = 0;
    for (const auto& [count, key] : ranked) {
      if (taken >= options.max_patterns) break;
      covered += count;
      ++taken;
    }
    if (static_cast<double>(covered) >=
        options.min_coverage * static_cast<double>(values.size())) {
      Validator v;
      for (size_t i = 0; i < taken; ++i) {
        Pattern p = unique.at(ranked[i].second);
        p.support = ranked[i].first;
        v.patterns_.push_back(std::move(p));
      }
      return v;
    }
  }
  return Status::FailedPrecondition(
      "values too heterogeneous: no pattern set reaches the coverage "
      "target");
}

bool Validator::Validate(std::string_view value) const {
  for (const Pattern& p : patterns_) {
    if (p.Matches(value)) return true;
  }
  return false;
}

double Validator::RejectionRate(const std::vector<std::string>& values) const {
  if (values.empty()) return 0.0;
  size_t rejected = 0;
  for (const std::string& v : values) {
    if (!Validate(v)) ++rejected;
  }
  return static_cast<double>(rejected) / static_cast<double>(values.size());
}

}  // namespace lakekit::quality
