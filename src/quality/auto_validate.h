#ifndef LAKEKIT_QUALITY_AUTO_VALIDATE_H_
#define LAKEKIT_QUALITY_AUTO_VALIDATE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace lakekit::quality {

/// A data-domain pattern in Auto-Validate's generalization language
/// (Song & He, survey Sec. 6.5.2): a sequence of typed segments, each a
/// literal or a character class with an exact or open length.
struct PatternSegment {
  /// 'd' digits, 'a' letters, or a literal character class of one char.
  char cls = 'd';
  bool is_literal = false;
  char literal = 0;
  /// Exact run length; 0 means "one or more" (open length).
  size_t length = 0;
};

/// One inferred validation pattern.
struct Pattern {
  std::vector<PatternSegment> segments;
  /// Training values matched by this pattern.
  size_t support = 0;

  bool Matches(std::string_view value) const;
  std::string ToString() const;
};

struct AutoValidateOptions {
  /// Inferred pattern set must cover at least this fraction of the
  /// training values.
  double min_coverage = 0.95;
  /// Cap on the number of patterns in the validator.
  size_t max_patterns = 4;
};

/// An inferred validator: a small set of patterns that accepts (almost) all
/// training values while staying as specific as possible — Auto-Validate's
/// trade-off between false-positive-rate minimization (specific patterns
/// reject drifted data) and coverage (don't flag healthy data).
class Validator {
 public:
  /// Infers a validator from a column of training values. The candidate
  /// hierarchy per value goes from exact-length class patterns ("Z d{3}")
  /// to open-length class patterns ("Z d+"); the most specific level whose
  /// top patterns reach min_coverage wins.
  static Result<Validator> Train(const std::vector<std::string>& values,
                                 const AutoValidateOptions& options = {});

  /// True when `value` matches any pattern.
  bool Validate(std::string_view value) const;

  /// Fraction of `values` rejected — the drift signal for a new batch.
  double RejectionRate(const std::vector<std::string>& values) const;

  const std::vector<Pattern>& patterns() const { return patterns_; }

 private:
  std::vector<Pattern> patterns_;
};

/// Pattern of a single value at a generalization level:
/// level 0 = exact-length runs (e.g. "a{2}d{4}"), level 1 = open-length
/// runs ("a+d+").
Pattern ValuePattern(std::string_view value, int level);

}  // namespace lakekit::quality

#endif  // LAKEKIT_QUALITY_AUTO_VALIDATE_H_
