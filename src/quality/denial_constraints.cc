#include "quality/denial_constraints.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace lakekit::quality {

bool ApplyOp(Op op, const table::Value& a, const table::Value& b) {
  switch (op) {
    case Op::kEq:
      return a == b;
    case Op::kNe:
      return !(a == b);
    case Op::kLt:
      return a < b;
    case Op::kLe:
      return a <= b;
    case Op::kGt:
      return a > b;
    case Op::kGe:
      return a >= b;
  }
  return false;
}

DenialConstraint DenialConstraint::FromFd(const enrich::RelaxedFd& fd) {
  DenialConstraint dc;
  for (const std::string& lhs : fd.lhs) {
    dc.predicates.push_back(PairPredicate{lhs, Op::kEq, lhs});
  }
  dc.predicates.push_back(PairPredicate{fd.rhs, Op::kNe, fd.rhs});
  std::string lhs_names;
  for (const std::string& l : fd.lhs) {
    if (!lhs_names.empty()) lhs_names += ",";
    lhs_names += l;
  }
  dc.description = "fd(" + lhs_names + " -> " + fd.rhs + ")";
  return dc;
}

std::vector<std::pair<size_t, size_t>> ConstraintChecker::FindViolatingPairs(
    const table::Table& t, const DenialConstraint& dc, size_t max_pairs) {
  std::vector<std::pair<size_t, size_t>> out;
  // Resolve columns once.
  struct Resolved {
    size_t left;
    Op op;
    size_t right;
  };
  std::vector<Resolved> predicates;
  for (const PairPredicate& p : dc.predicates) {
    auto left = t.schema().IndexOf(p.left_column);
    auto right = t.schema().IndexOf(p.right_column);
    if (!left || !right) return out;  // constraint on unknown columns
    predicates.push_back(Resolved{*left, p.op, *right});
  }
  // Equality predicates partition rows: group by the equality key to avoid
  // full O(n^2) when possible.
  std::vector<size_t> eq_cols;
  for (const Resolved& p : predicates) {
    if (p.op == Op::kEq && p.left == p.right) eq_cols.push_back(p.left);
  }
  auto check_pair = [&](size_t i, size_t j) {
    for (const Resolved& p : predicates) {
      if (!ApplyOp(p.op, t.at(i, p.left), t.at(j, p.right))) return false;
    }
    return true;
  };
  if (!eq_cols.empty()) {
    std::unordered_map<std::string, std::vector<size_t>> groups;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      std::string key;
      for (size_t c : eq_cols) {
        key += t.at(r, c).ToString();
        key += "\x02";
      }
      groups[key].push_back(r);
    }
    for (const auto& [key, rows] : groups) {
      for (size_t a = 0; a < rows.size() && out.size() < max_pairs; ++a) {
        for (size_t b = a + 1; b < rows.size() && out.size() < max_pairs;
             ++b) {
          if (check_pair(rows[a], rows[b])) out.emplace_back(rows[a], rows[b]);
        }
      }
    }
  } else {
    for (size_t i = 0; i < t.num_rows() && out.size() < max_pairs; ++i) {
      for (size_t j = i + 1; j < t.num_rows() && out.size() < max_pairs;
           ++j) {
        if (check_pair(i, j)) out.emplace_back(i, j);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<DirtyTuple> ConstraintChecker::RankDirtyTuples(
    const table::Table& t, const std::vector<DenialConstraint>& constraints) {
  // Violation hypergraph: each violating pair adds one violation edge
  // incident to both rows.
  std::map<size_t, size_t> counts;
  for (const DenialConstraint& dc : constraints) {
    for (const auto& [i, j] : FindViolatingPairs(t, dc)) {
      ++counts[i];
      ++counts[j];
    }
  }
  std::vector<DirtyTuple> out;
  out.reserve(counts.size());
  for (const auto& [row, count] : counts) {
    out.push_back(DirtyTuple{row, count});
  }
  std::sort(out.begin(), out.end(), [](const DirtyTuple& a, const DirtyTuple& b) {
    if (a.violation_count != b.violation_count) {
      return a.violation_count > b.violation_count;
    }
    return a.row < b.row;
  });
  return out;
}

std::vector<DirtyTuple> ConstraintChecker::InferAndRank(
    const table::Table& t, const enrich::RfdOptions& rfd_options) {
  std::vector<DenialConstraint> constraints;
  for (const enrich::RelaxedFd& fd :
       enrich::DiscoverRelaxedFds(t, rfd_options)) {
    constraints.push_back(DenialConstraint::FromFd(fd));
  }
  return RankDirtyTuples(t, constraints);
}

}  // namespace lakekit::quality
