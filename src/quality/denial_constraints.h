#ifndef LAKEKIT_QUALITY_DENIAL_CONSTRAINTS_H_
#define LAKEKIT_QUALITY_DENIAL_CONSTRAINTS_H_

#include <string>
#include <vector>

#include "enrich/rfd.h"
#include "table/table.h"

namespace lakekit::quality {

/// Comparison operators of denial-constraint predicates.
enum class Op { kEq, kNe, kLt, kLe, kGt, kGe };

bool ApplyOp(Op op, const table::Value& a, const table::Value& b);

/// One predicate over a tuple pair (t1, t2): t1.left <op> t2.right.
struct PairPredicate {
  std::string left_column;
  Op op = Op::kEq;
  std::string right_column;
};

/// A denial constraint: no tuple pair may satisfy ALL predicates
/// simultaneously (CLAMS' conditional denial constraints, survey
/// Sec. 6.5.1). The FD city -> zip becomes
/// ¬(t1.city = t2.city ∧ t1.zip ≠ t2.zip).
struct DenialConstraint {
  std::vector<PairPredicate> predicates;
  std::string description;

  /// Derives the denial form of a (relaxed) functional dependency.
  static DenialConstraint FromFd(const enrich::RelaxedFd& fd);
};

/// One tuple ranked by how many constraints it participates in violating —
/// CLAMS' violation-hypergraph ranking that drives which tuples a user is
/// asked to validate first.
struct DirtyTuple {
  size_t row = 0;
  size_t violation_count = 0;
};

/// Checks denial constraints against a table.
class ConstraintChecker {
 public:
  /// All tuple pairs (i < j) violating `dc`. O(n^2) verification, bounded
  /// by `max_pairs` reported violations.
  static std::vector<std::pair<size_t, size_t>> FindViolatingPairs(
      const table::Table& t, const DenialConstraint& dc,
      size_t max_pairs = 100000);

  /// CLAMS pipeline: evaluates every constraint, builds the row-violation
  /// hypergraph, and ranks rows by violation participation (descending).
  static std::vector<DirtyTuple> RankDirtyTuples(
      const table::Table& t, const std::vector<DenialConstraint>& constraints);

  /// End-to-end CLAMS-style inference: discovers relaxed FDs in the table,
  /// converts them to denial constraints, and ranks the violating tuples —
  /// the candidates a user is asked to confirm for removal.
  static std::vector<DirtyTuple> InferAndRank(
      const table::Table& t, const enrich::RfdOptions& rfd_options = {});
};

}  // namespace lakekit::quality

#endif  // LAKEKIT_QUALITY_DENIAL_CONSTRAINTS_H_
