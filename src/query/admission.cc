#include "query/admission.h"

#include <algorithm>

namespace lakekit::query {

using std::chrono::milliseconds;

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : Clock::Real()) {
  // A zero-concurrency controller would deadlock every caller.
  if (options_.max_concurrent == 0) options_.max_concurrent = 1;
}

void AdmissionController::RecordWaitLocked(milliseconds wait) {
  // Exponential buckets: [0,1) [1,2) [2,4) ... [64,inf).
  size_t bucket = 0;
  for (int64_t ms = wait.count(); ms >= 1 && bucket + 1 < stats_.queue_wait_ms_hist.size();
       ms >>= 1) {
    ++bucket;
  }
  ++stats_.queue_wait_ms_hist[bucket];
}

void AdmissionController::PromoteLocked() {
  bool promoted = false;
  while (in_flight_ < options_.max_concurrent && !queue_.empty()) {
    Waiter* w = queue_.front();
    queue_.pop_front();
    w->admitted = true;
    ++in_flight_;
    promoted = true;
  }
  // One broadcast wakes every blocked Admit; non-promoted waiters re-check
  // their predicate and sleep again. Queue depths are small (bounded by
  // max_queue_depth), so the thundering herd is too.
  if (promoted) slot_freed_.NotifyAll();
}

Result<AdmissionController::Ticket> AdmissionController::Admit(
    const Deadline& deadline, const CancelToken& cancel) {
  MutexLock lock(mu_);
  ++stats_.submitted;
  // Arrivals already past their budget never occupy a queue slot.
  if (cancel.cancelled()) {
    ++stats_.cancelled_in_queue;
    return cancel.status();
  }
  if (deadline.expired()) {
    ++stats_.expired_in_queue;
    return Status::DeadlineExceeded("deadline expired before admission");
  }
  if (queue_.empty() && in_flight_ < options_.max_concurrent) {
    ++in_flight_;
    ++stats_.admitted;
    RecordWaitLocked(milliseconds(0));
    return Ticket(this);
  }
  if (queue_.size() >= options_.max_queue_depth) {
    ++stats_.shed;
    // Retriable by design: the queue drains as running queries finish, so
    // a backoff-and-retry (RetryPolicy) is the right caller response.
    return Status::Unavailable("query admission queue full (load shed)");
  }
  ++stats_.queued;
  Waiter self;
  queue_.push_back(&self);
  const auto enqueued_at = clock_->Now();
  // Deadlines on a ManualClock and cancellation have no wakeup channel of
  // their own, so armed waiters poll in short real-time slices; unarmed
  // waiters block until a slot actually frees.
  const bool polled = !deadline.is_infinite() || cancel.armed();
  while (!self.admitted) {
    if (cancel.cancelled() || deadline.expired()) {
      // Leave the queue without running. The slot this waiter would have
      // taken goes to the next live entry.
      auto it = std::find(queue_.begin(), queue_.end(), &self);
      if (it != queue_.end()) queue_.erase(it);
      if (cancel.cancelled()) {
        ++stats_.cancelled_in_queue;
        RecordWaitLocked(std::chrono::duration_cast<milliseconds>(
            clock_->Now() - enqueued_at));
        return cancel.status();
      }
      ++stats_.expired_in_queue;
      RecordWaitLocked(std::chrono::duration_cast<milliseconds>(
          clock_->Now() - enqueued_at));
      return Status::DeadlineExceeded("deadline expired while queued");
    }
    if (polled) {
      slot_freed_.WaitFor(mu_, milliseconds(1));
    } else {
      slot_freed_.Wait(mu_);
    }
  }
  ++stats_.admitted;
  RecordWaitLocked(
      std::chrono::duration_cast<milliseconds>(clock_->Now() - enqueued_at));
  return Ticket(this);
}

void AdmissionController::Release(bool ok) {
  MutexLock lock(mu_);
  if (ok) {
    ++stats_.completed;
  } else {
    ++stats_.failed;
  }
  --in_flight_;
  PromoteLocked();
  // Even with no promotion (empty queue) a waiter may be mid-poll; the
  // broadcast in PromoteLocked covers the promoted case, and nothing is
  // waiting otherwise. When the queue is non-empty PromoteLocked always
  // promotes here, since a slot just freed.
}

AdmissionStats AdmissionController::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

size_t AdmissionController::in_flight() const {
  MutexLock lock(mu_);
  return in_flight_;
}

size_t AdmissionController::queue_depth() const {
  MutexLock lock(mu_);
  return queue_.size();
}

}  // namespace lakekit::query
