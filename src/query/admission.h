#ifndef LAKEKIT_QUERY_ADMISSION_H_
#define LAKEKIT_QUERY_ADMISSION_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <deque>

#include "common/cancellation.h"
#include "common/deadline.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"

namespace lakekit::query {

/// Tuning for AdmissionController. The defaults suit a small host; a
/// serving deployment sizes `max_concurrent` to its core count and the
/// queue to the latency it is willing to hide.
struct AdmissionOptions {
  /// Queries allowed to execute simultaneously.
  size_t max_concurrent = 8;
  /// Queries allowed to wait for a slot. Arrivals beyond this are shed
  /// immediately with retriable kUnavailable — bounded queues are the
  /// whole point (an unbounded queue converts overload into unbounded
  /// latency and memory instead of fast feedback).
  size_t max_queue_depth = 16;
  /// Clock queue-wait time is measured on (nullptr: the real clock).
  /// Deadlines carry their own clock; this one only feeds the histogram.
  const Clock* clock = nullptr;
};

/// Counters of one AdmissionController. Steady-state invariant once all
/// callers have finished: submitted == admitted + shed + expired_in_queue +
/// cancelled_in_queue, and admitted == completed + failed.
struct AdmissionStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  /// Admissions that had to wait in the queue first (subset of admitted +
  /// expired/cancelled_in_queue).
  uint64_t queued = 0;
  /// Arrivals refused outright because the queue was full.
  uint64_t shed = 0;
  /// Entries whose deadline expired before admission — on arrival (a
  /// pre-spent budget never occupies a queue slot) or while queued.
  uint64_t expired_in_queue = 0;
  /// Entries cancelled before admission, on arrival or while queued.
  uint64_t cancelled_in_queue = 0;
  /// Admitted queries that finished OK / with an error.
  uint64_t completed = 0;
  uint64_t failed = 0;
  /// Queue-wait histogram, exponential milliseconds buckets:
  /// [0,1) [1,2) [2,4) [4,8) [8,16) [16,32) [32,64) [64,inf).
  std::array<uint64_t, 8> queue_wait_ms_hist{};
};

/// The engine front door's overload valve (DESIGN.md §10): at most
/// `max_concurrent` queries run; up to `max_queue_depth` more wait in FIFO
/// order; everything beyond that is shed immediately with retriable
/// kUnavailable so callers back off instead of piling on. Queued entries
/// keep observing their own Deadline/CancelToken — an expired or cancelled
/// waiter leaves the queue without ever running (and without consuming a
/// slot), so a burst of impatient callers cannot wedge patient ones.
///
/// Thread-safe. Pairs with `MemoryBudget`: admission bounds *how many*
/// queries hold reservations at once, the budget bounds *how much* they
/// hold — see query/federation.h for the engine wiring.
class AdmissionController {
 public:
  /// A held execution slot. Move-only; returning it (destruction) frees
  /// the slot and promotes the next waiter. Call `Finish(ok)` with the
  /// query's outcome first — an unfinished ticket counts as completed.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Return(true);
        controller_ = other.controller_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Return(true); }

    [[nodiscard]] bool valid() const { return controller_ != nullptr; }

    /// Records the query's outcome and frees the slot. Idempotent with the
    /// destructor: whichever runs first settles the ticket.
    void Finish(bool ok) { Return(ok); }

   private:
    friend class AdmissionController;
    explicit Ticket(AdmissionController* controller)
        : controller_(controller) {}

    void Return(bool ok) {
      if (controller_ == nullptr) return;
      controller_->Release(ok);
      controller_ = nullptr;
    }

    AdmissionController* controller_ = nullptr;
  };

  explicit AdmissionController(const AdmissionOptions& options = {});

  /// Acquires an execution slot, waiting in FIFO order if none is free.
  /// Returns:
  ///   - a Ticket when admitted;
  ///   - kUnavailable immediately when the wait queue is full (shed —
  ///     transient, the caller should back off and retry);
  ///   - kDeadlineExceeded / the token's cause when the caller's budget
  ///     runs out while queued (the entry leaves the queue unrun).
  Result<Ticket> Admit(const Deadline& deadline = Deadline::Infinite(),
                       const CancelToken& cancel = CancelToken());

  AdmissionStats stats() const;
  [[nodiscard]] size_t in_flight() const;
  [[nodiscard]] size_t queue_depth() const;

 private:
  struct Waiter {
    bool admitted = false;
  };

  /// Hands free slots to the longest-waiting live entries.
  void PromoteLocked() LAKEKIT_REQUIRES(mu_);
  void Release(bool ok);
  void RecordWaitLocked(std::chrono::milliseconds wait) LAKEKIT_REQUIRES(mu_);

  // unguarded: immutable after construction.
  AdmissionOptions options_;
  // unguarded: immutable after construction (resolved from options_).
  const Clock* clock_;

  mutable Mutex mu_;
  size_t in_flight_ LAKEKIT_GUARDED_BY(mu_) = 0;
  /// FIFO of stack-resident waiters, each owned by its blocked Admit call;
  /// an abandoning waiter erases itself before returning, so the pointers
  /// never dangle.
  std::deque<Waiter*> queue_ LAKEKIT_GUARDED_BY(mu_);
  CondVar slot_freed_;
  AdmissionStats stats_ LAKEKIT_GUARDED_BY(mu_);
};

}  // namespace lakekit::query

#endif  // LAKEKIT_QUERY_ADMISSION_H_
