#include "query/expr.h"

namespace lakekit::query {

namespace {

std::shared_ptr<Expr> Make() { return std::make_shared<Expr>(); }

}  // namespace

ExprPtr Expr::Literal(table::Value v) {
  auto e = Make();
  e->kind_ = Kind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::Column(std::string name) {
  auto e = Make();
  e->kind_ = Kind::kColumn;
  e->column_ = std::move(name);
  return e;
}

ExprPtr Expr::Compare(CmpOp op, ExprPtr left, ExprPtr right) {
  auto e = Make();
  e->kind_ = Kind::kCompare;
  e->cmp_ = op;
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

ExprPtr Expr::Logical(LogicalOp op, ExprPtr left, ExprPtr right) {
  auto e = Make();
  e->kind_ = Kind::kLogical;
  e->logical_ = op;
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

ExprPtr Expr::Arith(ArithOp op, ExprPtr left, ExprPtr right) {
  auto e = Make();
  e->kind_ = Kind::kArith;
  e->arith_ = op;
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

ExprPtr Expr::Not(ExprPtr inner) {
  auto e = Make();
  e->kind_ = Kind::kNot;
  e->left_ = std::move(inner);
  return e;
}

ExprPtr Expr::IsNull(ExprPtr inner) {
  auto e = Make();
  e->kind_ = Kind::kIsNull;
  e->left_ = std::move(inner);
  return e;
}

Result<table::Value> Expr::Eval(const table::Schema& schema,
                                const std::vector<table::Value>& row) const {
  switch (kind_) {
    case Kind::kLiteral:
      return literal_;
    case Kind::kColumn: {
      auto idx = schema.IndexOf(column_);
      if (!idx) {
        return Status::NotFound("unknown column '" + column_ + "'");
      }
      return row[*idx];
    }
    case Kind::kCompare: {
      LAKEKIT_ASSIGN_OR_RETURN(table::Value l, left_->Eval(schema, row));
      LAKEKIT_ASSIGN_OR_RETURN(table::Value r, right_->Eval(schema, row));
      if (l.is_null() || r.is_null()) return table::Value::Null();
      bool result = false;
      switch (cmp_) {
        case CmpOp::kEq:
          result = (l == r);
          break;
        case CmpOp::kNe:
          result = !(l == r);
          break;
        case CmpOp::kLt:
          result = (l < r);
          break;
        case CmpOp::kLe:
          result = (l <= r);
          break;
        case CmpOp::kGt:
          result = (l > r);
          break;
        case CmpOp::kGe:
          result = (l >= r);
          break;
      }
      return table::Value(result);
    }
    case Kind::kLogical: {
      LAKEKIT_ASSIGN_OR_RETURN(table::Value l, left_->Eval(schema, row));
      LAKEKIT_ASSIGN_OR_RETURN(table::Value r, right_->Eval(schema, row));
      // Three-valued logic with NULL short-circuits.
      auto truthy = [](const table::Value& v) {
        return !v.is_null() && v.is_bool() && v.as_bool();
      };
      auto falsy = [](const table::Value& v) {
        return !v.is_null() && v.is_bool() && !v.as_bool();
      };
      if (logical_ == LogicalOp::kAnd) {
        if (falsy(l) || falsy(r)) return table::Value(false);
        if (l.is_null() || r.is_null()) return table::Value::Null();
        return table::Value(truthy(l) && truthy(r));
      }
      if (truthy(l) || truthy(r)) return table::Value(true);
      if (l.is_null() || r.is_null()) return table::Value::Null();
      return table::Value(truthy(l) || truthy(r));
    }
    case Kind::kArith: {
      LAKEKIT_ASSIGN_OR_RETURN(table::Value l, left_->Eval(schema, row));
      LAKEKIT_ASSIGN_OR_RETURN(table::Value r, right_->Eval(schema, row));
      if (l.is_null() || r.is_null()) return table::Value::Null();
      if (!l.is_numeric() || !r.is_numeric()) {
        return Status::InvalidArgument("arithmetic on non-numeric values");
      }
      // Integer arithmetic stays integral except division.
      if (l.is_int() && r.is_int() && arith_ != ArithOp::kDiv) {
        int64_t a = l.as_int();
        int64_t b = r.as_int();
        switch (arith_) {
          case ArithOp::kAdd:
            return table::Value(a + b);
          case ArithOp::kSub:
            return table::Value(a - b);
          case ArithOp::kMul:
            return table::Value(a * b);
          case ArithOp::kDiv:
            break;
        }
      }
      double a = l.as_double();
      double b = r.as_double();
      switch (arith_) {
        case ArithOp::kAdd:
          return table::Value(a + b);
        case ArithOp::kSub:
          return table::Value(a - b);
        case ArithOp::kMul:
          return table::Value(a * b);
        case ArithOp::kDiv:
          if (b == 0) return table::Value::Null();
          return table::Value(a / b);
      }
      return Status::Internal("unreachable arithmetic");
    }
    case Kind::kNot: {
      LAKEKIT_ASSIGN_OR_RETURN(table::Value v, left_->Eval(schema, row));
      if (v.is_null()) return table::Value::Null();
      if (!v.is_bool()) {
        return Status::InvalidArgument("NOT on non-boolean value");
      }
      return table::Value(!v.as_bool());
    }
    case Kind::kIsNull: {
      LAKEKIT_ASSIGN_OR_RETURN(table::Value v, left_->Eval(schema, row));
      return table::Value(v.is_null());
    }
  }
  return Status::Internal("unreachable expression kind");
}

void Expr::CollectColumns(std::vector<std::string>* out) const {
  if (kind_ == Kind::kColumn) out->push_back(column_);
  if (left_) left_->CollectColumns(out);
  if (right_) right_->CollectColumns(out);
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kLiteral:
      return literal_.is_string() ? "'" + literal_.ToString() + "'"
                                  : literal_.ToString();
    case Kind::kColumn:
      return column_;
    case Kind::kCompare: {
      static const char* kOps[] = {"=", "!=", "<", "<=", ">", ">="};
      return "(" + left_->ToString() + " " +
             kOps[static_cast<int>(cmp_)] + " " + right_->ToString() + ")";
    }
    case Kind::kLogical:
      return "(" + left_->ToString() +
             (logical_ == LogicalOp::kAnd ? " AND " : " OR ") +
             right_->ToString() + ")";
    case Kind::kArith: {
      static const char* kOps[] = {"+", "-", "*", "/"};
      return "(" + left_->ToString() + " " +
             kOps[static_cast<int>(arith_)] + " " + right_->ToString() + ")";
    }
    case Kind::kNot:
      return "(NOT " + left_->ToString() + ")";
    case Kind::kIsNull:
      return "(" + left_->ToString() + " IS NULL)";
  }
  return "?";
}

Result<bool> EvalPredicate(const Expr& expr, const table::Schema& schema,
                           const std::vector<table::Value>& row) {
  LAKEKIT_ASSIGN_OR_RETURN(table::Value v, expr.Eval(schema, row));
  return !v.is_null() && v.is_bool() && v.as_bool();
}

}  // namespace lakekit::query
