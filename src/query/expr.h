#ifndef LAKEKIT_QUERY_EXPR_H_
#define LAKEKIT_QUERY_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/schema.h"
#include "table/value.h"

namespace lakekit::query {

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class LogicalOp { kAnd, kOr };
enum class ArithOp { kAdd, kSub, kMul, kDiv };

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// A scalar expression tree evaluated per row: literals, column references,
/// comparisons, boolean connectives, arithmetic, IS NULL. The common
/// predicate/projection language of the exploration tier.
///
/// NULL semantics follow SQL three-valued logic collapsed to two values:
/// any comparison or arithmetic with NULL yields NULL, and a NULL predicate
/// result is treated as false by filters.
class Expr {
 public:
  enum class Kind {
    kLiteral,
    kColumn,
    kCompare,
    kLogical,
    kArith,
    kNot,
    kIsNull,
  };

  static ExprPtr Literal(table::Value v);
  static ExprPtr Column(std::string name);
  static ExprPtr Compare(CmpOp op, ExprPtr left, ExprPtr right);
  static ExprPtr Logical(LogicalOp op, ExprPtr left, ExprPtr right);
  static ExprPtr Arith(ArithOp op, ExprPtr left, ExprPtr right);
  static ExprPtr Not(ExprPtr inner);
  static ExprPtr IsNull(ExprPtr inner);

  Kind kind() const { return kind_; }
  const table::Value& literal() const { return literal_; }
  const std::string& column_name() const { return column_; }
  CmpOp cmp_op() const { return cmp_; }
  LogicalOp logical_op() const { return logical_; }
  ArithOp arith_op() const { return arith_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

  /// Evaluates against one row of `schema`. Unknown columns are an error.
  Result<table::Value> Eval(const table::Schema& schema,
                            const std::vector<table::Value>& row) const;

  /// All column names referenced by the expression (with duplicates).
  void CollectColumns(std::vector<std::string>* out) const;

  /// Parenthesized rendering for diagnostics.
  std::string ToString() const;

 private:
  Kind kind_ = Kind::kLiteral;
  table::Value literal_;
  std::string column_;
  CmpOp cmp_ = CmpOp::kEq;
  LogicalOp logical_ = LogicalOp::kAnd;
  ArithOp arith_ = ArithOp::kAdd;
  ExprPtr left_;
  ExprPtr right_;
};

/// True when the predicate evaluates to a non-null, true boolean for the
/// row (filters use this: NULL -> excluded).
Result<bool> EvalPredicate(const Expr& expr, const table::Schema& schema,
                           const std::vector<table::Value>& row);

}  // namespace lakekit::query

#endif  // LAKEKIT_QUERY_EXPR_H_
