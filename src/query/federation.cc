#include "query/federation.h"

#include <algorithm>

namespace lakekit::query {

void SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (!expr) return;
  if (expr->kind() == Expr::Kind::kLogical &&
      expr->logical_op() == LogicalOp::kAnd) {
    SplitConjuncts(expr->left(), out);
    SplitConjuncts(expr->right(), out);
    return;
  }
  out->push_back(expr);
}

ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr combined;
  for (const ExprPtr& c : conjuncts) {
    combined = combined ? Expr::Logical(LogicalOp::kAnd, combined, c) : c;
  }
  return combined;
}

namespace {

/// Source-side tail of a scan: account the rows read, apply the pushed
/// predicate, account the rows shipped to the mediator.
Result<table::Table> FilterScanned(table::Table t, const Expr* predicate,
                                   FederationStats* stats) {
  if (stats != nullptr) stats->rows_scanned += t.num_rows();
  if (predicate != nullptr) {
    LAKEKIT_ASSIGN_OR_RETURN(t, Filter(t, *predicate));
  }
  if (stats != nullptr) stats->rows_shipped += t.num_rows();
  return t;
}

}  // namespace

Result<table::Table> FederatedEngine::Scan(const std::string& dataset,
                                           const Expr* predicate,
                                           FederationStats* stats) const {
  LAKEKIT_ASSIGN_OR_RETURN(table::Table t, polystore_->ReadAsTable(dataset));
  if (stats != nullptr) ++stats->source_reads;
  return FilterScanned(std::move(t), predicate, stats);
}

namespace {

/// Whether every column referenced by `expr` exists in `schema`.
bool CoveredBy(const Expr& expr, const table::Schema& schema) {
  std::vector<std::string> columns;
  expr.CollectColumns(&columns);
  for (const std::string& c : columns) {
    if (!schema.HasField(c)) return false;
  }
  return !columns.empty();
}

}  // namespace

Result<table::Table> FederatedEngine::Query(std::string_view sql,
                                            bool enable_pushdown) {
  stats_ = FederationStats{};
  LAKEKIT_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSql(sql));

  // Decompose the WHERE clause into conjuncts and classify them by which
  // source covers them.
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(stmt.where, &conjuncts);

  // Read each source exactly once; conjunct classification uses the schema
  // of the same table the scan filters, so there is no separate probe read.
  LAKEKIT_ASSIGN_OR_RETURN(table::Table from_data,
                           polystore_->ReadAsTable(stmt.from_table));
  ++stats_.source_reads;
  const table::Schema& from_schema = from_data.schema();
  table::Table join_data;
  table::Schema join_schema;
  if (stmt.join_table) {
    LAKEKIT_ASSIGN_OR_RETURN(join_data,
                             polystore_->ReadAsTable(*stmt.join_table));
    ++stats_.source_reads;
    join_schema = join_data.schema();
  }

  std::vector<ExprPtr> from_push;
  std::vector<ExprPtr> join_push;
  std::vector<ExprPtr> residual;
  for (const ExprPtr& c : conjuncts) {
    if (enable_pushdown && CoveredBy(*c, from_schema)) {
      from_push.push_back(c);
    } else if (enable_pushdown && stmt.join_table &&
               CoveredBy(*c, join_schema)) {
      join_push.push_back(c);
    } else {
      residual.push_back(c);
    }
  }
  stats_.pushed_conjuncts = from_push.size() + join_push.size();
  stats_.residual_conjuncts = residual.size();

  // Source-side filtering of the already-read tables.
  ExprPtr from_pred = CombineConjuncts(from_push);
  LAKEKIT_ASSIGN_OR_RETURN(
      table::Table current,
      FilterScanned(std::move(from_data),
                    from_pred ? from_pred.get() : nullptr, &stats_));
  if (stmt.join_table) {
    ExprPtr join_pred = CombineConjuncts(join_push);
    LAKEKIT_ASSIGN_OR_RETURN(
        table::Table right,
        FilterScanned(std::move(join_data),
                      join_pred ? join_pred.get() : nullptr, &stats_));
    stats_.join_input_rows = current.num_rows() + right.num_rows();
    LAKEKIT_ASSIGN_OR_RETURN(
        current, HashJoin(current, right, stmt.join_left_col,
                          stmt.join_right_col, JoinType::kInner));
  }

  // Residual filtering + the rest of the plan at the mediator.
  ExprPtr residual_pred = CombineConjuncts(residual);
  if (residual_pred) {
    LAKEKIT_ASSIGN_OR_RETURN(current, Filter(current, *residual_pred));
  }
  SelectStatement tail = stmt;
  tail.where = nullptr;  // already applied
  tail.from_table = "__current__";
  tail.join_table.reset();
  return ExecuteSelect(tail, [&](const std::string& name) -> Result<table::Table> {
    if (name == "__current__") return current;
    return Status::NotFound("unexpected table '" + name + "'");
  });
}

}  // namespace lakekit::query
