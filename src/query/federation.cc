#include "query/federation.h"

#include <algorithm>
#include <utility>

namespace lakekit::query {

void SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (!expr) return;
  if (expr->kind() == Expr::Kind::kLogical &&
      expr->logical_op() == LogicalOp::kAnd) {
    SplitConjuncts(expr->left(), out);
    SplitConjuncts(expr->right(), out);
    return;
  }
  out->push_back(expr);
}

ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr combined;
  for (const ExprPtr& c : conjuncts) {
    combined = combined ? Expr::Logical(LogicalOp::kAnd, combined, c) : c;
  }
  return combined;
}

namespace {

ExecOptions MakeExecOptions(const QueryOptions& options) {
  ExecOptions opts;
  opts.pool = options.pool;
  opts.cancel = options.cancel;
  opts.deadline = options.deadline;
  opts.budget = options.budget;
  return opts;
}

/// Source-side tail of a scan: account the rows read, apply the pushed
/// predicate, account the rows shipped to the mediator. Cached scans carry
/// a zone map, so the filter prunes morsels the statistics rule out; the
/// result is bit-identical to the unpruned path either way.
Result<table::Table> FilterScanned(ScannedSource src, const Expr* predicate,
                                   FederationStats* stats,
                                   const ExecOptions& opts) {
  if (stats != nullptr) stats->rows_scanned += src.table().num_rows();
  table::Table t;
  if (predicate != nullptr) {
    FilterExecStats fstats;
    LAKEKIT_ASSIGN_OR_RETURN(
        t, Filter(src.table(), *predicate, src.zones(), opts, &fstats));
    if (stats != nullptr) stats->morsels_pruned += fstats.morsels_pruned;
  } else {
    t = std::move(src).TakeOrCopy();
  }
  if (stats != nullptr) stats->rows_shipped += t.num_rows();
  return t;
}

/// Whether a scan failure is the *source's* trouble — eligible for
/// best-effort degradation and for breaker failure accounting. Deadline
/// expiry and cancellation are the caller's spent budget: they say nothing
/// about backend health and must fail the query even in best-effort mode.
bool SourceFault(const Status& status) {
  return !status.IsDeadlineExceeded() && !status.IsAborted();
}

}  // namespace

FederatedEngine::FederatedEngine(storage::Polystore* polystore,
                                 FederatedEngineOptions options)
    : source_(nullptr),
      owned_source_(std::make_unique<PolystoreSource>(polystore)),
      options_(std::move(options)) {
  source_ = owned_source_.get();
}

FederatedEngine::FederatedEngine(TableSource* source,
                                 FederatedEngineOptions options)
    : source_(source), options_(std::move(options)) {}

CircuitBreaker* FederatedEngine::BreakerFor(const std::string& dataset) const {
  MutexLock lock(mu_);
  auto it = breakers_.find(dataset);
  if (it == breakers_.end()) {
    CircuitBreakerOptions bopts = options_.breaker;
    if (bopts.clock == nullptr) bopts.clock = options_.clock;
    it = breakers_
             .emplace(dataset, std::make_unique<CircuitBreaker>(bopts))
             .first;
  }
  return it->second.get();
}

Result<ScannedSource> FederatedEngine::ReadSource(
    const std::string& dataset, const QueryOptions& options,
    FederationStats* stats) const {
  TableCache* cache = options_.table_cache;
  uint64_t generation = 0;
  if (cache != nullptr) {
    // The generation is read *before* the data: if a write lands between
    // the two, the entry gets cached under the pre-write generation and a
    // later lookup (which re-reads the generation) misses it — stale data
    // is never served as fresh (DESIGN.md §9.2).
    generation = source_->Generation(dataset);
    if (TableCache::Entry hit = cache->Find(dataset, generation)) {
      if (stats != nullptr) ++stats->cache_hits;
      // A hit still refreshes the degradation schema: the breaker-gated
      // read below is bypassed entirely, so this is the only chance.
      MutexLock lock(mu_);
      schema_cache_.insert_or_assign(dataset, hit->table.schema());
      return ScannedSource{table::Table(), std::move(hit)};
    }
  }
  CircuitBreaker* breaker = BreakerFor(dataset);
  // A fresh policy per scan: RetryPolicy carries Rng state, which concurrent
  // queries must not share.
  RetryPolicy retry(options_.retry);
  if (options_.sleep_fn) retry.set_sleep_fn(options_.sleep_fn);

  size_t attempts = 0;
  size_t rejections = 0;
  Result<table::Table> result = retry.RunResult(
      [&]() -> Result<table::Table> {
        ++attempts;
        // The caller's budget outranks everything: checked before the
        // breaker and the backend. Both statuses are permanent, so the
        // retry loop stops on them immediately.
        if (options.cancel.cancelled()) return options.cancel.status();
        if (options.deadline.expired()) {
          return Status::DeadlineExceeded("deadline expired scanning '" +
                                          dataset + "'");
        }
        if (Status admit = breaker->Admit(); !admit.ok()) {
          ++rejections;
          return admit;
        }
        Result<table::Table> r = source_->ReadAsTable(dataset);
        if (r.ok()) {
          breaker->RecordSuccess();
        } else if (SourceFault(r.status())) {
          breaker->RecordFailure();
        }
        return r;
      },
      options.deadline);
  if (stats != nullptr) {
    stats->retries += attempts - 1;
    stats->breaker_rejections += rejections;
  }
  LAKEKIT_RETURN_IF_ERROR(result.status());
  {
    // Single find-or-insert: insert_or_assign looks the key up once,
    // where the old `schema_cache_[dataset] = schema` default-constructed
    // a Schema and assigned over it.
    MutexLock lock(mu_);
    schema_cache_.insert_or_assign(dataset, result->schema());
  }
  if (cache != nullptr) {
    if (stats != nullptr) ++stats->cache_misses;
    if (TableCache::Entry entry = cache->Put(dataset, generation, &*result)) {
      return ScannedSource{table::Table(), std::move(entry)};
    }
    // The cache's budget declined the admission; `*result` is untouched,
    // so fall through: this query keeps the decoded table as its own,
    // charged below like any uncached read.
  }
  // An owned decoded table lives until the query finishes with it, so it
  // charges the per-query account directly (settled by the account's
  // destructor at query end), not an operator-scope reservation. Refusal is
  // a source-read failure like any other: degradable under kBestEffort,
  // never a breaker event (the read itself succeeded).
  if (options.budget != nullptr && options.budget->attached()) {
    LAKEKIT_RETURN_IF_ERROR(
        options.budget->TryReserve(table::EstimateTableBytes(*result)));
  }
  return ScannedSource{std::move(*result), TableCache::Entry()};
}

Result<ScannedSource> FederatedEngine::ReadDegradable(
    const std::string& dataset, const QueryOptions& options,
    FederationStats* stats) const {
  if (stats != nullptr) ++stats->source_reads;
  Result<ScannedSource> result = ReadSource(dataset, options, stats);
  if (result.ok() || options.degradation != DegradationMode::kBestEffort ||
      !SourceFault(result.status())) {
    return result;
  }
  table::Schema schema;
  {
    MutexLock lock(mu_);
    auto it = schema_cache_.find(dataset);
    // Never-seen schema: there is no schema-valid empty table to
    // substitute, so the failure propagates even in best-effort mode.
    if (it == schema_cache_.end()) return result;
    schema = it->second;
  }
  if (stats != nullptr) {
    stats->partial = true;
    stats->failed_sources.push_back(SourceFailure{dataset, result.status()});
  }
  return ScannedSource{table::Table(dataset, schema), TableCache::Entry()};
}

Result<table::Table> FederatedEngine::Scan(const std::string& dataset,
                                           const Expr* predicate,
                                           FederationStats* stats,
                                           const QueryOptions& options) const {
  if (stats != nullptr) ++stats->source_reads;
  LAKEKIT_ASSIGN_OR_RETURN(ScannedSource src,
                           ReadSource(dataset, options, stats));
  return FilterScanned(std::move(src), predicate, stats,
                       MakeExecOptions(options));
}

namespace {

/// Whether every column referenced by `expr` exists in `schema`.
bool CoveredBy(const Expr& expr, const table::Schema& schema) {
  std::vector<std::string> columns;
  expr.CollectColumns(&columns);
  for (const std::string& c : columns) {
    if (!schema.HasField(c)) return false;
  }
  return !columns.empty();
}

}  // namespace

Result<table::Table> FederatedEngine::Query(std::string_view sql,
                                            const QueryOptions& options,
                                            FederationStats* stats_out) {
  // Computed into a local so concurrent queries never share accumulation
  // state; published under the lock once, when the query is done.
  FederationStats stats;
  Result<table::Table> result = [&]() -> Result<table::Table> {
    // Overload valve first: a shed or expired-in-queue query does no work
    // at all — no parse, no reservation, no source read.
    AdmissionController::Ticket ticket;
    if (options_.admission != nullptr) {
      Result<AdmissionController::Ticket> admitted =
          options_.admission->Admit(options.deadline, options.cancel);
      LAKEKIT_RETURN_IF_ERROR(admitted.status());
      ticket = std::move(*admitted);
    }
    // The per-query memory account. Everything the query charged — operator
    // reservations unwind eagerly, owned decoded tables do not — is
    // settled when this goes out of scope, after the result table has been
    // built. Callers supplying QueryOptions::budget keep their own account.
    BudgetAccount account(options_.memory_budget,
                          options_.query_reservation_bytes);
    QueryOptions opts = options;
    if (opts.budget == nullptr) opts.budget = &account;
    Result<table::Table> r = QueryImpl(sql, opts, &stats);
    ticket.Finish(r.ok());
    return r;
  }();
  if (options.stats_out != nullptr) *options.stats_out = stats;
  if (stats_out != nullptr) *stats_out = stats;
  MutexLock lock(mu_);
  stats_ = std::move(stats);
  return result;
}

Result<table::Table> FederatedEngine::Query(std::string_view sql,
                                            bool enable_pushdown) {
  QueryOptions options;
  options.enable_pushdown = enable_pushdown;
  return Query(sql, options);
}

FederationStats FederatedEngine::last_stats() const {
  MutexLock lock(mu_);
  return stats_;
}

CircuitBreaker::State FederatedEngine::breaker_state(
    const std::string& dataset) const {
  MutexLock lock(mu_);
  auto it = breakers_.find(dataset);
  return it == breakers_.end() ? CircuitBreaker::State::kClosed
                               : it->second->state();
}

Result<table::Table> FederatedEngine::QueryImpl(std::string_view sql,
                                                const QueryOptions& options,
                                                FederationStats* stats) const {
  const ExecOptions exec = MakeExecOptions(options);
  LAKEKIT_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSql(sql));

  // Decompose the WHERE clause into conjuncts and classify them by which
  // source covers them.
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(stmt.where, &conjuncts);

  // Read each source exactly once; conjunct classification uses the schema
  // of the same table the scan filters, so there is no separate probe read.
  LAKEKIT_ASSIGN_OR_RETURN(ScannedSource from_data,
                           ReadDegradable(stmt.from_table, options, stats));
  const table::Schema& from_schema = from_data.table().schema();
  ScannedSource join_data;
  table::Schema join_schema;
  if (stmt.join_table) {
    LAKEKIT_ASSIGN_OR_RETURN(
        join_data, ReadDegradable(*stmt.join_table, options, stats));
    join_schema = join_data.table().schema();
  }

  std::vector<ExprPtr> from_push;
  std::vector<ExprPtr> join_push;
  std::vector<ExprPtr> residual;
  for (const ExprPtr& c : conjuncts) {
    if (options.enable_pushdown && CoveredBy(*c, from_schema)) {
      from_push.push_back(c);
    } else if (options.enable_pushdown && stmt.join_table &&
               CoveredBy(*c, join_schema)) {
      join_push.push_back(c);
    } else {
      residual.push_back(c);
    }
  }
  stats->pushed_conjuncts = from_push.size() + join_push.size();
  stats->residual_conjuncts = residual.size();

  // Source-side filtering of the already-read tables.
  ExprPtr from_pred = CombineConjuncts(from_push);
  LAKEKIT_ASSIGN_OR_RETURN(
      table::Table current,
      FilterScanned(std::move(from_data), from_pred ? from_pred.get() : nullptr,
                    stats, exec));
  if (stmt.join_table) {
    ExprPtr join_pred = CombineConjuncts(join_push);
    LAKEKIT_ASSIGN_OR_RETURN(
        table::Table right,
        FilterScanned(std::move(join_data),
                      join_pred ? join_pred.get() : nullptr, stats, exec));
    stats->join_input_rows = current.num_rows() + right.num_rows();
    LAKEKIT_ASSIGN_OR_RETURN(
        current, HashJoin(current, right, stmt.join_left_col,
                          stmt.join_right_col, JoinType::kInner, exec));
  }

  // Residual filtering + the rest of the plan at the mediator.
  ExprPtr residual_pred = CombineConjuncts(residual);
  if (residual_pred) {
    LAKEKIT_ASSIGN_OR_RETURN(current, Filter(current, *residual_pred, exec));
  }
  SelectStatement tail = stmt;
  tail.where = nullptr;  // already applied
  tail.from_table = "__current__";
  tail.join_table.reset();
  return ExecuteSelect(
      tail,
      [&](const std::string& name) -> Result<table::Table> {
        if (name == "__current__") return current;
        return Status::NotFound("unexpected table '" + name + "'");
      },
      exec);
}

}  // namespace lakekit::query
