#ifndef LAKEKIT_QUERY_FEDERATION_H_
#define LAKEKIT_QUERY_FEDERATION_H_

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/cancellation.h"
#include "common/circuit_breaker.h"
#include "common/deadline.h"
#include "common/memory_budget.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/thread_annotations.h"
#include "query/admission.h"
#include "query/source.h"
#include "query/sql.h"
#include "query/table_cache.h"
#include "storage/polystore.h"

namespace lakekit::query {

/// One source that could not be scanned during a best-effort query.
struct SourceFailure {
  std::string dataset;
  Status status;
};

/// Per-query execution statistics demonstrating the effect of predicate
/// pushdown (Constance pushes selections to the sources to "reduce the
/// amount of data to be loaded", survey Sec. 6.3/7.2) and, since the
/// resilience layer, of retries / circuit breaking / degradation.
struct FederationStats {
  /// Source scans issued — one per source per query: conjunct
  /// classification reuses the scanned table's schema instead of issuing a
  /// separate probe read. (Retries of a failing scan are counted in
  /// `retries`, not here.)
  size_t source_reads = 0;
  /// Rows read from the underlying stores.
  size_t rows_scanned = 0;
  /// Rows shipped from the sources to the mediator.
  size_t rows_shipped = 0;
  /// Rows fed into the join (both sides).
  size_t join_input_rows = 0;
  /// Conjuncts pushed to sources.
  size_t pushed_conjuncts = 0;
  /// Conjuncts evaluated at the mediator.
  size_t residual_conjuncts = 0;
  /// Retry attempts beyond each scan's first, summed over sources.
  size_t retries = 0;
  /// Scan attempts rejected by an open/half-open circuit breaker.
  size_t breaker_rejections = 0;
  /// Cache-enabled engines only (FederatedEngineOptions::table_cache).
  /// A hit serves the decoded table from the cache: no source read, no
  /// retry, and the breaker is never consulted. A miss reads the source
  /// (counted in `source_reads` as usual) and admits the decoded result.
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  /// Morsels skipped outright by zone-map statistics during source-side
  /// filtering (cache-enabled scans with a pushed predicate only).
  size_t morsels_pruned = 0;
  /// Best-effort only: true when at least one source was degraded to an
  /// empty (schema-valid) table instead of failing the query.
  bool partial = false;
  /// The degraded sources and why each failed. Empty unless `partial`.
  std::vector<SourceFailure> failed_sources;
};

/// What a query does when a source stays down after retries.
enum class DegradationMode {
  /// The query fails with the source's error (default).
  kStrict,
  /// The query degrades: the dead source contributes an empty table with
  /// its last known schema, the query completes over the remaining
  /// sources, and `FederationStats::partial`/`failed_sources` record what
  /// is missing. A source whose schema was never seen cannot be degraded
  /// (there is no schema-valid empty table to substitute), and deadline
  /// expiry / cancellation always fail the query — they are the caller's
  /// budget, not a source outage.
  kBestEffort,
};

/// Per-query knobs. A default-constructed QueryOptions reproduces the
/// legacy behavior: pushdown on, no deadline, no cancellation, strict.
struct QueryOptions {
  /// WHERE conjuncts that reference only one source's columns are
  /// evaluated during that source's scan.
  bool enable_pushdown = true;
  /// Absolute budget for the whole query: source scans (including their
  /// retry backoff), joins, and mediator-side operators all observe it at
  /// morsel granularity. Expiry surfaces as kDeadlineExceeded.
  Deadline deadline;
  /// Cooperative cancellation, observed at the same points as `deadline`.
  CancelToken cancel;
  DegradationMode degradation = DegradationMode::kStrict;
  /// Pool the vectorized operators run on; nullptr: the process default.
  ThreadPool* pool = nullptr;
  /// Where this query's statistics are written when it finishes —
  /// equivalent to Query's `stats` parameter but usable from call sites
  /// that only plumb QueryOptions. Unlike `last_stats()` there is no
  /// last-writer-wins ambiguity: each concurrent caller points this at its
  /// own struct. nullptr: not reported this way.
  FederationStats* stats_out = nullptr;
  /// Memory account this query's operators charge (see ExecOptions::budget).
  /// Normally left null: the engine creates a per-query child of its
  /// configured MemoryBudget. Set it to supply your own account — e.g. one
  /// shared across the queries of a batch job.
  BudgetAccount* budget = nullptr;
};

/// Engine-wide resilience tuning, fixed at construction.
struct FederatedEngineOptions {
  /// Retry schedule for transient scan failures (see RetryPolicy). A fresh
  /// policy is built per scan, so concurrent queries never share Rng state.
  RetryOptions retry;
  /// Per-source circuit breaker tuning.
  CircuitBreakerOptions breaker;
  /// Time source for breakers (and anything else that needs one) when
  /// `breaker.clock` is unset. nullptr: the real clock.
  const Clock* clock = nullptr;
  /// Where retry backoff sleeps go; default real sleeps. Chaos tests point
  /// this at a ManualClock so schedules replay without wall-clock cost.
  std::function<void(std::chrono::milliseconds)> sleep_fn;
  /// Optional decoded-table cache, shared across engines and queries
  /// (caller-owned, must outlive the engine). When set, every scan first
  /// consults the cache under the key (dataset, source generation); hits
  /// bypass the breaker-gated read entirely and filter straight off the
  /// pinned cached table with zone-map pruning. nullptr (the default)
  /// disables caching: behavior is exactly the pre-cache engine's.
  TableCache* table_cache = nullptr;
  /// Overload protection (DESIGN.md §10); both caller-owned, must outlive
  /// the engine, and may be shared across engines so several front doors
  /// drain one capacity pool.
  ///
  /// When set, every Query runs under a per-query BudgetAccount child of
  /// this process budget: operator state and owned decoded tables reserve
  /// against it, and a reservation the budget refuses fails that query with
  /// kResourceExhausted (degradable per source under kBestEffort) while the
  /// process keeps serving. nullptr: queries are unaccounted.
  MemoryBudget* memory_budget = nullptr;
  /// Per-query cap within `memory_budget` (0: the whole budget — a lone
  /// query may use everything, concurrent ones contend).
  size_t query_reservation_bytes = 0;
  /// When set, Query acquires a slot before any work: beyond
  /// `max_concurrent` running queries callers wait in a bounded FIFO
  /// (observing their own deadline/cancellation), and a full queue sheds
  /// with retriable kUnavailable. nullptr: every query runs immediately.
  AdmissionController* admission = nullptr;
};

/// The product of one resilient scan: a decoded table this query owns (cold
/// read, or degraded empty substitute) or a pinned reference into the shared
/// TableCache (warm read). `zones()` is non-null only for cached tables —
/// zone maps are built at cache admission, so only cached scans prune.
struct ScannedSource {
  table::Table owned;
  TableCache::Entry cached;  // when non-empty, `owned` is unused

  const table::Table& table() const {
    return cached ? cached->table : owned;
  }
  const ZoneMap* zones() const { return cached ? &cached->zones : nullptr; }

  /// An owned table: moved out when this query owns it, copied when it is
  /// shared through the cache (the cache's copy stays pinned until this
  /// ScannedSource dies).
  table::Table TakeOrCopy() && {
    if (cached) return cached->table;
    return std::move(owned);
  }
};

/// A federated query engine over the polystore — the Constance /
/// Ontario / Squerall pattern (survey Sec. 7.2): one SQL interface, query
/// decomposition per source, per-source predicate pushdown, and mediator-
/// side join + residual filtering of the shipped partial results.
///
/// The resilience layer wraps every source scan: a deadline-aware retry
/// policy absorbs transient faults, a per-source circuit breaker stops a
/// dead source from burning every query's retry budget, and best-effort
/// degradation (see DegradationMode) turns residual failures into partial
/// results. Thread-safe: concurrent `Query` calls on one engine are
/// supported; each computes into its own stats.
class FederatedEngine {
 public:
  explicit FederatedEngine(storage::Polystore* polystore,
                           FederatedEngineOptions options = {});
  /// Queries an arbitrary source — the seam chaos tests use to inject
  /// faults (FlakySource). `source` must outlive the engine.
  explicit FederatedEngine(TableSource* source,
                           FederatedEngineOptions options = {});

  /// Runs a SQL query whose FROM/JOIN tables are registered datasets,
  /// under `options`' deadline/cancellation/degradation. With an engine
  /// AdmissionController the query first acquires a slot (and may be shed
  /// with kUnavailable); with an engine MemoryBudget it runs under a
  /// per-query reservation and fails with kResourceExhausted rather than
  /// exceed it. When `stats` (or `options.stats_out`) is non-null the
  /// query's statistics are copied there; `last_stats()` also reports them
  /// afterwards (last writer wins under concurrency — concurrent callers
  /// should use one of the per-call sinks).
  Result<table::Table> Query(std::string_view sql, const QueryOptions& options,
                             FederationStats* stats = nullptr);

  /// Legacy entry point: default QueryOptions with `enable_pushdown`.
  Result<table::Table> Query(std::string_view sql, bool enable_pushdown = true);

  /// Scans one dataset with an optional source-side predicate, through the
  /// retry policy and the dataset's circuit breaker. Accounts into
  /// `stats` (caller-owned; may be nullptr).
  Result<table::Table> Scan(const std::string& dataset, const Expr* predicate,
                            FederationStats* stats,
                            const QueryOptions& options = {}) const;

  /// Statistics of the most recently completed Query (by value: the
  /// snapshot is taken under the engine lock).
  FederationStats last_stats() const;

  /// The dataset's breaker state; kClosed when it has never tripped (or
  /// never been scanned).
  CircuitBreaker::State breaker_state(const std::string& dataset) const;

 private:
  Result<table::Table> QueryImpl(std::string_view sql,
                                 const QueryOptions& options,
                                 FederationStats* stats) const;
  /// One resilient source read: consults the table cache first (a hit
  /// returns the pinned entry without touching breaker or source), then
  /// pre-checks cancel/deadline and runs the breaker-gated read under the
  /// retry policy, admitting the result to the cache. Caches the schema of
  /// successful reads for best-effort degradation.
  Result<ScannedSource> ReadSource(const std::string& dataset,
                                   const QueryOptions& options,
                                   FederationStats* stats) const;
  /// ReadSource, plus best-effort degradation to an empty schema-valid
  /// table when `options.degradation` allows it.
  Result<ScannedSource> ReadDegradable(const std::string& dataset,
                                       const QueryOptions& options,
                                       FederationStats* stats) const;
  CircuitBreaker* BreakerFor(const std::string& dataset) const;

  // unguarded: immutable after construction.
  TableSource* source_;
  // unguarded: immutable after construction (set iff built from a
  // Polystore; source_ then points at it).
  std::unique_ptr<PolystoreSource> owned_source_;
  // unguarded: immutable after construction.
  FederatedEngineOptions options_;

  mutable Mutex mu_;
  FederationStats stats_ LAKEKIT_GUARDED_BY(mu_);
  /// Breakers are created on first scan of a dataset and never removed, so
  /// the pointers BreakerFor hands out stay valid for the engine's life.
  mutable std::map<std::string, std::unique_ptr<CircuitBreaker>, std::less<>>
      breakers_ LAKEKIT_GUARDED_BY(mu_);
  /// Last known schema per dataset, for best-effort empty-table
  /// substitution.
  mutable std::map<std::string, table::Schema, std::less<>> schema_cache_
      LAKEKIT_GUARDED_BY(mu_);
};

/// Splits a predicate into its top-level AND conjuncts.
void SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out);

/// Reassembles conjuncts with AND; nullptr for an empty list.
ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts);

}  // namespace lakekit::query

#endif  // LAKEKIT_QUERY_FEDERATION_H_
