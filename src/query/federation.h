#ifndef LAKEKIT_QUERY_FEDERATION_H_
#define LAKEKIT_QUERY_FEDERATION_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "query/sql.h"
#include "storage/polystore.h"

namespace lakekit::query {

/// Per-query execution statistics demonstrating the effect of predicate
/// pushdown (Constance pushes selections to the sources to "reduce the
/// amount of data to be loaded", survey Sec. 6.3/7.2).
struct FederationStats {
  /// ReadAsTable calls issued against the polystore — one per source per
  /// query: conjunct classification reuses the scanned table's schema
  /// instead of issuing a separate probe read.
  size_t source_reads = 0;
  /// Rows read from the underlying stores.
  size_t rows_scanned = 0;
  /// Rows shipped from the sources to the mediator.
  size_t rows_shipped = 0;
  /// Rows fed into the join (both sides).
  size_t join_input_rows = 0;
  /// Conjuncts pushed to sources.
  size_t pushed_conjuncts = 0;
  /// Conjuncts evaluated at the mediator.
  size_t residual_conjuncts = 0;
};

/// A federated query engine over the polystore — the Constance /
/// Ontario / Squerall pattern (survey Sec. 7.2): one SQL interface, query
/// decomposition per source, per-source predicate pushdown, and mediator-
/// side join + residual filtering of the shipped partial results.
class FederatedEngine {
 public:
  explicit FederatedEngine(storage::Polystore* polystore)
      : polystore_(polystore) {}

  /// Runs a SQL query whose FROM/JOIN tables are registered datasets.
  /// With pushdown enabled, WHERE conjuncts that reference only one
  /// source's columns are evaluated during that source's scan.
  Result<table::Table> Query(std::string_view sql, bool enable_pushdown = true);

  /// Scans one dataset with an optional source-side predicate.
  Result<table::Table> Scan(const std::string& dataset, const Expr* predicate,
                            FederationStats* stats) const;

  const FederationStats& last_stats() const { return stats_; }

 private:
  storage::Polystore* polystore_;
  FederationStats stats_;
};

/// Splits a predicate into its top-level AND conjuncts.
void SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out);

/// Reassembles conjuncts with AND; nullptr for an empty list.
ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts);

}  // namespace lakekit::query

#endif  // LAKEKIT_QUERY_FEDERATION_H_
