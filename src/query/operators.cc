#include "query/operators.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "common/hash.h"
#include "common/thread_pool.h"
#include "query/vec.h"
#include "query/zone_map.h"

namespace lakekit::query {

using table::DataType;
using table::Field;
using table::Schema;
using table::Table;
using table::Value;

/// Vectorized operators (DESIGN.md §7). Each operator splits its input into
/// kMorselSize-row morsels, runs a pure per-morsel computation on the
/// execution layer's thread pool (pre-sized slots: result m depends only on
/// m), and merges the per-morsel results serially in ascending morsel order.
/// That merge order is the whole determinism story: output rows, group
/// order, and even the floating-point summation order are fixed, so any
/// thread count — including 1 — produces bit-identical tables, and those
/// tables are bit-identical to query/reference_ops.h.

Status CheckInterrupt(const ExecOptions& opts) {
  if (opts.cancel.cancelled()) return opts.cancel.status();
  if (opts.deadline.expired()) {
    return Status::DeadlineExceeded("query deadline expired");
  }
  return Status::OK();
}

namespace {

/// Operator-scope budget holder (DESIGN.md §10): concurrent morsel tasks
/// reserve straight on the account (two CAS pairs per morsel — the per-row
/// batching lives in MemoryCharge when a single task charges repeatedly),
/// the running total accumulates here, and the destructor returns the lot
/// when the operator finishes — transient state (hash tables, partials,
/// match lists, sort keys) is only accounted while it is actually live.
/// Detached/null accounts make every Reserve a no-op.
class ScopedReservation {
 public:
  explicit ScopedReservation(BudgetAccount* account)
      : account_(account != nullptr && account->attached() ? account
                                                           : nullptr) {}
  ScopedReservation(const ScopedReservation&) = delete;
  ScopedReservation& operator=(const ScopedReservation&) = delete;
  ~ScopedReservation() {
    if (account_ != nullptr) {
      account_->Release(total_.load(std::memory_order_relaxed));
    }
  }

  /// Thread-safe: morsel tasks call this concurrently.
  Status Reserve(size_t bytes) {
    if (account_ == nullptr) return Status::OK();
    LAKEKIT_RETURN_IF_ERROR(account_->TryReserve(bytes));
    total_.fetch_add(bytes, std::memory_order_relaxed);
    return Status::OK();
  }

 private:
  BudgetAccount* account_;
  std::atomic<size_t> total_{0};
};

ParallelOptions PoolOptions(const ExecOptions& opts) {
  ParallelOptions po;
  po.pool = opts.pool;
  // Chunk-level interruption in ParallelFor is a backstop; the per-morsel
  // CheckInterrupt in each operator lambda is the finer-grained gate.
  po.cancel = opts.cancel;
  po.deadline = opts.deadline;
  return po;
}

/// Morsel m covers input rows [MorselBegin(m), MorselEnd(m, rows)).
size_t MorselBegin(size_t m) { return m * kMorselSize; }
size_t MorselEnd(size_t m, size_t rows) {
  return std::min(rows, (m + 1) * kMorselSize);
}

}  // namespace

Result<Table> Filter(const Table& input, const Expr& predicate,
                     const ExecOptions& opts) {
  return Filter(input, predicate, /*zones=*/nullptr, opts, /*stats=*/nullptr);
}

Result<Table> Filter(const Table& input, const Expr& predicate,
                     const ZoneMap* zones, const ExecOptions& opts,
                     FilterExecStats* stats) {
  Table out(input.name(), input.schema());
  const size_t rows = input.num_rows();
  if (rows == 0) return out;  // nothing to evaluate (matches the interpreter)
  LAKEKIT_ASSIGN_OR_RETURN(CompiledExpr compiled,
                           CompiledExpr::Compile(predicate, input.schema()));
  const size_t num_morsels = NumMorsels(rows);
  // Pruning is only sound when chunk m describes exactly morsel m of this
  // table; a mismatched zone map (stale, or built for another table) is
  // ignored rather than trusted.
  const bool prune = zones != nullptr && zones->num_chunks() == num_morsels &&
                     zones->num_columns() == input.num_columns();
  // Per-morsel verdicts land in disjoint pre-sized slots and are tallied
  // after the join — no shared counters on the parallel path.
  enum : uint8_t { kEvaluated = 0, kPruned = 1, kSelectedAll = 2 };
  std::vector<uint8_t> verdicts(num_morsels, kEvaluated);
  // Predicate evaluation fans out per morsel; the gather stays serial and
  // ordered.
  LAKEKIT_ASSIGN_OR_RETURN(
      std::vector<SelVector> selections,
      ParallelMap<SelVector>(
          num_morsels,
          [&](size_t m) -> Result<SelVector> {
            LAKEKIT_RETURN_IF_ERROR(CheckInterrupt(opts));
            const size_t begin = MorselBegin(m);
            const size_t end = MorselEnd(m, rows);
            SelVector sel;
            if (prune) {
              const RangeTruth verdict = compiled.EvaluateRange(
                  zones->chunk(m), input.num_columns());
              if (verdict == RangeTruth::kAlwaysFalse) {
                verdicts[m] = kPruned;
                return sel;  // no row can pass: skip the whole morsel
              }
              if (verdict == RangeTruth::kAlwaysTrue) {
                verdicts[m] = kSelectedAll;
                sel.reserve(end - begin);
                for (size_t r = begin; r < end; ++r) {
                  sel.push_back(static_cast<uint32_t>(r));
                }
                return sel;  // every row passes: select without evaluating
              }
            }
            LAKEKIT_RETURN_IF_ERROR(
                compiled.EvalSelection(input, begin, end, &sel));
            return sel;
          },
          PoolOptions(opts)));
  if (stats != nullptr) {
    stats->morsels_total += num_morsels;
    for (uint8_t v : verdicts) {
      if (v == kPruned) ++stats->morsels_pruned;
      if (v == kSelectedAll) ++stats->morsels_selected;
    }
  }
  size_t total = 0;
  for (const SelVector& sel : selections) total += sel.size();
  // Charge the materialized output before allocating it. Released when the
  // operator returns: inter-operator table lifetime is the engine's to
  // account, not each operator's.
  ScopedReservation reservation(opts.budget);
  LAKEKIT_RETURN_IF_ERROR(
      reservation.Reserve(total * input.num_columns() * sizeof(Value)));
  out.Reserve(total);
  for (const SelVector& sel : selections) {
    LAKEKIT_RETURN_IF_ERROR(out.AppendRowsFrom(input, sel.data(), sel.size()));
  }
  return out;
}

Result<Table> Project(const Table& input,
                      const std::vector<std::string>& columns) {
  Schema schema;
  std::vector<size_t> indexes;
  for (const std::string& name : columns) {
    LAKEKIT_ASSIGN_OR_RETURN(size_t idx, input.ColumnIndex(name));
    indexes.push_back(idx);
    schema.AddField(input.schema().field(idx));
  }
  // Whole-column copies — no per-row work at all.
  std::vector<std::vector<Value>> cols;
  cols.reserve(indexes.size());
  for (size_t idx : indexes) cols.push_back(input.column(idx));
  return Table::FromColumns(input.name(), std::move(schema), std::move(cols),
                            input.num_rows());
}

namespace {

constexpr uint32_t kNoMatch = 0xffffffffu;

/// Smallest power of two >= max(16, 2 * n).
size_t BucketCount(size_t n) {
  size_t buckets = 16;
  while (buckets < 2 * n) buckets <<= 1;
  return buckets;
}

}  // namespace

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& left_col,
                       const std::string& right_col, JoinType type,
                       const ExecOptions& opts) {
  LAKEKIT_ASSIGN_OR_RETURN(size_t lidx, left.ColumnIndex(left_col));
  LAKEKIT_ASSIGN_OR_RETURN(size_t ridx, right.ColumnIndex(right_col));

  // Output schema: left fields + right fields (suffixing collisions).
  Schema schema;
  for (const Field& f : left.schema().fields()) schema.AddField(f);
  for (const Field& f : right.schema().fields()) {
    Field field = f;
    while (schema.HasField(field.name)) field.name += "_r";
    schema.AddField(field);
  }

  // Build side: hash every right key once, in parallel (disjoint pre-sized
  // slots), then chain rows into a power-of-two bucket array. Rows are
  // inserted in descending order so each chain reads back in ascending
  // right-row order — the match order the interpreter produces.
  const std::vector<Value>& rkeys = right.column(ridx);
  const size_t n_right = right.num_rows();
  // The build side's size is known exactly before anything is allocated:
  // hash + null flag + chain link per right row, plus the bucket array.
  // Reserve it up front so an over-budget join fails before the first
  // allocation.
  ScopedReservation reservation(opts.budget);
  LAKEKIT_RETURN_IF_ERROR(reservation.Reserve(
      n_right * (sizeof(uint64_t) + sizeof(uint8_t) + sizeof(uint32_t)) +
      BucketCount(n_right) * sizeof(uint32_t)));
  std::vector<uint64_t> rhash(n_right);
  std::vector<uint8_t> rnull(n_right);
  LAKEKIT_RETURN_IF_ERROR(ParallelFor(
      0, NumMorsels(n_right),
      [&](size_t m) -> Status {
        LAKEKIT_RETURN_IF_ERROR(CheckInterrupt(opts));
        for (size_t r = MorselBegin(m); r < MorselEnd(m, n_right); ++r) {
          rnull[r] = rkeys[r].is_null() ? 1 : 0;
          rhash[r] = rnull[r] != 0 ? 0 : rkeys[r].Hash();
        }
        return Status::OK();
      },
      PoolOptions(opts)));
  const size_t buckets = BucketCount(n_right);
  const uint64_t mask = buckets - 1;
  std::vector<uint32_t> head(buckets, kNoMatch);
  std::vector<uint32_t> next(n_right, kNoMatch);
  for (size_t r = n_right; r > 0; --r) {
    const size_t i = r - 1;
    if (rnull[i] != 0) continue;
    const size_t b = rhash[i] & mask;
    next[i] = head[b];
    head[b] = static_cast<uint32_t>(i);
  }

  // Probe side: per-morsel (left row, right row) match lists; kNoMatch marks
  // a left-join row without a partner.
  const std::vector<Value>& lkeys = left.column(lidx);
  const size_t n_left = left.num_rows();
  using MatchList = std::vector<std::pair<uint32_t, uint32_t>>;
  LAKEKIT_ASSIGN_OR_RETURN(
      std::vector<MatchList> matches,
      ParallelMap<MatchList>(
          NumMorsels(n_left),
          [&](size_t m) -> Result<MatchList> {
            LAKEKIT_RETURN_IF_ERROR(CheckInterrupt(opts));
            MatchList out_m;
            for (size_t l = MorselBegin(m); l < MorselEnd(m, n_left); ++l) {
              const Value& key = lkeys[l];
              bool matched = false;
              if (!key.is_null()) {
                const uint64_t h = key.Hash();
                for (uint32_t r = head[h & mask]; r != kNoMatch;
                     r = next[r]) {
                  if (rhash[r] == h && rkeys[r] == key) {
                    out_m.emplace_back(static_cast<uint32_t>(l), r);
                    matched = true;
                  }
                }
              }
              if (!matched && type == JoinType::kLeft) {
                out_m.emplace_back(static_cast<uint32_t>(l), kNoMatch);
              }
            }
            // Match lists outlive the morsel (the gather reads them), so
            // they go on the operator-scope reservation, settled after one
            // morsel's growth — an exploding join overruns the budget by at
            // most one in-flight morsel's matches per worker before the
            // refusal lands, the same granularity as deadline checks.
            LAKEKIT_RETURN_IF_ERROR(reservation.Reserve(
                out_m.capacity() * sizeof(std::pair<uint32_t, uint32_t>)));
            return out_m;
          },
          PoolOptions(opts)));

  // Ordered columnar gather.
  size_t total = 0;
  for (const MatchList& m : matches) total += m.size();
  // The output's footprint is now exact; reserve it before the first
  // column is gathered.
  LAKEKIT_RETURN_IF_ERROR(
      reservation.Reserve(total * schema.num_fields() * sizeof(Value)));
  std::vector<std::vector<Value>> cols(schema.num_fields());
  const size_t left_cols = left.num_columns();
  for (size_t c = 0; c < left_cols; ++c) {
    const std::vector<Value>& from = left.column(c);
    std::vector<Value>& to = cols[c];
    to.reserve(total);
    for (const MatchList& morsel : matches) {
      for (const auto& [l, r] : morsel) to.push_back(from[l]);
    }
  }
  for (size_t c = 0; c < right.num_columns(); ++c) {
    const std::vector<Value>& from = right.column(c);
    std::vector<Value>& to = cols[left_cols + c];
    to.reserve(total);
    for (const MatchList& morsel : matches) {
      for (const auto& [l, r] : morsel) {
        to.push_back(r == kNoMatch ? Value::Null() : from[r]);
      }
    }
  }
  return Table::FromColumns(left.name() + "_join_" + right.name(),
                            std::move(schema), std::move(cols), total);
}

namespace {

/// Per-group aggregation state. Double cells accumulate into `dsum` —
/// within one morsel this is the within-morsel partial; the ordered merge
/// folds partials morsel by morsel, which is the summation order the
/// reference interpreter reproduces with its per-block flush.
struct AggState {
  size_t count = 0;
  int64_t isum = 0;
  double dsum = 0;
  bool saw_double = false;
  Value min;
  Value max;

  void Add(const Value& v) {
    if (v.is_null()) return;
    ++count;
    if (v.is_int()) {
      isum += v.as_int();
    } else if (v.is_double()) {
      saw_double = true;
      dsum += v.as_double();
    }
    if (min.is_null() || v < min) min = v;
    if (max.is_null() || max < v) max = v;
  }

  /// Folds `other` (a later morsel's partial) into this state. Ties in
  /// min/max keep the earlier value, matching row-order first-seen.
  void Merge(const AggState& other) {
    count += other.count;
    isum += other.isum;
    dsum += other.dsum;
    saw_double = saw_double || other.saw_double;
    if (!other.min.is_null() && (min.is_null() || other.min < min)) {
      min = other.min;
    }
    if (!other.max.is_null() && (max.is_null() || max < other.max)) {
      max = other.max;
    }
  }

  Value Finish(AggFn fn) const {
    switch (fn) {
      case AggFn::kCount:
        return Value(static_cast<int64_t>(count));
      case AggFn::kSum:
        if (count == 0) return Value::Null();
        if (!saw_double) return Value(isum);
        return Value(static_cast<double>(isum) + dsum);
      case AggFn::kAvg:
        if (count == 0) return Value::Null();
        return Value((static_cast<double>(isum) + dsum) /
                     static_cast<double>(count));
      case AggFn::kMin:
        return min;
      case AggFn::kMax:
        return max;
    }
    return Value::Null();
  }
};

/// Group key: the key values plus their combined hash, compared with real
/// elementwise Value equality (not a string encoding — see reference_ops.h).
struct GroupKey {
  std::vector<Value> values;
  uint64_t hash = 0;
};

constexpr uint64_t kGroupHashSeed = 0xa99ec0de5eedULL;

struct GroupKeyHash {
  size_t operator()(const GroupKey& k) const {
    return static_cast<size_t>(k.hash);
  }
};

struct GroupKeyEq {
  bool operator()(const GroupKey& a, const GroupKey& b) const {
    if (a.hash != b.hash || a.values.size() != b.values.size()) return false;
    for (size_t i = 0; i < a.values.size(); ++i) {
      if (!(a.values[i] == b.values[i])) return false;
    }
    return true;
  }
};

DataType AggOutputType(AggFn fn, bool has_input, DataType input_type) {
  switch (fn) {
    case AggFn::kCount:
      return DataType::kInt64;
    case AggFn::kSum:
      // int64 inputs sum in int64 (exact past 2^53); everything else widens.
      return has_input && input_type == DataType::kInt64 ? DataType::kInt64
                                                         : DataType::kDouble;
    case AggFn::kAvg:
      return DataType::kDouble;
    case AggFn::kMin:
    case AggFn::kMax:
      return has_input ? input_type : DataType::kString;
  }
  return DataType::kString;
}

/// One morsel's partial aggregation: groups in within-morsel first-seen
/// order. `states` is group-major — state for (group g, aggregate i) lives
/// at `states[g * naggs + i]` — so the merge touches one flat allocation
/// instead of a vector-of-vectors.
struct AggPartial {
  std::vector<GroupKey> keys;
  std::vector<AggState> states;
};

/// Lane-local cell equality, resolved to a function pointer once per
/// (key lane, morsel) so the probe loop's candidate check is one indirect
/// call — no CellRef construction or type dispatch per row. Semantics match
/// CellEq: NULL equals only NULL, numerics compare by double, NaN != NaN.
using LaneEqFn = bool (*)(const Vec&, size_t, size_t);

bool LaneEqGeneric(const Vec& v, size_t a, size_t b) {
  return CellEq(DecodeCell(*v.cells[a]), DecodeCell(*v.cells[b]));
}
// An all-NULL lane has no payload to compare: every pair of cells is equal.
bool LaneEqNull(const Vec& /*v*/, size_t /*a*/, size_t /*b*/) { return true; }
bool LaneEqBool(const Vec& v, size_t a, size_t b) {
  if ((v.nulls[a] | v.nulls[b]) != 0) return v.nulls[a] == v.nulls[b];
  return v.b8[a] == v.b8[b];
}
bool LaneEqI64(const Vec& v, size_t a, size_t b) {
  if ((v.nulls[a] | v.nulls[b]) != 0) return v.nulls[a] == v.nulls[b];
  // By double — the numeric equality Value uses (2^53 and 2^53 + 1 are
  // equal keys).
  return static_cast<double>(v.i64[a]) == static_cast<double>(v.i64[b]);
}
bool LaneEqF64(const Vec& v, size_t a, size_t b) {
  if ((v.nulls[a] | v.nulls[b]) != 0) return v.nulls[a] == v.nulls[b];
  return v.f64[a] == v.f64[b];  // NaN != NaN, like Value.
}
bool LaneEqStr(const Vec& v, size_t a, size_t b) {
  if ((v.nulls[a] | v.nulls[b]) != 0) return v.nulls[a] == v.nulls[b];
  const std::string_view x = v.str[a];
  const std::string_view y = v.str[b];
  if (x.size() != y.size()) return false;
  // Byte loop for short strings: string_view's operator== lowers to a libc
  // memcmp call, which dominates a 4-byte comparison done once per row.
  if (x.size() <= 16) {
    for (size_t i = 0; i < x.size(); ++i) {
      if (x[i] != y[i]) return false;
    }
    return true;
  }
  return x == y;
}

LaneEqFn LaneEqFor(const Vec& v) {
  if (v.generic) return LaneEqGeneric;
  switch (v.type) {
    case DataType::kBool:
      return LaneEqBool;
    case DataType::kInt64:
      return LaneEqI64;
    case DataType::kDouble:
      return LaneEqF64;
    case DataType::kString:
      return LaneEqStr;
    case DataType::kNull:
      break;
  }
  return LaneEqNull;
}

/// Morsel-local group index: a growable open-addressed table mapping a
/// morsel-local key hash (plus an equality check against the group's
/// first-seen row) to a dense group id. It starts at 64 slots — L1-resident
/// for the common low-cardinality morsel, instead of zeroing a
/// 2x-kMorselSize slab per morsel — and doubles when half full, rehashing
/// from the per-group stored hashes (groups are distinct, so no equality
/// checks), which caps the load factor at 1/2 all the way to the
/// one-group-per-row worst case. Rows per group are counted as a side
/// effect, so COUNT(*) needs no second sweep.
class GroupIndex {
 public:
  GroupIndex() : slots_(kInitialSlots) {}

  /// Returns the group id of row `k`, whose key hashes to `h`; `eq(k0)`
  /// decides whether row k's key equals the key first seen at row `k0`.
  template <typename EqFn>
  uint32_t Insert(uint64_t h, uint32_t k, EqFn&& eq) {
    const size_t mask = slots_.size() - 1;
    size_t s = h & mask;
    while (true) {
      Slot& slot = slots_[s];
      if (slot.gi == kNoMatch) {
        const uint32_t gi = static_cast<uint32_t>(first_row_.size());
        slot.hash = h;
        slot.gi = gi;
        first_row_.push_back(k);
        hashes_.push_back(h);
        counts_.push_back(1);
        if (2 * first_row_.size() >= slots_.size()) Grow();
        return gi;
      }
      if (slot.hash == h && eq(first_row_[slot.gi])) {
        ++counts_[slot.gi];
        return slot.gi;
      }
      s = (s + 1) & mask;
    }
  }

  /// Global-aggregate shortcut: one group covering `count` rows, first row 0.
  void SetSingleGroup(uint32_t count) {
    first_row_.assign(1, 0);
    hashes_.assign(1, 0);
    counts_.assign(1, count);
  }

  void Reset() {
    slots_.assign(kInitialSlots, Slot{});
    first_row_.clear();
    hashes_.clear();
    counts_.clear();
  }

  const std::vector<uint32_t>& first_row() const { return first_row_; }
  const std::vector<uint32_t>& counts() const { return counts_; }

 private:
  static constexpr size_t kInitialSlots = 64;  // power of two
  struct Slot {
    uint64_t hash = 0;
    uint32_t gi = kNoMatch;
  };

  void Grow() {
    std::vector<Slot> next(slots_.size() * 2);
    const size_t mask = next.size() - 1;
    for (size_t gi = 0; gi < hashes_.size(); ++gi) {
      size_t s = hashes_[gi] & mask;
      while (next[s].gi != kNoMatch) s = (s + 1) & mask;
      next[s].hash = hashes_[gi];
      next[s].gi = static_cast<uint32_t>(gi);
    }
    slots_ = std::move(next);
  }

  std::vector<Slot> slots_;
  std::vector<uint32_t> first_row_;  // group -> first row (morsel-relative)
  std::vector<uint64_t> hashes_;     // group -> probe hash, for Grow
  std::vector<uint32_t> counts_;     // group -> rows seen
};

/// Key policies for the fused single-key probe: how to read, hash, and
/// compare one typed key column's payload. Hash and equality mirror
/// lanehash / LaneEq semantics (numerics through double, NaN != NaN, short
/// strings compared byte-wise to avoid a libc memcmp call per row).
struct I64Key {
  static const int64_t* Get(const Value& v) { return v.get_int(); }
  static uint64_t Hash(int64_t v) {
    return lanehash::Numeric(static_cast<double>(v));
  }
  static bool Eq(int64_t a, int64_t b) {
    return static_cast<double>(a) == static_cast<double>(b);
  }
};
struct F64Key {
  static const double* Get(const Value& v) { return v.get_double(); }
  static uint64_t Hash(double v) { return lanehash::Numeric(v); }
  static bool Eq(double a, double b) { return a == b; }  // NaN != NaN
};
struct StrKey {
  static const std::string* Get(const Value& v) { return v.get_string(); }
  static uint64_t Hash(const std::string& s) { return lanehash::Prefix(s); }
  static bool Eq(const std::string& a, const std::string& b) {
    if (a.size() != b.size()) return false;
    if (a.size() <= 16) {
      for (size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i]) return false;
      }
      return true;
    }
    return a == b;
  }
};

/// Fused single-key group assignment: hashes and probes straight off the
/// key column's Values — no lane build, no row-hash array. Returns false on
/// the first off-schema cell; the caller resets `idx` and reruns the morsel
/// through the general lane path.
template <typename Key>
bool ProbeTypedKey(const std::vector<Value>& cells, size_t mbegin, size_t n,
                   GroupIndex* idx, uint32_t* group_of) {
  for (size_t k = 0; k < n; ++k) {
    const Value& c = cells[mbegin + k];
    const auto* pv = Key::Get(c);
    uint64_t h;
    if (pv != nullptr) {
      h = Key::Hash(*pv);
    } else if (c.is_null()) {
      h = lanehash::kNull;
    } else {
      return false;
    }
    group_of[k] =
        idx->Insert(h, static_cast<uint32_t>(k), [&](uint32_t k0) {
          const auto* p0 = Key::Get(cells[mbegin + k0]);
          if (p0 == nullptr || pv == nullptr) {
            return p0 == nullptr && pv == nullptr;  // NULL equals only NULL
          }
          return Key::Eq(*p0, *pv);
        });
  }
  return true;
}

/// Fused typed sweeps: one traversal of a column's cells computes the union
/// of what its aggregates need (count / sum / extrema) into morsel-local
/// arrays, reading Values in place — no lane materialization pass.
/// Instantiated per need-combination so the inner loop carries no dead work
/// or runtime flags. Returns false on the first off-schema cell; the caller
/// discards the (side-effect-free) local partials and reruns the morsel
/// through the per-cell Value path.
template <bool kWantSum, bool kWantMinMax>
bool SweepI64(const std::vector<Value>& cells, size_t mbegin,
              const uint32_t* group_of, size_t n, size_t* cnt, int64_t* sum,
              uint8_t* has, int64_t* mn, int64_t* mx) {
  for (size_t k = 0; k < n; ++k) {
    const Value& c = cells[mbegin + k];
    const int64_t* pv = c.get_int();
    if (pv == nullptr) {
      if (c.is_null()) continue;
      return false;
    }
    const uint32_t g = group_of[k];
    const int64_t v = *pv;
    ++cnt[g];
    if constexpr (kWantSum) sum[g] += v;
    if constexpr (kWantMinMax) {
      // Ordering is by double — the numeric order Value uses — while the
      // tracked extrema stay exact int64s.
      if (has[g] == 0) {
        has[g] = 1;
        mn[g] = mx[g] = v;
      } else {
        if (static_cast<double>(v) < static_cast<double>(mn[g])) mn[g] = v;
        if (static_cast<double>(mx[g]) < static_cast<double>(v)) mx[g] = v;
      }
    }
  }
  return true;
}

template <bool kWantSum, bool kWantMinMax>
bool SweepF64(const std::vector<Value>& cells, size_t mbegin,
              const uint32_t* group_of, size_t n, size_t* cnt, double* sum,
              uint8_t* has, double* mn, double* mx) {
  for (size_t k = 0; k < n; ++k) {
    const Value& c = cells[mbegin + k];
    const double* pv = c.get_double();
    if (pv == nullptr) {
      if (c.is_null()) continue;
      return false;
    }
    const uint32_t g = group_of[k];
    const double v = *pv;
    ++cnt[g];
    if constexpr (kWantSum) sum[g] += v;
    if constexpr (kWantMinMax) {
      // `v < mn` is false for NaN, so a NaN that arrives first sticks —
      // exactly Value's behavior.
      if (has[g] == 0) {
        has[g] = 1;
        mn[g] = mx[g] = v;
      } else {
        if (v < mn[g]) mn[g] = v;
        if (mx[g] < v) mx[g] = v;
      }
    }
  }
  return true;
}

}  // namespace

Result<Table> Aggregate(const Table& input,
                        const std::vector<std::string>& group_by,
                        const std::vector<AggSpec>& aggs,
                        const ExecOptions& opts) {
  std::vector<size_t> group_idx;
  for (const std::string& g : group_by) {
    LAKEKIT_ASSIGN_OR_RETURN(size_t idx, input.ColumnIndex(g));
    group_idx.push_back(idx);
  }
  std::vector<size_t> agg_idx(aggs.size(), static_cast<size_t>(-1));
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (!aggs[i].column.empty()) {
      LAKEKIT_ASSIGN_OR_RETURN(size_t idx, input.ColumnIndex(aggs[i].column));
      agg_idx[i] = idx;
    } else if (aggs[i].fn != AggFn::kCount) {
      return Status::InvalidArgument("only COUNT supports '*'");
    }
  }

  // Per-morsel partial aggregation, then an ordered merge: global group
  // order is first-seen in (morsel, within-morsel) order, which equals
  // first-seen in row order.
  //
  // Each morsel runs two column-at-a-time passes. Pass 1 assigns every row
  // a group index via a flat open-addressed table: the key cells are hashed
  // in place, and a key vector is materialized only the first time a group
  // is seen, so the per-row cost is hashing plus a probe. Pass 2 walks each
  // aggregate input column once, through its typed lane when the morsel is
  // schema-clean — the type dispatch happens once per (column, morsel), not
  // per cell.
  const size_t rows = input.num_rows();
  ScopedReservation reservation(opts.budget);
  LAKEKIT_ASSIGN_OR_RETURN(
      std::vector<AggPartial> partials,
      ParallelMap<AggPartial>(
          NumMorsels(rows),
          [&](size_t m) -> Result<AggPartial> {
            LAKEKIT_RETURN_IF_ERROR(CheckInterrupt(opts));
            AggPartial p;
            const size_t mbegin = MorselBegin(m);
            const size_t mend = MorselEnd(m, rows);
            const size_t n = mend - mbegin;
            // Morsel-transient state (group assignment, probe table, sweep
            // arrays) batches through a stack-local charge and is credited
            // back when the morsel finishes; the partial itself — which the
            // merge still needs — lands on the operator-scope reservation
            // just before return.
            MemoryCharge scratch(opts.budget);
            LAKEKIT_RETURN_IF_ERROR(scratch.Add(n * sizeof(uint32_t)));

            // Pass 1: group assignment through a growable morsel-local
            // probe table (GroupIndex). With a single typed key column the
            // fused fast path hashes and probes straight off the column's
            // Values; the first off-schema cell falls back to the general
            // path, which loads the key columns into lanes, hashes them
            // lane-at-a-time (see HashLane — equal cells hash equal, which
            // is all the probe table needs), and compares candidates
            // against the group's first-seen row with per-lane equality
            // function pointers, so neither path touches a variant dispatch
            // in the row loop. Key Values materialize once per group after
            // the loop — straight from the input cells — along with the
            // Value::Hash-based GroupKey hash the cross-morsel merge keys
            // on.
            GroupIndex idx;
            std::vector<uint32_t> group_of(n);
            bool grouped = false;
            if (group_idx.empty()) {
              // Global aggregate: one group, no probing.
              std::fill(group_of.begin(), group_of.end(), 0u);
              idx.SetSingleGroup(static_cast<uint32_t>(n));
              grouped = true;
            } else if (group_idx.size() == 1) {
              const size_t kc = group_idx[0];
              const std::vector<Value>& kcells = input.column(kc);
              switch (input.schema().field(kc).type) {
                case DataType::kInt64:
                  grouped = ProbeTypedKey<I64Key>(kcells, mbegin, n, &idx,
                                                  group_of.data());
                  break;
                case DataType::kDouble:
                  grouped = ProbeTypedKey<F64Key>(kcells, mbegin, n, &idx,
                                                  group_of.data());
                  break;
                case DataType::kString:
                  grouped = ProbeTypedKey<StrKey>(kcells, mbegin, n, &idx,
                                                  group_of.data());
                  break;
                default:
                  break;
              }
              if (!grouped) idx.Reset();
            }
            if (!grouped) {
              std::vector<Vec> key_lanes;
              key_lanes.reserve(group_idx.size());
              for (size_t g : group_idx) {
                key_lanes.push_back(LoadColumn(
                    input, g, input.schema().field(g).type, mbegin, mend));
              }
              std::vector<uint64_t> rowhash(n, kGroupHashSeed);
              std::vector<LaneEqFn> lane_eq;
              lane_eq.reserve(key_lanes.size());
              for (const Vec& lane : key_lanes) {
                HashLane(lane, n, rowhash.data());
                lane_eq.push_back(LaneEqFor(lane));
              }
              for (size_t k = 0; k < n; ++k) {
                group_of[k] = idx.Insert(
                    rowhash[k], static_cast<uint32_t>(k), [&](uint32_t k0) {
                      for (size_t g = 0; g < key_lanes.size(); ++g) {
                        if (!lane_eq[g](key_lanes[g], k0, k)) return false;
                      }
                      return true;
                    });
              }
            }
            const std::vector<uint32_t>& first_row = idx.first_row();
            // Probe-table footprint, reconstructed from the group count:
            // slots stay within 4x the group count (load factor >= 1/4 right
            // after a grow) at 16 bytes each, plus the three per-group
            // arrays behind them.
            LAKEKIT_RETURN_IF_ERROR(scratch.Add(
                std::max<size_t>(64, 4 * first_row.size()) * 16 +
                first_row.size() *
                    (sizeof(uint32_t) * 2 + sizeof(uint64_t))));
            p.keys.reserve(first_row.size());
            for (const uint32_t k0 : first_row) {
              GroupKey key;
              key.hash = kGroupHashSeed;
              key.values.reserve(group_idx.size());
              for (const size_t gc : group_idx) {
                const Value& v = input.column(gc)[mbegin + k0];
                key.hash = HashCombine(key.hash, v.Hash());
                key.values.push_back(v);
              }
              p.keys.push_back(std::move(key));
            }
            p.states.resize(p.keys.size() * aggs.size());

            // Pass 2: one fused sweep per distinct aggregate input
            // column. Each sweep accumulates the union of what that
            // column's aggregates need (count / sum / extrema) into small
            // per-morsel arrays indexed by group — L1-resident, no AggState
            // pointer chasing in the row loop. The fold into `p.states`
            // happens once per group per aggregate; folding into zeroed
            // states reproduces the direct-accumulation bit pattern exactly
            // (0 + x == x), and aggregates sharing a column (SUM + AVG of
            // one measure) share the identical row-order partial.
            const size_t ngroups = p.keys.size();
            const size_t naggs = aggs.size();
            constexpr size_t kNoCol = static_cast<size_t>(-1);
            // COUNT(*): the probe already counted rows per group.
            for (size_t i = 0; i < naggs; ++i) {
              if (aggs[i].fn != AggFn::kCount || agg_idx[i] != kNoCol) {
                continue;
              }
              const std::vector<uint32_t>& gcounts = idx.counts();
              for (size_t g = 0; g < ngroups; ++g) {
                p.states[g * naggs + i].count += gcounts[g];
              }
            }
            struct ColPlan {
              size_t col = 0;
              bool want_sum = false;
              bool want_minmax = false;
              std::vector<size_t> agg_ids;
            };
            std::vector<ColPlan> plans;
            for (size_t i = 0; i < naggs; ++i) {
              if (agg_idx[i] == kNoCol) continue;
              ColPlan* plan = nullptr;
              for (ColPlan& c : plans) {
                if (c.col == agg_idx[i]) {
                  plan = &c;
                  break;
                }
              }
              if (plan == nullptr) {
                plans.push_back(ColPlan{agg_idx[i], false, false, {}});
                plan = &plans.back();
              }
              const AggFn fn = aggs[i].fn;
              plan->want_sum |= fn == AggFn::kSum || fn == AggFn::kAvg;
              plan->want_minmax |= fn == AggFn::kMin || fn == AggFn::kMax;
              plan->agg_ids.push_back(i);
            }
            for (const ColPlan& plan : plans) {
              const std::vector<Value>& cells = input.column(plan.col);
              const DataType ctype = input.schema().field(plan.col).type;
              bool clean = false;
              std::vector<size_t> cnt;
              std::vector<uint8_t> has;
              std::vector<int64_t> isum, imn, imx;
              std::vector<double> dsum, dmn, dmx;
              if (ctype == DataType::kInt64 || ctype == DataType::kDouble) {
                cnt.assign(ngroups, 0);
                if (plan.want_minmax) has.assign(ngroups, 0);
              }
              if (ctype == DataType::kInt64) {
                if (plan.want_sum) isum.assign(ngroups, 0);
                if (plan.want_minmax) {
                  imn.resize(ngroups);
                  imx.resize(ngroups);
                }
                if (plan.want_sum && plan.want_minmax) {
                  clean = SweepI64<true, true>(cells, mbegin, group_of.data(),
                                               n, cnt.data(), isum.data(),
                                               has.data(), imn.data(),
                                               imx.data());
                } else if (plan.want_sum) {
                  clean = SweepI64<true, false>(cells, mbegin, group_of.data(),
                                                n, cnt.data(), isum.data(),
                                                nullptr, nullptr, nullptr);
                } else if (plan.want_minmax) {
                  clean = SweepI64<false, true>(cells, mbegin, group_of.data(),
                                                n, cnt.data(), nullptr,
                                                has.data(), imn.data(),
                                                imx.data());
                } else {
                  clean = SweepI64<false, false>(cells, mbegin,
                                                 group_of.data(), n,
                                                 cnt.data(), nullptr, nullptr,
                                                 nullptr, nullptr);
                }
              } else if (ctype == DataType::kDouble) {
                if (plan.want_sum) dsum.assign(ngroups, 0.0);
                if (plan.want_minmax) {
                  dmn.resize(ngroups);
                  dmx.resize(ngroups);
                }
                if (plan.want_sum && plan.want_minmax) {
                  clean = SweepF64<true, true>(cells, mbegin, group_of.data(),
                                               n, cnt.data(), dsum.data(),
                                               has.data(), dmn.data(),
                                               dmx.data());
                } else if (plan.want_sum) {
                  clean = SweepF64<true, false>(cells, mbegin, group_of.data(),
                                                n, cnt.data(), dsum.data(),
                                                nullptr, nullptr, nullptr);
                } else if (plan.want_minmax) {
                  clean = SweepF64<false, true>(cells, mbegin, group_of.data(),
                                                n, cnt.data(), nullptr,
                                                has.data(), dmn.data(),
                                                dmx.data());
                } else {
                  clean = SweepF64<false, false>(cells, mbegin,
                                                 group_of.data(), n,
                                                 cnt.data(), nullptr, nullptr,
                                                 nullptr, nullptr);
                }
              }
              if (!clean) {
                // Bool, string, or untyped schema columns, or a typed sweep
                // that hit an off-schema cell (its local partials are
                // discarded untouched): per-cell Value path.
                for (const size_t i : plan.agg_ids) {
                  for (size_t k = 0; k < n; ++k) {
                    p.states[group_of[k] * naggs + i].Add(
                        cells[mbegin + k]);
                  }
                }
                continue;
              }
              for (const size_t i : plan.agg_ids) {
                const AggFn fn = aggs[i].fn;
                if (fn == AggFn::kMin || fn == AggFn::kMax) {
                  for (size_t g = 0; g < ngroups; ++g) {
                    if (has[g] == 0) continue;
                    AggState& st = p.states[g * naggs + i];
                    if (ctype == DataType::kInt64) {
                      st.min = Value(imn[g]);
                      st.max = Value(imx[g]);
                    } else {
                      st.min = Value(dmn[g]);
                      st.max = Value(dmx[g]);
                    }
                  }
                } else if (fn == AggFn::kCount) {
                  for (size_t g = 0; g < ngroups; ++g) {
                    p.states[g * naggs + i].count += cnt[g];
                  }
                } else if (ctype == DataType::kInt64) {
                  // kSum / kAvg: exact integer accumulation.
                  for (size_t g = 0; g < ngroups; ++g) {
                    AggState& st = p.states[g * naggs + i];
                    st.count += cnt[g];
                    st.isum += isum[g];
                  }
                } else {
                  // kSum / kAvg over doubles: the shared local partial
                  // accumulated in row order, so every aggregate of this
                  // column folds the identical bit pattern.
                  for (size_t g = 0; g < ngroups; ++g) {
                    if (cnt[g] == 0) continue;
                    AggState& st = p.states[g * naggs + i];
                    st.count += cnt[g];
                    st.saw_double = true;
                    st.dsum += dsum[g];
                  }
                }
              }
            }
            // The partial survives until the ordered merge consumes it:
            // charge it on the operator-scope reservation (scratch unwinds
            // here, returning the transient quanta).
            LAKEKIT_RETURN_IF_ERROR(reservation.Reserve(
                p.states.size() * sizeof(AggState) +
                p.keys.size() * (sizeof(GroupKey) +
                                 group_idx.size() * sizeof(Value))));
            return p;
          },
          PoolOptions(opts)));

  const size_t naggs = aggs.size();
  // Upper-bound the merged table by the sum of the per-morsel group counts
  // (deduplication only shrinks it) and reserve before building the map —
  // the partials are still alive during the merge, so this is genuinely
  // additional memory.
  size_t groups_upper = 0;
  for (const AggPartial& p : partials) groups_upper += p.keys.size();
  LAKEKIT_RETURN_IF_ERROR(reservation.Reserve(
      groups_upper * (sizeof(GroupKey) + group_idx.size() * sizeof(Value) +
                      naggs * sizeof(AggState) + 4 * sizeof(void*))));
  std::unordered_map<GroupKey, size_t, GroupKeyHash, GroupKeyEq> index;
  std::vector<GroupKey> keys;
  std::vector<AggState> states;  // group-major, like AggPartial::states
  for (const AggPartial& p : partials) {
    for (size_t g = 0; g < p.keys.size(); ++g) {
      auto [it, inserted] = index.try_emplace(p.keys[g], keys.size());
      if (inserted) {
        keys.push_back(p.keys[g]);
        states.resize(states.size() + naggs);
      }
      for (size_t i = 0; i < naggs; ++i) {
        states[it->second * naggs + i].Merge(p.states[g * naggs + i]);
      }
    }
  }
  // Global aggregate over empty input still yields one row.
  if (group_by.empty() && keys.empty()) {
    keys.emplace_back();
    states.resize(naggs);
  }

  // Output schema.
  Schema schema;
  for (size_t g : group_idx) schema.AddField(input.schema().field(g));
  for (size_t i = 0; i < aggs.size(); ++i) {
    const AggSpec& a = aggs[i];
    const bool has_input = agg_idx[i] != static_cast<size_t>(-1);
    DataType type = AggOutputType(
        a.fn, has_input,
        has_input ? input.schema().field(agg_idx[i]).type : DataType::kString);
    std::string alias = a.alias;
    if (alias.empty()) {
      static const char* kNames[] = {"count", "sum", "avg", "min", "max"};
      alias = std::string(kNames[static_cast<int>(a.fn)]) +
              (a.column.empty() ? "" : "_" + a.column);
    }
    schema.AddField(Field{alias, type, true});
  }
  Table out(input.name() + "_agg", schema);
  LAKEKIT_RETURN_IF_ERROR(reservation.Reserve(
      keys.size() * schema.num_fields() * sizeof(Value)));
  out.Reserve(keys.size());
  for (size_t g = 0; g < keys.size(); ++g) {
    std::vector<Value> row = keys[g].values;
    for (size_t i = 0; i < naggs; ++i) {
      row.push_back(states[g * naggs + i].Finish(aggs[i].fn));
    }
    LAKEKIT_RETURN_IF_ERROR(out.AppendRow(std::move(row)));
  }
  return out;
}

Result<Table> Sort(const Table& input, const std::string& column,
                   bool ascending, const ExecOptions& opts) {
  LAKEKIT_RETURN_IF_ERROR(CheckInterrupt(opts));
  LAKEKIT_ASSIGN_OR_RETURN(size_t idx, input.ColumnIndex(column));
  const std::vector<Value>& cells = input.column(idx);
  const size_t rows = input.num_rows();
  // The decoded key buffer and permutation vector are sized exactly by the
  // row count: reserve before either is allocated.
  ScopedReservation reservation(opts.budget);
  LAKEKIT_RETURN_IF_ERROR(
      reservation.Reserve(rows * (sizeof(CellRef) + sizeof(uint32_t))));
  // Decode every key once; comparisons are then tag checks + payload
  // compares, never variant dispatch.
  std::vector<CellRef> keys;
  keys.reserve(rows);
  for (const Value& v : cells) keys.push_back(DecodeCell(v));
  std::vector<uint32_t> order(rows);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return ascending ? CellLess(keys[a], keys[b]) : CellLess(keys[b], keys[a]);
  });
  LAKEKIT_RETURN_IF_ERROR(
      reservation.Reserve(rows * input.num_columns() * sizeof(Value)));
  Table out(input.name(), input.schema());
  out.Reserve(rows);
  LAKEKIT_RETURN_IF_ERROR(out.AppendRowsFrom(input, order.data(), rows));
  return out;
}

table::Table Limit(const Table& input, size_t n) {
  const size_t rows = std::min(input.num_rows(), n);
  std::vector<uint32_t> head(rows);
  std::iota(head.begin(), head.end(), 0);
  Table out(input.name(), input.schema());
  out.Reserve(rows);
  // ignore: `out` shares `input`'s schema by construction.
  (void)out.AppendRowsFrom(input, head.data(), rows);
  return out;
}

}  // namespace lakekit::query
