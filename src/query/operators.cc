#include "query/operators.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace lakekit::query {

using table::DataType;
using table::Field;
using table::Schema;
using table::Table;
using table::Value;

Result<Table> Filter(const Table& input, const Expr& predicate) {
  Table out(input.name(), input.schema());
  for (size_t r = 0; r < input.num_rows(); ++r) {
    std::vector<Value> row = input.Row(r);
    LAKEKIT_ASSIGN_OR_RETURN(bool keep,
                             EvalPredicate(predicate, input.schema(), row));
    if (keep) {
      LAKEKIT_RETURN_IF_ERROR(out.AppendRow(std::move(row)));
    }
  }
  return out;
}

Result<Table> Project(const Table& input,
                      const std::vector<std::string>& columns) {
  Schema schema;
  std::vector<size_t> indexes;
  for (const std::string& name : columns) {
    LAKEKIT_ASSIGN_OR_RETURN(size_t idx, input.ColumnIndex(name));
    indexes.push_back(idx);
    schema.AddField(input.schema().field(idx));
  }
  Table out(input.name(), schema);
  for (size_t r = 0; r < input.num_rows(); ++r) {
    std::vector<Value> row;
    row.reserve(indexes.size());
    for (size_t idx : indexes) row.push_back(input.at(r, idx));
    LAKEKIT_RETURN_IF_ERROR(out.AppendRow(std::move(row)));
  }
  return out;
}

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& left_col,
                       const std::string& right_col, JoinType type) {
  LAKEKIT_ASSIGN_OR_RETURN(size_t lidx, left.ColumnIndex(left_col));
  LAKEKIT_ASSIGN_OR_RETURN(size_t ridx, right.ColumnIndex(right_col));

  // Output schema: left fields + right fields (suffixing collisions).
  Schema schema;
  for (const Field& f : left.schema().fields()) schema.AddField(f);
  for (const Field& f : right.schema().fields()) {
    Field field = f;
    while (schema.HasField(field.name)) field.name += "_r";
    schema.AddField(field);
  }

  // Build side: right.
  std::unordered_map<Value, std::vector<size_t>, table::ValueHash> build;
  for (size_t r = 0; r < right.num_rows(); ++r) {
    const Value& key = right.at(r, ridx);
    if (key.is_null()) continue;
    build[key].push_back(r);
  }

  Table out(left.name() + "_join_" + right.name(), schema);
  const size_t right_cols = right.num_columns();
  for (size_t l = 0; l < left.num_rows(); ++l) {
    const Value& key = left.at(l, lidx);
    auto it = key.is_null() ? build.end() : build.find(key);
    if (it != build.end()) {
      for (size_t r : it->second) {
        std::vector<Value> row = left.Row(l);
        for (size_t c = 0; c < right_cols; ++c) row.push_back(right.at(r, c));
        LAKEKIT_RETURN_IF_ERROR(out.AppendRow(std::move(row)));
      }
    } else if (type == JoinType::kLeft) {
      std::vector<Value> row = left.Row(l);
      for (size_t c = 0; c < right_cols; ++c) row.push_back(Value::Null());
      LAKEKIT_RETURN_IF_ERROR(out.AppendRow(std::move(row)));
    }
  }
  return out;
}

namespace {

struct AggState {
  size_t count = 0;
  double sum = 0;
  Value min;
  Value max;

  void Add(const Value& v) {
    if (v.is_null()) return;
    ++count;
    if (v.is_numeric()) sum += v.as_double();
    if (min.is_null() || v < min) min = v;
    if (max.is_null() || max < v) max = v;
  }
  Value Finish(AggFn fn) const {
    switch (fn) {
      case AggFn::kCount:
        return Value(static_cast<int64_t>(count));
      case AggFn::kSum:
        return count == 0 ? Value::Null() : Value(sum);
      case AggFn::kAvg:
        return count == 0 ? Value::Null()
                          : Value(sum / static_cast<double>(count));
      case AggFn::kMin:
        return min;
      case AggFn::kMax:
        return max;
    }
    return Value::Null();
  }
};

}  // namespace

Result<Table> Aggregate(const Table& input,
                        const std::vector<std::string>& group_by,
                        const std::vector<AggSpec>& aggs) {
  std::vector<size_t> group_idx;
  for (const std::string& g : group_by) {
    LAKEKIT_ASSIGN_OR_RETURN(size_t idx, input.ColumnIndex(g));
    group_idx.push_back(idx);
  }
  std::vector<size_t> agg_idx(aggs.size(), static_cast<size_t>(-1));
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (!aggs[i].column.empty()) {
      LAKEKIT_ASSIGN_OR_RETURN(size_t idx, input.ColumnIndex(aggs[i].column));
      agg_idx[i] = idx;
    } else if (aggs[i].fn != AggFn::kCount) {
      return Status::InvalidArgument("only COUNT supports '*'");
    }
  }

  // Group rows.
  struct Group {
    std::vector<Value> key;
    std::vector<AggState> states;
  };
  std::unordered_map<std::string, Group> groups;
  std::vector<std::string> order;  // first-seen group order
  for (size_t r = 0; r < input.num_rows(); ++r) {
    std::string key;
    std::vector<Value> key_values;
    for (size_t g : group_idx) {
      const Value& v = input.at(r, g);
      key += v.is_null() ? "\x01" : v.ToString();
      key += "\x02";
      key_values.push_back(v);
    }
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) {
      it->second.key = std::move(key_values);
      it->second.states.resize(aggs.size());
      order.push_back(key);
    }
    for (size_t i = 0; i < aggs.size(); ++i) {
      if (aggs[i].fn == AggFn::kCount && agg_idx[i] == static_cast<size_t>(-1)) {
        ++it->second.states[i].count;
      } else {
        it->second.states[i].Add(input.at(r, agg_idx[i]));
      }
    }
  }
  // Global aggregate over empty input still yields one row.
  if (group_by.empty() && groups.empty()) {
    Group g;
    g.states.resize(aggs.size());
    groups[""] = std::move(g);
    order.push_back("");
  }

  // Output schema.
  Schema schema;
  for (size_t g : group_idx) schema.AddField(input.schema().field(g));
  for (const AggSpec& a : aggs) {
    DataType type = a.fn == AggFn::kCount ? DataType::kInt64
                    : (a.fn == AggFn::kMin || a.fn == AggFn::kMax)
                        ? (agg_idx[&a - aggs.data()] == static_cast<size_t>(-1)
                               ? DataType::kString
                               : input.schema()
                                     .field(agg_idx[&a - aggs.data()])
                                     .type)
                        : DataType::kDouble;
    std::string alias = a.alias;
    if (alias.empty()) {
      static const char* kNames[] = {"count", "sum", "avg", "min", "max"};
      alias = std::string(kNames[static_cast<int>(a.fn)]) +
              (a.column.empty() ? "" : "_" + a.column);
    }
    schema.AddField(Field{alias, type, true});
  }
  Table out(input.name() + "_agg", schema);
  for (const std::string& key : order) {
    const Group& g = groups.at(key);
    std::vector<Value> row = g.key;
    for (size_t i = 0; i < aggs.size(); ++i) {
      row.push_back(g.states[i].Finish(aggs[i].fn));
    }
    LAKEKIT_RETURN_IF_ERROR(out.AppendRow(std::move(row)));
  }
  return out;
}

Result<Table> Sort(const Table& input, const std::string& column,
                   bool ascending) {
  LAKEKIT_ASSIGN_OR_RETURN(size_t idx, input.ColumnIndex(column));
  std::vector<size_t> order(input.num_rows());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const Value& va = input.at(a, idx);
    const Value& vb = input.at(b, idx);
    return ascending ? va < vb : vb < va;
  });
  Table out(input.name(), input.schema());
  for (size_t r : order) {
    LAKEKIT_RETURN_IF_ERROR(out.AppendRow(input.Row(r)));
  }
  return out;
}

table::Table Limit(const Table& input, size_t n) {
  Table out(input.name(), input.schema());
  for (size_t r = 0; r < input.num_rows() && r < n; ++r) {
    // ignore: rows copied from `input` always match `out`'s schema.
    (void)out.AppendRow(input.Row(r));
  }
  return out;
}

}  // namespace lakekit::query
