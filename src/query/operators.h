#ifndef LAKEKIT_QUERY_OPERATORS_H_
#define LAKEKIT_QUERY_OPERATORS_H_

#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/deadline.h"
#include "common/memory_budget.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "query/expr.h"
#include "table/table.h"

namespace lakekit::query {

/// Relational operators over in-memory tables — the execution layer behind
/// the heterogeneous querying tier (survey Sec. 7.2). All operators are
/// pure: they return new tables.
///
/// Filter/HashJoin/Aggregate are vectorized (query/vec.h): they process
/// kMorselSize-row morsels through compiled kernels, in parallel on the
/// execution layer's thread pool, and are bit-identical to the row-at-a-time
/// interpreter in query/reference_ops.h for any thread count (DESIGN.md §7).

/// Tuning for the morsel-parallel operators. The defaults — the process-wide
/// pool — are right for production; tests and benchmarks inject fixed-size
/// pools to pin the thread count.
struct ExecOptions {
  /// Pool morsels run on; nullptr means `ThreadPool::Default()`.
  ThreadPool* pool = nullptr;
  /// Cooperative cancellation, checked at morsel granularity: each morsel
  /// lambda tests the token before touching its rows, so a cancelled query
  /// finishes at most one in-flight morsel per worker (≈kMorselSize rows)
  /// before the operator returns the token's status. Default: never
  /// cancelled.
  CancelToken cancel;
  /// Deadline, checked at the same per-morsel granularity; expiry surfaces
  /// as kDeadlineExceeded. Default: infinite.
  Deadline deadline;
  /// Memory accounting for the big intermediate-state consumers — the
  /// HashJoin build side and match lists, Aggregate's group index and
  /// partials, Sort's key buffers, and materialized outputs. Each morsel
  /// task batches its debits through a stack-local MemoryCharge, so the
  /// per-row cost is an integer add; when a reservation is refused the
  /// operator unwinds with kResourceExhausted instead of allocating.
  /// nullptr (or a detached account): unaccounted, the pre-budget behavior.
  BudgetAccount* budget = nullptr;
};

/// The per-morsel interrupt check the vectorized operators share: the
/// token's status if cancelled, kDeadlineExceeded if `opts.deadline` has
/// expired, OK otherwise. Cheap enough for morsel granularity — one relaxed
/// atomic load on the happy path plus (for finite deadlines) a clock read.
[[nodiscard]] Status CheckInterrupt(const ExecOptions& opts);

/// Rows satisfying `predicate` (NULL predicate results excluded).
Result<table::Table> Filter(const table::Table& input, const Expr& predicate,
                            const ExecOptions& opts = {});

class ZoneMap;  // query/zone_map.h

/// Counters of one zone-map-assisted Filter run.
struct FilterExecStats {
  size_t morsels_total = 0;
  /// Morsels skipped outright: statistics proved no row passes.
  size_t morsels_pruned = 0;
  /// Morsels selected wholesale: statistics proved every row passes.
  size_t morsels_selected = 0;
};

/// Filter with zone-map pruning: morsels whose statistics prove the
/// predicate always-false are skipped without evaluation, always-true
/// morsels are selected wholesale (DESIGN.md §9.3). `zones` must have been
/// built from `input` (chunk m == morsel m); if it does not line up — or is
/// nullptr — every morsel is evaluated and the result is identical to the
/// overload above. Output is bit-identical to the unpruned path either way;
/// pruning only ever removes work, never changes it.
Result<table::Table> Filter(const table::Table& input, const Expr& predicate,
                            const ZoneMap* zones, const ExecOptions& opts = {},
                            FilterExecStats* stats = nullptr);

/// Keeps `columns` in the given order.
Result<table::Table> Project(const table::Table& input,
                             const std::vector<std::string>& columns);

enum class JoinType { kInner, kLeft };

/// Hash equi-join on left_col = right_col. Right columns are appended;
/// name collisions get a "_r" suffix. NULL keys never join.
Result<table::Table> HashJoin(const table::Table& left,
                              const table::Table& right,
                              const std::string& left_col,
                              const std::string& right_col,
                              JoinType type = JoinType::kInner,
                              const ExecOptions& opts = {});

enum class AggFn { kCount, kSum, kAvg, kMin, kMax };

struct AggSpec {
  AggFn fn = AggFn::kCount;
  /// Input column; ignored for COUNT(*) (empty name).
  std::string column;
  std::string alias;
};

/// Group-by + aggregates. With empty `group_by`, one global row.
/// NULLs are skipped by all aggregate inputs (SQL semantics). Groups key on
/// hashed `std::vector<Value>` with real Value equality; SUM over an int64
/// column stays int64 (exact past 2^53), every other SUM/AVG is double.
Result<table::Table> Aggregate(const table::Table& input,
                               const std::vector<std::string>& group_by,
                               const std::vector<AggSpec>& aggs,
                               const ExecOptions& opts = {});

/// Stable sort by column (NULLs first when ascending). The decoded key
/// buffer and permutation vector are charged against `opts.budget`.
Result<table::Table> Sort(const table::Table& input, const std::string& column,
                          bool ascending = true,
                          const ExecOptions& opts = {});

/// First `n` rows.
table::Table Limit(const table::Table& input, size_t n);

}  // namespace lakekit::query

#endif  // LAKEKIT_QUERY_OPERATORS_H_
