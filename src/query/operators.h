#ifndef LAKEKIT_QUERY_OPERATORS_H_
#define LAKEKIT_QUERY_OPERATORS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "query/expr.h"
#include "table/table.h"

namespace lakekit::query {

/// Relational operators over in-memory tables — the execution layer behind
/// the heterogeneous querying tier (survey Sec. 7.2). All operators are
/// pure: they return new tables.

/// Rows satisfying `predicate` (NULL predicate results excluded).
Result<table::Table> Filter(const table::Table& input, const Expr& predicate);

/// Keeps `columns` in the given order.
Result<table::Table> Project(const table::Table& input,
                             const std::vector<std::string>& columns);

enum class JoinType { kInner, kLeft };

/// Hash equi-join on left_col = right_col. Right columns are appended;
/// name collisions get a "_r" suffix. NULL keys never join.
Result<table::Table> HashJoin(const table::Table& left,
                              const table::Table& right,
                              const std::string& left_col,
                              const std::string& right_col,
                              JoinType type = JoinType::kInner);

enum class AggFn { kCount, kSum, kAvg, kMin, kMax };

struct AggSpec {
  AggFn fn = AggFn::kCount;
  /// Input column; ignored for COUNT(*) (empty name).
  std::string column;
  std::string alias;
};

/// Group-by + aggregates. With empty `group_by`, one global row.
/// NULLs are skipped by all aggregate inputs (SQL semantics).
Result<table::Table> Aggregate(const table::Table& input,
                               const std::vector<std::string>& group_by,
                               const std::vector<AggSpec>& aggs);

/// Stable sort by column (NULLs first when ascending).
Result<table::Table> Sort(const table::Table& input, const std::string& column,
                          bool ascending = true);

/// First `n` rows.
table::Table Limit(const table::Table& input, size_t n);

}  // namespace lakekit::query

#endif  // LAKEKIT_QUERY_OPERATORS_H_
