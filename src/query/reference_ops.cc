#include "query/reference_ops.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/hash.h"
#include "query/vec.h"  // kMorselSize: the double-sum partial block size

namespace lakekit::query::reference {

using table::DataType;
using table::Field;
using table::Schema;
using table::Table;
using table::Value;

Result<Table> Filter(const Table& input, const Expr& predicate) {
  Table out(input.name(), input.schema());
  for (size_t r = 0; r < input.num_rows(); ++r) {
    std::vector<Value> row = input.Row(r);
    LAKEKIT_ASSIGN_OR_RETURN(bool keep,
                             EvalPredicate(predicate, input.schema(), row));
    if (keep) {
      LAKEKIT_RETURN_IF_ERROR(out.AppendRow(std::move(row)));
    }
  }
  return out;
}

Result<Table> Project(const Table& input,
                      const std::vector<std::string>& columns) {
  Schema schema;
  std::vector<size_t> indexes;
  for (const std::string& name : columns) {
    LAKEKIT_ASSIGN_OR_RETURN(size_t idx, input.ColumnIndex(name));
    indexes.push_back(idx);
    schema.AddField(input.schema().field(idx));
  }
  Table out(input.name(), schema);
  for (size_t r = 0; r < input.num_rows(); ++r) {
    std::vector<Value> row;
    row.reserve(indexes.size());
    for (size_t idx : indexes) row.push_back(input.at(r, idx));
    LAKEKIT_RETURN_IF_ERROR(out.AppendRow(std::move(row)));
  }
  return out;
}

Result<Table> HashJoin(const Table& left, const Table& right,
                       const std::string& left_col,
                       const std::string& right_col, JoinType type) {
  LAKEKIT_ASSIGN_OR_RETURN(size_t lidx, left.ColumnIndex(left_col));
  LAKEKIT_ASSIGN_OR_RETURN(size_t ridx, right.ColumnIndex(right_col));

  // Output schema: left fields + right fields (suffixing collisions).
  Schema schema;
  for (const Field& f : left.schema().fields()) schema.AddField(f);
  for (const Field& f : right.schema().fields()) {
    Field field = f;
    while (schema.HasField(field.name)) field.name += "_r";
    schema.AddField(field);
  }

  // Build side: right.
  std::unordered_map<Value, std::vector<size_t>, table::ValueHash> build;
  for (size_t r = 0; r < right.num_rows(); ++r) {
    const Value& key = right.at(r, ridx);
    if (key.is_null()) continue;
    build[key].push_back(r);
  }

  Table out(left.name() + "_join_" + right.name(), schema);
  const size_t right_cols = right.num_columns();
  for (size_t l = 0; l < left.num_rows(); ++l) {
    const Value& key = left.at(l, lidx);
    auto it = key.is_null() ? build.end() : build.find(key);
    if (it != build.end()) {
      for (size_t r : it->second) {
        std::vector<Value> row = left.Row(l);
        for (size_t c = 0; c < right_cols; ++c) row.push_back(right.at(r, c));
        LAKEKIT_RETURN_IF_ERROR(out.AppendRow(std::move(row)));
      }
    } else if (type == JoinType::kLeft) {
      std::vector<Value> row = left.Row(l);
      for (size_t c = 0; c < right_cols; ++c) row.push_back(Value::Null());
      LAKEKIT_RETURN_IF_ERROR(out.AppendRow(std::move(row)));
    }
  }
  return out;
}

namespace {

struct AggState {
  size_t count = 0;
  int64_t isum = 0;
  // Double cells accumulate per-kMorselSize-block partials (`block_sum` for
  // the block `block`) folded into `dsum` in block order — the exact
  // summation order of the vectorized engine's ordered morsel merge, so the
  // two produce bit-identical SUM/AVG.
  double dsum = 0;
  double block_sum = 0;
  size_t block = 0;
  bool saw_double = false;
  Value min;
  Value max;

  void Add(const Value& v, size_t row) {
    if (v.is_null()) return;
    ++count;
    if (v.is_int()) {
      isum += v.as_int();
    } else if (v.is_double()) {
      saw_double = true;
      const size_t b = row / kMorselSize;
      if (b != block) {
        dsum += block_sum;
        block_sum = 0;
        block = b;
      }
      block_sum += v.as_double();
    }
    if (min.is_null() || v < min) min = v;
    if (max.is_null() || max < v) max = v;
  }

  double DoubleSum() const { return dsum + block_sum; }

  Value Finish(AggFn fn) const {
    switch (fn) {
      case AggFn::kCount:
        return Value(static_cast<int64_t>(count));
      case AggFn::kSum:
        if (count == 0) return Value::Null();
        if (!saw_double) return Value(isum);
        return Value(static_cast<double>(isum) + DoubleSum());
      case AggFn::kAvg:
        if (count == 0) return Value::Null();
        return Value((static_cast<double>(isum) + DoubleSum()) /
                     static_cast<double>(count));
      case AggFn::kMin:
        return min;
      case AggFn::kMax:
        return max;
    }
    return Value::Null();
  }
};

/// Group key: the key values plus their combined hash. Equality is real
/// elementwise Value equality — not the old concatenated-ToString encoding,
/// which collapsed Value(1) with Value("1") and any strings containing
/// '\x01'/'\x02'.
struct GroupKey {
  std::vector<Value> values;
  uint64_t hash = 0;
};

uint64_t HashKeyValues(const std::vector<Value>& values) {
  uint64_t h = 0xa99ec0de5eedULL;
  for (const Value& v : values) h = HashCombine(h, v.Hash());
  return h;
}

struct GroupKeyHash {
  size_t operator()(const GroupKey& k) const {
    return static_cast<size_t>(k.hash);
  }
};

struct GroupKeyEq {
  bool operator()(const GroupKey& a, const GroupKey& b) const {
    if (a.hash != b.hash || a.values.size() != b.values.size()) return false;
    for (size_t i = 0; i < a.values.size(); ++i) {
      if (!(a.values[i] == b.values[i])) return false;
    }
    return true;
  }
};

DataType AggOutputType(AggFn fn, bool has_input, DataType input_type) {
  switch (fn) {
    case AggFn::kCount:
      return DataType::kInt64;
    case AggFn::kSum:
      // int64 inputs sum in int64 (exact past 2^53); everything else widens.
      return has_input && input_type == DataType::kInt64 ? DataType::kInt64
                                                         : DataType::kDouble;
    case AggFn::kAvg:
      return DataType::kDouble;
    case AggFn::kMin:
    case AggFn::kMax:
      return has_input ? input_type : DataType::kString;
  }
  return DataType::kString;
}

}  // namespace

Result<Table> Aggregate(const Table& input,
                        const std::vector<std::string>& group_by,
                        const std::vector<AggSpec>& aggs) {
  std::vector<size_t> group_idx;
  for (const std::string& g : group_by) {
    LAKEKIT_ASSIGN_OR_RETURN(size_t idx, input.ColumnIndex(g));
    group_idx.push_back(idx);
  }
  std::vector<size_t> agg_idx(aggs.size(), static_cast<size_t>(-1));
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (!aggs[i].column.empty()) {
      LAKEKIT_ASSIGN_OR_RETURN(size_t idx, input.ColumnIndex(aggs[i].column));
      agg_idx[i] = idx;
    } else if (aggs[i].fn != AggFn::kCount) {
      return Status::InvalidArgument("only COUNT supports '*'");
    }
  }

  // Group rows, first-seen order.
  struct Group {
    std::vector<Value> key;
    std::vector<AggState> states;
  };
  std::unordered_map<GroupKey, size_t, GroupKeyHash, GroupKeyEq> index;
  std::vector<Group> groups;
  for (size_t r = 0; r < input.num_rows(); ++r) {
    GroupKey key;
    key.values.reserve(group_idx.size());
    for (size_t g : group_idx) key.values.push_back(input.at(r, g));
    key.hash = HashKeyValues(key.values);
    auto [it, inserted] = index.try_emplace(std::move(key), groups.size());
    if (inserted) {
      Group group;
      group.key = it->first.values;
      group.states.resize(aggs.size());
      groups.push_back(std::move(group));
    }
    Group& group = groups[it->second];
    for (size_t i = 0; i < aggs.size(); ++i) {
      if (aggs[i].fn == AggFn::kCount && agg_idx[i] == static_cast<size_t>(-1)) {
        ++group.states[i].count;
      } else {
        group.states[i].Add(input.at(r, agg_idx[i]), r);
      }
    }
  }
  // Global aggregate over empty input still yields one row.
  if (group_by.empty() && groups.empty()) {
    Group group;
    group.states.resize(aggs.size());
    groups.push_back(std::move(group));
  }

  // Output schema.
  Schema schema;
  for (size_t g : group_idx) schema.AddField(input.schema().field(g));
  for (size_t i = 0; i < aggs.size(); ++i) {
    const AggSpec& a = aggs[i];
    const bool has_input = agg_idx[i] != static_cast<size_t>(-1);
    DataType type = AggOutputType(
        a.fn, has_input,
        has_input ? input.schema().field(agg_idx[i]).type : DataType::kString);
    std::string alias = a.alias;
    if (alias.empty()) {
      static const char* kNames[] = {"count", "sum", "avg", "min", "max"};
      alias = std::string(kNames[static_cast<int>(a.fn)]) +
              (a.column.empty() ? "" : "_" + a.column);
    }
    schema.AddField(Field{alias, type, true});
  }
  Table out(input.name() + "_agg", schema);
  for (const Group& group : groups) {
    std::vector<Value> row = group.key;
    for (size_t i = 0; i < aggs.size(); ++i) {
      row.push_back(group.states[i].Finish(aggs[i].fn));
    }
    LAKEKIT_RETURN_IF_ERROR(out.AppendRow(std::move(row)));
  }
  return out;
}

Result<Table> Sort(const Table& input, const std::string& column,
                   bool ascending) {
  LAKEKIT_ASSIGN_OR_RETURN(size_t idx, input.ColumnIndex(column));
  std::vector<size_t> order(input.num_rows());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const Value& va = input.at(a, idx);
    const Value& vb = input.at(b, idx);
    return ascending ? va < vb : vb < va;
  });
  Table out(input.name(), input.schema());
  for (size_t r : order) {
    LAKEKIT_RETURN_IF_ERROR(out.AppendRow(input.Row(r)));
  }
  return out;
}

table::Table Limit(const Table& input, size_t n) {
  Table out(input.name(), input.schema());
  for (size_t r = 0; r < input.num_rows() && r < n; ++r) {
    // ignore: rows copied from `input` always match `out`'s schema.
    (void)out.AppendRow(input.Row(r));
  }
  return out;
}

}  // namespace lakekit::query::reference
