#ifndef LAKEKIT_QUERY_REFERENCE_OPS_H_
#define LAKEKIT_QUERY_REFERENCE_OPS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "query/expr.h"
#include "query/operators.h"
#include "table/table.h"

namespace lakekit::query::reference {

/// The row-at-a-time operator implementations the vectorized engine
/// (query/operators.h + query/vec.h) replaced: every operator materializes a
/// `std::vector<Value>` per row and pays per-cell variant dispatch through
/// `Expr::Eval`. Kept as the executable specification — the randomized
/// differential suite in tests/query_vec_test.cc pins the vectorized
/// operators to these, bit for bit, including NULL semantics and output row
/// order.
///
/// Two semantic fixes land in both engines (DESIGN.md §7):
///   - Aggregate groups key on hashed `std::vector<Value>` with real Value
///     equality (the old concatenated-ToString key collapsed `Value(1)` with
///     `Value("1")` and mangled strings containing '\x01'/'\x02');
///   - SUM over an int64 column accumulates in int64 (no silent widening to
///     double past 2^53), and double sums accumulate per-kMorselSize-block
///     partials in row order so parallel morsel merges reproduce these
///     results exactly.

Result<table::Table> Filter(const table::Table& input, const Expr& predicate);

Result<table::Table> Project(const table::Table& input,
                             const std::vector<std::string>& columns);

Result<table::Table> HashJoin(const table::Table& left,
                              const table::Table& right,
                              const std::string& left_col,
                              const std::string& right_col,
                              JoinType type = JoinType::kInner);

Result<table::Table> Aggregate(const table::Table& input,
                               const std::vector<std::string>& group_by,
                               const std::vector<AggSpec>& aggs);

Result<table::Table> Sort(const table::Table& input, const std::string& column,
                          bool ascending = true);

table::Table Limit(const table::Table& input, size_t n);

}  // namespace lakekit::query::reference

#endif  // LAKEKIT_QUERY_REFERENCE_OPS_H_
