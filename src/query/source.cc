#include "query/source.h"

#include <thread>
#include <utility>

namespace lakekit::query {

namespace {

/// Increments `counters[name]` without building a std::string on the hit
/// path: the transparent comparator makes the lookup heterogeneous, and the
/// allocation only happens the first time a dataset is counted.
void BumpCounter(std::map<std::string, size_t, std::less<>>* counters,
                 std::string_view name) {
  auto it = counters->find(name);
  if (it == counters->end()) {
    counters->emplace(std::string(name), 1);
  } else {
    ++it->second;
  }
}

}  // namespace

FlakySource::FlakySource(TableSource* wrapped, uint64_t seed)
    : wrapped_(wrapped), rng_(seed) {
  sleep_fn_ = [](std::chrono::milliseconds d) {
    if (d.count() > 0) std::this_thread::sleep_for(d);
  };
}

Result<table::Table> FlakySource::ReadAsTable(std::string_view name) {
  std::chrono::milliseconds latency{0};
  std::function<void(std::chrono::milliseconds)> sleep_fn;
  Status injected = Status::OK();
  {
    MutexLock lock(mu_);
    BumpCounter(&reads_, name);
    auto it = profiles_.find(name);
    if (it != profiles_.end()) {
      SourceFaultProfile& profile = it->second;
      latency = profile.latency;
      sleep_fn = sleep_fn_;
      bool fail = false;
      if (profile.fail_next > 0) {
        --profile.fail_next;
        fail = true;
      } else if (profile.error_rate > 0.0 &&
                 rng_.NextDouble() < profile.error_rate) {
        fail = true;
      }
      if (fail) {
        BumpCounter(&failures_, name);
        injected = Status(profile.error_code,
                          "injected fault reading '" + std::string(name) +
                              "' (" + std::string(StatusCodeName(
                                          profile.error_code)) +
                              ")");
      }
    }
  }
  // The injected latency is paid outside the lock — a slow source must not
  // serialize reads of healthy sources — and before the error: a flaky
  // backend burns the caller's time first, then fails.
  if (latency.count() > 0 && sleep_fn) sleep_fn(latency);
  LAKEKIT_RETURN_IF_ERROR(std::move(injected));
  return wrapped_->ReadAsTable(name);
}

void FlakySource::SetProfile(const std::string& dataset,
                             SourceFaultProfile profile) {
  MutexLock lock(mu_);
  profiles_[dataset] = profile;
}

void FlakySource::ClearFaults() {
  MutexLock lock(mu_);
  profiles_.clear();
}

size_t FlakySource::reads(std::string_view dataset) const {
  MutexLock lock(mu_);
  auto it = reads_.find(dataset);
  return it == reads_.end() ? 0 : it->second;
}

size_t FlakySource::injected_failures(std::string_view dataset) const {
  MutexLock lock(mu_);
  auto it = failures_.find(dataset);
  return it == failures_.end() ? 0 : it->second;
}

void FlakySource::set_sleep_fn(
    std::function<void(std::chrono::milliseconds)> sleep_fn) {
  MutexLock lock(mu_);
  sleep_fn_ = std::move(sleep_fn);
}

}  // namespace lakekit::query
