#ifndef LAKEKIT_QUERY_SOURCE_H_
#define LAKEKIT_QUERY_SOURCE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "common/mutex.h"
#include "common/random.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "storage/polystore.h"
#include "table/table.h"

namespace lakekit::query {

/// What the federated engine needs from a backend: datasets by name, as
/// tables. The seam exists so resilience machinery can be tested against a
/// fault-injecting implementation (`FlakySource`) with the production
/// polystore adapter (`PolystoreSource`) none the wiser — the same idea as
/// the storage tier's `Fs` seam (DESIGN.md §6.1), one level up.
class TableSource {
 public:
  virtual ~TableSource() = default;

  /// Reads dataset `name` as a table. Implementations must be safe to call
  /// from concurrent queries.
  virtual Result<table::Table> ReadAsTable(std::string_view name) = 0;

  /// Change counter for `name`: any write to the dataset yields a different
  /// value, so (name, generation) keys cached decodes (query/table_cache.h).
  /// The default (always 0) is correct for immutable sources only —
  /// wrapping a mutable source without overriding this serves stale reads
  /// from the cache forever. Must be cheap: the engine calls it on every
  /// cache-enabled scan, before the read.
  virtual uint64_t Generation(std::string_view name) {
    (void)name;  // ignore: default ignores the dataset — one global epoch.
    return 0;
  }
};

/// The production source: a polystore.
class PolystoreSource : public TableSource {
 public:
  explicit PolystoreSource(storage::Polystore* polystore)
      : polystore_(polystore) {}

  Result<table::Table> ReadAsTable(std::string_view name) override {
    return polystore_->ReadAsTable(name);
  }

  uint64_t Generation(std::string_view name) override {
    return polystore_->generation(name);
  }

 private:
  storage::Polystore* polystore_;
};

/// Per-dataset fault profile for FlakySource.
struct SourceFaultProfile {
  /// Probability that a read fails (drawn from the source's seeded Rng
  /// after `fail_next` is exhausted). 0 disables random failures.
  double error_rate = 0.0;
  /// Code injected failures carry. kUnavailable (the default) is
  /// transient; set a permanent code to model a misconfigured source.
  StatusCode error_code = StatusCode::kUnavailable;
  /// Deterministically fail this many upcoming reads before consulting
  /// `error_rate` — the knob breaker tests use to script exact failure
  /// runs.
  int fail_next = 0;
  /// Latency injected before every read (successful or not), delivered
  /// through the sleep hook.
  std::chrono::milliseconds latency{0};
};

/// A fault-injecting source wrapper: per-dataset error and latency
/// injection, seeded so every chaos schedule replays deterministically.
/// Thread-safe. The latency sink is injectable — chaos tests pass a hook
/// that advances a ManualClock, so "a slow source" is modeled without any
/// real sleeping and deadline interactions stay deterministic.
class FlakySource : public TableSource {
 public:
  explicit FlakySource(TableSource* wrapped, uint64_t seed = 42);

  Result<table::Table> ReadAsTable(std::string_view name) override;

  /// Generation probes pass through unfaulted: fault profiles model data
  /// reads, and the engine consults the generation even on cache hits that
  /// perform no read at all.
  uint64_t Generation(std::string_view name) override {
    return wrapped_->Generation(name);
  }

  /// Installs (or replaces) the fault profile for `dataset`.
  void SetProfile(const std::string& dataset, SourceFaultProfile profile);

  /// Drops every profile: all reads pass through untouched.
  void ClearFaults();

  /// Reads attempted / failed against `dataset` so far (injected failures
  /// only; errors from the wrapped source are not counted as failures).
  size_t reads(std::string_view dataset) const;
  size_t injected_failures(std::string_view dataset) const;

  /// Where injected latency goes. Default: a real sleep.
  void set_sleep_fn(std::function<void(std::chrono::milliseconds)> sleep_fn);

 private:
  // unguarded: immutable after construction.
  TableSource* wrapped_;

  mutable Mutex mu_;
  Rng rng_ LAKEKIT_GUARDED_BY(mu_);
  std::map<std::string, SourceFaultProfile, std::less<>> profiles_
      LAKEKIT_GUARDED_BY(mu_);
  std::map<std::string, size_t, std::less<>> reads_ LAKEKIT_GUARDED_BY(mu_);
  std::map<std::string, size_t, std::less<>> failures_
      LAKEKIT_GUARDED_BY(mu_);
  std::function<void(std::chrono::milliseconds)> sleep_fn_
      LAKEKIT_GUARDED_BY(mu_);
};

}  // namespace lakekit::query

#endif  // LAKEKIT_QUERY_SOURCE_H_
