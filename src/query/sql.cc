#include "query/sql.h"

#include <cctype>
#include <charconv>

#include "common/string_util.h"

namespace lakekit::query {

namespace {

enum class TokenType { kIdent, kNumber, kString, kSymbol, kEnd };

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  // identifiers upper-cased for keywords? keep raw
};

class Lexer {
 public:
  explicit Lexer(std::string_view sql) : sql_(sql) { Advance(); }

  const Token& Peek() const { return current_; }

  Token Next() {
    Token t = current_;
    Advance();
    return t;
  }

  /// Case-insensitive keyword check without consuming.
  bool PeekKeyword(std::string_view keyword) const {
    return current_.type == TokenType::kIdent &&
           ToLower(current_.text) == ToLower(keyword);
  }

  bool ConsumeKeyword(std::string_view keyword) {
    if (!PeekKeyword(keyword)) return false;
    Advance();
    return true;
  }

  bool ConsumeSymbol(std::string_view symbol) {
    if (current_.type != TokenType::kSymbol || current_.text != symbol) {
      return false;
    }
    Advance();
    return true;
  }

 private:
  void Advance() {
    while (pos_ < sql_.size() &&
           std::isspace(static_cast<unsigned char>(sql_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= sql_.size()) {
      current_ = Token{TokenType::kEnd, ""};
      return;
    }
    char c = sql_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < sql_.size() &&
             (std::isalnum(static_cast<unsigned char>(sql_[pos_])) ||
              sql_[pos_] == '_' || sql_[pos_] == '.')) {
        ++pos_;
      }
      current_ = Token{TokenType::kIdent,
                       std::string(sql_.substr(start, pos_ - start))};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < sql_.size() &&
         std::isdigit(static_cast<unsigned char>(sql_[pos_ + 1])))) {
      size_t start = pos_;
      ++pos_;
      while (pos_ < sql_.size() &&
             (std::isdigit(static_cast<unsigned char>(sql_[pos_])) ||
              sql_[pos_] == '.' || sql_[pos_] == 'e' || sql_[pos_] == 'E' ||
              sql_[pos_] == '+' ||
              (sql_[pos_] == '-' &&
               (sql_[pos_ - 1] == 'e' || sql_[pos_ - 1] == 'E')))) {
        ++pos_;
      }
      current_ = Token{TokenType::kNumber,
                       std::string(sql_.substr(start, pos_ - start))};
      return;
    }
    if (c == '\'') {
      ++pos_;
      std::string text;
      while (pos_ < sql_.size() && sql_[pos_] != '\'') {
        text.push_back(sql_[pos_++]);
      }
      if (pos_ < sql_.size()) ++pos_;  // closing quote
      current_ = Token{TokenType::kString, std::move(text)};
      return;
    }
    // Multi-char comparison symbols.
    for (std::string_view sym : {"<=", ">=", "!=", "<>"}) {
      if (sql_.substr(pos_, 2) == sym) {
        current_ = Token{TokenType::kSymbol, std::string(sym)};
        pos_ += 2;
        return;
      }
    }
    current_ = Token{TokenType::kSymbol, std::string(1, c)};
    ++pos_;
  }

  std::string_view sql_;
  size_t pos_ = 0;
  Token current_;
};

/// Strips a "table." qualifier.
std::string Unqualify(const std::string& name) {
  size_t dot = name.rfind('.');
  return dot == std::string::npos ? name : name.substr(dot + 1);
}

class Parser {
 public:
  explicit Parser(std::string_view sql) : lexer_(sql) {}

  Result<SelectStatement> Parse() {
    SelectStatement stmt;
    if (!lexer_.ConsumeKeyword("select")) {
      return Error("expected SELECT");
    }
    if (lexer_.ConsumeSymbol("*")) {
      stmt.select_all = true;
    } else {
      while (true) {
        LAKEKIT_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
        stmt.items.push_back(std::move(item));
        if (!lexer_.ConsumeSymbol(",")) break;
      }
    }
    if (!lexer_.ConsumeKeyword("from")) return Error("expected FROM");
    LAKEKIT_ASSIGN_OR_RETURN(stmt.from_table, ParseIdent());

    if (lexer_.ConsumeKeyword("join")) {
      LAKEKIT_ASSIGN_OR_RETURN(std::string join_table, ParseIdent());
      stmt.join_table = join_table;
      if (!lexer_.ConsumeKeyword("on")) return Error("expected ON");
      LAKEKIT_ASSIGN_OR_RETURN(std::string left, ParseIdent());
      if (!lexer_.ConsumeSymbol("=")) return Error("expected '=' in ON");
      LAKEKIT_ASSIGN_OR_RETURN(std::string right, ParseIdent());
      stmt.join_left_col = Unqualify(left);
      stmt.join_right_col = Unqualify(right);
    }
    if (lexer_.ConsumeKeyword("where")) {
      LAKEKIT_ASSIGN_OR_RETURN(stmt.where, ParseOr());
    }
    if (lexer_.ConsumeKeyword("group")) {
      if (!lexer_.ConsumeKeyword("by")) return Error("expected BY");
      while (true) {
        LAKEKIT_ASSIGN_OR_RETURN(std::string col, ParseIdent());
        stmt.group_by.push_back(Unqualify(col));
        if (!lexer_.ConsumeSymbol(",")) break;
      }
    }
    if (lexer_.ConsumeKeyword("order")) {
      if (!lexer_.ConsumeKeyword("by")) return Error("expected BY");
      LAKEKIT_ASSIGN_OR_RETURN(std::string col, ParseIdent());
      stmt.order_by = Unqualify(col);
      if (lexer_.ConsumeKeyword("desc")) {
        stmt.order_ascending = false;
      } else {
        lexer_.ConsumeKeyword("asc");
      }
    }
    if (lexer_.ConsumeKeyword("limit")) {
      Token t = lexer_.Next();
      if (t.type != TokenType::kNumber) return Error("expected LIMIT count");
      stmt.limit = static_cast<size_t>(std::stoull(t.text));
    }
    if (lexer_.Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing token '" + lexer_.Peek().text + "'");
    }
    return stmt;
  }

 private:
  Status Error(std::string message) const {
    return Status::InvalidArgument("SQL: " + std::move(message));
  }

  Result<std::string> ParseIdent() {
    Token t = lexer_.Next();
    if (t.type != TokenType::kIdent) {
      return Error("expected identifier, got '" + t.text + "'");
    }
    return t.text;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    Token t = lexer_.Next();
    if (t.type != TokenType::kIdent) {
      return Error("expected column or aggregate, got '" + t.text + "'");
    }
    std::string lower = ToLower(t.text);
    std::optional<AggFn> agg;
    if (lower == "count") agg = AggFn::kCount;
    if (lower == "sum") agg = AggFn::kSum;
    if (lower == "avg") agg = AggFn::kAvg;
    if (lower == "min") agg = AggFn::kMin;
    if (lower == "max") agg = AggFn::kMax;
    if (agg && lexer_.ConsumeSymbol("(")) {
      item.agg = agg;
      if (lexer_.ConsumeSymbol("*")) {
        if (*agg != AggFn::kCount) return Error("only COUNT accepts '*'");
      } else {
        LAKEKIT_ASSIGN_OR_RETURN(std::string col, ParseIdent());
        item.column = Unqualify(col);
      }
      if (!lexer_.ConsumeSymbol(")")) return Error("expected ')'");
    } else {
      item.column = Unqualify(t.text);
    }
    if (lexer_.ConsumeKeyword("as")) {
      LAKEKIT_ASSIGN_OR_RETURN(item.alias, ParseIdent());
    }
    return item;
  }

  Result<ExprPtr> ParseOr() {
    LAKEKIT_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (lexer_.ConsumeKeyword("or")) {
      LAKEKIT_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = Expr::Logical(LogicalOp::kOr, left, right);
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    LAKEKIT_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (lexer_.ConsumeKeyword("and")) {
      LAKEKIT_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = Expr::Logical(LogicalOp::kAnd, left, right);
    }
    return left;
  }

  Result<ExprPtr> ParseUnary() {
    if (lexer_.ConsumeKeyword("not")) {
      LAKEKIT_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
      return Expr::Not(inner);
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    LAKEKIT_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    if (lexer_.ConsumeKeyword("is")) {
      bool negated = lexer_.ConsumeKeyword("not");
      if (!lexer_.ConsumeKeyword("null")) return Error("expected NULL");
      ExprPtr test = Expr::IsNull(left);
      return negated ? Expr::Not(test) : test;
    }
    struct SymbolOp {
      std::string_view symbol;
      CmpOp op;
    };
    static constexpr SymbolOp kOps[] = {
        {"<=", CmpOp::kLe}, {">=", CmpOp::kGe}, {"!=", CmpOp::kNe},
        {"<>", CmpOp::kNe}, {"=", CmpOp::kEq},  {"<", CmpOp::kLt},
        {">", CmpOp::kGt}};
    for (const SymbolOp& s : kOps) {
      if (lexer_.ConsumeSymbol(s.symbol)) {
        LAKEKIT_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
        return Expr::Compare(s.op, left, right);
      }
    }
    return left;
  }

  Result<ExprPtr> ParseAdditive() {
    LAKEKIT_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (true) {
      if (lexer_.ConsumeSymbol("+")) {
        LAKEKIT_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
        left = Expr::Arith(ArithOp::kAdd, left, right);
      } else if (lexer_.ConsumeSymbol("-")) {
        LAKEKIT_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
        left = Expr::Arith(ArithOp::kSub, left, right);
      } else {
        return left;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    LAKEKIT_ASSIGN_OR_RETURN(ExprPtr left, ParsePrimary());
    while (true) {
      if (lexer_.ConsumeSymbol("*")) {
        LAKEKIT_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
        left = Expr::Arith(ArithOp::kMul, left, right);
      } else if (lexer_.ConsumeSymbol("/")) {
        LAKEKIT_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
        left = Expr::Arith(ArithOp::kDiv, left, right);
      } else {
        return left;
      }
    }
  }

  Result<ExprPtr> ParsePrimary() {
    if (lexer_.ConsumeSymbol("(")) {
      LAKEKIT_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
      if (!lexer_.ConsumeSymbol(")")) return Error("expected ')'");
      return inner;
    }
    Token t = lexer_.Next();
    switch (t.type) {
      case TokenType::kNumber: {
        if (t.text.find('.') == std::string::npos &&
            t.text.find('e') == std::string::npos &&
            t.text.find('E') == std::string::npos) {
          int64_t i = 0;
          auto [ptr, ec] =
              std::from_chars(t.text.data(), t.text.data() + t.text.size(), i);
          if (ec == std::errc() && ptr == t.text.data() + t.text.size()) {
            return Expr::Literal(table::Value(i));
          }
        }
        double d = 0;
        auto [ptr, ec] =
            std::from_chars(t.text.data(), t.text.data() + t.text.size(), d);
        if (ec != std::errc() || ptr != t.text.data() + t.text.size()) {
          return Error("bad number '" + t.text + "'");
        }
        return Expr::Literal(table::Value(d));
      }
      case TokenType::kString:
        return Expr::Literal(table::Value(t.text));
      case TokenType::kIdent: {
        std::string lower = ToLower(t.text);
        if (lower == "true") return Expr::Literal(table::Value(true));
        if (lower == "false") return Expr::Literal(table::Value(false));
        if (lower == "null") return Expr::Literal(table::Value::Null());
        return Expr::Column(Unqualify(t.text));
      }
      default:
        return Error("unexpected token '" + t.text + "'");
    }
  }

  Lexer lexer_;
};

}  // namespace

Result<SelectStatement> ParseSql(std::string_view sql) {
  return Parser(sql).Parse();
}

Result<table::Table> ExecuteSelect(const SelectStatement& stmt,
                                   const TableResolver& resolver,
                                   const ExecOptions& opts) {
  // Interrupts are also checked per morsel inside the operators; the
  // between-operator checks here stop a pipeline before it starts the next
  // stage's scan.
  LAKEKIT_RETURN_IF_ERROR(CheckInterrupt(opts));
  LAKEKIT_ASSIGN_OR_RETURN(table::Table current, resolver(stmt.from_table));
  if (stmt.join_table) {
    LAKEKIT_RETURN_IF_ERROR(CheckInterrupt(opts));
    LAKEKIT_ASSIGN_OR_RETURN(table::Table right, resolver(*stmt.join_table));
    LAKEKIT_ASSIGN_OR_RETURN(
        current, HashJoin(current, right, stmt.join_left_col,
                          stmt.join_right_col, JoinType::kInner, opts));
  }
  if (stmt.where) {
    LAKEKIT_ASSIGN_OR_RETURN(current, Filter(current, *stmt.where, opts));
  }
  const bool has_agg = [&] {
    for (const SelectItem& i : stmt.items) {
      if (i.agg) return true;
    }
    return false;
  }();
  if (has_agg || !stmt.group_by.empty()) {
    std::vector<AggSpec> aggs;
    for (const SelectItem& i : stmt.items) {
      if (i.agg) {
        aggs.push_back(AggSpec{*i.agg, i.column, i.alias});
      }
    }
    LAKEKIT_ASSIGN_OR_RETURN(current,
                             Aggregate(current, stmt.group_by, aggs, opts));
    if (stmt.order_by) {
      LAKEKIT_ASSIGN_OR_RETURN(
          current, Sort(current, *stmt.order_by, stmt.order_ascending, opts));
    }
  } else {
    // ORDER BY may reference columns dropped by the projection, so sort on
    // the pre-projection table (standard SQL semantics).
    if (stmt.order_by) {
      LAKEKIT_ASSIGN_OR_RETURN(
          current, Sort(current, *stmt.order_by, stmt.order_ascending, opts));
    }
    if (!stmt.select_all) {
      std::vector<std::string> columns;
      for (const SelectItem& i : stmt.items) columns.push_back(i.column);
      LAKEKIT_ASSIGN_OR_RETURN(current, Project(current, columns));
    }
  }
  if (stmt.limit) {
    current = Limit(current, *stmt.limit);
  }
  return current;
}

Result<table::Table> RunSql(std::string_view sql, const TableResolver& resolver,
                            const ExecOptions& opts) {
  LAKEKIT_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSql(sql));
  return ExecuteSelect(stmt, resolver, opts);
}

}  // namespace lakekit::query
