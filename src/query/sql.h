#ifndef LAKEKIT_QUERY_SQL_H_
#define LAKEKIT_QUERY_SQL_H_

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "query/operators.h"

namespace lakekit::query {

/// One SELECT-list item: either a plain column or an aggregate call.
struct SelectItem {
  std::string column;  // empty for COUNT(*)
  std::optional<AggFn> agg;
  std::string alias;
};

/// A parsed SELECT statement of the lakekit SQL dialect:
///
///   SELECT <*|item[, item...]> FROM t
///     [JOIN u ON a = b]
///     [WHERE <predicate>]
///     [GROUP BY col[, col...]]
///     [ORDER BY col [ASC|DESC]]
///     [LIMIT n]
///
/// Aggregates: COUNT(*|col), SUM, AVG, MIN, MAX. Predicates support
/// comparison operators, AND/OR/NOT, IS [NOT] NULL, arithmetic, string and
/// numeric literals. Qualified names ("t.col") resolve by stripping the
/// qualifier.
struct SelectStatement {
  bool select_all = false;
  std::vector<SelectItem> items;
  std::string from_table;
  std::optional<std::string> join_table;
  std::string join_left_col;
  std::string join_right_col;
  ExprPtr where;
  std::vector<std::string> group_by;
  std::optional<std::string> order_by;
  bool order_ascending = true;
  std::optional<size_t> limit;
};

/// Parses the dialect; errors carry the offending token.
Result<SelectStatement> ParseSql(std::string_view sql);

/// Supplies base tables by name (the polystore, a RelationalStore, a test
/// fixture...).
using TableResolver =
    std::function<Result<table::Table>(const std::string& name)>;

/// Plans and executes a parsed statement: scan (+ join) -> filter ->
/// aggregate/project -> sort -> limit. `opts` carries the pool plus the
/// deadline/cancel token, checked between pipeline stages here and per
/// morsel inside the vectorized operators.
Result<table::Table> ExecuteSelect(const SelectStatement& stmt,
                                   const TableResolver& resolver,
                                   const ExecOptions& opts = {});

/// Parse + execute.
Result<table::Table> RunSql(std::string_view sql, const TableResolver& resolver,
                            const ExecOptions& opts = {});

}  // namespace lakekit::query

#endif  // LAKEKIT_QUERY_SQL_H_
