#include "query/table_cache.h"

#include <utility>

namespace lakekit::query {

TableCache::Entry TableCache::Put(std::string_view dataset,
                                  uint64_t generation, table::Table t) {
  // Charge what the entry actually holds: the decoded cells (dominant) plus
  // the zone-map statistics built alongside. Computed before the move so the
  // estimate walks live data.
  const size_t table_bytes = EstimateTableBytes(t);
  CachedTable cached{std::move(t), ZoneMap{}};
  cached.zones = ZoneMap::Build(cached.table);
  const size_t charge = table_bytes + cached.zones.memory_bytes();
  return cache_.Insert(Key(dataset, generation), std::move(cached), charge);
}

}  // namespace lakekit::query
