#include "query/table_cache.h"

#include <utility>

namespace lakekit::query {

TableCache::Entry TableCache::Put(std::string_view dataset,
                                  uint64_t generation, table::Table* t) {
  // Charge what the entry will actually hold: the decoded cells (dominant)
  // plus the zone-map statistics built alongside. The table charge is known
  // before any work; the zone-map share is approximated from it (the map
  // stores two Values per column per kMorselSize rows — a rounding error
  // next to the cells), so the budget is consulted BEFORE the zone map is
  // built and before the copy into the cache: a declined admission does no
  // throwaway work and, more importantly, never allocates past the budget.
  const size_t table_bytes = table::EstimateTableBytes(*t);
  if (account_.attached()) {
    if (!account_.TryReserve(table_bytes).ok()) return Entry();
  }
  CachedTable cached{std::move(*t), ZoneMap{}};
  cached.zones = ZoneMap::Build(cached.table);
  const size_t zone_bytes = cached.zones.memory_bytes();
  if (account_.attached()) {
    if (!account_.TryReserve(zone_bytes).ok()) {
      // The cells fit but the statistics tipped it over: hand the table
      // back and decline, settling the partial reservation.
      account_.Release(table_bytes);
      *t = std::move(cached.table);
      return Entry();
    }
  }
  const size_t charge = table_bytes + zone_bytes;
  bool inserted = false;
  Entry entry =
      cache_.Insert(Key(dataset, generation), std::move(cached), charge,
                    &inserted);
  // A racing loader already admitted this key: our copy was discarded, so
  // our reservation must be returned (the winner's stands).
  if (!inserted && account_.attached()) account_.Release(charge);
  return entry;
}

}  // namespace lakekit::query
