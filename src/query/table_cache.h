#ifndef LAKEKIT_QUERY_TABLE_CACHE_H_
#define LAKEKIT_QUERY_TABLE_CACHE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/lru_cache.h"
#include "query/zone_map.h"
#include "table/table.h"

namespace lakekit::query {

/// A decoded table plus the zone map built from it at admission time.
/// Immutable once cached: readers share it by pinned reference, never copy.
struct CachedTable {
  table::Table table;
  ZoneMap zones;
};

struct TableCacheOptions {
  /// Total byte budget across shards (charge = decoded cells + string
  /// payloads + zone-map footprint).
  size_t capacity_bytes = 64u << 20;
  /// 0 = pick from hardware concurrency (see common/lru_cache.h).
  size_t shards = 0;
};

/// Process-wide cache of decoded tables keyed by (dataset, generation)
/// (DESIGN.md §9). The generation comes from the owning store
/// (`TableSource::Generation`): any write to a dataset bumps it, so a cached
/// entry for an old generation simply stops being looked up and ages out —
/// there is no explicit invalidation path to race with.
///
/// Zone maps are built once here, at admission, so every subsequent scan of
/// the cached table gets morsel pruning for free.
class TableCache {
 public:
  /// A pinned, shareable reference to a cached table (empty on miss). The
  /// underlying bytes cannot be evicted while any Entry is alive.
  using Entry = LruCache<std::string, CachedTable>::Handle;

  explicit TableCache(const TableCacheOptions& options = {})
      : cache_(options.capacity_bytes, options.shards) {}

  /// Looks up the decoded table for `dataset` at `generation`.
  Entry Find(std::string_view dataset, uint64_t generation) {
    return cache_.Lookup(Key(dataset, generation));
  }

  /// Admits a freshly decoded table, building its zone map, and returns a
  /// pinned entry. If another loader won the race for the same key, its
  /// entry is returned and `t` is discarded (the copies are equivalent:
  /// both were decoded from the same generation).
  Entry Put(std::string_view dataset, uint64_t generation, table::Table t);

  LruCacheStats stats() const { return cache_.stats(); }

 private:
  /// '\x1f' (unit separator) cannot appear in a formatted integer, so the
  /// composed key is unambiguous even for dataset names containing digits.
  static std::string Key(std::string_view dataset, uint64_t generation) {
    std::string key;
    key.reserve(dataset.size() + 21);
    key.append(dataset);
    key.push_back('\x1f');
    key.append(std::to_string(generation));
    return key;
  }

  LruCache<std::string, CachedTable> cache_;
};

}  // namespace lakekit::query

#endif  // LAKEKIT_QUERY_TABLE_CACHE_H_
