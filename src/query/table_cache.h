#ifndef LAKEKIT_QUERY_TABLE_CACHE_H_
#define LAKEKIT_QUERY_TABLE_CACHE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/lru_cache.h"
#include "common/memory_budget.h"
#include "query/zone_map.h"
#include "table/table.h"

namespace lakekit::query {

/// A decoded table plus the zone map built from it at admission time.
/// Immutable once cached: readers share it by pinned reference, never copy.
struct CachedTable {
  table::Table table;
  ZoneMap zones;
};

struct TableCacheOptions {
  /// Total byte budget across shards (charge = decoded cells + string
  /// payloads + zone-map footprint).
  size_t capacity_bytes = 64u << 20;
  /// 0 = pick from hardware concurrency (see common/lru_cache.h).
  size_t shards = 0;
  /// When set, the cache's bytes are a child reservation of this process
  /// budget (DESIGN.md §10): admissions reserve against it, evictions and
  /// capacity pressure credit it back, so the cache and in-flight queries
  /// trade off inside one process-level number. An admission the budget
  /// refuses is *declined* — the table simply is not cached — never an
  /// error: caching is an optimization, overload protection is not.
  /// Must outlive the cache. nullptr: the cache only enforces its own
  /// `capacity_bytes`, exactly the pre-budget behavior.
  MemoryBudget* process_budget = nullptr;
};

/// Process-wide cache of decoded tables keyed by (dataset, generation)
/// (DESIGN.md §9). The generation comes from the owning store
/// (`TableSource::Generation`): any write to a dataset bumps it, so a cached
/// entry for an old generation simply stops being looked up and ages out —
/// there is no explicit invalidation path to race with.
///
/// Zone maps are built once here, at admission, so every subsequent scan of
/// the cached table gets morsel pruning for free.
class TableCache {
 public:
  /// A pinned, shareable reference to a cached table (empty on miss). The
  /// underlying bytes cannot be evicted while any Entry is alive.
  using Entry = LruCache<std::string, CachedTable>::Handle;

  explicit TableCache(const TableCacheOptions& options = {})
      : account_(options.process_budget, options.capacity_bytes),
        cache_(options.capacity_bytes, options.shards) {
    if (account_.attached()) {
      // Evictions run under a shard lock; the credit is two relaxed
      // atomics, well within what that lock can hold.
      cache_.set_eviction_listener(
          [this](size_t charge) { account_.Release(charge); });
    }
  }

  /// Looks up the decoded table for `dataset` at `generation`.
  Entry Find(std::string_view dataset, uint64_t generation) {
    return cache_.Lookup(Key(dataset, generation));
  }

  /// Admits a freshly decoded table, building its zone map, and returns a
  /// pinned entry. If another loader won the race for the same key, its
  /// entry is returned and `*t` is discarded (the copies are equivalent:
  /// both were decoded from the same generation). If the process budget
  /// declines the admission, an empty Entry is returned and `*t` is left
  /// untouched — the caller keeps its decoded table and the query proceeds
  /// uncached.
  Entry Put(std::string_view dataset, uint64_t generation, table::Table* t);

  /// By-value convenience for callers that do not need the declined table
  /// back (tests, warm-up paths): on decline the table is dropped.
  Entry Put(std::string_view dataset, uint64_t generation, table::Table t) {
    return Put(dataset, generation, &t);
  }

  LruCacheStats stats() const { return cache_.stats(); }

  /// The cache's child reservation (detached unless `process_budget` was
  /// set). Exposed for tests asserting the budget hierarchy balances.
  const BudgetAccount& account() const { return account_; }

 private:
  /// '\x1f' (unit separator) cannot appear in a formatted integer, so the
  /// composed key is unambiguous even for dataset names containing digits.
  static std::string Key(std::string_view dataset, uint64_t generation) {
    std::string key;
    key.reserve(dataset.size() + 21);
    key.append(dataset);
    key.push_back('\x1f');
    key.append(std::to_string(generation));
    return key;
  }

  BudgetAccount account_;
  LruCache<std::string, CachedTable> cache_;
};

}  // namespace lakekit::query

#endif  // LAKEKIT_QUERY_TABLE_CACHE_H_
