#include "query/vec.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/hash.h"
#include "query/zone_map.h"

namespace lakekit::query {

using table::DataType;
using table::Table;
using table::Value;

namespace {

/// Index into a Vec's lanes for logical row k.
size_t Lane(const Vec& v, size_t k) { return v.scalar ? 0 : k; }

bool VecIsNull(const Vec& v, size_t k) {
  if (v.type == DataType::kNull && !v.generic) return true;
  return v.nulls[Lane(v, k)] != 0;
}

/// Rank for the cross-type total order (Value::operator<): NULL < bool <
/// numeric < string.
int CellRank(DataType t) {
  switch (t) {
    case DataType::kNull:
      return 0;
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
    case DataType::kDouble:
      return 2;
    case DataType::kString:
      return 3;
  }
  return 4;
}

/// Whether `op` holds given equality/less-than results computed with the
/// exact IEEE semantics Value uses (kLe is !(b < a), so NaN compares "<=").
bool ApplyCmp(CmpOp op, bool eq, bool lt, bool gt) {
  switch (op) {
    case CmpOp::kEq:
      return eq;
    case CmpOp::kNe:
      return !eq;
    case CmpOp::kLt:
      return lt;
    case CmpOp::kLe:
      return !gt;
    case CmpOp::kGt:
      return gt;
    case CmpOp::kGe:
      return !lt;
  }
  return false;
}

Vec MakeBoolVec(size_t rows, bool scalar) {
  Vec out;
  out.type = DataType::kBool;
  out.scalar = scalar;
  out.nulls.assign(rows, 0);
  out.b8.assign(rows, 0);
  return out;
}

/// Three-valued truth of one side of a logical connective, mirroring the
/// interpreter's truthy/falsy lambdas: only non-NULL booleans are truthy or
/// falsy; any other non-NULL value is "other" (neither).
enum class Truth : uint8_t { kFalse, kTrue, kNull, kOther };

Truth TruthOf(const Vec& v, size_t k);

}  // namespace

CellRef DecodeCell(const Value& v) {
  CellRef c;
  c.type = v.type();
  switch (c.type) {
    case DataType::kNull:
      break;
    case DataType::kBool:
      c.b = v.as_bool();
      break;
    case DataType::kInt64:
      c.i = v.as_int();
      c.d = static_cast<double>(c.i);
      break;
    case DataType::kDouble:
      c.d = v.as_double();
      break;
    case DataType::kString:
      c.s = v.as_string();
      break;
  }
  return c;
}

namespace {

Truth TruthOf(const Vec& v, size_t k) {
  if (VecIsNull(v, k)) return Truth::kNull;
  if (v.generic) {
    const Value* cell = v.cells[Lane(v, k)];
    if (!cell->is_bool()) return Truth::kOther;
    return cell->as_bool() ? Truth::kTrue : Truth::kFalse;
  }
  if (v.type != DataType::kBool) return Truth::kOther;
  return v.b8[Lane(v, k)] != 0 ? Truth::kTrue : Truth::kFalse;
}

}  // namespace

CellRef VecCell(const Vec& v, size_t k) {
  const size_t li = Lane(v, k);
  CellRef c;
  if (v.type == DataType::kNull && !v.generic) return c;
  if (v.generic) return DecodeCell(*v.cells[li]);
  if (v.nulls[li] != 0) return c;
  c.type = v.type;
  switch (v.type) {
    case DataType::kNull:
      break;
    case DataType::kBool:
      c.b = v.b8[li] != 0;
      break;
    case DataType::kInt64:
      c.i = v.i64[li];
      c.d = static_cast<double>(c.i);
      break;
    case DataType::kDouble:
      c.d = v.f64[li];
      break;
    case DataType::kString:
      c.s = v.str[li];
      break;
  }
  return c;
}

bool CellLess(const CellRef& a, const CellRef& b) {
  const int ra = CellRank(a.type);
  const int rb = CellRank(b.type);
  if (ra != rb) return ra < rb;
  switch (a.type) {
    case DataType::kNull:
      return false;
    case DataType::kBool:
      return !a.b && b.b;
    case DataType::kInt64:
    case DataType::kDouble:
      return a.d < b.d;
    case DataType::kString:
      return a.s < b.s;
  }
  return false;
}

bool CellEq(const CellRef& a, const CellRef& b) {
  const bool a_num = a.type == DataType::kInt64 || a.type == DataType::kDouble;
  const bool b_num = b.type == DataType::kInt64 || b.type == DataType::kDouble;
  if (a_num && b_num) return a.d == b.d;
  if (a.type != b.type) return false;
  switch (a.type) {
    case DataType::kNull:
      return true;
    case DataType::kBool:
      return a.b == b.b;
    case DataType::kString:
      return a.s == b.s;
    default:
      return false;
  }
}

Vec LoadColumn(const Table& input, size_t col, DataType schema_type,
               size_t begin, size_t end) {
  const std::vector<Value>& cells = input.column(col);
  const size_t n = end - begin;
  Vec v;
  v.type = schema_type;
  v.nulls.assign(n, 0);
  // Typed fast lane: one pass whose only per-cell work is a single variant
  // index load (get_*: schema-typed cells take the first branch) and a
  // payload copy. The first off-schema cell demotes the whole batch to the
  // generic lane.
  bool ok = true;
  switch (schema_type) {
    case DataType::kBool:
      v.b8.resize(n);
      for (size_t k = 0; k < n && ok; ++k) {
        const Value& c = cells[begin + k];
        if (const bool* pv = c.get_bool()) {
          v.b8[k] = *pv ? 1 : 0;
        } else if (c.is_null()) {
          v.nulls[k] = 1;
        } else {
          ok = false;
        }
      }
      break;
    case DataType::kInt64:
      v.i64.resize(n);
      for (size_t k = 0; k < n && ok; ++k) {
        const Value& c = cells[begin + k];
        if (const int64_t* pv = c.get_int()) {
          v.i64[k] = *pv;
        } else if (c.is_null()) {
          v.nulls[k] = 1;
        } else {
          ok = false;
        }
      }
      break;
    case DataType::kDouble:
      v.f64.resize(n);
      for (size_t k = 0; k < n && ok; ++k) {
        const Value& c = cells[begin + k];
        if (const double* pv = c.get_double()) {
          v.f64[k] = *pv;
        } else if (c.is_null()) {
          v.nulls[k] = 1;
        } else {
          ok = false;
        }
      }
      break;
    case DataType::kString:
      v.str.resize(n);
      for (size_t k = 0; k < n && ok; ++k) {
        const Value& c = cells[begin + k];
        if (const std::string* pv = c.get_string()) {
          v.str[k] = *pv;
        } else if (c.is_null()) {
          v.nulls[k] = 1;
        } else {
          ok = false;
        }
      }
      break;
    case DataType::kNull:
      ok = false;  // untyped schema: nothing to specialize on
      break;
  }
  if (ok) return v;
  // Generic lane: pointers into the column's cells.
  Vec g;
  g.type = schema_type;
  g.generic = true;
  g.nulls.assign(n, 0);
  g.cells.resize(n);
  for (size_t k = 0; k < n; ++k) {
    const Value& c = cells[begin + k];
    g.cells[k] = &c;
    if (c.is_null()) g.nulls[k] = 1;
  }
  return g;
}

namespace lanehash {

/// These hashes never leave a morsel — cross-morsel group identity uses
/// `Value::Hash` on the materialized key Values — so the only contract is
/// CellEq-consistency: cells a probe table could compare equal must hash
/// equal. That freedom buys a string hash far cheaper than Value's
/// byte-at-a-time FNV (length folded with the first eight bytes, one mix).
/// Numerics hash through double with -0.0 normalized, because a generic
/// lane can put int64 5 and double 5.0 — CellEq-equal — in the same column.

uint64_t Numeric(double d) {
  if (d == 0.0) d = 0.0;  // Normalize -0.0 (CellEq: -0.0 == 0.0).
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return Mix64(bits);
}

uint64_t Prefix(std::string_view s) {
  uint64_t head = 0;
  if (s.size() >= sizeof(head)) {
    std::memcpy(&head, s.data(), sizeof(head));
  } else {
    // Byte loop for short strings: a variable-length memcpy here compiles
    // to a libc call per row and dominates the hash.
    for (size_t i = 0; i < s.size(); ++i) {
      head |= static_cast<uint64_t>(static_cast<uint8_t>(s[i])) << (8 * i);
    }
  }
  return Mix64(head ^ (static_cast<uint64_t>(s.size()) << 56));
}

}  // namespace lanehash

namespace {

constexpr uint64_t kNullHash = lanehash::kNull;
constexpr uint64_t kTrueHash = lanehash::kTrue;
constexpr uint64_t kFalseHash = lanehash::kFalse;

uint64_t NumericHash(double d) { return lanehash::Numeric(d); }

uint64_t PrefixHash(std::string_view s) { return lanehash::Prefix(s); }

uint64_t HashCell(const CellRef& c) {
  switch (c.type) {
    case DataType::kNull:
      return kNullHash;
    case DataType::kBool:
      return c.b ? kTrueHash : kFalseHash;
    case DataType::kInt64:
      return NumericHash(static_cast<double>(c.i));
    case DataType::kDouble:
      return NumericHash(c.d);
    case DataType::kString:
      return PrefixHash(c.s);
  }
  return kNullHash;
}

}  // namespace

void HashLane(const Vec& lane, size_t n, uint64_t* inout) {
  if (lane.generic) {
    for (size_t k = 0; k < n; ++k) {
      inout[k] = HashCombine(inout[k], HashCell(DecodeCell(*lane.cells[k])));
    }
    return;
  }
  switch (lane.type) {
    case DataType::kBool:
      for (size_t k = 0; k < n; ++k) {
        const uint64_t h = lane.nulls[k] != 0
                               ? kNullHash
                               : (lane.b8[k] != 0 ? kTrueHash : kFalseHash);
        inout[k] = HashCombine(inout[k], h);
      }
      break;
    case DataType::kInt64:
      for (size_t k = 0; k < n; ++k) {
        const uint64_t h =
            lane.nulls[k] != 0
                ? kNullHash
                : NumericHash(static_cast<double>(lane.i64[k]));
        inout[k] = HashCombine(inout[k], h);
      }
      break;
    case DataType::kDouble:
      for (size_t k = 0; k < n; ++k) {
        const uint64_t h =
            lane.nulls[k] != 0 ? kNullHash : NumericHash(lane.f64[k]);
        inout[k] = HashCombine(inout[k], h);
      }
      break;
    case DataType::kString:
      for (size_t k = 0; k < n; ++k) {
        const uint64_t h =
            lane.nulls[k] != 0 ? kNullHash : PrefixHash(lane.str[k]);
        inout[k] = HashCombine(inout[k], h);
      }
      break;
    case DataType::kNull:
      for (size_t k = 0; k < n; ++k) {
        inout[k] = HashCombine(inout[k], kNullHash);
      }
      break;
  }
}

Result<int> CompiledExpr::CompileNode(const Expr& expr,
                                      const table::Schema& schema,
                                      std::vector<Node>* nodes) {
  Node n;
  n.kind = expr.kind();
  switch (expr.kind()) {
    case Expr::Kind::kLiteral:
      n.literal = expr.literal();
      break;
    case Expr::Kind::kColumn: {
      auto idx = schema.IndexOf(expr.column_name());
      if (!idx) {
        return Status::NotFound("unknown column '" + expr.column_name() + "'");
      }
      n.column = *idx;
      n.column_type = schema.field(*idx).type;
      break;
    }
    case Expr::Kind::kCompare: {
      n.cmp = expr.cmp_op();
      LAKEKIT_ASSIGN_OR_RETURN(n.left,
                               CompileNode(*expr.left(), schema, nodes));
      LAKEKIT_ASSIGN_OR_RETURN(n.right,
                               CompileNode(*expr.right(), schema, nodes));
      break;
    }
    case Expr::Kind::kLogical: {
      n.logical = expr.logical_op();
      LAKEKIT_ASSIGN_OR_RETURN(n.left,
                               CompileNode(*expr.left(), schema, nodes));
      LAKEKIT_ASSIGN_OR_RETURN(n.right,
                               CompileNode(*expr.right(), schema, nodes));
      break;
    }
    case Expr::Kind::kArith: {
      n.arith = expr.arith_op();
      LAKEKIT_ASSIGN_OR_RETURN(n.left,
                               CompileNode(*expr.left(), schema, nodes));
      LAKEKIT_ASSIGN_OR_RETURN(n.right,
                               CompileNode(*expr.right(), schema, nodes));
      break;
    }
    case Expr::Kind::kNot:
    case Expr::Kind::kIsNull: {
      LAKEKIT_ASSIGN_OR_RETURN(n.left,
                               CompileNode(*expr.left(), schema, nodes));
      break;
    }
  }
  nodes->push_back(std::move(n));
  return static_cast<int>(nodes->size() - 1);
}

Result<CompiledExpr> CompiledExpr::Compile(const Expr& expr,
                                           const table::Schema& schema) {
  CompiledExpr compiled;
  LAKEKIT_ASSIGN_OR_RETURN(int root,
                           CompileNode(expr, schema, &compiled.nodes_));
  (void)root;  // ignore: the root is by construction the last node.
  return compiled;
}

namespace {

Vec EvalLiteral(const Value& literal) {
  Vec v;
  v.scalar = true;
  v.type = literal.type();
  v.nulls.assign(1, literal.is_null() ? 1 : 0);
  switch (v.type) {
    case DataType::kNull:
      break;
    case DataType::kBool:
      v.b8.assign(1, literal.as_bool() ? 1 : 0);
      break;
    case DataType::kInt64:
      v.i64.assign(1, literal.as_int());
      break;
    case DataType::kDouble:
      v.f64.assign(1, literal.as_double());
      break;
    case DataType::kString:
      // Views the literal owned by the compiled node; CompiledExpr outlives
      // every Vec it produces.
      v.str.assign(1, literal.as_string());
      break;
  }
  return v;
}

bool IsNumericLane(const Vec& v) {
  return !v.generic &&
         (v.type == DataType::kInt64 || v.type == DataType::kDouble);
}

Vec EvalCompare(CmpOp op, const Vec& l, const Vec& r, size_t n) {
  const bool scalar = l.scalar && r.scalar;
  const size_t rows = scalar ? 1 : n;
  Vec out = MakeBoolVec(rows, scalar);
  // Lane dispatch happens once per batch; the loops below never touch a
  // variant.
  if (IsNumericLane(l) && IsNumericLane(r)) {
    const bool li = l.type == DataType::kInt64;
    const bool ri = r.type == DataType::kInt64;
    for (size_t k = 0; k < rows; ++k) {
      if (VecIsNull(l, k) || VecIsNull(r, k)) {
        out.nulls[k] = 1;
        continue;
      }
      const double a = li ? static_cast<double>(l.i64[Lane(l, k)])
                          : l.f64[Lane(l, k)];
      const double b = ri ? static_cast<double>(r.i64[Lane(r, k)])
                          : r.f64[Lane(r, k)];
      out.b8[k] = ApplyCmp(op, a == b, a < b, b < a) ? 1 : 0;
    }
    return out;
  }
  if (!l.generic && !r.generic && l.type == DataType::kString &&
      r.type == DataType::kString) {
    for (size_t k = 0; k < rows; ++k) {
      if (VecIsNull(l, k) || VecIsNull(r, k)) {
        out.nulls[k] = 1;
        continue;
      }
      const std::string_view a = l.str[Lane(l, k)];
      const std::string_view b = r.str[Lane(r, k)];
      out.b8[k] = ApplyCmp(op, a == b, a < b, b < a) ? 1 : 0;
    }
    return out;
  }
  // Cross-type, boolean, or generic operands: decoded-cell loop.
  for (size_t k = 0; k < rows; ++k) {
    if (VecIsNull(l, k) || VecIsNull(r, k)) {
      out.nulls[k] = 1;
      continue;
    }
    const CellRef a = VecCell(l, k);
    const CellRef b = VecCell(r, k);
    out.b8[k] =
        ApplyCmp(op, CellEq(a, b), CellLess(a, b), CellLess(b, a)) ? 1 : 0;
  }
  return out;
}

Vec EvalLogical(LogicalOp op, const Vec& l, const Vec& r, size_t n) {
  const bool scalar = l.scalar && r.scalar;
  const size_t rows = scalar ? 1 : n;
  Vec out = MakeBoolVec(rows, scalar);
  for (size_t k = 0; k < rows; ++k) {
    const Truth a = TruthOf(l, k);
    const Truth b = TruthOf(r, k);
    if (op == LogicalOp::kAnd) {
      if (a == Truth::kFalse || b == Truth::kFalse) {
        out.b8[k] = 0;
      } else if (a == Truth::kNull || b == Truth::kNull) {
        out.nulls[k] = 1;
      } else {
        out.b8[k] = (a == Truth::kTrue && b == Truth::kTrue) ? 1 : 0;
      }
    } else {
      if (a == Truth::kTrue || b == Truth::kTrue) {
        out.b8[k] = 1;
      } else if (a == Truth::kNull || b == Truth::kNull) {
        out.nulls[k] = 1;
      } else {
        out.b8[k] = 0;
      }
    }
  }
  return out;
}

Result<Vec> EvalArith(ArithOp op, const Vec& l, const Vec& r, size_t n) {
  const bool scalar = l.scalar && r.scalar;
  const size_t rows = scalar ? 1 : n;
  // Integer fast lane: int64 (+,-,*) stays integral, exactly like the
  // interpreter.
  if (!l.generic && !r.generic && l.type == DataType::kInt64 &&
      r.type == DataType::kInt64 && op != ArithOp::kDiv) {
    Vec out;
    out.type = DataType::kInt64;
    out.scalar = scalar;
    out.nulls.assign(rows, 0);
    out.i64.assign(rows, 0);
    for (size_t k = 0; k < rows; ++k) {
      if (VecIsNull(l, k) || VecIsNull(r, k)) {
        out.nulls[k] = 1;
        continue;
      }
      const int64_t a = l.i64[Lane(l, k)];
      const int64_t b = r.i64[Lane(r, k)];
      switch (op) {
        case ArithOp::kAdd:
          out.i64[k] = a + b;
          break;
        case ArithOp::kSub:
          out.i64[k] = a - b;
          break;
        case ArithOp::kMul:
          out.i64[k] = a * b;
          break;
        case ArithOp::kDiv:
          break;
      }
    }
    return out;
  }
  // Double lane: both operands are numeric typed lanes.
  if (IsNumericLane(l) && IsNumericLane(r)) {
    Vec out;
    out.type = DataType::kDouble;
    out.scalar = scalar;
    out.nulls.assign(rows, 0);
    out.f64.assign(rows, 0);
    const bool li = l.type == DataType::kInt64;
    const bool ri = r.type == DataType::kInt64;
    for (size_t k = 0; k < rows; ++k) {
      if (VecIsNull(l, k) || VecIsNull(r, k)) {
        out.nulls[k] = 1;
        continue;
      }
      const double a = li ? static_cast<double>(l.i64[Lane(l, k)])
                          : l.f64[Lane(l, k)];
      const double b = ri ? static_cast<double>(r.i64[Lane(r, k)])
                          : r.f64[Lane(r, k)];
      switch (op) {
        case ArithOp::kAdd:
          out.f64[k] = a + b;
          break;
        case ArithOp::kSub:
          out.f64[k] = a - b;
          break;
        case ArithOp::kMul:
          out.f64[k] = a * b;
          break;
        case ArithOp::kDiv:
          if (b == 0) {
            out.nulls[k] = 1;
          } else {
            out.f64[k] = a / b;
          }
          break;
      }
    }
    return out;
  }
  // Non-numeric typed lanes can only yield NULLs (from NULL cells) or the
  // interpreter's type error; generic lanes decide int-vs-double per row, so
  // the output is generic too, backed by `owned`.
  Vec out;
  out.type = DataType::kDouble;
  out.scalar = scalar;
  out.generic = true;
  out.nulls.assign(rows, 0);
  out.owned.assign(rows, Value::Null());
  out.cells.resize(rows);
  for (size_t k = 0; k < rows; ++k) out.cells[k] = &out.owned[k];
  for (size_t k = 0; k < rows; ++k) {
    if (VecIsNull(l, k) || VecIsNull(r, k)) {
      out.nulls[k] = 1;
      continue;
    }
    const CellRef a = VecCell(l, k);
    const CellRef b = VecCell(r, k);
    const bool a_num =
        a.type == DataType::kInt64 || a.type == DataType::kDouble;
    const bool b_num =
        b.type == DataType::kInt64 || b.type == DataType::kDouble;
    if (!a_num || !b_num) {
      return Status::InvalidArgument("arithmetic on non-numeric values");
    }
    if (a.type == DataType::kInt64 && b.type == DataType::kInt64 &&
        op != ArithOp::kDiv) {
      switch (op) {
        case ArithOp::kAdd:
          out.owned[k] = Value(a.i + b.i);
          break;
        case ArithOp::kSub:
          out.owned[k] = Value(a.i - b.i);
          break;
        case ArithOp::kMul:
          out.owned[k] = Value(a.i * b.i);
          break;
        case ArithOp::kDiv:
          break;
      }
      continue;
    }
    switch (op) {
      case ArithOp::kAdd:
        out.owned[k] = Value(a.d + b.d);
        break;
      case ArithOp::kSub:
        out.owned[k] = Value(a.d - b.d);
        break;
      case ArithOp::kMul:
        out.owned[k] = Value(a.d * b.d);
        break;
      case ArithOp::kDiv:
        if (b.d == 0) {
          out.nulls[k] = 1;
        } else {
          out.owned[k] = Value(a.d / b.d);
        }
        break;
    }
  }
  return out;
}

Result<Vec> EvalNot(const Vec& v, size_t n) {
  const size_t rows = v.scalar ? 1 : n;
  Vec out = MakeBoolVec(rows, v.scalar);
  for (size_t k = 0; k < rows; ++k) {
    if (VecIsNull(v, k)) {
      out.nulls[k] = 1;
      continue;
    }
    const Truth t = TruthOf(v, k);
    if (t == Truth::kOther) {
      return Status::InvalidArgument("NOT on non-boolean value");
    }
    out.b8[k] = t == Truth::kTrue ? 0 : 1;
  }
  return out;
}

Vec EvalIsNull(const Vec& v, size_t n) {
  const size_t rows = v.scalar ? 1 : n;
  Vec out = MakeBoolVec(rows, v.scalar);
  for (size_t k = 0; k < rows; ++k) {
    out.b8[k] = VecIsNull(v, k) ? 1 : 0;
  }
  return out;
}

}  // namespace

Result<Vec> CompiledExpr::EvalNode(int node, const Table& input, size_t begin,
                                   size_t end) const {
  const Node& n = nodes_[node];
  const size_t rows = end - begin;
  switch (n.kind) {
    case Expr::Kind::kLiteral:
      return EvalLiteral(n.literal);
    case Expr::Kind::kColumn:
      return LoadColumn(input, n.column, n.column_type, begin, end);
    case Expr::Kind::kCompare: {
      LAKEKIT_ASSIGN_OR_RETURN(Vec l, EvalNode(n.left, input, begin, end));
      LAKEKIT_ASSIGN_OR_RETURN(Vec r, EvalNode(n.right, input, begin, end));
      return EvalCompare(n.cmp, l, r, rows);
    }
    case Expr::Kind::kLogical: {
      LAKEKIT_ASSIGN_OR_RETURN(Vec l, EvalNode(n.left, input, begin, end));
      LAKEKIT_ASSIGN_OR_RETURN(Vec r, EvalNode(n.right, input, begin, end));
      return EvalLogical(n.logical, l, r, rows);
    }
    case Expr::Kind::kArith: {
      LAKEKIT_ASSIGN_OR_RETURN(Vec l, EvalNode(n.left, input, begin, end));
      LAKEKIT_ASSIGN_OR_RETURN(Vec r, EvalNode(n.right, input, begin, end));
      return EvalArith(n.arith, l, r, rows);
    }
    case Expr::Kind::kNot: {
      LAKEKIT_ASSIGN_OR_RETURN(Vec v, EvalNode(n.left, input, begin, end));
      return EvalNot(v, rows);
    }
    case Expr::Kind::kIsNull: {
      LAKEKIT_ASSIGN_OR_RETURN(Vec v, EvalNode(n.left, input, begin, end));
      return EvalIsNull(v, rows);
    }
  }
  return Status::Internal("unreachable expression kind");
}

Result<Vec> CompiledExpr::EvalBatch(const Table& input, size_t begin,
                                    size_t end) const {
  return EvalNode(static_cast<int>(nodes_.size()) - 1, input, begin, end);
}

/// What a subexpression could produce over any row of a chunk, per the zone
/// statistics — the abstract domain of EvaluateRange. Two views are kept in
/// sync: a *value range* ([lo, hi] under Value's total order, plus null
/// flags) feeding comparisons, and a *truth set* (can the value be truthy /
/// falsy / NULL / non-boolean) feeding logical connectives and the root
/// verdict. `can_error` poisons everything: a chunk whose evaluation might
/// fail must be evaluated for real, or the pruned path's ok-ness would
/// diverge from the reference interpreter's.
struct CompiledExpr::RangeInfo {
  // Value-range view. `range_known` false means "any value at all".
  bool range_known = false;
  Value lo;               // valid iff range_known && can_value
  Value hi;
  bool can_value = true;  // some row yields a non-NULL value
  bool can_null = true;   // some row yields NULL
  bool unordered = false; // NaN possible: comparisons against it untrusted
  bool can_error = false; // evaluation might return a Status error

  // Truth-set view (filter-operand semantics; kOther = non-boolean value).
  bool can_true = true;
  bool can_false = true;
  bool can_other = true;

  static RangeInfo Unknown(bool may_error) {
    RangeInfo r;
    r.can_error = may_error;
    return r;
  }

  /// Rebuilds the truth set from the value-range view (used after the range
  /// is narrowed). A non-NULL value is truthy iff it is boolean true, falsy
  /// iff boolean false, "other" otherwise.
  void DeriveTruthFromRange() {
    can_true = can_false = can_other = false;
    if (!can_value) return;
    if (!range_known || unordered) {
      can_true = can_false = can_other = true;
      return;
    }
    const Value vfalse(false);
    const Value vtrue(true);
    // [lo, hi] contains false/true iff the endpoint comparisons admit it.
    can_false = !(vfalse < lo) && !(hi < vfalse);
    can_true = !(vtrue < lo) && !(hi < vtrue);
    // The interval lies entirely inside the bool rank iff both endpoints are
    // bools (NULL < bool < numeric < string — nothing interleaves).
    can_other = !(lo.is_bool() && hi.is_bool());
  }

  /// Builds a boolean-result RangeInfo from a truth set (comparisons and
  /// connectives produce only bool or NULL).
  static RangeInfo FromTruth(bool t, bool f, bool null, bool error) {
    RangeInfo r;
    r.can_true = t;
    r.can_false = f;
    r.can_other = false;
    r.can_null = null;
    r.can_error = error;
    r.can_value = t || f;
    r.range_known = true;
    if (r.can_value) {
      r.lo = Value(!f);  // false < true, so lo is false when f is possible
      r.hi = Value(t);
    }
    return r;
  }

  /// Truth set of one comparison over two value ranges. Uses the interval
  /// endpoints under Value's total order — the same order CellLess/CellEq
  /// mirror — so "∃ a∈[l.lo,l.hi], b∈[r.lo,r.hi] with a op b" reduces to
  /// endpoint comparisons.
  static RangeInfo Compare(CmpOp op, const RangeInfo& l, const RangeInfo& r);

  /// Truth set of a logical connective, enumerating the operands' possible
  /// truth values through the exact EvalLogical table (kOther counts as
  /// neither-true-nor-false-nor-null: AND(other, true) is false, never an
  /// error).
  static RangeInfo Logical(LogicalOp op, const RangeInfo& l,
                           const RangeInfo& r);
};

CompiledExpr::RangeInfo CompiledExpr::RangeInfo::Compare(CmpOp op,
                                                         const RangeInfo& l,
                                                         const RangeInfo& r) {
  const bool error = l.can_error || r.can_error;
  if (!l.range_known || !r.range_known || l.unordered || r.unordered) {
    RangeInfo out = RangeInfo::Unknown(error);
    out.can_other = false;  // comparisons yield only bool or NULL
    return out;
  }
  const bool null = l.can_null || r.can_null;
  if (!l.can_value || !r.can_value) {
    // At least one side is always NULL: the comparison is always NULL.
    return RangeInfo::FromTruth(false, false, true, error);
  }
  bool can_true = false;
  bool can_false = false;
  // ∃ a < b  ⟺  l.lo < r.hi;   ∃ a >= b  ⟺  !(l.hi < r.lo).
  // ∃ a == b ⟺  ranges overlap; ∃ a != b ⟺ ranges are not one single point.
  const bool exists_lt = l.lo < r.hi;
  const bool exists_gt = r.lo < l.hi;
  const bool overlap = !(l.hi < r.lo) && !(r.hi < l.lo);
  const bool single_point = !(l.lo < l.hi) && !(r.lo < r.hi) && l.lo == r.lo;
  switch (op) {
    case CmpOp::kEq:
      can_true = overlap;
      can_false = !single_point;
      break;
    case CmpOp::kNe:
      can_true = !single_point;
      can_false = overlap;
      break;
    case CmpOp::kLt:
      can_true = exists_lt;
      can_false = !(l.hi < r.lo);
      break;
    case CmpOp::kLe:
      can_true = !(r.hi < l.lo);
      can_false = exists_gt;
      break;
    case CmpOp::kGt:
      can_true = exists_gt;
      can_false = !(r.hi < l.lo);
      break;
    case CmpOp::kGe:
      can_true = !(l.hi < r.lo);
      can_false = exists_lt;
      break;
  }
  return RangeInfo::FromTruth(can_true, can_false, null, error);
}

CompiledExpr::RangeInfo CompiledExpr::RangeInfo::Logical(LogicalOp op,
                                                         const RangeInfo& l,
                                                         const RangeInfo& r) {
  const bool error = l.can_error || r.can_error;
  bool t = false;
  bool f = false;
  bool null = false;
  // Truth values: 0=false, 1=true, 2=null, 3=other.
  const bool lposs[4] = {l.can_false, l.can_true, l.can_null, l.can_other};
  const bool rposs[4] = {r.can_false, r.can_true, r.can_null, r.can_other};
  for (int a = 0; a < 4; ++a) {
    if (!lposs[a]) continue;
    for (int b = 0; b < 4; ++b) {
      if (!rposs[b]) continue;
      if (op == LogicalOp::kAnd) {
        if (a == 0 || b == 0) {
          f = true;
        } else if (a == 2 || b == 2) {
          null = true;
        } else if (a == 1 && b == 1) {
          t = true;
        } else {
          f = true;  // an "other" operand can never make AND true
        }
      } else {
        if (a == 1 || b == 1) {
          t = true;
        } else if (a == 2 || b == 2) {
          null = true;
        } else {
          f = true;
        }
      }
    }
  }
  return RangeInfo::FromTruth(t, f, null, error);
}

CompiledExpr::RangeInfo CompiledExpr::RangeNode(int node, const ZoneStats* cols,
                                                size_t num_cols) const {
  const Node& n = nodes_[node];
  switch (n.kind) {
    case Expr::Kind::kLiteral: {
      RangeInfo r;
      r.range_known = true;
      r.can_null = n.literal.is_null();
      r.can_value = !r.can_null;
      if (r.can_value) {
        r.lo = n.literal;
        r.hi = n.literal;
        if (n.literal.is_double() && std::isnan(n.literal.as_double())) {
          r.unordered = true;
        }
      }
      r.DeriveTruthFromRange();
      return r;
    }
    case Expr::Kind::kColumn: {
      if (n.column >= num_cols) return RangeInfo::Unknown(false);
      const ZoneStats& zs = cols[n.column];
      RangeInfo r;
      r.range_known = true;
      r.can_null = zs.null_count > 0;
      r.can_value = zs.has_values;
      r.unordered = zs.unordered;
      if (zs.has_values) {
        r.lo = zs.min;
        r.hi = zs.max;
      }
      r.DeriveTruthFromRange();
      return r;
    }
    case Expr::Kind::kCompare: {
      const RangeInfo l = RangeNode(n.left, cols, num_cols);
      const RangeInfo r = RangeNode(n.right, cols, num_cols);
      return RangeInfo::Compare(n.cmp, l, r);
    }
    case Expr::Kind::kLogical: {
      const RangeInfo l = RangeNode(n.left, cols, num_cols);
      const RangeInfo r = RangeNode(n.right, cols, num_cols);
      return RangeInfo::Logical(n.logical, l, r);
    }
    case Expr::Kind::kArith:
      // Conservative: arithmetic's value range is not tracked, and it can
      // error on non-numeric operands — poison the verdict.
      return RangeInfo::Unknown(/*may_error=*/true);
    case Expr::Kind::kNot: {
      const RangeInfo v = RangeNode(n.left, cols, num_cols);
      // NOT on a non-boolean value errors at evaluation time.
      const bool error = v.can_error || v.can_other;
      return RangeInfo::FromTruth(v.can_false, v.can_true, v.can_null, error);
    }
    case Expr::Kind::kIsNull: {
      const RangeInfo v = RangeNode(n.left, cols, num_cols);
      return RangeInfo::FromTruth(v.can_null, v.can_value, false, v.can_error);
    }
  }
  return RangeInfo::Unknown(true);
}

RangeTruth CompiledExpr::EvaluateRange(const ZoneStats* cols,
                                       size_t num_cols) const {
  const RangeInfo root =
      RangeNode(static_cast<int>(nodes_.size()) - 1, cols, num_cols);
  // A possible error anywhere means the chunk must be evaluated: skipping it
  // could skip the error the reference interpreter would surface.
  if (root.can_error) return RangeTruth::kMaybe;
  // Filter truthiness: only non-NULL boolean true selects a row.
  if (!root.can_true) return RangeTruth::kAlwaysFalse;
  if (!root.can_false && !root.can_null && !root.can_other) {
    return RangeTruth::kAlwaysTrue;
  }
  return RangeTruth::kMaybe;
}

Status CompiledExpr::EvalSelection(const Table& input, size_t begin,
                                   size_t end, SelVector* out) const {
  LAKEKIT_ASSIGN_OR_RETURN(Vec v, EvalBatch(input, begin, end));
  const size_t n = end - begin;
  if (v.scalar) {
    // Constant predicate: all or nothing.
    if (TruthOf(v, 0) != Truth::kTrue) return Status::OK();
    out->reserve(out->size() + n);
    for (size_t k = 0; k < n; ++k) {
      out->push_back(static_cast<uint32_t>(begin + k));
    }
    return Status::OK();
  }
  if (!v.generic && v.type == DataType::kBool) {
    for (size_t k = 0; k < n; ++k) {
      if (v.nulls[k] == 0 && v.b8[k] != 0) {
        out->push_back(static_cast<uint32_t>(begin + k));
      }
    }
    return Status::OK();
  }
  for (size_t k = 0; k < n; ++k) {
    if (TruthOf(v, k) == Truth::kTrue) {
      out->push_back(static_cast<uint32_t>(begin + k));
    }
  }
  return Status::OK();
}

}  // namespace lakekit::query
