#ifndef LAKEKIT_QUERY_VEC_H_
#define LAKEKIT_QUERY_VEC_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "query/expr.h"
#include "table/schema.h"
#include "table/table.h"
#include "table/value.h"

namespace lakekit::query {

/// Vectorized execution core (DESIGN.md §7).
///
/// The row-at-a-time interpreter (`query/reference_ops.h`) pays a
/// `std::variant` dispatch plus a `std::vector<Value>` materialization per
/// cell. The vectorized engine instead processes *morsels* of `kMorselSize`
/// rows at a time: each expression node is compiled once against the schema
/// (column indexes and lane types resolved up front), and evaluation runs
/// tight per-column loops over typed lanes, falling back to a generic
/// cell-pointer lane only for columns whose cells deviate from their schema
/// type. Predicates produce *selection vectors* — sorted row indexes — that
/// operators gather column-wise, so accepted rows are never materialized as
/// row vectors.

/// Rows per morsel. Fixed (not tunable) because the floating-point
/// aggregation order — and therefore the bit pattern of SUM/AVG over double
/// columns — is defined in terms of per-morsel partials merged in morsel
/// order (see DESIGN.md §7: determinism contract).
inline constexpr size_t kMorselSize = 2048;

/// A selection vector: ascending absolute row indexes into the input table.
/// uint32 keys the engine to tables under 2^32 rows, which also halves the
/// gather working set.
using SelVector = std::vector<uint32_t>;

/// A batch of expression results in columnar form. Exactly one lane is
/// active, chosen once per batch by `type` + `generic`:
///   - typed lanes (`b8`/`i64`/`f64`/`str`) + `nulls` when every non-null
///     cell matches the lane type;
///   - the `cells` lane (pointers into table storage or into `owned`) when
///     a column's cells deviate from its schema type or a kernel produces
///     per-row mixed int64/double results.
/// `scalar` marks a broadcast value (literals, constant folds): lanes have
/// size 1 regardless of the morsel size.
struct Vec {
  table::DataType type = table::DataType::kNull;  // kNull => every row NULL
  bool scalar = false;
  bool generic = false;
  std::vector<uint8_t> nulls;            // 1 = NULL
  std::vector<uint8_t> b8;               // type == kBool
  std::vector<int64_t> i64;              // type == kInt64
  std::vector<double> f64;               // type == kDouble
  std::vector<std::string_view> str;     // type == kString; views into stable
                                         // storage (table cells or literals)
  std::vector<const table::Value*> cells;  // generic lane
  std::vector<table::Value> owned;         // backing store for synthesized
                                           // generic cells
};

/// Three-valued verdict of a predicate over a whole chunk of rows, from
/// zone-map statistics alone (query/zone_map.h):
///   - kAlwaysFalse: no row in the chunk can satisfy the predicate (NULL and
///     non-boolean results count as "not satisfied", matching filter
///     semantics) — the morsel is skipped without touching any lane.
///   - kAlwaysTrue: every row satisfies it — the whole morsel is selected
///     without evaluation.
///   - kMaybe: the statistics cannot decide; evaluate normally. This is the
///     sound fallback: any expression whose evaluation could *error* (e.g.
///     arithmetic on a possibly-non-numeric column) reports kMaybe so the
///     pruned path fails exactly when the reference interpreter fails.
enum class RangeTruth { kAlwaysFalse, kAlwaysTrue, kMaybe };

struct ZoneStats;  // query/zone_map.h

/// A decoded cell: the tag makes cross-type comparison a rank check instead
/// of a variant dispatch. `s` views into storage owned elsewhere.
struct CellRef {
  table::DataType type = table::DataType::kNull;
  bool b = false;
  int64_t i = 0;
  double d = 0;
  std::string_view s;
};

/// Decodes row `k` of `v` (scalars broadcast).
CellRef VecCell(const Vec& v, size_t k);

/// Decodes a table cell into a CellRef (one variant dispatch, done once —
/// e.g. Sort extracts all keys up front and compares tags afterwards).
CellRef DecodeCell(const table::Value& v);

/// Mirror Value's total order / equality exactly (NULL < bool < numeric <
/// string; numerics compare by double across int64/double) so kernels and
/// the reference interpreter agree bit-for-bit.
bool CellLess(const CellRef& a, const CellRef& b);
bool CellEq(const CellRef& a, const CellRef& b);

/// An Expr compiled against a schema: column references are resolved to
/// indexes (and their schema lane types) once, so evaluation never touches
/// column names or per-cell type sniffing on the hot path. Unknown columns
/// fail at compile time with the same NotFound the interpreter raises.
///
/// The compiled form borrows nothing from the source Expr (literals are
/// copied), but evaluation results may view into the *input table's* string
/// cells, so the table must outlive any Vec produced from it.
class CompiledExpr {
 public:
  static Result<CompiledExpr> Compile(const Expr& expr,
                                      const table::Schema& schema);

  /// Evaluates the expression over rows [begin, end) of `input`.
  Result<Vec> EvalBatch(const table::Table& input, size_t begin,
                        size_t end) const;

  /// Appends to `out` the indexes of rows in [begin, end) where the
  /// expression is non-NULL boolean true (filter semantics).
  Status EvalSelection(const table::Table& input, size_t begin, size_t end,
                       SelVector* out) const;

  /// Conservative three-valued evaluation over one chunk's zone statistics
  /// (`cols` holds `num_cols` ZoneStats, indexed by the schema column index
  /// this expression was compiled against). Sound by construction: the
  /// verdict only strengthens to kAlwaysFalse/kAlwaysTrue when *every*
  /// possible row in the chunk provably evaluates that way under the exact
  /// engine semantics (Value total order, SQL NULL logic, filter truthiness)
  /// and evaluation provably cannot error. See DESIGN.md §9.3 for the
  /// soundness argument.
  RangeTruth EvaluateRange(const ZoneStats* cols, size_t num_cols) const;

 private:
  struct Node {
    Expr::Kind kind = Expr::Kind::kLiteral;
    table::Value literal;
    size_t column = 0;
    table::DataType column_type = table::DataType::kString;
    CmpOp cmp = CmpOp::kEq;
    LogicalOp logical = LogicalOp::kAnd;
    ArithOp arith = ArithOp::kAdd;
    int left = -1;
    int right = -1;
  };

  Result<Vec> EvalNode(int node, const table::Table& input, size_t begin,
                       size_t end) const;

  /// Abstract value of a subexpression over a chunk (defined in vec.cc).
  struct RangeInfo;
  RangeInfo RangeNode(int node, const ZoneStats* cols, size_t num_cols) const;

  static Result<int> CompileNode(const Expr& expr, const table::Schema& schema,
                                 std::vector<Node>* nodes);

  std::vector<Node> nodes_;  // post-order; root last
};

/// Loads rows [begin, end) of column `col` into a Vec: a typed lane when
/// every non-null cell matches `schema_type`, else the generic lane. The
/// lane decision is made once per (column, morsel), not per cell.
Vec LoadColumn(const table::Table& input, size_t col,
               table::DataType schema_type, size_t begin, size_t end);

/// Morsel-local cell-hash primitives. CellEq-equal cells hash equal
/// (numerics through double, -0.0 normalized; NULL and the two bools get
/// fixed constants), but these are deliberately NOT Value::Hash — they
/// trade bit-compatibility for speed (strings hash a length-salted 8-byte
/// prefix instead of full FNV). Hashes built from them must never cross a
/// morsel boundary: callers that need cross-morsel identity compute it from
/// materialized key Values (see Aggregate's group materialization).
namespace lanehash {
inline constexpr uint64_t kNull = 0x6e756c6cULL;
inline constexpr uint64_t kTrue = 0x74727565ULL;
inline constexpr uint64_t kFalse = 0x66616c73ULL;
uint64_t Numeric(double d);
uint64_t Prefix(std::string_view s);
}  // namespace lanehash

/// Folds `HashCombine(inout[k], hash(cell k))` into `inout[0..n)`, using
/// the lanehash primitives above (so HashLane output is morsel-local too).
/// The lane type switch runs once, outside the row loop.
void HashLane(const Vec& lane, size_t n, uint64_t* inout);

/// Number of kMorselSize morsels covering `rows` (0 rows -> 0 morsels).
inline size_t NumMorsels(size_t rows) {
  return (rows + kMorselSize - 1) / kMorselSize;
}

}  // namespace lakekit::query

#endif  // LAKEKIT_QUERY_VEC_H_
