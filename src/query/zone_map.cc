#include "query/zone_map.h"

#include <cmath>

namespace lakekit::query {

using table::Table;
using table::Value;

ZoneMap ZoneMap::Build(const Table& t) {
  ZoneMap zm;
  zm.num_columns_ = t.num_columns();
  const size_t rows = t.num_rows();
  const size_t chunks = NumMorsels(rows);
  zm.stats_.resize(chunks * zm.num_columns_);
  // Column-at-a-time: one pass per column keeps the Value vector hot instead
  // of striding across columns per row.
  for (size_t col = 0; col < zm.num_columns_; ++col) {
    const std::vector<Value>& cells = t.column(col);
    for (size_t m = 0; m < chunks; ++m) {
      const size_t begin = m * kMorselSize;
      const size_t end = std::min(rows, begin + kMorselSize);
      ZoneStats& zs = zm.stats_[m * zm.num_columns_ + col];
      zs.row_count = end - begin;
      for (size_t r = begin; r < end; ++r) {
        const Value& v = cells[r];
        if (v.is_null()) {
          ++zs.null_count;
          continue;
        }
        if (v.is_double() && std::isnan(v.as_double())) {
          // NaN breaks trichotomy under Value's order; the whole chunk's
          // range is untrusted.
          zs.unordered = true;
        }
        if (!zs.has_values) {
          zs.min = v;
          zs.max = v;
          zs.has_values = true;
        } else {
          if (v < zs.min) zs.min = v;
          if (zs.max < v) zs.max = v;
        }
      }
    }
  }
  return zm;
}

namespace {

size_t ValueBytes(const Value& v) {
  size_t bytes = sizeof(Value);
  if (const std::string* s = v.get_string()) bytes += s->capacity();
  return bytes;
}

}  // namespace

size_t ZoneMap::memory_bytes() const {
  size_t bytes = sizeof(ZoneMap) + stats_.capacity() * sizeof(ZoneStats);
  for (const ZoneStats& zs : stats_) {
    if (zs.has_values) {
      bytes += ValueBytes(zs.min) + ValueBytes(zs.max) - 2 * sizeof(Value);
    }
  }
  return bytes;
}

}  // namespace lakekit::query
