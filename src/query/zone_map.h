#ifndef LAKEKIT_QUERY_ZONE_MAP_H_
#define LAKEKIT_QUERY_ZONE_MAP_H_

#include <cstddef>
#include <vector>

#include "query/vec.h"
#include "table/table.h"
#include "table/value.h"

namespace lakekit::query {

/// Min/max + null statistics of one column over one kMorselSize-row chunk —
/// the statistics-as-metadata the survey's metadata systems catalog (PAPERS:
/// Sawadogo et al.), kept at morsel granularity so the vectorized engine can
/// skip whole morsels (`CompiledExpr::EvaluateRange`).
///
/// `min`/`max` are materialized Value copies ordered by Value's cross-type
/// total order (NULL < bool < numeric < string), so they bound mixed-type
/// chunks too. They are only meaningful when `has_values`; `unordered` marks
/// a chunk containing a NaN double, whose comparisons violate trichotomy —
/// pruning must not trust the range (EvaluateRange returns kMaybe).
struct ZoneStats {
  table::Value min;
  table::Value max;
  size_t row_count = 0;
  size_t null_count = 0;
  bool has_values = false;  // any non-null cell in the chunk
  bool unordered = false;   // saw NaN: range untrusted
};

/// Per-column, per-chunk statistics of a table, chunked at kMorselSize so
/// chunk m covers exactly the rows of Filter's morsel m. Built once at cache
/// admission time (query/table_cache.h) and immutable afterwards.
class ZoneMap {
 public:
  ZoneMap() = default;

  /// Scans `t` once, column-at-a-time, building stats for every
  /// (chunk, column) pair.
  static ZoneMap Build(const table::Table& t);

  size_t num_chunks() const { return num_columns_ == 0 ? 0 : stats_.size() / num_columns_; }
  size_t num_columns() const { return num_columns_; }

  const ZoneStats& stats(size_t chunk, size_t col) const {
    return stats_[chunk * num_columns_ + col];
  }

  /// The `num_columns()` stats of one chunk, contiguous in column order —
  /// the shape EvaluateRange consumes.
  const ZoneStats* chunk(size_t chunk_index) const {
    return stats_.data() + chunk_index * num_columns_;
  }

  /// Approximate heap footprint, for cache charge accounting.
  size_t memory_bytes() const;

 private:
  size_t num_columns_ = 0;
  std::vector<ZoneStats> stats_;  // chunk-major: [chunk * num_columns_ + col]
};

}  // namespace lakekit::query

#endif  // LAKEKIT_QUERY_ZONE_MAP_H_
