#include "storage/document_store.h"

#include "common/string_util.h"
#include "json/parser.h"
#include "json/writer.h"

namespace lakekit::storage {

const json::Value* DocumentStore::Resolve(const json::Value& doc,
                                          std::string_view path) {
  const json::Value* current = &doc;
  for (const std::string& part : Split(path, '.')) {
    if (!current->is_object()) return nullptr;
    current = current->Get(part);
    if (current == nullptr) return nullptr;
  }
  return current;
}

Result<DocumentStore::DocId> DocumentStore::Insert(std::string_view collection,
                                                   json::Value doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("document must be a JSON object");
  }
  Collection& coll = collections_[std::string(collection)];
  DocId id = coll.next_id++;
  doc.as_object().Set("_id", json::Value(static_cast<int64_t>(id)));
  coll.docs[id] = std::move(doc);
  return id;
}

Result<json::Value> DocumentStore::Get(std::string_view collection,
                                       DocId id) const {
  auto coll_it = collections_.find(collection);
  if (coll_it == collections_.end()) {
    return Status::NotFound("no collection '" + std::string(collection) + "'");
  }
  auto doc_it = coll_it->second.docs.find(id);
  if (doc_it == coll_it->second.docs.end()) {
    return Status::NotFound("no document " + std::to_string(id));
  }
  return doc_it->second;
}

Status DocumentStore::Update(std::string_view collection, DocId id,
                             json::Value doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("document must be a JSON object");
  }
  auto coll_it = collections_.find(collection);
  if (coll_it == collections_.end()) {
    return Status::NotFound("no collection '" + std::string(collection) + "'");
  }
  auto doc_it = coll_it->second.docs.find(id);
  if (doc_it == coll_it->second.docs.end()) {
    return Status::NotFound("no document " + std::to_string(id));
  }
  doc.as_object().Set("_id", json::Value(static_cast<int64_t>(id)));
  doc_it->second = std::move(doc);
  return Status::OK();
}

Status DocumentStore::Remove(std::string_view collection, DocId id) {
  auto coll_it = collections_.find(collection);
  if (coll_it == collections_.end()) {
    return Status::NotFound("no collection '" + std::string(collection) + "'");
  }
  if (coll_it->second.docs.erase(id) == 0) {
    return Status::NotFound("no document " + std::to_string(id));
  }
  return Status::OK();
}

std::vector<json::Value> DocumentStore::All(std::string_view collection) const {
  std::vector<json::Value> out;
  auto coll_it = collections_.find(collection);
  if (coll_it == collections_.end()) return out;
  out.reserve(coll_it->second.docs.size());
  for (const auto& [id, doc] : coll_it->second.docs) out.push_back(doc);
  return out;
}

std::vector<json::Value> DocumentStore::FindEqual(
    std::string_view collection, std::string_view path,
    const json::Value& expected) const {
  return FindIf(collection, [&](const json::Value& doc) {
    const json::Value* v = Resolve(doc, path);
    return v != nullptr && *v == expected;
  });
}

std::vector<json::Value> DocumentStore::FindIf(
    std::string_view collection,
    const std::function<bool(const json::Value&)>& predicate) const {
  std::vector<json::Value> out;
  auto coll_it = collections_.find(collection);
  if (coll_it == collections_.end()) return out;
  for (const auto& [id, doc] : coll_it->second.docs) {
    if (predicate(doc)) out.push_back(doc);
  }
  return out;
}

std::vector<std::string> DocumentStore::CollectionNames() const {
  std::vector<std::string> out;
  out.reserve(collections_.size());
  for (const auto& [name, coll] : collections_) out.push_back(name);
  return out;
}

size_t DocumentStore::Count(std::string_view collection) const {
  auto it = collections_.find(collection);
  return it == collections_.end() ? 0 : it->second.docs.size();
}

std::string DocumentStore::ExportNdjson(std::string_view collection) const {
  std::string out;
  auto coll_it = collections_.find(collection);
  if (coll_it == collections_.end()) return out;
  for (const auto& [id, doc] : coll_it->second.docs) {
    out += json::Write(doc);
    out += "\n";
  }
  return out;
}

Status DocumentStore::ImportNdjson(std::string_view collection,
                                   std::string_view ndjson) {
  LAKEKIT_ASSIGN_OR_RETURN(auto docs, json::ParseLines(ndjson));
  Collection& coll = collections_[std::string(collection)];
  for (json::Value& doc : docs) {
    if (!doc.is_object()) {
      return Status::Corruption("NDJSON line is not an object");
    }
    int64_t id = doc.GetInt("_id", 0);
    if (id <= 0) {
      return Status::Corruption("NDJSON document missing _id");
    }
    coll.docs[static_cast<DocId>(id)] = std::move(doc);
    coll.next_id = std::max(coll.next_id, static_cast<DocId>(id) + 1);
  }
  return Status::OK();
}

}  // namespace lakekit::storage
