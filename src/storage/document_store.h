#ifndef LAKEKIT_STORAGE_DOCUMENT_STORE_H_
#define LAKEKIT_STORAGE_DOCUMENT_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "json/value.h"

namespace lakekit::storage {

/// A schema-less document store over collections of JSON documents.
///
/// Stand-in for the MongoDB tier of polystore data lakes like Constance and
/// CoreDB (survey Sec. 4.3). Documents are JSON objects with a store-assigned
/// integer id exposed as "_id"; queries filter on dotted field paths.
class DocumentStore {
 public:
  using DocId = uint64_t;

  /// Inserts `doc` (must be a JSON object) into `collection`; returns id.
  Result<DocId> Insert(std::string_view collection, json::Value doc);

  /// Fetches one document (with "_id" populated).
  Result<json::Value> Get(std::string_view collection, DocId id) const;

  /// Replaces the document body; NotFound if absent.
  Status Update(std::string_view collection, DocId id, json::Value doc);

  Status Remove(std::string_view collection, DocId id);

  /// All documents in a collection, id order.
  std::vector<json::Value> All(std::string_view collection) const;

  /// Documents where the value at dotted `path` equals `expected`
  /// (e.g. path "address.city" matches {"address": {"city": ...}}).
  std::vector<json::Value> FindEqual(std::string_view collection,
                                     std::string_view path,
                                     const json::Value& expected) const;

  /// Documents satisfying an arbitrary predicate.
  std::vector<json::Value> FindIf(
      std::string_view collection,
      const std::function<bool(const json::Value&)>& predicate) const;

  std::vector<std::string> CollectionNames() const;
  size_t Count(std::string_view collection) const;

  /// Serializes a collection as NDJSON (one document per line, ids
  /// embedded), suitable for ObjectStore persistence.
  std::string ExportNdjson(std::string_view collection) const;

  /// Loads documents from NDJSON produced by ExportNdjson, preserving ids.
  Status ImportNdjson(std::string_view collection, std::string_view ndjson);

  /// Navigates a dotted path inside `doc`; nullptr when missing.
  static const json::Value* Resolve(const json::Value& doc,
                                    std::string_view path);

 private:
  struct Collection {
    std::map<DocId, json::Value> docs;
    DocId next_id = 1;
  };
  std::map<std::string, Collection, std::less<>> collections_;
};

}  // namespace lakekit::storage

#endif  // LAKEKIT_STORAGE_DOCUMENT_STORE_H_
