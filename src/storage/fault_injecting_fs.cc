#include "storage/fault_injecting_fs.h"

#include <algorithm>

namespace lakekit::storage {

// Defined at namespace scope (not in an anonymous namespace) so the friend
// declaration in FaultInjectingFs matches.
/// Handle into a FaultInjectingFs node. Holds the generation it was opened
/// under: a PowerCut bumps the generation, so handles kept across a
/// simulated reboot fail instead of silently writing into the "new" disk.
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectingFs* fs, std::string path,
                    uint64_t generation)
      : fs_(fs), path_(std::move(path)), generation_(generation) {}

  Status Append(std::string_view data) override {
    if (closed_) return Status::Internal("append on closed file " + path_);
    return fs_->HandleAppend(generation_, path_, data);
  }

  Status Sync() override {
    if (closed_) return Status::Internal("sync on closed file " + path_);
    return fs_->HandleSync(generation_, path_);
  }

  Status Truncate(uint64_t size) override {
    if (closed_) return Status::Internal("truncate on closed file " + path_);
    return fs_->HandleTruncate(generation_, path_, size);
  }

  Status Close() override {
    closed_ = true;
    return Status::OK();
  }

 private:
  FaultInjectingFs* fs_;
  std::string path_;
  uint64_t generation_;
  bool closed_ = false;
};

FaultInjectingFs::FaultInjectingFs(uint64_t seed) : rng_(seed) {}

std::string FaultInjectingFs::Parent(const std::string& path) {
  size_t slash = path.rfind('/');
  if (slash == std::string::npos) return "";
  return path.substr(0, slash);
}

Status FaultInjectingFs::CountOp(const char* op,
                                 const std::string& path) const {
  int64_t idx = op_counter_++;
  if (fail_from_ >= 0 && idx >= fail_from_ &&
      (fail_count_ < 0 || idx < fail_from_ + fail_count_)) {
    return Status::IoError("injected fault (op " + std::to_string(idx) +
                           ", " + op + " '" + path + "')");
  }
  return Status::OK();
}

std::string FaultInjectingFs::SurvivingContent(const Node& node, Rng* rng) {
  if (node.data.size() >= node.durable.size() &&
      node.data.compare(0, node.durable.size(), node.durable) == 0) {
    // Plain appends since the last sync: the synced prefix always survives;
    // some prefix of the unsynced tail may have reached the platter (torn
    // write / partial page flush).
    size_t tail = node.data.size() - node.durable.size();
    size_t kept = static_cast<size_t>(rng->Below(tail + 1));
    return node.data.substr(0, node.durable.size() + kept);
  }
  // Non-append change (truncate/overwrite) not yet synced: the crash either
  // caught it or it never left the page cache.
  return rng->Below(2) == 0 ? node.durable : node.data;
}

Result<std::unique_ptr<WritableFile>> FaultInjectingFs::OpenAppend(
    const std::string& path) {
  MutexLock lock(mu_);
  LAKEKIT_RETURN_IF_ERROR(CountOp("open-append", path));
  const std::string parent = Parent(path);
  if (!parent.empty() && dirs_.count(parent) == 0) {
    return Status::IoError("no such directory '" + parent + "'");
  }
  files_.try_emplace(path);  // keeps existing content when present
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultWritableFile>(this, path, generation_));
}

Result<std::unique_ptr<WritableFile>> FaultInjectingFs::OpenTrunc(
    const std::string& path) {
  MutexLock lock(mu_);
  LAKEKIT_RETURN_IF_ERROR(CountOp("open-trunc", path));
  const std::string parent = Parent(path);
  if (!parent.empty() && dirs_.count(parent) == 0) {
    return Status::IoError("no such directory '" + parent + "'");
  }
  files_[path].data.clear();  // durable snapshot unchanged until Sync
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultWritableFile>(this, path, generation_));
}

Result<std::unique_ptr<WritableFile>> FaultInjectingFs::CreateExclusive(
    const std::string& path) {
  MutexLock lock(mu_);
  LAKEKIT_RETURN_IF_ERROR(CountOp("create-exclusive", path));
  const std::string parent = Parent(path);
  if (!parent.empty() && dirs_.count(parent) == 0) {
    return Status::IoError("no such directory '" + parent + "'");
  }
  if (files_.count(path) != 0) {
    return Status::AlreadyExists("file '" + path + "' already exists");
  }
  files_[path] = Node{};
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultWritableFile>(this, path, generation_));
}

Result<std::string> FaultInjectingFs::ReadFile(const std::string& path) const {
  MutexLock lock(mu_);
  LAKEKIT_RETURN_IF_ERROR(CountOp("read", path));
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("file '" + path + "' not found");
  }
  return it->second.data;
}

bool FaultInjectingFs::FileExists(const std::string& path) const {
  MutexLock lock(mu_);
  return files_.count(path) != 0;
}

Status FaultInjectingFs::Remove(const std::string& path) {
  MutexLock lock(mu_);
  LAKEKIT_RETURN_IF_ERROR(CountOp("remove", path));
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("file '" + path + "' not found");
  }
  if (entry_durable_.count(path) != 0) {
    // The on-disk directory still names this file; until the parent dir is
    // synced a crash can resurrect it.
    ghosts_[path] = it->second;
    entry_durable_.erase(path);
  }
  files_.erase(it);
  return Status::OK();
}

Status FaultInjectingFs::Rename(const std::string& from,
                                const std::string& to) {
  MutexLock lock(mu_);
  LAKEKIT_RETURN_IF_ERROR(CountOp("rename", from));
  auto it = files_.find(from);
  if (it == files_.end()) {
    return Status::NotFound("file '" + from + "' not found");
  }
  if (entry_durable_.count(from) != 0) {
    ghosts_[from] = it->second;
    entry_durable_.erase(from);
  }
  auto target = files_.find(to);
  if (target != files_.end() && entry_durable_.count(to) != 0) {
    ghosts_[to] = target->second;
    entry_durable_.erase(to);
    // rename(2) swaps the target name atomically even across a crash: mark
    // the ghost so PowerCut yields old-or-new for `to`, never absent.
    rename_shadowed_.insert(to);
  }
  files_[to] = std::move(it->second);
  files_.erase(from);
  return Status::OK();
}

Status FaultInjectingFs::HardLink(const std::string& from,
                                  const std::string& to) {
  MutexLock lock(mu_);
  LAKEKIT_RETURN_IF_ERROR(CountOp("link", to));
  auto it = files_.find(from);
  if (it == files_.end()) {
    return Status::NotFound("file '" + from + "' not found");
  }
  if (files_.count(to) != 0) {
    return Status::AlreadyExists("file '" + to + "' already exists");
  }
  files_[to] = it->second;  // shares the synced content of the inode
  return Status::OK();
}

Status FaultInjectingFs::CreateDirs(const std::string& path) {
  MutexLock lock(mu_);
  LAKEKIT_RETURN_IF_ERROR(CountOp("mkdir", path));
  // Directory creation is modeled as immediately durable (see DESIGN.md):
  // the harness targets file data and file-name durability, where the
  // store-level bugs live.
  std::string dir = path;
  while (!dir.empty()) {
    dirs_.insert(dir);
    dir = Parent(dir);
  }
  return Status::OK();
}

Status FaultInjectingFs::SyncDir(const std::string& path) {
  MutexLock lock(mu_);
  LAKEKIT_RETURN_IF_ERROR(CountOp("syncdir", path));
  if (drop_syncs_) return Status::OK();
  for (auto& [file_path, node] : files_) {
    if (Parent(file_path) == path) entry_durable_.insert(file_path);
  }
  for (auto it = ghosts_.begin(); it != ghosts_.end();) {
    if (Parent(it->first) == path) {
      rename_shadowed_.erase(it->first);
      it = ghosts_.erase(it);  // the removal/rename is now durable
    } else {
      ++it;
    }
  }
  return Status::OK();
}

Status FaultInjectingFs::Truncate(const std::string& path, uint64_t size) {
  MutexLock lock(mu_);
  LAKEKIT_RETURN_IF_ERROR(CountOp("truncate", path));
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("file '" + path + "' not found");
  }
  it->second.data.resize(size, '\0');
  return Status::OK();
}

Result<std::vector<FsDirEntry>> FaultInjectingFs::ListDir(
    const std::string& dir, bool recursive) const {
  MutexLock lock(mu_);
  LAKEKIT_RETURN_IF_ERROR(CountOp("list", dir));
  if (dirs_.count(dir) == 0) {
    return Status::IoError("no such directory '" + dir + "'");
  }
  std::vector<FsDirEntry> out;
  const std::string prefix = dir + "/";
  for (const auto& [path, node] : files_) {
    if (path.rfind(prefix, 0) != 0) continue;
    std::string name = path.substr(prefix.size());
    if (!recursive && name.find('/') != std::string::npos) continue;
    out.push_back(FsDirEntry{std::move(name), node.data.size()});
  }
  return out;  // files_ is an ordered map, so `out` is already sorted
}

void FaultInjectingFs::FailAfter(int64_t first_failing_op, int64_t count) {
  MutexLock lock(mu_);
  fail_from_ = first_failing_op;
  fail_count_ = count;
}

void FaultInjectingFs::ClearFaults() {
  MutexLock lock(mu_);
  fail_from_ = -1;
  fail_count_ = -1;
}

int64_t FaultInjectingFs::op_count() const {
  MutexLock lock(mu_);
  return op_counter_;
}

void FaultInjectingFs::PowerCut(uint64_t seed) {
  MutexLock lock(mu_);
  Rng rng(seed);
  std::map<std::string, Node> survivors;
  // Live files: a durable name always survives (with synced content plus a
  // pseudo-random torn tail); a volatile name may or may not have reached
  // the directory block.
  for (const auto& [path, node] : files_) {
    if (entry_durable_.count(path) != 0) {
      std::string content = SurvivingContent(node, &rng);
      survivors[path] = Node{content, content};
    } else if (rng.Below(2) == 0) {
      std::string content = SurvivingContent(node, &rng);
      survivors[path] = Node{content, content};
    }
  }
  // Ghosts: removals/renames whose directory update was never synced may
  // unwind, resurrecting the old file. When the same name also has a live
  // (volatile) replacement, the live outcome above wins if it was chosen;
  // otherwise the ghost may come back.
  for (const auto& [path, node] : ghosts_) {
    if (survivors.count(path) != 0) continue;
    // A rename-shadowed ghost always resurrects when the replacement did
    // not survive (rename is old-or-new, never neither); a plain removal's
    // ghost is an independent coin flip.
    if (rename_shadowed_.count(path) != 0 || rng.Below(2) == 0) {
      std::string content = SurvivingContent(node, &rng);
      survivors[path] = Node{content, content};
    }
  }
  files_ = std::move(survivors);
  entry_durable_.clear();
  for (const auto& [path, node] : files_) entry_durable_.insert(path);
  ghosts_.clear();
  rename_shadowed_.clear();
  ++generation_;
  fail_from_ = -1;
  fail_count_ = -1;
  op_counter_ = 0;
}

bool FaultInjectingFs::IsDurable(const std::string& path) const {
  MutexLock lock(mu_);
  auto it = files_.find(path);
  return it != files_.end() && entry_durable_.count(path) != 0 &&
         it->second.data == it->second.durable;
}

Status FaultInjectingFs::HandleAppend(uint64_t generation,
                                      const std::string& path,
                                      std::string_view data) {
  MutexLock lock(mu_);
  if (generation != generation_) {
    return Status::IoError("stale handle for '" + path +
                           "' (opened before power cut)");
  }
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::IoError("file '" + path + "' vanished under open handle");
  }
  Status injected = CountOp("append", path);
  if (!injected.ok()) {
    // Torn write: a pseudo-random prefix of the payload still lands.
    size_t kept = static_cast<size_t>(rng_.Below(data.size() + 1));
    it->second.data.append(data.substr(0, kept));
    return injected;
  }
  it->second.data.append(data);
  return Status::OK();
}

Status FaultInjectingFs::HandleSync(uint64_t generation,
                                    const std::string& path) {
  MutexLock lock(mu_);
  if (generation != generation_) {
    return Status::IoError("stale handle for '" + path +
                           "' (opened before power cut)");
  }
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::IoError("file '" + path + "' vanished under open handle");
  }
  LAKEKIT_RETURN_IF_ERROR(CountOp("sync", path));
  if (!drop_syncs_) it->second.durable = it->second.data;
  return Status::OK();
}

Status FaultInjectingFs::HandleTruncate(uint64_t generation,
                                        const std::string& path,
                                        uint64_t size) {
  MutexLock lock(mu_);
  if (generation != generation_) {
    return Status::IoError("stale handle for '" + path +
                           "' (opened before power cut)");
  }
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::IoError("file '" + path + "' vanished under open handle");
  }
  LAKEKIT_RETURN_IF_ERROR(CountOp("truncate", path));
  it->second.data.resize(size, '\0');
  return Status::OK();
}

}  // namespace lakekit::storage
