#ifndef LAKEKIT_STORAGE_FAULT_INJECTING_FS_H_
#define LAKEKIT_STORAGE_FAULT_INJECTING_FS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/random.h"
#include "common/thread_annotations.h"
#include "storage/fs.h"

namespace lakekit::storage {

/// An in-memory Fs that models exactly what POSIX promises about crashes —
/// and nothing more. The storage tier's fault-injection harness runs every
/// store against it (the LevelDB FaultInjectionTestEnv idea, taken fully
/// in-memory so a "power cut" is deterministic and replayable).
///
/// The durability model it enforces:
///  - `WritableFile::Append` data is *volatile* until `Sync` returns OK;
///  - a file's *name* (creation, removal, rename, hard link) is volatile
///    until `SyncDir` of its parent directory returns OK;
///  - `PowerCut(seed)` collapses the filesystem to one legal crash outcome:
///    synced data under durable names always survives; volatile appends
///    survive as a pseudo-random prefix (torn write); volatile namespace
///    ops are pseudo-randomly applied or reverted (so removed files can
///    resurrect and renames can unwind — exactly the outcomes a store's
///    recovery path must tolerate).
///
/// Fault injection:
///  - `FailAfter(n)`: I/O operation number `n` (0-based, counted across all
///    calls) and every later one fail with a transient IoError — the store
///    behaves as if the device dropped until `PowerCut`/`ClearFaults`.
///  - `FailAfter(n, k)`: only operations [n, n+k) fail; later ones succeed.
///    This is the transient-blip mode RetryPolicy is tested against.
///  - `set_drop_syncs(true)`: Sync/SyncDir report OK but durabilize
///    nothing — the lying-disk mode that proves the crash harness actually
///    depends on the store's fsync discipline.
///
/// A failing Append still applies a pseudo-random prefix of its data (a torn
/// write), so recovery code sees half-written records, not clean absences.
class FaultInjectingFs : public Fs {
 public:
  /// `seed` drives torn-write lengths and PowerCut coin flips.
  explicit FaultInjectingFs(uint64_t seed = 42);

  // Fs interface.
  Result<std::unique_ptr<WritableFile>> OpenAppend(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> OpenTrunc(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> CreateExclusive(
      const std::string& path) override;
  Result<std::string> ReadFile(const std::string& path) const override;
  bool FileExists(const std::string& path) const override;
  Status Remove(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status HardLink(const std::string& from, const std::string& to) override;
  Status CreateDirs(const std::string& path) override;
  Status SyncDir(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Result<std::vector<FsDirEntry>> ListDir(const std::string& dir,
                                          bool recursive) const override;

  // ---- fault controls ----

  /// Fails op number `first_failing_op` and (when `count` < 0) every later
  /// op; with `count` >= 0, exactly ops [first, first+count) fail.
  void FailAfter(int64_t first_failing_op, int64_t count = -1);

  /// Stops injecting failures (op counting continues).
  void ClearFaults();

  /// When set, Sync/SyncDir succeed without making anything durable.
  void set_drop_syncs(bool drop) {
    MutexLock lock(mu_);
    drop_syncs_ = drop;
  }

  /// Total I/O operations counted so far (failed ops included).
  int64_t op_count() const;

  /// Simulates pulling the plug and restarting the machine: every file
  /// collapses to one legal surviving state (see class comment), open
  /// handles go stale, injected faults clear. Stores must be reopened.
  void PowerCut(uint64_t seed);

  /// True if `path` survives a PowerCut regardless of seed (name durable and
  /// content synced). Test helper for asserting durability expectations.
  bool IsDurable(const std::string& path) const;

 private:
  friend class FaultWritableFile;

  struct Node {
    std::string data;     // live content (what readers see now)
    std::string durable;  // content as of the last successful Sync
  };

  /// Counts one op; returns the injected error when it falls in the armed
  /// failure window.
  Status CountOp(const char* op, const std::string& path) const
      LAKEKIT_REQUIRES(mu_);

  /// Parent directory of `path` ("" when none).
  static std::string Parent(const std::string& path);

  /// One legal post-crash content for `node` (synced data plus a
  /// pseudo-random prefix of unsynced appends; for non-append changes,
  /// either the old or the new content).
  static std::string SurvivingContent(const Node& node, Rng* rng);

  // Handle operations (locked; called by FaultWritableFile).
  Status HandleAppend(uint64_t generation, const std::string& path,
                      std::string_view data);
  Status HandleSync(uint64_t generation, const std::string& path);
  Status HandleTruncate(uint64_t generation, const std::string& path,
                        uint64_t size);

  mutable Mutex mu_;
  mutable int64_t op_counter_ LAKEKIT_GUARDED_BY(mu_) = 0;
  int64_t fail_from_ LAKEKIT_GUARDED_BY(mu_) = -1;   // -1: disarmed
  int64_t fail_count_ LAKEKIT_GUARDED_BY(mu_) = -1;  // -1: sticky
  bool drop_syncs_ LAKEKIT_GUARDED_BY(mu_) = false;
  /// Bumped by PowerCut; stales open handles.
  uint64_t generation_ LAKEKIT_GUARDED_BY(mu_) = 0;
  mutable Rng rng_ LAKEKIT_GUARDED_BY(mu_);

  std::map<std::string, Node> files_ LAKEKIT_GUARDED_BY(mu_);
  /// Paths whose directory entry is durable (parent dir synced since the
  /// entry last changed).
  std::set<std::string> entry_durable_ LAKEKIT_GUARDED_BY(mu_);
  /// Removed/renamed-over files whose disappearance is not yet durable; a
  /// PowerCut may bring these back.
  std::map<std::string, Node> ghosts_ LAKEKIT_GUARDED_BY(mu_);
  /// Ghosts displaced by a *rename*: rename(2) is crash-atomic for the
  /// target name, so these resurrect whenever the new file does not survive
  /// — the name is old-or-new after a crash, never absent. (Plain removals
  /// stay independent coin flips: remove-then-recreate may legally crash to
  /// "absent".)
  std::set<std::string> rename_shadowed_ LAKEKIT_GUARDED_BY(mu_);
  std::set<std::string> dirs_ LAKEKIT_GUARDED_BY(mu_);
};

}  // namespace lakekit::storage

#endif  // LAKEKIT_STORAGE_FAULT_INJECTING_FS_H_
