#include "storage/fs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <filesystem>
#include <system_error>

namespace lakekit::storage {

namespace stdfs = std::filesystem;

namespace {

/// Thread-safe strerror: std::strerror writes into shared static storage
/// (clang-tidy concurrency-mt-unsafe), and the storage tier runs on the
/// thread pool.
std::string ErrnoMessage() {
  return std::generic_category().message(errno);
}

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::IoError(what + " '" + path + "': " + ErrnoMessage());
}

/// WritableFile over a POSIX fd. Opened O_APPEND so writes always land at
/// the current end of file — including right after a Truncate, which is the
/// property the KvStore WAL depends on (truncate-then-append must not leave
/// a zero-filled hole at the old offset).
class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    // Close without sync: destruction models "the process died here".
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::Internal("append on closed file " + path_);
    size_t written = 0;
    while (written < data.size()) {
      ssize_t n = ::write(fd_, data.data() + written, data.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write failed for", path_);
      }
      written += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::Internal("sync on closed file " + path_);
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync failed for", path_);
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    if (fd_ < 0) return Status::Internal("truncate on closed file " + path_);
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("ftruncate failed for", path_);
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close failed for", path_);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

/// Production Fs over the local POSIX filesystem.
class PosixFs : public Fs {
 public:
  Result<std::unique_ptr<WritableFile>> OpenAppend(
      const std::string& path) override {
    return OpenWith(path, O_WRONLY | O_CREAT | O_APPEND);
  }

  Result<std::unique_ptr<WritableFile>> OpenTrunc(
      const std::string& path) override {
    return OpenWith(path, O_WRONLY | O_CREAT | O_TRUNC | O_APPEND);
  }

  Result<std::unique_ptr<WritableFile>> CreateExclusive(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_APPEND,
                    0644);
    if (fd < 0) {
      if (errno == EEXIST) {
        return Status::AlreadyExists("file '" + path + "' already exists");
      }
      return ErrnoStatus("open failed for", path);
    }
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  Result<std::string> ReadFile(const std::string& path) const override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (errno == ENOENT) {
        return Status::NotFound("file '" + path + "' not found");
      }
      return ErrnoStatus("open failed for", path);
    }
    std::string out;
    char buf[64 * 1024];
    for (;;) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return ErrnoStatus("read failed for", path);
      }
      if (n == 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  bool FileExists(const std::string& path) const override {
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      if (errno == ENOENT) {
        return Status::NotFound("file '" + path + "' not found");
      }
      return ErrnoStatus("unlink failed for", path);
    }
    return Status::OK();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IoError("rename '" + from + "' -> '" + to +
                             "' failed: " + ErrnoMessage());
    }
    return Status::OK();
  }

  Status HardLink(const std::string& from, const std::string& to) override {
    if (::link(from.c_str(), to.c_str()) != 0) {
      if (errno == EEXIST) {
        return Status::AlreadyExists("file '" + to + "' already exists");
      }
      return Status::IoError("link '" + from + "' -> '" + to +
                             "' failed: " + ErrnoMessage());
    }
    return Status::OK();
  }

  Status CreateDirs(const std::string& path) override {
    std::error_code ec;
    stdfs::create_directories(path, ec);
    if (ec) {
      return Status::IoError("mkdir -p '" + path + "' failed: " +
                             ec.message());
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return ErrnoStatus("opendir failed for", path);
    int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return ErrnoStatus("fsync failed for dir", path);
    return Status::OK();
  }

  Status Truncate(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("truncate failed for", path);
    }
    return Status::OK();
  }

  Result<std::vector<FsDirEntry>> ListDir(const std::string& dir,
                                          bool recursive) const override {
    std::vector<FsDirEntry> out;
    std::error_code ec;
    const std::string prefix = dir + "/";
    auto add = [&](const stdfs::directory_entry& entry) {
      if (!entry.is_regular_file()) return;
      std::string name = entry.path().generic_string();
      if (name.rfind(prefix, 0) == 0) name = name.substr(prefix.size());
      out.push_back(FsDirEntry{std::move(name), entry.file_size()});
    };
    if (recursive) {
      stdfs::recursive_directory_iterator it(
          dir, stdfs::directory_options::skip_permission_denied, ec);
      if (ec) return Status::IoError("list '" + dir + "': " + ec.message());
      for (const auto& entry : it) add(entry);
    } else {
      stdfs::directory_iterator it(
          dir, stdfs::directory_options::skip_permission_denied, ec);
      if (ec) return Status::IoError("list '" + dir + "': " + ec.message());
      for (const auto& entry : it) add(entry);
    }
    std::sort(out.begin(), out.end(),
              [](const FsDirEntry& a, const FsDirEntry& b) {
                return a.name < b.name;
              });
    return out;
  }

 private:
  Result<std::unique_ptr<WritableFile>> OpenWith(const std::string& path,
                                                 int flags) {
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return ErrnoStatus("open failed for", path);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }
};

}  // namespace

Fs* Fs::Default() {
  static PosixFs* fs = new PosixFs();
  return fs;
}

}  // namespace lakekit::storage
