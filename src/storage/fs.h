#ifndef LAKEKIT_STORAGE_FS_H_
#define LAKEKIT_STORAGE_FS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace lakekit::storage {

/// One regular file found by Fs::ListDir.
struct FsDirEntry {
  /// Path relative to the listed directory, '/'-separated.
  std::string name;
  uint64_t size = 0;
};

/// An open file handle for appending.
///
/// `Append` buffers into the OS; nothing is promised durable until `Sync`
/// returns OK. Destruction closes the handle without syncing (like a process
/// crash): callers that need durability must Sync explicitly.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` at the end of the file.
  virtual Status Append(std::string_view data) = 0;

  /// Makes everything appended so far durable (fsync). After OK, the
  /// contents survive a power cut — but the file's *name* only survives if
  /// the parent directory has been synced since the file was created.
  virtual Status Sync() = 0;

  /// Truncates the file to `size` bytes; subsequent appends continue at the
  /// new end. Not durable until the next Sync.
  virtual Status Truncate(uint64_t size) = 0;

  /// Closes the handle. Append/Sync/Truncate after Close are errors.
  virtual Status Close() = 0;
};

/// The filesystem seam under lakekit's storage tier.
///
/// Every byte ObjectStore and KvStore persist flows through this interface,
/// so a test can swap in `FaultInjectingFs` and exercise the exact crash and
/// torn-write schedules the production `PosixFs` would suffer on real
/// hardware (the LevelDB `Env` / fault-injection-env pattern). The methods
/// are the minimal POSIX vocabulary the durability story needs: append,
/// fsync, atomic rename, exclusive create, hard link, and directory fsync.
///
/// Durability contract (what FaultInjectingFs models and PosixFs provides):
///  - file *contents* become durable on WritableFile::Sync;
///  - namespace changes (create, remove, rename, link) become durable on
///    SyncDir of the parent directory;
///  - Rename is atomic: readers (and crashes) see the old or the new file,
///    never a mix.
class Fs {
 public:
  virtual ~Fs() = default;

  /// Opens `path` for appending, creating it when missing.
  virtual Result<std::unique_ptr<WritableFile>> OpenAppend(
      const std::string& path) = 0;

  /// Opens `path` for writing from scratch (truncating an existing file).
  virtual Result<std::unique_ptr<WritableFile>> OpenTrunc(
      const std::string& path) = 0;

  /// Creates `path` exclusively (O_EXCL); AlreadyExists when present. The
  /// atomic create-if-absent the lakehouse commit protocol builds on.
  virtual Result<std::unique_ptr<WritableFile>> CreateExclusive(
      const std::string& path) = 0;

  /// Reads the whole file; NotFound when absent.
  virtual Result<std::string> ReadFile(const std::string& path) const = 0;

  virtual bool FileExists(const std::string& path) const = 0;

  /// Removes a file; NotFound when absent.
  virtual Status Remove(const std::string& path) = 0;

  /// Atomically renames `from` to `to`, replacing `to` if present.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// Hard-links `from` as `to`; AlreadyExists when `to` exists. Atomic
  /// create-with-content: unlike create-then-write, a crash can never leave
  /// `to` half-written.
  virtual Status HardLink(const std::string& from, const std::string& to) = 0;

  /// Creates `path` and missing parents (mkdir -p).
  virtual Status CreateDirs(const std::string& path) = 0;

  /// Makes the directory's entries (creates/removes/renames/links within
  /// it) durable.
  virtual Status SyncDir(const std::string& path) = 0;

  /// Truncates `path` in place to `size` bytes — the recovery primitive for
  /// chopping a torn or corrupt tail off a WAL.
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;

  /// Regular files under `dir` (recursively when `recursive`), sorted by
  /// name.
  virtual Result<std::vector<FsDirEntry>> ListDir(const std::string& dir,
                                                  bool recursive) const = 0;

  /// The process-wide production filesystem (PosixFs).
  static Fs* Default();
};

}  // namespace lakekit::storage

#endif  // LAKEKIT_STORAGE_FS_H_
