#include "storage/graph_store.h"

#include <deque>
#include <unordered_set>

namespace lakekit::storage {

GraphStore::NodeId GraphStore::AddNode(std::string_view label,
                                       json::Object properties) {
  NodeId id = next_node_id_++;
  nodes_[id] = Node{id, std::string(label), std::move(properties)};
  return id;
}

Result<GraphStore::EdgeId> GraphStore::AddEdge(NodeId from, NodeId to,
                                               std::string_view label,
                                               json::Object properties) {
  if (nodes_.find(from) == nodes_.end()) {
    return Status::NotFound("no node " + std::to_string(from));
  }
  if (nodes_.find(to) == nodes_.end()) {
    return Status::NotFound("no node " + std::to_string(to));
  }
  EdgeId id = next_edge_id_++;
  edges_[id] = Edge{id, from, to, std::string(label), std::move(properties)};
  out_[from].push_back(id);
  in_[to].push_back(id);
  return id;
}

Result<GraphStore::Node> GraphStore::GetNode(NodeId id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return Status::NotFound("no node " + std::to_string(id));
  }
  return it->second;
}

Result<GraphStore::Edge> GraphStore::GetEdge(EdgeId id) const {
  auto it = edges_.find(id);
  if (it == edges_.end()) {
    return Status::NotFound("no edge " + std::to_string(id));
  }
  return it->second;
}

Status GraphStore::SetNodeProperty(NodeId id, std::string_view key,
                                   json::Value value) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return Status::NotFound("no node " + std::to_string(id));
  }
  it->second.properties.Set(key, std::move(value));
  return Status::OK();
}

std::vector<GraphStore::Edge> GraphStore::OutEdges(
    NodeId node, std::optional<std::string> label) const {
  std::vector<Edge> result;
  auto it = out_.find(node);
  if (it == out_.end()) return result;
  for (EdgeId eid : it->second) {
    const Edge& e = edges_.at(eid);
    if (!label || e.label == *label) result.push_back(e);
  }
  return result;
}

std::vector<GraphStore::Edge> GraphStore::InEdges(
    NodeId node, std::optional<std::string> label) const {
  std::vector<Edge> result;
  auto it = in_.find(node);
  if (it == in_.end()) return result;
  for (EdgeId eid : it->second) {
    const Edge& e = edges_.at(eid);
    if (!label || e.label == *label) result.push_back(e);
  }
  return result;
}

std::vector<GraphStore::Node> GraphStore::NodesByLabel(
    std::string_view label) const {
  std::vector<Node> result;
  for (const auto& [id, node] : nodes_) {
    if (node.label == label) result.push_back(node);
  }
  return result;
}

std::vector<GraphStore::Node> GraphStore::FindNodes(
    std::string_view key, const json::Value& value) const {
  return FindNodesIf([&](const Node& n) {
    const json::Value* v = n.properties.Find(key);
    return v != nullptr && *v == value;
  });
}

std::vector<GraphStore::Node> GraphStore::FindNodesIf(
    const std::function<bool(const Node&)>& predicate) const {
  std::vector<Node> result;
  for (const auto& [id, node] : nodes_) {
    if (predicate(node)) result.push_back(node);
  }
  return result;
}

std::vector<GraphStore::NodeId> GraphStore::ShortestPath(
    NodeId from, NodeId to, std::optional<std::string> edge_label) const {
  if (nodes_.find(from) == nodes_.end() || nodes_.find(to) == nodes_.end()) {
    return {};
  }
  std::unordered_map<NodeId, NodeId> parent;
  std::deque<NodeId> queue{from};
  parent[from] = from;
  while (!queue.empty()) {
    NodeId current = queue.front();
    queue.pop_front();
    if (current == to) {
      std::vector<NodeId> path;
      for (NodeId n = to; n != from; n = parent[n]) path.push_back(n);
      path.push_back(from);
      std::reverse(path.begin(), path.end());
      return path;
    }
    for (const Edge& e : OutEdges(current, edge_label)) {
      if (parent.find(e.to) == parent.end()) {
        parent[e.to] = current;
        queue.push_back(e.to);
      }
    }
  }
  return {};
}

std::vector<GraphStore::NodeId> GraphStore::Reachable(
    NodeId from, std::optional<std::string> edge_label) const {
  std::vector<NodeId> result;
  if (nodes_.find(from) == nodes_.end()) return result;
  std::unordered_set<NodeId> visited{from};
  std::deque<NodeId> queue{from};
  while (!queue.empty()) {
    NodeId current = queue.front();
    queue.pop_front();
    result.push_back(current);
    for (const Edge& e : OutEdges(current, edge_label)) {
      if (visited.insert(e.to).second) queue.push_back(e.to);
    }
  }
  return result;
}

}  // namespace lakekit::storage
