#include "storage/graph_store.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace lakekit::storage {

GraphStore::NodeId GraphStore::AddNode(std::string_view label,
                                       json::Object properties) {
  NodeId id = next_node_id_++;
  nodes_[id] = Node{id, std::string(label), std::move(properties)};
  return id;
}

Result<GraphStore::EdgeId> GraphStore::AddEdge(NodeId from, NodeId to,
                                               std::string_view label,
                                               json::Object properties) {
  if (nodes_.find(from) == nodes_.end()) {
    return Status::NotFound("no node " + std::to_string(from));
  }
  if (nodes_.find(to) == nodes_.end()) {
    return Status::NotFound("no node " + std::to_string(to));
  }
  EdgeId id = next_edge_id_++;
  edges_[id] = Edge{id, from, to, std::string(label), std::move(properties)};
  out_[from].push_back(id);
  in_[to].push_back(id);
  return id;
}

Result<GraphStore::Node> GraphStore::GetNode(NodeId id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return Status::NotFound("no node " + std::to_string(id));
  }
  return it->second;
}

Result<GraphStore::Edge> GraphStore::GetEdge(EdgeId id) const {
  auto it = edges_.find(id);
  if (it == edges_.end()) {
    return Status::NotFound("no edge " + std::to_string(id));
  }
  return it->second;
}

Status GraphStore::SetNodeProperty(NodeId id, std::string_view key,
                                   json::Value value) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return Status::NotFound("no node " + std::to_string(id));
  }
  it->second.properties.Set(key, std::move(value));
  return Status::OK();
}

std::vector<GraphStore::Edge> GraphStore::OutEdges(
    NodeId node, std::optional<std::string> label) const {
  std::vector<Edge> result;
  auto it = out_.find(node);
  if (it == out_.end()) return result;
  for (EdgeId eid : it->second) {
    const Edge& e = edges_.at(eid);
    if (!label || e.label == *label) result.push_back(e);
  }
  return result;
}

std::vector<GraphStore::Edge> GraphStore::InEdges(
    NodeId node, std::optional<std::string> label) const {
  std::vector<Edge> result;
  auto it = in_.find(node);
  if (it == in_.end()) return result;
  for (EdgeId eid : it->second) {
    const Edge& e = edges_.at(eid);
    if (!label || e.label == *label) result.push_back(e);
  }
  return result;
}

std::vector<GraphStore::Node> GraphStore::NodesByLabel(
    std::string_view label) const {
  std::vector<Node> result;
  for (const auto& [id, node] : nodes_) {
    if (node.label == label) result.push_back(node);
  }
  return result;
}

std::vector<GraphStore::Node> GraphStore::FindNodes(
    std::string_view key, const json::Value& value) const {
  return FindNodesIf([&](const Node& n) {
    const json::Value* v = n.properties.Find(key);
    return v != nullptr && *v == value;
  });
}

std::vector<GraphStore::Node> GraphStore::FindNodesIf(
    const std::function<bool(const Node&)>& predicate) const {
  std::vector<Node> result;
  for (const auto& [id, node] : nodes_) {
    if (predicate(node)) result.push_back(node);
  }
  return result;
}

std::vector<GraphStore::NodeId> GraphStore::ShortestPath(
    NodeId from, NodeId to, std::optional<std::string> edge_label) const {
  if (nodes_.find(from) == nodes_.end() || nodes_.find(to) == nodes_.end()) {
    return {};
  }
  std::unordered_map<NodeId, NodeId> parent;
  std::deque<NodeId> queue{from};
  parent[from] = from;
  while (!queue.empty()) {
    NodeId current = queue.front();
    queue.pop_front();
    if (current == to) {
      std::vector<NodeId> path;
      for (NodeId n = to; n != from; n = parent[n]) path.push_back(n);
      path.push_back(from);
      std::reverse(path.begin(), path.end());
      return path;
    }
    for (const Edge& e : OutEdges(current, edge_label)) {
      if (parent.find(e.to) == parent.end()) {
        parent[e.to] = current;
        queue.push_back(e.to);
      }
    }
  }
  return {};
}

std::vector<GraphStore::NodeId> GraphStore::Reachable(
    NodeId from, std::optional<std::string> edge_label) const {
  std::vector<NodeId> result;
  if (nodes_.find(from) == nodes_.end()) return result;
  std::unordered_set<NodeId> visited{from};
  std::deque<NodeId> queue{from};
  while (!queue.empty()) {
    NodeId current = queue.front();
    queue.pop_front();
    result.push_back(current);
    for (const Edge& e : OutEdges(current, edge_label)) {
      if (visited.insert(e.to).second) queue.push_back(e.to);
    }
  }
  return result;
}

namespace {

/// Reads a required non-negative integer field out of a graph JSON object.
Result<uint64_t> GetId(const json::Object& obj, std::string_view key) {
  const json::Value* v = obj.Find(key);
  if (v == nullptr || !v->is_int() || v->as_int() < 0) {
    return Status::InvalidArgument("graph json: missing or invalid '" +
                                   std::string(key) + "'");
  }
  return static_cast<uint64_t>(v->as_int());
}

Result<std::string> GetLabel(const json::Object& obj) {
  const json::Value* v = obj.Find("label");
  if (v == nullptr || !v->is_string()) {
    return Status::InvalidArgument("graph json: missing or invalid 'label'");
  }
  return v->as_string();
}

json::Object GetProperties(const json::Object& obj) {
  const json::Value* v = obj.Find("properties");
  return (v != nullptr && v->is_object()) ? v->as_object() : json::Object{};
}

}  // namespace

json::Value GraphStore::ExportJson() const {
  json::Array nodes;
  for (const auto& [id, node] : nodes_) {
    json::Object n;
    n.Set("id", static_cast<int64_t>(node.id));
    n.Set("label", node.label);
    n.Set("properties", node.properties);
    nodes.push_back(json::Value(std::move(n)));
  }
  json::Array edges;
  for (const auto& [id, edge] : edges_) {
    json::Object e;
    e.Set("id", static_cast<int64_t>(edge.id));
    e.Set("from", static_cast<int64_t>(edge.from));
    e.Set("to", static_cast<int64_t>(edge.to));
    e.Set("label", edge.label);
    e.Set("properties", edge.properties);
    edges.push_back(json::Value(std::move(e)));
  }
  json::Object root;
  root.Set("nodes", json::Value(std::move(nodes)));
  root.Set("edges", json::Value(std::move(edges)));
  root.Set("next_node_id", static_cast<int64_t>(next_node_id_));
  root.Set("next_edge_id", static_cast<int64_t>(next_edge_id_));
  return json::Value(std::move(root));
}

Result<GraphStore> GraphStore::ImportJson(const json::Value& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("graph json: root must be an object");
  }
  const json::Object& root = value.as_object();
  const json::Value* nodes = root.Find("nodes");
  const json::Value* edges = root.Find("edges");
  if (nodes == nullptr || !nodes->is_array() || edges == nullptr ||
      !edges->is_array()) {
    return Status::InvalidArgument(
        "graph json: 'nodes' and 'edges' arrays are required");
  }
  GraphStore g;
  for (const json::Value& v : nodes->as_array()) {
    if (!v.is_object()) {
      return Status::InvalidArgument("graph json: node must be an object");
    }
    const json::Object& obj = v.as_object();
    LAKEKIT_ASSIGN_OR_RETURN(NodeId id, GetId(obj, "id"));
    LAKEKIT_ASSIGN_OR_RETURN(std::string label, GetLabel(obj));
    g.nodes_[id] = Node{id, std::move(label), GetProperties(obj)};
    g.next_node_id_ = std::max(g.next_node_id_, id + 1);
  }
  for (const json::Value& v : edges->as_array()) {
    if (!v.is_object()) {
      return Status::InvalidArgument("graph json: edge must be an object");
    }
    const json::Object& obj = v.as_object();
    LAKEKIT_ASSIGN_OR_RETURN(EdgeId id, GetId(obj, "id"));
    LAKEKIT_ASSIGN_OR_RETURN(NodeId from, GetId(obj, "from"));
    LAKEKIT_ASSIGN_OR_RETURN(NodeId to, GetId(obj, "to"));
    if (g.nodes_.find(from) == g.nodes_.end() ||
        g.nodes_.find(to) == g.nodes_.end()) {
      return Status::InvalidArgument("graph json: edge " + std::to_string(id) +
                                     " references a missing node");
    }
    LAKEKIT_ASSIGN_OR_RETURN(std::string label, GetLabel(obj));
    g.edges_[id] = Edge{id, from, to, std::move(label), GetProperties(obj)};
    g.out_[from].push_back(id);
    g.in_[to].push_back(id);
    g.next_edge_id_ = std::max(g.next_edge_id_, id + 1);
  }
  // Saved id counters win over the max-derived floor when present (they can
  // be larger after deletions at the tail).
  if (const json::Value* n = root.Find("next_node_id");
      n != nullptr && n->is_int()) {
    g.next_node_id_ = std::max<NodeId>(g.next_node_id_, n->as_int());
  }
  if (const json::Value* e = root.Find("next_edge_id");
      e != nullptr && e->is_int()) {
    g.next_edge_id_ = std::max<EdgeId>(g.next_edge_id_, e->as_int());
  }
  return g;
}

}  // namespace lakekit::storage
