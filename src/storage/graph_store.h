#ifndef LAKEKIT_STORAGE_GRAPH_STORE_H_
#define LAKEKIT_STORAGE_GRAPH_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "json/value.h"

namespace lakekit::storage {

/// A labeled property graph: nodes and directed edges, each with a label and
/// JSON-object properties.
///
/// Stand-in for the Neo4j tier used by the personal data lake, HANDLE and
/// Juneau (survey Sec. 4.2, 5.2): the metadata models of the metamodel
/// module and the provenance graphs all persist into this structure.
class GraphStore {
 public:
  using NodeId = uint64_t;
  using EdgeId = uint64_t;

  struct Node {
    NodeId id = 0;
    std::string label;
    json::Object properties;
  };

  struct Edge {
    EdgeId id = 0;
    NodeId from = 0;
    NodeId to = 0;
    std::string label;
    json::Object properties;
  };

  /// Adds a node; returns its id.
  NodeId AddNode(std::string_view label, json::Object properties = {});

  /// Adds a directed edge; both endpoints must exist.
  Result<EdgeId> AddEdge(NodeId from, NodeId to, std::string_view label,
                         json::Object properties = {});

  Result<Node> GetNode(NodeId id) const;
  Result<Edge> GetEdge(EdgeId id) const;

  /// Updates a node's properties in place.
  Status SetNodeProperty(NodeId id, std::string_view key, json::Value value);

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return edges_.size(); }

  /// Outgoing edges of `node`, optionally restricted to `label`.
  std::vector<Edge> OutEdges(NodeId node,
                             std::optional<std::string> label = {}) const;
  /// Incoming edges of `node`, optionally restricted to `label`.
  std::vector<Edge> InEdges(NodeId node,
                            std::optional<std::string> label = {}) const;

  /// Nodes with the given label.
  std::vector<Node> NodesByLabel(std::string_view label) const;

  /// Nodes whose property `key` equals `value` (any label).
  std::vector<Node> FindNodes(std::string_view key,
                              const json::Value& value) const;

  /// Nodes satisfying a predicate.
  std::vector<Node> FindNodesIf(
      const std::function<bool(const Node&)>& predicate) const;

  /// A shortest directed path from `from` to `to` as node ids (BFS over
  /// edges, optionally restricted to `edge_label`); empty when unreachable.
  std::vector<NodeId> ShortestPath(
      NodeId from, NodeId to, std::optional<std::string> edge_label = {}) const;

  /// All node ids reachable from `from` (including itself).
  std::vector<NodeId> Reachable(NodeId from,
                                std::optional<std::string> edge_label = {}) const;

  /// Serializes the full graph (nodes, edges, id counters) to a JSON value,
  /// the persistence seam the polystore uses to park graph datasets in the
  /// object tier.
  json::Value ExportJson() const;

  /// Rebuilds a graph from `ExportJson` output. Node/edge ids and the id
  /// counters round-trip exactly, so references held by callers stay valid.
  static Result<GraphStore> ImportJson(const json::Value& value);

 private:
  std::map<NodeId, Node> nodes_;
  std::map<EdgeId, Edge> edges_;
  std::unordered_map<NodeId, std::vector<EdgeId>> out_;
  std::unordered_map<NodeId, std::vector<EdgeId>> in_;
  NodeId next_node_id_ = 1;
  EdgeId next_edge_id_ = 1;
};

}  // namespace lakekit::storage

#endif  // LAKEKIT_STORAGE_GRAPH_STORE_H_
