#include "storage/kv_store.h"

#include <algorithm>
#include <cstring>

#include "common/crc32.h"
#include "common/string_util.h"

namespace lakekit::storage {

namespace {

constexpr uint32_t kTombstoneMarker = 0xFFFFFFFFu;

void AppendU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

uint32_t ReadU32At(std::string_view data, size_t pos) {
  uint32_t v = 0;
  std::memcpy(&v, data.data() + pos, 4);
  return v;
}

/// Encodes one record: [masked crc][klen][vlen|TOMBSTONE][key][value?].
/// The CRC covers everything after itself (lengths + key + value), so a
/// record torn at any byte — or bit-flipped anywhere — fails verification.
void EncodeRecord(std::string_view key, const std::optional<std::string>& value,
                  std::string* out) {
  std::string body;
  body.reserve(8 + key.size() + (value ? value->size() : 0));
  AppendU32(static_cast<uint32_t>(key.size()), &body);
  AppendU32(value ? static_cast<uint32_t>(value->size()) : kTombstoneMarker,
            &body);
  body.append(key);
  if (value) body.append(*value);
  AppendU32(MaskCrc32c(Crc32c(body)), out);
  *out += body;
}

struct DecodeResult {
  /// Records in append order (later records overwrite earlier ones on
  /// replay; nullopt value == tombstone).
  std::vector<std::pair<std::string, std::optional<std::string>>> entries;
  /// Length of the valid record prefix; anything past it is a torn or
  /// corrupt tail the caller should truncate away.
  size_t valid_bytes = 0;
};

/// Decodes records until the buffer ends or a record fails its length or
/// CRC check. Stopping at the first bad record is the recovery contract:
/// records are appended strictly in order, so everything after a tear is
/// unacknowledged by construction — for a group-committed batch that means
/// recovery keeps a clean *prefix* of the batch's records.
DecodeResult DecodeRecords(std::string_view data) {
  DecodeResult result;
  size_t pos = 0;
  while (pos + 12 <= data.size()) {
    const uint32_t stored_crc = UnmaskCrc32c(ReadU32At(data, pos));
    const uint32_t klen = ReadU32At(data, pos + 4);
    const uint32_t vlen = ReadU32At(data, pos + 8);
    const bool tombstone = (vlen == kTombstoneMarker);
    const uint64_t value_size = tombstone ? 0 : vlen;
    const uint64_t body_size = 8 + static_cast<uint64_t>(klen) + value_size;
    if (pos + 4 + body_size > data.size()) break;  // torn tail
    std::string_view body = data.substr(pos + 4, body_size);
    if (Crc32c(body) != stored_crc) break;  // corrupt tail
    std::string key(body.substr(8, klen));
    if (tombstone) {
      result.entries.emplace_back(std::move(key), std::nullopt);
    } else {
      result.entries.emplace_back(std::move(key),
                                  std::string(body.substr(8 + klen, value_size)));
    }
    pos += 4 + body_size;
    result.valid_bytes = pos;
  }
  return result;
}

/// Parses the id out of "run-<digits>.dat"; nullopt for anything else.
std::optional<uint64_t> ParseRunId(const std::string& name) {
  if (!StartsWith(name, "run-") || !EndsWith(name, ".dat")) return {};
  const std::string digits = name.substr(4, name.size() - 8);
  if (digits.empty()) return {};
  uint64_t id = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return {};
    id = id * 10 + static_cast<uint64_t>(c - '0');
  }
  return id;
}

}  // namespace

KvStore::KvStore(std::string dir, KvStoreOptions options, Fs* fs)
    : dir_(std::move(dir)), options_(options), fs_(fs) {}

KvStore::~KvStore() = default;

Result<std::unique_ptr<KvStore>> KvStore::Open(const std::string& dir,
                                               KvStoreOptions options,
                                               Fs* fs) {
  LAKEKIT_RETURN_IF_ERROR(fs->CreateDirs(dir));
  std::unique_ptr<KvStore> store(new KvStore(dir, options, fs));
  {
    // No other thread can see the store yet; holding the lock anyway keeps
    // the REQUIRES contracts on the recovery helpers checkable.
    WriterLock lock(store->state_mu_);
    LAKEKIT_RETURN_IF_ERROR(store->LoadRuns());
    LAKEKIT_RETURN_IF_ERROR(store->RecoverWal());
    if (options.use_wal) {
      LAKEKIT_ASSIGN_OR_RETURN(store->wal_, fs->OpenAppend(store->WalPath()));
    }
  }
  // Make the WAL's directory entry (and any recovery-time cleanup) durable
  // before acknowledging writes against it.
  LAKEKIT_RETURN_IF_ERROR(fs->SyncDir(dir));
  return store;
}

KvStore::Run KvStore::MakeRun(uint64_t id,
                              std::vector<RunEntry> entries) const {
  Run run;
  run.id = id;
  run.entries = std::move(entries);
  if (options_.bloom_bits_per_key > 0 && !run.entries.empty()) {
    run.bloom = BloomFilter(run.entries.size(), options_.bloom_bits_per_key);
    for (const RunEntry& entry : run.entries) run.bloom.Add(entry.key);
  }
  return run;
}

Status KvStore::LoadRuns() {
  LAKEKIT_ASSIGN_OR_RETURN(std::vector<FsDirEntry> entries,
                           fs_->ListDir(dir_, /*recursive=*/false));
  std::vector<uint64_t> ids;
  for (const FsDirEntry& entry : entries) {
    if (EndsWith(entry.name, ".tmp")) {
      // Staging file from a run write that never committed (crash between
      // stage and rename) — dead weight, clear it out.
      // ignore: best-effort cleanup; a surviving .tmp is never loaded.
      (void)fs_->Remove(dir_ + "/" + entry.name);
      continue;
    }
    if (std::optional<uint64_t> id = ParseRunId(entry.name)) {
      ids.push_back(*id);
    }
  }
  std::sort(ids.begin(), ids.end());
  for (uint64_t id : ids) {
    LAKEKIT_ASSIGN_OR_RETURN(std::string data, fs_->ReadFile(RunPath(id)));
    DecodeResult decoded = DecodeRecords(data);
    if (decoded.valid_bytes < data.size()) {
      // Corrupt or torn tail in an immutable run: keep the valid prefix,
      // chop the rest (tolerant-truncation recovery contract).
      LAKEKIT_RETURN_IF_ERROR(
          fs_->Truncate(RunPath(id), decoded.valid_bytes));
    }
    std::vector<RunEntry> run_entries;
    run_entries.reserve(decoded.entries.size());
    for (auto& [key, value] : decoded.entries) {
      run_entries.push_back(RunEntry{std::move(key), std::move(value)});
    }
    // Runs are written sorted and unique; a file that is not (foreign or
    // hand-edited) is normalized on load, later records winning.
    auto by_key = [](const RunEntry& a, const RunEntry& b) {
      return a.key < b.key;
    };
    if (!std::is_sorted(run_entries.begin(), run_entries.end(), by_key)) {
      std::stable_sort(run_entries.begin(), run_entries.end(), by_key);
    }
    auto out = run_entries.begin();
    for (auto it = run_entries.begin(); it != run_entries.end(); ++it) {
      auto next = std::next(it);
      if (next != run_entries.end() && next->key == it->key) continue;
      if (out != it) *out = std::move(*it);
      ++out;
    }
    run_entries.erase(out, run_entries.end());
    runs_.push_back(MakeRun(id, std::move(run_entries)));
    next_run_id_ = std::max(next_run_id_, id + 1);
  }
  return Status::OK();
}

Status KvStore::RecoverWal() {
  Result<std::string> data = fs_->ReadFile(WalPath());
  if (!data.ok()) {
    if (data.status().IsNotFound()) return Status::OK();  // nothing to do
    return data.status();
  }
  DecodeResult decoded = DecodeRecords(*data);
  if (decoded.valid_bytes < data->size()) {
    // Torn/corrupt tail from a crash mid-append: truncate to the last
    // complete record instead of failing the open or replaying garbage.
    LAKEKIT_RETURN_IF_ERROR(fs_->Truncate(WalPath(), decoded.valid_bytes));
  }
  wal_bytes_ = decoded.valid_bytes;
  // Replay in append order: later records overwrite earlier ones.
  for (auto& [key, value] : decoded.entries) {
    memtable_bytes_ += key.size() + (value ? value->size() : 0);
    memtable_[std::move(key)] = std::move(value);
  }
  return Status::OK();
}

Status KvStore::AppendWalLocked(std::string_view records) {
  if (!wal_) return Status::OK();
  if (wal_poisoned_) {
    return Status::IoError(
        "WAL unavailable after an unrecoverable append failure; reopen the "
        "store to recover");
  }
  Status status = wal_->Append(records);
  if (status.ok() && options_.sync_writes) status = wal_->Sync();
  if (!status.ok()) {
    // Roll the WAL back to the last acknowledged record so a torn append
    // cannot strand records written after it (recovery stops at the first
    // bad record). If the rollback itself fails, refuse further writes.
    Status repair = wal_->Truncate(wal_bytes_);
    if (repair.ok() && options_.sync_writes) repair = wal_->Sync();
    if (!repair.ok()) wal_poisoned_ = true;
    return status;
  }
  wal_bytes_ += records.size();
  return Status::OK();
}

Status KvStore::Commit(
    const std::vector<std::pair<std::string, std::optional<std::string>>>&
        ops) {
  if (ops.empty()) return Status::OK();
  Committer me;
  me.ops = &ops;
  for (const auto& [key, value] : ops) {
    EncodeRecord(key, value, &me.records);
  }

  MutexLock queue_lock(commit_mu_);
  commit_queue_.push_back(&me);
  while (!me.done && commit_queue_.front() != &me) {
    me.cv.Wait(commit_mu_);
  }
  if (me.done) return me.status;  // a leader committed this batch for us

  // This thread is the leader: adopt every committer queued so far as one
  // batch. The queue lock is dropped during I/O so new committers keep
  // enqueueing (forming the next batch) while this fsync is in flight —
  // that overlap is the whole point of group commit.
  const std::vector<Committer*> batch(commit_queue_.begin(),
                                      commit_queue_.end());
  queue_lock.Unlock();

  Status status;
  {
    WriterLock state_lock(state_mu_);
    if (wal_ && batch.size() > 1) {
      std::string group;
      size_t group_bytes = 0;
      for (const Committer* c : batch) group_bytes += c->records.size();
      group.reserve(group_bytes);
      for (const Committer* c : batch) group += c->records;
      status = AppendWalLocked(group);
    } else {
      status = AppendWalLocked(me.records);
    }
    if (status.ok()) {
      for (const Committer* c : batch) {
        for (const auto& [key, value] : *c->ops) {
          memtable_bytes_ += key.size() + (value ? value->size() : 0);
          memtable_[key] = value;
        }
      }
      status = MaybeFlushAndCompactLocked();
    }
  }

  queue_lock.Lock();
  for (size_t i = 0; i < batch.size(); ++i) {
    Committer* c = commit_queue_.front();
    commit_queue_.pop_front();
    if (c != &me) {
      c->status = status;
      c->done = true;
      c->cv.NotifyOne();
    }
  }
  // Hand leadership to the next batch, if one formed while we were busy.
  if (!commit_queue_.empty()) commit_queue_.front()->cv.NotifyOne();
  return status;
}

Status KvStore::Put(std::string_view key, std::string_view value) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  std::vector<std::pair<std::string, std::optional<std::string>>> ops;
  ops.emplace_back(std::string(key), std::string(value));
  return Commit(ops);
}

Status KvStore::Delete(std::string_view key) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  std::vector<std::pair<std::string, std::optional<std::string>>> ops;
  ops.emplace_back(std::string(key), std::nullopt);
  return Commit(ops);
}

Status KvStore::Write(const WriteBatch& batch) {
  for (const auto& [key, value] : batch.ops_) {
    if (key.empty()) return Status::InvalidArgument("empty key in batch");
  }
  return Commit(batch.ops_);
}

Result<std::string> KvStore::Get(std::string_view key) const {
  ReaderLock lock(state_mu_);
  auto make_not_found = [&] {
    return Status::NotFound("key '" + std::string(key) + "' not found");
  };
  auto it = memtable_.find(key);  // std::less<>: no std::string temporary
  if (it != memtable_.end()) {
    if (!it->second) return make_not_found();
    return *it->second;
  }
  // Newest run wins. Each probe is fence check -> bloom check -> binary
  // search; most runs are skipped without touching their entries at all.
  for (auto rit = runs_.rbegin(); rit != runs_.rend(); ++rit) {
    const Run& run = *rit;
    if (run.entries.empty()) continue;
    if (key < run.min_key() || key > run.max_key()) continue;
    if (options_.bloom_bits_per_key > 0 && !run.bloom.MayContain(key)) {
      continue;
    }
    auto found = std::lower_bound(
        run.entries.begin(), run.entries.end(), key,
        [](const RunEntry& e, std::string_view k) { return e.key < k; });
    if (found != run.entries.end() && found->key == key) {
      if (!found->value) return make_not_found();
      return *found->value;
    }
  }
  return make_not_found();
}

Result<std::vector<std::pair<std::string, std::string>>> KvStore::Scan(
    std::string_view start, std::string_view end) const {
  ReaderLock lock(state_mu_);
  using MemIter = decltype(memtable_.cbegin());

  // One source per run plus the memtable, each seeked to `start` — a k-way
  // heap merge touches only entries inside the range, not every entry of
  // every run. `age` breaks key ties: 0 is the memtable (newest), higher is
  // older; the first pop of a key is its newest version.
  struct Cursor {
    const RunEntry* rpos = nullptr;
    const RunEntry* rend = nullptr;
    MemIter mpos{};
    MemIter mend{};
    bool is_mem = false;
    size_t age = 0;

    std::string_view key() const {
      return is_mem ? std::string_view(mpos->first)
                    : std::string_view(rpos->key);
    }
    const std::optional<std::string>& value() const {
      return is_mem ? mpos->second : rpos->value;
    }
    void Advance() {
      if (is_mem) {
        ++mpos;
      } else {
        ++rpos;
      }
    }
    bool Exhausted() const { return is_mem ? mpos == mend : rpos == rend; }
  };

  std::vector<Cursor> heap;
  heap.reserve(runs_.size() + 1);
  for (size_t i = 0; i < runs_.size(); ++i) {
    const Run& run = runs_[i];
    if (run.entries.empty()) continue;
    if (!end.empty() && run.min_key() >= end) continue;  // fence: after range
    if (!start.empty() && run.max_key() < start) continue;  // before range
    Cursor c;
    c.rpos = run.entries.data();
    c.rend = run.entries.data() + run.entries.size();
    if (!start.empty()) {
      c.rpos = std::lower_bound(
          c.rpos, c.rend, start,
          [](const RunEntry& e, std::string_view k) { return e.key < k; });
    }
    c.age = runs_.size() - i;  // newest run = 1
    if (c.rpos != c.rend) heap.push_back(c);
  }
  {
    Cursor c;
    c.is_mem = true;
    c.mpos = start.empty() ? memtable_.cbegin() : memtable_.lower_bound(start);
    c.mend = memtable_.cend();
    c.age = 0;
    if (c.mpos != c.mend) heap.push_back(c);
  }

  // Min-heap on (key, age): std::*_heap build a max-heap, so the comparator
  // orders "worse" (larger key, then older source) first.
  auto worse = [](const Cursor& a, const Cursor& b) {
    const int c = a.key().compare(b.key());
    if (c != 0) return c > 0;
    return a.age > b.age;
  };
  std::make_heap(heap.begin(), heap.end(), worse);

  std::vector<std::pair<std::string, std::string>> out;
  std::string last_key;
  bool has_last = false;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), worse);
    Cursor cur = heap.back();
    heap.pop_back();
    const std::string_view key = cur.key();
    // The heap front is the globally smallest remaining key: once it
    // crosses `end`, every source is past the range.
    if (!end.empty() && key >= end) break;
    if (!has_last || key != last_key) {
      // First (= newest) version of this key; older duplicates are skipped.
      if (cur.value()) out.emplace_back(std::string(key), *cur.value());
      last_key.assign(key.data(), key.size());
      has_last = true;
    }
    cur.Advance();
    if (!cur.Exhausted()) {
      heap.push_back(cur);
      std::push_heap(heap.begin(), heap.end(), worse);
    }
  }
  return out;
}

Result<std::vector<std::pair<std::string, std::string>>> KvStore::ScanPrefix(
    std::string_view prefix) const {
  if (prefix.empty()) return Scan();
  // Successor prefix: bump the last byte, carrying into preceding bytes
  // when it is 0xFF ("ab\xFF" -> "ac"). An all-0xFF prefix has no
  // successor — fall back to an open-ended scan; the StartsWith filter
  // below keeps the result exact either way.
  std::string end(prefix);
  while (!end.empty() &&
         static_cast<unsigned char>(end.back()) == 0xFF) {
    end.pop_back();
  }
  if (!end.empty()) {
    end.back() =
        static_cast<char>(static_cast<unsigned char>(end.back()) + 1);
  }
  LAKEKIT_ASSIGN_OR_RETURN(auto pairs, Scan(prefix, end));
  std::vector<std::pair<std::string, std::string>> out;
  for (auto& kv : pairs) {
    if (StartsWith(kv.first, prefix)) out.push_back(std::move(kv));
  }
  return out;
}

Status KvStore::WriteRunLocked(std::vector<RunEntry> entries) {
  const uint64_t id = next_run_id_++;
  const std::string path = RunPath(id);
  const std::string tmp = path + ".tmp";
  std::string data;
  for (const RunEntry& entry : entries) {
    EncodeRecord(entry.key, entry.value, &data);
  }
  // Stage durable, then publish atomically: a crash anywhere in this
  // sequence leaves either no run (plus an ignorable .tmp) or the complete
  // run — never a half-written run under a live name.
  Status status = [&] {
    LAKEKIT_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> out,
                             fs_->OpenTrunc(tmp));
    LAKEKIT_RETURN_IF_ERROR(out->Append(data));
    LAKEKIT_RETURN_IF_ERROR(out->Sync());
    LAKEKIT_RETURN_IF_ERROR(out->Close());
    LAKEKIT_RETURN_IF_ERROR(fs_->Rename(tmp, path));
    return fs_->SyncDir(dir_);
  }();
  if (!status.ok()) {
    // ignore: best-effort cleanup of the staging file; LoadRuns also sweeps
    // orphaned .tmp files on the next open.
    (void)fs_->Remove(tmp);
    return status;
  }
  runs_.push_back(MakeRun(id, std::move(entries)));
  return Status::OK();
}

Status KvStore::FlushLocked() {
  if (memtable_.empty()) return Status::OK();
  std::vector<RunEntry> entries;
  entries.reserve(memtable_.size());
  for (const auto& [key, value] : memtable_) {
    entries.push_back(RunEntry{key, value});
  }
  LAKEKIT_RETURN_IF_ERROR(WriteRunLocked(std::move(entries)));
  memtable_.clear();
  memtable_bytes_ = 0;
  // Truncate the WAL: its contents are now durable in the run. The run was
  // synced *first*, so a crash in here replays WAL records whose data the
  // run already holds — idempotent, never lossy. The WAL handle is
  // O_APPEND-like (Fs contract): the next append lands at the new end, not
  // at a stale offset that would leave a zero-filled hole.
  if (wal_) {
    LAKEKIT_RETURN_IF_ERROR(wal_->Truncate(0));
    wal_bytes_ = 0;
    if (options_.sync_writes) LAKEKIT_RETURN_IF_ERROR(wal_->Sync());
  }
  return Status::OK();
}

Status KvStore::Flush() {
  WriterLock lock(state_mu_);
  return FlushLocked();
}

std::vector<KvStore::RunEntry> KvStore::MergeRuns(
    const std::vector<Run>& runs) {
  // Newest-wins heap merge over the immutable runs, tombstones KEPT (see
  // CompactLocked for why). Same cursor discipline as Scan, minus the
  // memtable and range bounds.
  struct Cursor {
    const RunEntry* pos = nullptr;
    const RunEntry* end = nullptr;
    size_t age = 0;  // smaller = newer
  };
  std::vector<Cursor> heap;
  heap.reserve(runs.size());
  for (size_t i = 0; i < runs.size(); ++i) {
    if (runs[i].entries.empty()) continue;
    Cursor c;
    c.pos = runs[i].entries.data();
    c.end = c.pos + runs[i].entries.size();
    c.age = runs.size() - i;
    heap.push_back(c);
  }
  auto worse = [](const Cursor& a, const Cursor& b) {
    const int c = a.pos->key.compare(b.pos->key);
    if (c != 0) return c > 0;
    return a.age > b.age;
  };
  std::make_heap(heap.begin(), heap.end(), worse);
  std::vector<RunEntry> merged;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), worse);
    Cursor cur = heap.back();
    heap.pop_back();
    if (merged.empty() || merged.back().key != cur.pos->key) {
      merged.push_back(*cur.pos);
    }
    if (++cur.pos != cur.end) {
      heap.push_back(cur);
      std::push_heap(heap.begin(), heap.end(), worse);
    }
  }
  return merged;
}

Status KvStore::CompactLocked() {
  LAKEKIT_RETURN_IF_ERROR(FlushLocked());
  if (runs_.size() <= 1) return Status::OK();
  // Merge newest-wins. Shadowed values are dropped; tombstones are KEPT:
  // until the superseded runs' deletion is durable, a crash can resurrect
  // them, and only a tombstone in the merged run keeps their deleted keys
  // dead (see DESIGN.md).
  std::vector<RunEntry> merged = MergeRuns(runs_);
  const size_t old_count = runs_.size();
  std::vector<uint64_t> old_ids;
  old_ids.reserve(old_count);
  for (const Run& run : runs_) old_ids.push_back(run.id);
  if (!merged.empty()) {
    // Publish the merged run durably BEFORE deleting what it replaces; the
    // reverse order loses every key in the old runs if we crash between.
    LAKEKIT_RETURN_IF_ERROR(WriteRunLocked(std::move(merged)));
  }
  for (uint64_t id : old_ids) {
    // ignore: a failed unlink is safe — the merged run is newer and carries
    // tombstones, so a lingering old run stays fully shadowed.
    (void)fs_->Remove(RunPath(id));
  }
  LAKEKIT_RETURN_IF_ERROR(fs_->SyncDir(dir_));
  // WriteRunLocked appended the merged run; drop the superseded prefix.
  runs_.erase(runs_.begin(), runs_.begin() + static_cast<long>(old_count));
  return Status::OK();
}

Status KvStore::Compact() {
  WriterLock lock(state_mu_);
  return CompactLocked();
}

Status KvStore::MaybeFlushAndCompactLocked() {
  if (memtable_bytes_ >= options_.memtable_flush_bytes) {
    LAKEKIT_RETURN_IF_ERROR(FlushLocked());
  }
  if (runs_.size() >= options_.compaction_trigger_runs) {
    LAKEKIT_RETURN_IF_ERROR(CompactLocked());
  }
  return Status::OK();
}

size_t KvStore::num_runs() const {
  ReaderLock lock(state_mu_);
  return runs_.size();
}

size_t KvStore::memtable_entries() const {
  ReaderLock lock(state_mu_);
  return memtable_.size();
}

}  // namespace lakekit::storage
