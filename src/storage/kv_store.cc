#include "storage/kv_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace lakekit::storage {

namespace fs = std::filesystem;

namespace {

constexpr uint32_t kTombstoneMarker = 0xFFFFFFFFu;

void AppendU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

bool ReadU32(std::string_view data, size_t* pos, uint32_t* v) {
  if (*pos + 4 > data.size()) return false;
  std::memcpy(v, data.data() + *pos, 4);
  *pos += 4;
  return true;
}

/// Encodes one record: [klen][vlen|TOMBSTONE][key][value?].
std::string EncodeRecord(std::string_view key,
                         const std::optional<std::string>& value) {
  std::string out;
  AppendU32(static_cast<uint32_t>(key.size()), &out);
  AppendU32(value ? static_cast<uint32_t>(value->size()) : kTombstoneMarker,
            &out);
  out.append(key);
  if (value) out.append(*value);
  return out;
}

/// Decodes records until the buffer is exhausted; a trailing partial record
/// (torn write) is ignored, which is the WAL recovery contract.
std::map<std::string, std::optional<std::string>> DecodeRecords(
    std::string_view data) {
  std::map<std::string, std::optional<std::string>> out;
  size_t pos = 0;
  while (pos < data.size()) {
    uint32_t klen = 0;
    uint32_t vlen = 0;
    size_t record_start = pos;
    if (!ReadU32(data, &pos, &klen) || !ReadU32(data, &pos, &vlen)) break;
    const bool tombstone = (vlen == kTombstoneMarker);
    const size_t value_size = tombstone ? 0 : vlen;
    if (pos + klen + value_size > data.size()) {
      (void)record_start;
      break;  // torn tail
    }
    std::string key(data.substr(pos, klen));
    pos += klen;
    if (tombstone) {
      out[std::move(key)] = std::nullopt;
    } else {
      out[std::move(key)] = std::string(data.substr(pos, value_size));
      pos += value_size;
    }
  }
  return out;
}

}  // namespace

KvStore::KvStore(std::string dir, KvStoreOptions options)
    : dir_(std::move(dir)), options_(options) {}

KvStore::~KvStore() {
  if (wal_fd_ >= 0) ::close(wal_fd_);
}

Result<std::unique_ptr<KvStore>> KvStore::Open(const std::string& dir,
                                               KvStoreOptions options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create kv dir '" + dir + "': " +
                           ec.message());
  }
  std::unique_ptr<KvStore> store(new KvStore(dir, options));
  LAKEKIT_RETURN_IF_ERROR(store->LoadRuns());
  LAKEKIT_RETURN_IF_ERROR(store->RecoverWal());
  if (options.use_wal) {
    std::string wal_path = dir + "/wal.log";
    store->wal_fd_ =
        ::open(wal_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (store->wal_fd_ < 0) {
      return Status::IoError("cannot open WAL: " +
                             std::string(std::strerror(errno)));
    }
  }
  return store;
}

Status KvStore::LoadRuns() {
  std::vector<uint64_t> ids;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    std::string name = entry.path().filename().string();
    if (StartsWith(name, "run-") && EndsWith(name, ".dat")) {
      ids.push_back(std::stoull(name.substr(4, name.size() - 8)));
    }
  }
  std::sort(ids.begin(), ids.end());
  for (uint64_t id : ids) {
    std::ifstream in(dir_ + "/run-" + std::to_string(id) + ".dat",
                     std::ios::binary);
    if (!in) return Status::IoError("cannot read run " + std::to_string(id));
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string data = std::move(buf).str();
    runs_.push_back(id);
    run_data_.push_back(DecodeRecords(data));
    next_run_id_ = std::max(next_run_id_, id + 1);
  }
  return Status::OK();
}

Status KvStore::RecoverWal() {
  std::string wal_path = dir_ + "/wal.log";
  std::ifstream in(wal_path, std::ios::binary);
  if (!in) return Status::OK();  // no WAL, nothing to recover
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string data = std::move(buf).str();
  for (auto& [key, value] : DecodeRecords(data)) {
    memtable_bytes_ += key.size() + (value ? value->size() : 0);
    memtable_[key] = std::move(value);
  }
  return Status::OK();
}

Status KvStore::AppendWal(std::string_view key,
                          const std::optional<std::string>& value) {
  if (wal_fd_ < 0) return Status::OK();
  std::string record = EncodeRecord(key, value);
  size_t written = 0;
  while (written < record.size()) {
    ssize_t n = ::write(wal_fd_, record.data() + written,
                        record.size() - written);
    if (n < 0) {
      return Status::IoError("WAL write failed: " +
                             std::string(std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status KvStore::Put(std::string_view key, std::string_view value) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  LAKEKIT_RETURN_IF_ERROR(AppendWal(key, std::string(value)));
  memtable_bytes_ += key.size() + value.size();
  memtable_[std::string(key)] = std::string(value);
  return MaybeFlushAndCompact();
}

Status KvStore::Delete(std::string_view key) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  LAKEKIT_RETURN_IF_ERROR(AppendWal(key, std::nullopt));
  memtable_bytes_ += key.size();
  memtable_[std::string(key)] = std::nullopt;
  return MaybeFlushAndCompact();
}

Result<std::string> KvStore::Get(std::string_view key) const {
  auto make_not_found = [&] {
    return Status::NotFound("key '" + std::string(key) + "' not found");
  };
  auto it = memtable_.find(std::string(key));
  if (it != memtable_.end()) {
    if (!it->second) return make_not_found();
    return *it->second;
  }
  // Newest run wins.
  for (auto rit = run_data_.rbegin(); rit != run_data_.rend(); ++rit) {
    auto found = rit->find(std::string(key));
    if (found != rit->end()) {
      if (!found->second) return make_not_found();
      return *found->second;
    }
  }
  return make_not_found();
}

Result<std::vector<std::pair<std::string, std::string>>> KvStore::Scan(
    std::string_view start, std::string_view end) const {
  // Merge newest-wins: overlay runs oldest->newest, then memtable.
  std::map<std::string, std::optional<std::string>> merged;
  auto in_range = [&](const std::string& k) {
    if (!start.empty() && k < start) return false;
    if (!end.empty() && k >= end) return false;
    return true;
  };
  for (const auto& run : run_data_) {
    for (const auto& [k, v] : run) {
      if (in_range(k)) merged[k] = v;
    }
  }
  for (const auto& [k, v] : memtable_) {
    if (in_range(k)) merged[k] = v;
  }
  std::vector<std::pair<std::string, std::string>> out;
  for (auto& [k, v] : merged) {
    if (v) out.emplace_back(k, *v);
  }
  return out;
}

Result<std::vector<std::pair<std::string, std::string>>> KvStore::ScanPrefix(
    std::string_view prefix) const {
  if (prefix.empty()) return Scan();
  std::string end(prefix);
  // Successor prefix: bump the last byte (prefixes of 0xFF bytes fall back to
  // an open-ended scan plus filtering, which this simple bump handles for
  // ASCII keys used throughout lakekit).
  end.back() = static_cast<char>(static_cast<unsigned char>(end.back()) + 1);
  LAKEKIT_ASSIGN_OR_RETURN(auto pairs, Scan(prefix, end));
  std::vector<std::pair<std::string, std::string>> out;
  for (auto& kv : pairs) {
    if (StartsWith(kv.first, prefix)) out.push_back(std::move(kv));
  }
  return out;
}

Status KvStore::WriteRun(
    const std::map<std::string, std::optional<std::string>>& entries) {
  uint64_t id = next_run_id_++;
  std::string path = dir_ + "/run-" + std::to_string(id) + ".dat";
  std::string data;
  for (const auto& [k, v] : entries) {
    data += EncodeRecord(k, v);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot write run '" + path + "'");
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out) return Status::IoError("short write to run '" + path + "'");
  runs_.push_back(id);
  run_data_.push_back(entries);
  return Status::OK();
}

Status KvStore::Flush() {
  if (memtable_.empty()) return Status::OK();
  LAKEKIT_RETURN_IF_ERROR(WriteRun(memtable_));
  memtable_.clear();
  memtable_bytes_ = 0;
  // Truncate the WAL: its contents are now durable in the run.
  if (wal_fd_ >= 0) {
    if (::ftruncate(wal_fd_, 0) != 0) {
      return Status::IoError("WAL truncate failed");
    }
  }
  return Status::OK();
}

Status KvStore::Compact() {
  LAKEKIT_RETURN_IF_ERROR(Flush());
  if (runs_.size() <= 1) return Status::OK();
  // Merge newest-wins, dropping tombstones entirely (full compaction).
  std::map<std::string, std::optional<std::string>> merged;
  for (const auto& run : run_data_) {
    for (const auto& [k, v] : run) merged[k] = v;
  }
  for (auto it = merged.begin(); it != merged.end();) {
    if (!it->second) {
      it = merged.erase(it);
    } else {
      ++it;
    }
  }
  // Remove old run files, then write the merged run.
  for (uint64_t id : runs_) {
    std::error_code ec;
    fs::remove(dir_ + "/run-" + std::to_string(id) + ".dat", ec);
  }
  runs_.clear();
  run_data_.clear();
  if (merged.empty()) return Status::OK();
  return WriteRun(merged);
}

Status KvStore::MaybeFlushAndCompact() {
  if (memtable_bytes_ >= options_.memtable_flush_bytes) {
    LAKEKIT_RETURN_IF_ERROR(Flush());
  }
  if (runs_.size() >= options_.compaction_trigger_runs) {
    LAKEKIT_RETURN_IF_ERROR(Compact());
  }
  return Status::OK();
}

}  // namespace lakekit::storage
