#include "storage/kv_store.h"

#include <algorithm>
#include <cstring>

#include "common/crc32.h"
#include "common/string_util.h"

namespace lakekit::storage {

namespace {

constexpr uint32_t kTombstoneMarker = 0xFFFFFFFFu;

void AppendU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

uint32_t ReadU32At(std::string_view data, size_t pos) {
  uint32_t v = 0;
  std::memcpy(&v, data.data() + pos, 4);
  return v;
}

/// Encodes one record: [masked crc][klen][vlen|TOMBSTONE][key][value?].
/// The CRC covers everything after itself (lengths + key + value), so a
/// record torn at any byte — or bit-flipped anywhere — fails verification.
std::string EncodeRecord(std::string_view key,
                         const std::optional<std::string>& value) {
  std::string body;
  AppendU32(static_cast<uint32_t>(key.size()), &body);
  AppendU32(value ? static_cast<uint32_t>(value->size()) : kTombstoneMarker,
            &body);
  body.append(key);
  if (value) body.append(*value);
  std::string out;
  AppendU32(MaskCrc32c(Crc32c(body)), &out);
  out += body;
  return out;
}

struct DecodeResult {
  std::map<std::string, std::optional<std::string>> entries;
  /// Length of the valid record prefix; anything past it is a torn or
  /// corrupt tail the caller should truncate away.
  size_t valid_bytes = 0;
};

/// Decodes records until the buffer ends or a record fails its length or
/// CRC check. Stopping at the first bad record is the recovery contract:
/// records are appended strictly in order, so everything after a tear is
/// unacknowledged by construction.
DecodeResult DecodeRecords(std::string_view data) {
  DecodeResult result;
  size_t pos = 0;
  while (pos + 12 <= data.size()) {
    const uint32_t stored_crc = UnmaskCrc32c(ReadU32At(data, pos));
    const uint32_t klen = ReadU32At(data, pos + 4);
    const uint32_t vlen = ReadU32At(data, pos + 8);
    const bool tombstone = (vlen == kTombstoneMarker);
    const uint64_t value_size = tombstone ? 0 : vlen;
    const uint64_t body_size = 8 + static_cast<uint64_t>(klen) + value_size;
    if (pos + 4 + body_size > data.size()) break;  // torn tail
    std::string_view body = data.substr(pos + 4, body_size);
    if (Crc32c(body) != stored_crc) break;  // corrupt tail
    std::string key(body.substr(8, klen));
    if (tombstone) {
      result.entries[std::move(key)] = std::nullopt;
    } else {
      result.entries[std::move(key)] =
          std::string(body.substr(8 + klen, value_size));
    }
    pos += 4 + body_size;
    result.valid_bytes = pos;
  }
  return result;
}

/// Parses the id out of "run-<digits>.dat"; nullopt for anything else.
std::optional<uint64_t> ParseRunId(const std::string& name) {
  if (!StartsWith(name, "run-") || !EndsWith(name, ".dat")) return {};
  const std::string digits = name.substr(4, name.size() - 8);
  if (digits.empty()) return {};
  uint64_t id = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return {};
    id = id * 10 + static_cast<uint64_t>(c - '0');
  }
  return id;
}

}  // namespace

KvStore::KvStore(std::string dir, KvStoreOptions options, Fs* fs)
    : dir_(std::move(dir)), options_(options), fs_(fs) {}

KvStore::~KvStore() = default;

Result<std::unique_ptr<KvStore>> KvStore::Open(const std::string& dir,
                                               KvStoreOptions options,
                                               Fs* fs) {
  LAKEKIT_RETURN_IF_ERROR(fs->CreateDirs(dir));
  std::unique_ptr<KvStore> store(new KvStore(dir, options, fs));
  LAKEKIT_RETURN_IF_ERROR(store->LoadRuns());
  LAKEKIT_RETURN_IF_ERROR(store->RecoverWal());
  if (options.use_wal) {
    LAKEKIT_ASSIGN_OR_RETURN(store->wal_, fs->OpenAppend(store->WalPath()));
  }
  // Make the WAL's directory entry (and any recovery-time cleanup) durable
  // before acknowledging writes against it.
  LAKEKIT_RETURN_IF_ERROR(fs->SyncDir(dir));
  return store;
}

Status KvStore::LoadRuns() {
  LAKEKIT_ASSIGN_OR_RETURN(std::vector<FsDirEntry> entries,
                           fs_->ListDir(dir_, /*recursive=*/false));
  std::vector<uint64_t> ids;
  for (const FsDirEntry& entry : entries) {
    if (EndsWith(entry.name, ".tmp")) {
      // Staging file from a run write that never committed (crash between
      // stage and rename) — dead weight, clear it out.
      // ignore: best-effort cleanup; a surviving .tmp is never loaded.
      (void)fs_->Remove(dir_ + "/" + entry.name);
      continue;
    }
    if (std::optional<uint64_t> id = ParseRunId(entry.name)) {
      ids.push_back(*id);
    }
  }
  std::sort(ids.begin(), ids.end());
  for (uint64_t id : ids) {
    LAKEKIT_ASSIGN_OR_RETURN(std::string data, fs_->ReadFile(RunPath(id)));
    DecodeResult decoded = DecodeRecords(data);
    if (decoded.valid_bytes < data.size()) {
      // Corrupt or torn tail in an immutable run: keep the valid prefix,
      // chop the rest (tolerant-truncation recovery contract).
      LAKEKIT_RETURN_IF_ERROR(
          fs_->Truncate(RunPath(id), decoded.valid_bytes));
    }
    runs_.push_back(id);
    run_data_.push_back(std::move(decoded.entries));
    next_run_id_ = std::max(next_run_id_, id + 1);
  }
  return Status::OK();
}

Status KvStore::RecoverWal() {
  Result<std::string> data = fs_->ReadFile(WalPath());
  if (!data.ok()) {
    if (data.status().IsNotFound()) return Status::OK();  // nothing to do
    return data.status();
  }
  DecodeResult decoded = DecodeRecords(*data);
  if (decoded.valid_bytes < data->size()) {
    // Torn/corrupt tail from a crash mid-append: truncate to the last
    // complete record instead of failing the open or replaying garbage.
    LAKEKIT_RETURN_IF_ERROR(fs_->Truncate(WalPath(), decoded.valid_bytes));
  }
  wal_bytes_ = decoded.valid_bytes;
  for (auto& [key, value] : decoded.entries) {
    memtable_bytes_ += key.size() + (value ? value->size() : 0);
    memtable_[key] = std::move(value);
  }
  return Status::OK();
}

Status KvStore::AppendWal(std::string_view key,
                          const std::optional<std::string>& value) {
  if (!wal_) return Status::OK();
  if (wal_poisoned_) {
    return Status::IoError(
        "WAL unavailable after an unrecoverable append failure; reopen the "
        "store to recover");
  }
  std::string record = EncodeRecord(key, value);
  Status status = wal_->Append(record);
  if (status.ok() && options_.sync_writes) status = wal_->Sync();
  if (!status.ok()) {
    // Roll the WAL back to the last acknowledged record so a torn append
    // cannot strand records written after it (recovery stops at the first
    // bad record). If the rollback itself fails, refuse further writes.
    Status repair = wal_->Truncate(wal_bytes_);
    if (repair.ok() && options_.sync_writes) repair = wal_->Sync();
    if (!repair.ok()) wal_poisoned_ = true;
    return status;
  }
  wal_bytes_ += record.size();
  return Status::OK();
}

Status KvStore::Put(std::string_view key, std::string_view value) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  LAKEKIT_RETURN_IF_ERROR(AppendWal(key, std::string(value)));
  memtable_bytes_ += key.size() + value.size();
  memtable_[std::string(key)] = std::string(value);
  return MaybeFlushAndCompact();
}

Status KvStore::Delete(std::string_view key) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  LAKEKIT_RETURN_IF_ERROR(AppendWal(key, std::nullopt));
  memtable_bytes_ += key.size();
  memtable_[std::string(key)] = std::nullopt;
  return MaybeFlushAndCompact();
}

Result<std::string> KvStore::Get(std::string_view key) const {
  auto make_not_found = [&] {
    return Status::NotFound("key '" + std::string(key) + "' not found");
  };
  auto it = memtable_.find(std::string(key));
  if (it != memtable_.end()) {
    if (!it->second) return make_not_found();
    return *it->second;
  }
  // Newest run wins.
  for (auto rit = run_data_.rbegin(); rit != run_data_.rend(); ++rit) {
    auto found = rit->find(std::string(key));
    if (found != rit->end()) {
      if (!found->second) return make_not_found();
      return *found->second;
    }
  }
  return make_not_found();
}

Result<std::vector<std::pair<std::string, std::string>>> KvStore::Scan(
    std::string_view start, std::string_view end) const {
  // Merge newest-wins: overlay runs oldest->newest, then memtable.
  std::map<std::string, std::optional<std::string>> merged;
  auto in_range = [&](const std::string& k) {
    if (!start.empty() && k < start) return false;
    if (!end.empty() && k >= end) return false;
    return true;
  };
  for (const auto& run : run_data_) {
    for (const auto& [k, v] : run) {
      if (in_range(k)) merged[k] = v;
    }
  }
  for (const auto& [k, v] : memtable_) {
    if (in_range(k)) merged[k] = v;
  }
  std::vector<std::pair<std::string, std::string>> out;
  for (auto& [k, v] : merged) {
    if (v) out.emplace_back(k, *v);
  }
  return out;
}

Result<std::vector<std::pair<std::string, std::string>>> KvStore::ScanPrefix(
    std::string_view prefix) const {
  if (prefix.empty()) return Scan();
  std::string end(prefix);
  // Successor prefix: bump the last byte (prefixes of 0xFF bytes fall back to
  // an open-ended scan plus filtering, which this simple bump handles for
  // ASCII keys used throughout lakekit).
  end.back() = static_cast<char>(static_cast<unsigned char>(end.back()) + 1);
  LAKEKIT_ASSIGN_OR_RETURN(auto pairs, Scan(prefix, end));
  std::vector<std::pair<std::string, std::string>> out;
  for (auto& kv : pairs) {
    if (StartsWith(kv.first, prefix)) out.push_back(std::move(kv));
  }
  return out;
}

Status KvStore::WriteRun(
    const std::map<std::string, std::optional<std::string>>& entries) {
  const uint64_t id = next_run_id_++;
  const std::string path = RunPath(id);
  const std::string tmp = path + ".tmp";
  std::string data;
  for (const auto& [k, v] : entries) {
    data += EncodeRecord(k, v);
  }
  // Stage durable, then publish atomically: a crash anywhere in this
  // sequence leaves either no run (plus an ignorable .tmp) or the complete
  // run — never a half-written run under a live name.
  Status status = [&] {
    LAKEKIT_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> out,
                             fs_->OpenTrunc(tmp));
    LAKEKIT_RETURN_IF_ERROR(out->Append(data));
    LAKEKIT_RETURN_IF_ERROR(out->Sync());
    LAKEKIT_RETURN_IF_ERROR(out->Close());
    LAKEKIT_RETURN_IF_ERROR(fs_->Rename(tmp, path));
    return fs_->SyncDir(dir_);
  }();
  if (!status.ok()) {
    // ignore: best-effort cleanup of the staging file; LoadRuns also sweeps
    // orphaned .tmp files on the next open.
    (void)fs_->Remove(tmp);
    return status;
  }
  runs_.push_back(id);
  run_data_.push_back(entries);
  return Status::OK();
}

Status KvStore::Flush() {
  if (memtable_.empty()) return Status::OK();
  LAKEKIT_RETURN_IF_ERROR(WriteRun(memtable_));
  memtable_.clear();
  memtable_bytes_ = 0;
  // Truncate the WAL: its contents are now durable in the run. The run was
  // synced *first*, so a crash in here replays WAL records whose data the
  // run already holds — idempotent, never lossy. The WAL handle is
  // O_APPEND-like (Fs contract): the next append lands at the new end, not
  // at a stale offset that would leave a zero-filled hole.
  if (wal_) {
    LAKEKIT_RETURN_IF_ERROR(wal_->Truncate(0));
    wal_bytes_ = 0;
    if (options_.sync_writes) LAKEKIT_RETURN_IF_ERROR(wal_->Sync());
  }
  return Status::OK();
}

Status KvStore::Compact() {
  LAKEKIT_RETURN_IF_ERROR(Flush());
  if (runs_.size() <= 1) return Status::OK();
  // Merge newest-wins. Shadowed values are dropped; tombstones are KEPT:
  // until the superseded runs' deletion is durable, a crash can resurrect
  // them, and only a tombstone in the merged run keeps their deleted keys
  // dead (see DESIGN.md).
  std::map<std::string, std::optional<std::string>> merged;
  for (const auto& run : run_data_) {
    for (const auto& [k, v] : run) merged[k] = v;
  }
  const std::vector<uint64_t> old_ids = runs_;
  if (!merged.empty()) {
    // Publish the merged run durably BEFORE deleting what it replaces; the
    // reverse order loses every key in the old runs if we crash between.
    LAKEKIT_RETURN_IF_ERROR(WriteRun(merged));
  }
  for (uint64_t id : old_ids) {
    // ignore: a failed unlink is safe — the merged run is newer and carries
    // tombstones, so a lingering old run stays fully shadowed.
    (void)fs_->Remove(RunPath(id));
  }
  LAKEKIT_RETURN_IF_ERROR(fs_->SyncDir(dir_));
  if (merged.empty()) {
    runs_.clear();
    run_data_.clear();
  } else {
    // WriteRun appended the merged run; drop the superseded prefix.
    runs_.erase(runs_.begin(), runs_.begin() + old_ids.size());
    run_data_.erase(run_data_.begin(), run_data_.begin() + old_ids.size());
  }
  return Status::OK();
}

Status KvStore::MaybeFlushAndCompact() {
  if (memtable_bytes_ >= options_.memtable_flush_bytes) {
    LAKEKIT_RETURN_IF_ERROR(Flush());
  }
  if (runs_.size() >= options_.compaction_trigger_runs) {
    LAKEKIT_RETURN_IF_ERROR(Compact());
  }
  return Status::OK();
}

}  // namespace lakekit::storage
