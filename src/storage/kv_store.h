#ifndef LAKEKIT_STORAGE_KV_STORE_H_
#define LAKEKIT_STORAGE_KV_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/fs.h"

namespace lakekit::storage {

/// Tuning knobs for KvStore.
struct KvStoreOptions {
  /// Memtable size (in bytes of keys+values) that triggers a flush to a
  /// sorted run.
  size_t memtable_flush_bytes = 4 * 1024 * 1024;
  /// Number of sorted runs that triggers a full compaction.
  size_t compaction_trigger_runs = 8;
  /// When false, writes skip the write-ahead log (faster, not crash-safe).
  bool use_wal = true;
  /// When true (default), every WAL append is fsynced before the write is
  /// acknowledged — an OK from Put/Delete means the write survives a power
  /// cut. When false, writes are only as durable as the OS page cache
  /// (group-commit semantics a caller can emulate with explicit Flush).
  bool sync_writes = true;
};

/// An ordered, persistent key-value store: a miniature LSM tree.
///
/// Stand-in for the Bigtable/RocksDB storage used by catalog systems like
/// GOODS (survey Sec. 4.3, 6.1.1). Writes go to a WAL and an in-memory
/// memtable; the memtable flushes to immutable sorted run files; reads merge
/// the memtable and runs newest-first; deletes are tombstones; compaction
/// merges runs and drops shadowed entries.
///
/// Crash story (see DESIGN.md "Failure model & durability contract"):
/// every WAL and run record is CRC32C-framed, so recovery truncates a torn
/// or corrupt tail instead of ingesting garbage; run files are staged to a
/// temp name, fsynced, renamed, and the directory fsynced before the WAL is
/// truncated; compaction publishes the merged run durably (tombstones
/// retained) *before* deleting the superseded runs, so a crash at any point
/// can neither lose acknowledged writes nor resurrect deleted keys. All I/O
/// flows through `Fs`, so the crash harness replays these paths under
/// `FaultInjectingFs`.
class KvStore {
 public:
  /// Opens (recovering WAL if present) a store in directory `dir` over
  /// `fs` (default: the production PosixFs).
  static Result<std::unique_ptr<KvStore>> Open(const std::string& dir,
                                               KvStoreOptions options = {},
                                               Fs* fs = Fs::Default());

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);

  /// Point lookup; NotFound if absent or deleted.
  Result<std::string> Get(std::string_view key) const;

  /// All live (key, value) pairs with keys in [`start`, `end`), sorted by
  /// key. An empty `end` means "until the last key".
  Result<std::vector<std::pair<std::string, std::string>>> Scan(
      std::string_view start = "", std::string_view end = "") const;

  /// All live pairs whose key starts with `prefix`, sorted.
  Result<std::vector<std::pair<std::string, std::string>>> ScanPrefix(
      std::string_view prefix) const;

  /// Forces the memtable to a sorted run file (durable on OK return).
  Status Flush();

  /// Merges all runs into one, dropping shadowed values. Tombstones are
  /// retained in the merged run: they may still be needed to shadow a
  /// superseded run resurrected by a crash before its deletion became
  /// durable.
  Status Compact();

  size_t num_runs() const { return runs_.size(); }
  size_t memtable_entries() const { return memtable_.size(); }

  ~KvStore();

 private:
  KvStore(std::string dir, KvStoreOptions options, Fs* fs);

  Status RecoverWal();
  Status LoadRuns();
  Status AppendWal(std::string_view key,
                   const std::optional<std::string>& value);
  Status WriteRun(
      const std::map<std::string, std::optional<std::string>>& entries);
  Status MaybeFlushAndCompact();

  std::string WalPath() const { return dir_ + "/wal.log"; }
  std::string RunPath(uint64_t id) const {
    return dir_ + "/run-" + std::to_string(id) + ".dat";
  }

  std::string dir_;
  KvStoreOptions options_;
  Fs* fs_;
  /// nullopt value == tombstone.
  std::map<std::string, std::optional<std::string>> memtable_;
  size_t memtable_bytes_ = 0;
  /// Sorted run file ids, oldest first; contents cached in memory maps
  /// (runs are immutable).
  std::vector<uint64_t> runs_;
  std::vector<std::map<std::string, std::optional<std::string>>> run_data_;
  uint64_t next_run_id_ = 0;
  std::unique_ptr<WritableFile> wal_;
  /// Bytes of complete, acknowledged records in the WAL — the offset a
  /// failed append is rolled back to so a torn record can never strand the
  /// acknowledged records appended after it.
  uint64_t wal_bytes_ = 0;
  /// Set when a failed WAL append could not be rolled back; all further
  /// writes are refused rather than acknowledged on a log that would not
  /// replay them.
  bool wal_poisoned_ = false;
};

}  // namespace lakekit::storage

#endif  // LAKEKIT_STORAGE_KV_STORE_H_
