#ifndef LAKEKIT_STORAGE_KV_STORE_H_
#define LAKEKIT_STORAGE_KV_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace lakekit::storage {

/// Tuning knobs for KvStore.
struct KvStoreOptions {
  /// Memtable size (in bytes of keys+values) that triggers a flush to a
  /// sorted run.
  size_t memtable_flush_bytes = 4 * 1024 * 1024;
  /// Number of sorted runs that triggers a full compaction.
  size_t compaction_trigger_runs = 8;
  /// When false, writes skip the write-ahead log (faster, not crash-safe).
  bool use_wal = true;
};

/// An ordered, persistent key-value store: a miniature LSM tree.
///
/// Stand-in for the Bigtable/RocksDB storage used by catalog systems like
/// GOODS (survey Sec. 4.3, 6.1.1). Writes go to a WAL and an in-memory
/// memtable; the memtable flushes to immutable sorted run files; reads merge
/// the memtable and runs newest-first; deletes are tombstones; compaction
/// merges runs and drops shadowed entries.
class KvStore {
 public:
  /// Opens (recovering WAL if present) a store in directory `dir`.
  static Result<std::unique_ptr<KvStore>> Open(const std::string& dir,
                                               KvStoreOptions options = {});

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);

  /// Point lookup; NotFound if absent or deleted.
  Result<std::string> Get(std::string_view key) const;

  /// All live (key, value) pairs with keys in [`start`, `end`), sorted by
  /// key. An empty `end` means "until the last key".
  Result<std::vector<std::pair<std::string, std::string>>> Scan(
      std::string_view start = "", std::string_view end = "") const;

  /// All live pairs whose key starts with `prefix`, sorted.
  Result<std::vector<std::pair<std::string, std::string>>> ScanPrefix(
      std::string_view prefix) const;

  /// Forces the memtable to a sorted run file.
  Status Flush();

  /// Merges all runs into one, dropping tombstones and shadowed values.
  Status Compact();

  size_t num_runs() const { return runs_.size(); }
  size_t memtable_entries() const { return memtable_.size(); }

  ~KvStore();

 private:
  KvStore(std::string dir, KvStoreOptions options);

  Status RecoverWal();
  Status LoadRuns();
  Status AppendWal(std::string_view key,
                   const std::optional<std::string>& value);
  Status WriteRun(
      const std::map<std::string, std::optional<std::string>>& entries);
  Status MaybeFlushAndCompact();

  std::string dir_;
  KvStoreOptions options_;
  /// nullopt value == tombstone.
  std::map<std::string, std::optional<std::string>> memtable_;
  size_t memtable_bytes_ = 0;
  /// Sorted run file ids, oldest first; contents cached in memory maps
  /// (runs are immutable).
  std::vector<uint64_t> runs_;
  std::vector<std::map<std::string, std::optional<std::string>>> run_data_;
  uint64_t next_run_id_ = 0;
  int wal_fd_ = -1;
};

}  // namespace lakekit::storage

#endif  // LAKEKIT_STORAGE_KV_STORE_H_
