#ifndef LAKEKIT_STORAGE_KV_STORE_H_
#define LAKEKIT_STORAGE_KV_STORE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/bloom.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/rw_lock.h"
#include "common/thread_annotations.h"
#include "storage/fs.h"

namespace lakekit::storage {

/// Tuning knobs for KvStore.
struct KvStoreOptions {
  /// Memtable size (in bytes of keys+values) that triggers a flush to a
  /// sorted run.
  size_t memtable_flush_bytes = 4 * 1024 * 1024;
  /// Number of sorted runs that triggers a full compaction.
  size_t compaction_trigger_runs = 8;
  /// When false, writes skip the write-ahead log (faster, not crash-safe).
  bool use_wal = true;
  /// When true (default), a commit's WAL records are fsynced before the
  /// write is acknowledged — an OK from Put/Delete/Write means the write
  /// survives a power cut. Concurrent committers share one fsync via group
  /// commit (see below); the durability semantics are unchanged. When
  /// false, writes are only as durable as the OS page cache.
  bool sync_writes = true;
  /// Bloom bits per key for the per-run filters built at flush/load time.
  /// 0 disables bloom filters (fence pruning still applies).
  size_t bloom_bits_per_key = 10;
};

/// An ordered batch of Put/Delete ops committed atomically-per-record with
/// one WAL append + one fsync via `KvStore::Write` — the single-caller
/// flavor of group commit. Records land in the order they were added;
/// recovery after a crash mid-commit keeps a clean prefix of the batch
/// (each record is individually CRC-framed), never a torn record.
class WriteBatch {
 public:
  void Put(std::string_view key, std::string_view value) {
    ops_.emplace_back(std::string(key), std::string(value));
  }
  void Delete(std::string_view key) {
    ops_.emplace_back(std::string(key), std::nullopt);
  }
  void Clear() { ops_.clear(); }
  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

 private:
  friend class KvStore;
  /// nullopt value == tombstone.
  std::vector<std::pair<std::string, std::optional<std::string>>> ops_;
};

/// An ordered, persistent, thread-safe key-value store: a miniature LSM
/// tree.
///
/// Stand-in for the Bigtable/RocksDB storage used by catalog systems like
/// GOODS (survey Sec. 4.3, 6.1.1). Writes go to a WAL and an in-memory
/// memtable; the memtable flushes to immutable sorted run files; reads merge
/// the memtable and runs newest-first; deletes are tombstones; compaction
/// merges runs and drops shadowed entries.
///
/// Concurrency: all public methods are safe to call from any thread.
/// Writers commit through a leader/follower *group commit* queue: each
/// caller enqueues its encoded WAL records, the caller at the front of the
/// queue becomes leader, appends every queued record in one write, pays one
/// fsync for the whole batch, applies the batch to the memtable, and wakes
/// the followers. Under contention N committers share one fsync — the
/// classic way out of fsync-per-commit — while an OK still means "my record
/// is synced" (full durability, just amortized). Reads take a shared lock
/// and never block each other.
///
/// Read path: each immutable run is a flat sorted vector (binary search, no
/// per-node pointers) guarded by a min/max-key fence and a Bloom filter, so
/// a point Get probes only runs that may contain the key — and allocates
/// nothing on the probe path. Scans seek every source to the range start
/// and heap-merge newest-wins instead of materializing all entries.
///
/// Crash story (see DESIGN.md "Failure model & durability contract"):
/// every WAL and run record is CRC32C-framed, so recovery truncates a torn
/// or corrupt tail instead of ingesting garbage; run files are staged to a
/// temp name, fsynced, renamed, and the directory fsynced before the WAL is
/// truncated; compaction publishes the merged run durably (tombstones
/// retained) *before* deleting the superseded runs, so a crash at any point
/// can neither lose acknowledged writes nor resurrect deleted keys. A group
/// commit is a contiguous range of individually framed records, so a crash
/// mid-batch preserves a prefix of its records — never a torn record. All
/// I/O flows through `Fs`, so the crash harness replays these paths under
/// `FaultInjectingFs`.
class KvStore {
 public:
  /// Opens (recovering WAL if present) a store in directory `dir` over
  /// `fs` (default: the production PosixFs).
  static Result<std::unique_ptr<KvStore>> Open(const std::string& dir,
                                               KvStoreOptions options = {},
                                               Fs* fs = Fs::Default());

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);

  /// Commits every op in `batch` with one WAL append and one fsync. OK
  /// means all records are durable; on failure none were applied to the
  /// memtable (and a crash can only persist a prefix of the records).
  Status Write(const WriteBatch& batch);

  /// Point lookup; NotFound if absent or deleted.
  Result<std::string> Get(std::string_view key) const;

  /// All live (key, value) pairs with keys in [`start`, `end`), sorted by
  /// key. An empty `end` means "until the last key".
  Result<std::vector<std::pair<std::string, std::string>>> Scan(
      std::string_view start = "", std::string_view end = "") const;

  /// All live pairs whose key starts with `prefix`, sorted.
  Result<std::vector<std::pair<std::string, std::string>>> ScanPrefix(
      std::string_view prefix) const;

  /// Forces the memtable to a sorted run file (durable on OK return).
  Status Flush();

  /// Merges all runs into one, dropping shadowed values. Tombstones are
  /// retained in the merged run: they may still be needed to shadow a
  /// superseded run resurrected by a crash before its deletion became
  /// durable.
  Status Compact();

  size_t num_runs() const;
  size_t memtable_entries() const;

  ~KvStore();

 private:
  /// One (key, value-or-tombstone) entry of a flat sorted run.
  struct RunEntry {
    std::string key;
    /// nullopt == tombstone.
    std::optional<std::string> value;
  };

  /// An immutable sorted run: flat entries plus the pruning metadata a Get
  /// consults before binary-searching (min/max fence, bloom filter).
  struct Run {
    uint64_t id = 0;
    std::vector<RunEntry> entries;  // sorted by key, unique
    BloomFilter bloom;

    std::string_view min_key() const { return entries.front().key; }
    std::string_view max_key() const { return entries.back().key; }
  };

  /// One committer waiting in the group-commit queue. All fields except
  /// `records`/`ops` (written before enqueueing, read only by the leader)
  /// are protected by the owning store's commit_mu_ — a contract the
  /// analysis cannot express across objects, so it is enforced by review
  /// and TSan instead.
  struct Committer {
    /// Encoded WAL records for every op, concatenated in order.
    std::string records;
    /// The ops to apply to the memtable once the records are durable.
    const std::vector<std::pair<std::string, std::optional<std::string>>>*
        ops = nullptr;
    Status status;
    bool done = false;
    CondVar cv;
  };

  KvStore(std::string dir, KvStoreOptions options, Fs* fs);

  /// Open-time recovery; Open holds state_mu_ across both (no concurrency
  /// exists yet, but it keeps the lock contracts uniform and checkable).
  Status RecoverWal() LAKEKIT_REQUIRES(state_mu_);
  Status LoadRuns() LAKEKIT_REQUIRES(state_mu_);

  /// The group-commit engine: enqueue, become leader or wait, leader
  /// appends+syncs every queued committer's records and applies their ops.
  Status Commit(
      const std::vector<std::pair<std::string, std::optional<std::string>>>&
          ops);

  /// Appends `records` (one or more encoded records) to the WAL and, when
  /// `sync_writes`, fsyncs — rolling back to the last acknowledged offset
  /// on failure.
  Status AppendWalLocked(std::string_view records)
      LAKEKIT_REQUIRES(state_mu_);

  Status WriteRunLocked(std::vector<RunEntry> entries)
      LAKEKIT_REQUIRES(state_mu_);
  Status FlushLocked() LAKEKIT_REQUIRES(state_mu_);
  Status CompactLocked() LAKEKIT_REQUIRES(state_mu_);
  Status MaybeFlushAndCompactLocked() LAKEKIT_REQUIRES(state_mu_);

  /// Builds the bloom filter + fence metadata for `entries`.
  Run MakeRun(uint64_t id, std::vector<RunEntry> entries) const;

  /// Merges `runs` newest-wins into one sorted entry vector, keeping
  /// tombstones (compaction's contract).
  static std::vector<RunEntry> MergeRuns(const std::vector<Run>& runs);

  std::string WalPath() const { return dir_ + "/wal.log"; }
  std::string RunPath(uint64_t id) const {
    return dir_ + "/run-" + std::to_string(id) + ".dat";
  }

  std::string dir_;         // unguarded: immutable after construction
  KvStoreOptions options_;  // unguarded: immutable after construction
  Fs* fs_;                  // unguarded: immutable after construction

  /// Guards all store state below. Writers (the group-commit leader, Flush,
  /// Compact) take it exclusively; Get/Scan take it shared. Writer-priority
  /// (not std::shared_mutex): a continuous stream of overlapping readers
  /// must not starve commits.
  mutable WriterPriorityRwLock state_mu_;

  /// Guards the group-commit queue only. Never held while doing I/O or
  /// while acquiring state_mu_ — committers enqueue (and new batches form)
  /// while the current leader is inside its fsync.
  Mutex commit_mu_;
  std::deque<Committer*> commit_queue_ LAKEKIT_GUARDED_BY(commit_mu_);

  /// nullopt value == tombstone. std::less<> so probes with a string_view
  /// never allocate a std::string.
  std::map<std::string, std::optional<std::string>, std::less<>> memtable_
      LAKEKIT_GUARDED_BY(state_mu_);
  size_t memtable_bytes_ LAKEKIT_GUARDED_BY(state_mu_) = 0;
  /// Immutable sorted runs, oldest first.
  std::vector<Run> runs_ LAKEKIT_GUARDED_BY(state_mu_);
  uint64_t next_run_id_ LAKEKIT_GUARDED_BY(state_mu_) = 0;
  std::unique_ptr<WritableFile> wal_ LAKEKIT_GUARDED_BY(state_mu_)
      LAKEKIT_PT_GUARDED_BY(state_mu_);
  /// Bytes of complete, acknowledged records in the WAL — the offset a
  /// failed append is rolled back to so a torn record can never strand the
  /// acknowledged records appended after it.
  uint64_t wal_bytes_ LAKEKIT_GUARDED_BY(state_mu_) = 0;
  /// Set when a failed WAL append could not be rolled back; all further
  /// writes are refused rather than acknowledged on a log that would not
  /// replay them.
  bool wal_poisoned_ LAKEKIT_GUARDED_BY(state_mu_) = false;
};

}  // namespace lakekit::storage

#endif  // LAKEKIT_STORAGE_KV_STORE_H_
