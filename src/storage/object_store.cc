#include "storage/object_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace lakekit::storage {

namespace fs = std::filesystem;

Result<ObjectStore> ObjectStore::Open(const std::string& root) {
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) {
    return Status::IoError("cannot create object store root '" + root +
                           "': " + ec.message());
  }
  return ObjectStore(root);
}

Result<std::string> ObjectStore::ResolvePath(std::string_view key) const {
  if (key.empty()) return Status::InvalidArgument("empty object key");
  if (key.front() == '/') {
    return Status::InvalidArgument("object key must be relative: '" +
                                   std::string(key) + "'");
  }
  for (const std::string& part : Split(key, '/')) {
    if (part.empty() || part == "." || part == "..") {
      return Status::InvalidArgument("invalid object key segment in '" +
                                     std::string(key) + "'");
    }
  }
  return root_ + "/" + std::string(key);
}

Status ObjectStore::Put(std::string_view key, std::string_view data) {
  LAKEKIT_ASSIGN_OR_RETURN(std::string path, ResolvePath(key));
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) return Status::IoError("mkdir failed: " + ec.message());
  // Write to a temp file then rename for atomicity against readers.
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open '" + tmp + "' for write");
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out) return Status::IoError("short write to '" + tmp + "'");
  }
  fs::rename(tmp, path, ec);
  if (ec) return Status::IoError("rename failed: " + ec.message());
  return Status::OK();
}

Status ObjectStore::PutIfAbsent(std::string_view key, std::string_view data) {
  LAKEKIT_ASSIGN_OR_RETURN(std::string path, ResolvePath(key));
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) return Status::IoError("mkdir failed: " + ec.message());
  // O_EXCL gives the atomic create-if-absent the commit protocol needs.
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) {
    if (errno == EEXIST) {
      return Status::AlreadyExists("object '" + std::string(key) +
                                   "' already exists");
    }
    return Status::IoError("open failed for '" + path +
                           "': " + std::strerror(errno));
  }
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      ::close(fd);
      ::unlink(path.c_str());
      return Status::IoError("write failed: " + std::string(std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  ::close(fd);
  return Status::OK();
}

Result<std::string> ObjectStore::Get(std::string_view key) const {
  LAKEKIT_ASSIGN_OR_RETURN(std::string path, ResolvePath(key));
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("object '" + std::string(key) + "' not found");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

bool ObjectStore::Exists(std::string_view key) const {
  Result<std::string> path = ResolvePath(key);
  if (!path.ok()) return false;
  std::error_code ec;
  return fs::is_regular_file(*path, ec);
}

Status ObjectStore::Delete(std::string_view key) {
  LAKEKIT_ASSIGN_OR_RETURN(std::string path, ResolvePath(key));
  std::error_code ec;
  if (!fs::remove(path, ec)) {
    if (ec) return Status::IoError("remove failed: " + ec.message());
    return Status::NotFound("object '" + std::string(key) + "' not found");
  }
  return Status::OK();
}

Result<std::vector<ObjectInfo>> ObjectStore::List(
    std::string_view prefix) const {
  std::vector<ObjectInfo> out;
  std::error_code ec;
  fs::recursive_directory_iterator it(root_, ec);
  if (ec) return Status::IoError("list failed: " + ec.message());
  const size_t root_len = root_.size() + 1;  // strip "<root>/"
  for (const auto& entry :
       fs::recursive_directory_iterator(root_, fs::directory_options::skip_permission_denied)) {
    if (!entry.is_regular_file()) continue;
    std::string key = entry.path().string().substr(root_len);
    if (EndsWith(key, ".tmp")) continue;
    if (!prefix.empty() && !StartsWith(key, prefix)) continue;
    out.push_back(ObjectInfo{key, entry.file_size()});
  }
  std::sort(out.begin(), out.end(),
            [](const ObjectInfo& a, const ObjectInfo& b) { return a.key < b.key; });
  return out;
}

}  // namespace lakekit::storage
