#include "storage/object_store.h"

#include <atomic>

#include <algorithm>

#include "common/string_util.h"

namespace lakekit::storage {

namespace {

/// Process-unique suffix for staging files. Combined with the target path
/// this makes concurrent Puts to the same key collision-free, which the old
/// fixed `path + ".tmp"` scheme was not.
uint64_t NextStagingId() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Staging files end in ".tmp" so List can exclude in-flight writes (and
/// stale ones left by a crash between stage and publish).
std::string StagingName(const std::string& path) {
  return path + "." + std::to_string(NextStagingId()) + ".tmp";
}

std::string ParentDir(const std::string& path) {
  size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

}  // namespace

Result<ObjectStore> ObjectStore::Open(const std::string& root, Fs* fs) {
  LAKEKIT_RETURN_IF_ERROR(fs->CreateDirs(root));
  return ObjectStore(root, fs);
}

uint64_t ObjectStore::etag(std::string_view key) const {
  MutexLock lock(etags_->mu);
  auto it = etags_->keys.find(key);
  return it == etags_->keys.end() ? 0 : it->second;
}

void ObjectStore::BumpEtag(std::string_view key) {
  MutexLock lock(etags_->mu);
  auto it = etags_->keys.find(key);
  if (it == etags_->keys.end()) {
    etags_->keys.emplace(std::string(key), 1);
  } else {
    ++it->second;
  }
}

Result<std::string> ObjectStore::ResolvePath(std::string_view key) const {
  if (key.empty()) return Status::InvalidArgument("empty object key");
  if (key.front() == '/') {
    return Status::InvalidArgument("object key must be relative: '" +
                                   std::string(key) + "'");
  }
  for (const std::string& part : Split(key, '/')) {
    if (part.empty() || part == "." || part == "..") {
      return Status::InvalidArgument("invalid object key segment in '" +
                                     std::string(key) + "'");
    }
  }
  return root_ + "/" + std::string(key);
}

Result<std::string> ObjectStore::StageDurable(const std::string& path,
                                              std::string_view data) {
  LAKEKIT_RETURN_IF_ERROR(fs_->CreateDirs(ParentDir(path)));
  std::string tmp = StagingName(path);
  LAKEKIT_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> out,
                           fs_->OpenTrunc(tmp));
  Status write_status = out->Append(data);
  if (write_status.ok()) write_status = out->Sync();
  if (write_status.ok()) write_status = out->Close();
  if (!write_status.ok()) {
    // ignore: best-effort cleanup of the staging file; the write error is
    // what the caller needs to see.
    (void)fs_->Remove(tmp);
    return write_status;
  }
  return tmp;
}

Status ObjectStore::Put(std::string_view key, std::string_view data) {
  LAKEKIT_ASSIGN_OR_RETURN(std::string path, ResolvePath(key));
  LAKEKIT_ASSIGN_OR_RETURN(std::string tmp, StageDurable(path, data));
  Status rename_status = fs_->Rename(tmp, path);
  if (!rename_status.ok()) {
    // ignore: best-effort cleanup; the rename error is the real failure.
    (void)fs_->Remove(tmp);
    return rename_status;
  }
  // Make the new directory entry durable before acknowledging.
  LAKEKIT_RETURN_IF_ERROR(fs_->SyncDir(ParentDir(path)));
  BumpEtag(key);
  return Status::OK();
}

Status ObjectStore::PutIfAbsent(std::string_view key, std::string_view data) {
  LAKEKIT_ASSIGN_OR_RETURN(std::string path, ResolvePath(key));
  // Publishing via link(2) keeps the two properties the commit protocol
  // needs at once: exclusivity (link fails with EEXIST atomically) and
  // crash-atomicity of the content (the payload is complete and fsynced
  // before the name ever exists).
  LAKEKIT_ASSIGN_OR_RETURN(std::string tmp, StageDurable(path, data));
  Status link_status = fs_->HardLink(tmp, path);
  // ignore: the staging file is garbage after the link either way; losing
  // the unlink only leaks a ".tmp" file that List filters out.
  (void)fs_->Remove(tmp);
  if (!link_status.ok()) {
    if (link_status.IsAlreadyExists()) {
      return Status::AlreadyExists("object '" + std::string(key) +
                                   "' already exists");
    }
    return link_status;
  }
  LAKEKIT_RETURN_IF_ERROR(fs_->SyncDir(ParentDir(path)));
  BumpEtag(key);
  return Status::OK();
}

Result<std::string> ObjectStore::Get(std::string_view key) const {
  LAKEKIT_ASSIGN_OR_RETURN(std::string path, ResolvePath(key));
  Result<std::string> data = fs_->ReadFile(path);
  if (!data.ok() && data.status().IsNotFound()) {
    return Status::NotFound("object '" + std::string(key) + "' not found");
  }
  return data;
}

bool ObjectStore::Exists(std::string_view key) const {
  Result<std::string> path = ResolvePath(key);
  if (!path.ok()) return false;
  return fs_->FileExists(*path);
}

Status ObjectStore::Delete(std::string_view key) {
  LAKEKIT_ASSIGN_OR_RETURN(std::string path, ResolvePath(key));
  Status remove_status = fs_->Remove(path);
  if (!remove_status.ok()) {
    if (remove_status.IsNotFound()) {
      return Status::NotFound("object '" + std::string(key) + "' not found");
    }
    return remove_status;
  }
  LAKEKIT_RETURN_IF_ERROR(fs_->SyncDir(ParentDir(path)));
  BumpEtag(key);
  return Status::OK();
}

Result<std::vector<ObjectInfo>> ObjectStore::List(
    std::string_view prefix) const {
  LAKEKIT_ASSIGN_OR_RETURN(std::vector<FsDirEntry> entries,
                           fs_->ListDir(root_, /*recursive=*/true));
  std::vector<ObjectInfo> out;
  for (FsDirEntry& entry : entries) {
    if (EndsWith(entry.name, ".tmp")) continue;
    if (!prefix.empty() && !StartsWith(entry.name, prefix)) continue;
    out.push_back(ObjectInfo{std::move(entry.name), entry.size});
  }
  return out;  // ListDir returns entries sorted by name
}

}  // namespace lakekit::storage
