#ifndef LAKEKIT_STORAGE_OBJECT_STORE_H_
#define LAKEKIT_STORAGE_OBJECT_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "storage/fs.h"

namespace lakekit::storage {

/// Metadata of one stored object.
struct ObjectInfo {
  std::string key;
  uint64_t size = 0;
};

/// A local-filesystem object store with S3/HDFS-like semantics.
///
/// This is lakekit's stand-in for the cloud/HDFS storage tier every data
/// lake in the survey builds on (Sec. 4.1, 4.4): a flat namespace of
/// immutable-by-convention objects under string keys ("bucket/dir/file"),
/// with prefix listing and an atomic put-if-absent — the primitive the
/// lakehouse commit protocol (Sec. 8.3) requires from object storage.
///
/// All I/O flows through an `Fs` (default: the production PosixFs), so
/// tests can swap in `FaultInjectingFs` and replay crash schedules against
/// the exact code paths production runs. Durability contract: when `Put`,
/// `PutIfAbsent`, or `Delete` return OK, the change survives a power cut —
/// payloads are fsynced before the atomic rename/link publishes them, and
/// the parent directory is fsynced before acknowledging.
///
/// Keys use '/' separators; ".." segments and absolute keys are rejected so
/// a store can never escape its root directory.
class ObjectStore {
 public:
  /// Opens (creating if needed) a store rooted at `root` over `fs`.
  static Result<ObjectStore> Open(const std::string& root,
                                  Fs* fs = Fs::Default());

  /// Writes `data` under `key`, overwriting any existing object. Atomic
  /// against readers and concurrent Puts to the same key (each writer
  /// stages through a unique temp file).
  Status Put(std::string_view key, std::string_view data);

  /// Writes `data` under `key` only if no object exists there. Returns
  /// AlreadyExists otherwise. Atomic against concurrent PutIfAbsent calls in
  /// this process and across processes on POSIX, and crash-atomic: the
  /// winner's object is either fully present with its payload or absent,
  /// never half-written (the payload is staged durable, then published with
  /// an exclusive hard link).
  Status PutIfAbsent(std::string_view key, std::string_view data);

  /// Reads the full object, or NotFound.
  Result<std::string> Get(std::string_view key) const;

  bool Exists(std::string_view key) const;

  /// Removes an object; NotFound if absent. Durable on return.
  Status Delete(std::string_view key);

  /// All objects whose key starts with `prefix`, sorted by key. In-flight
  /// staging files (".tmp" suffix) are never listed.
  Result<std::vector<ObjectInfo>> List(std::string_view prefix = "") const;

  /// Change counter for `key`: bumped on every successful Put, PutIfAbsent,
  /// or Delete issued *through this store object* (copies made before a
  /// write share the counter state, so they observe the bump too). 0 for a
  /// key never written this process — etags are process-local cache-
  /// coherence state (DESIGN.md §9.2), not persisted metadata, so they only
  /// promise: if the content changed via this process, the etag differs.
  uint64_t etag(std::string_view key) const;

  const std::string& root() const { return root_; }

 private:
  /// Shared across copies/moves of the store so every handle to the same
  /// root observes the same write counters.
  struct Etags {
    mutable Mutex mu;
    std::map<std::string, uint64_t, std::less<>> keys LAKEKIT_GUARDED_BY(mu);
  };

  ObjectStore(std::string root, Fs* fs)
      : root_(std::move(root)), fs_(fs), etags_(std::make_shared<Etags>()) {}

  void BumpEtag(std::string_view key);

  Result<std::string> ResolvePath(std::string_view key) const;

  /// Stages `data` into a unique temp file next to `path`, fsynced. Returns
  /// the temp path.
  Result<std::string> StageDurable(const std::string& path,
                                   std::string_view data);

  std::string root_;
  Fs* fs_;
  std::shared_ptr<Etags> etags_;
};

}  // namespace lakekit::storage

#endif  // LAKEKIT_STORAGE_OBJECT_STORE_H_
