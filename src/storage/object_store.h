#ifndef LAKEKIT_STORAGE_OBJECT_STORE_H_
#define LAKEKIT_STORAGE_OBJECT_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace lakekit::storage {

/// Metadata of one stored object.
struct ObjectInfo {
  std::string key;
  uint64_t size = 0;
};

/// A local-filesystem object store with S3/HDFS-like semantics.
///
/// This is lakekit's stand-in for the cloud/HDFS storage tier every data
/// lake in the survey builds on (Sec. 4.1, 4.4): a flat namespace of
/// immutable-by-convention objects under string keys ("bucket/dir/file"),
/// with prefix listing and an atomic put-if-absent — the primitive the
/// lakehouse commit protocol (Sec. 8.3) requires from object storage.
///
/// Keys use '/' separators; ".." segments and absolute keys are rejected so
/// a store can never escape its root directory.
class ObjectStore {
 public:
  /// Opens (creating if needed) a store rooted at `root`.
  static Result<ObjectStore> Open(const std::string& root);

  /// Writes `data` under `key`, overwriting any existing object.
  Status Put(std::string_view key, std::string_view data);

  /// Writes `data` under `key` only if no object exists there. Returns
  /// AlreadyExists otherwise. Atomic against concurrent PutIfAbsent calls in
  /// this process and across processes on POSIX (O_EXCL).
  Status PutIfAbsent(std::string_view key, std::string_view data);

  /// Reads the full object, or NotFound.
  Result<std::string> Get(std::string_view key) const;

  bool Exists(std::string_view key) const;

  /// Removes an object; NotFound if absent.
  Status Delete(std::string_view key);

  /// All objects whose key starts with `prefix`, sorted by key.
  Result<std::vector<ObjectInfo>> List(std::string_view prefix = "") const;

  const std::string& root() const { return root_; }

 private:
  explicit ObjectStore(std::string root) : root_(std::move(root)) {}

  Result<std::string> ResolvePath(std::string_view key) const;

  std::string root_;
};

}  // namespace lakekit::storage

#endif  // LAKEKIT_STORAGE_OBJECT_STORE_H_
