#include "storage/polystore.h"

#include "common/hash.h"
#include "json/parser.h"
#include "json/writer.h"

namespace lakekit::storage {

std::string_view StoreKindName(StoreKind kind) {
  switch (kind) {
    case StoreKind::kRelational:
      return "relational";
    case StoreKind::kDocument:
      return "document";
    case StoreKind::kGraph:
      return "graph";
    case StoreKind::kObject:
      return "object";
  }
  return "unknown";
}

std::string_view DataFormatName(DataFormat format) {
  switch (format) {
    case DataFormat::kCsv:
      return "csv";
    case DataFormat::kJson:
      return "json";
    case DataFormat::kGraph:
      return "graph";
    case DataFormat::kLog:
      return "log";
    case DataFormat::kBinary:
      return "binary";
    case DataFormat::kUnknown:
      return "unknown";
  }
  return "unknown";
}

Status RelationalStore::CreateTable(table::Table t) {
  auto [it, inserted] = tables_.try_emplace(t.name(), std::move(t));
  if (!inserted) {
    return Status::AlreadyExists("table '" + it->first + "' already exists");
  }
  return Status::OK();
}

Status RelationalStore::DropTable(std::string_view name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table '" + std::string(name) + "'");
  }
  tables_.erase(it);
  return Status::OK();
}

Result<const table::Table*> RelationalStore::GetTable(
    std::string_view name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table '" + std::string(name) + "'");
  }
  return &it->second;
}

Status RelationalStore::ReplaceTable(table::Table t) {
  tables_.insert_or_assign(t.name(), std::move(t));
  return Status::OK();
}

std::vector<std::string> RelationalStore::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, t] : tables_) out.push_back(name);
  return out;
}

Polystore::Polystore(ObjectStore objects, PolystoreOptions options)
    : relational_(std::make_unique<RelationalStore>()),
      documents_(std::make_unique<DocumentStore>()),
      graph_(std::make_unique<GraphStore>()),
      objects_(std::make_unique<ObjectStore>(std::move(objects))),
      retry_(std::make_unique<RetryPolicy>(options.retry)),
      generations_(std::make_unique<GenerationState>()) {}

Result<Polystore> Polystore::Open(const std::string& object_root,
                                  PolystoreOptions options, Fs* fs) {
  LAKEKIT_ASSIGN_OR_RETURN(ObjectStore objects,
                           ObjectStore::Open(object_root, fs));
  return Polystore(std::move(objects), std::move(options));
}

StoreKind Polystore::RouteFormat(DataFormat format) {
  switch (format) {
    case DataFormat::kCsv:
      return StoreKind::kRelational;
    case DataFormat::kJson:
      return StoreKind::kDocument;
    case DataFormat::kGraph:
      return StoreKind::kGraph;
    case DataFormat::kLog:
    case DataFormat::kBinary:
    case DataFormat::kUnknown:
      return StoreKind::kObject;
  }
  return StoreKind::kObject;
}

Status Polystore::RegisterDataset(std::string_view name,
                                  DatasetLocation location) {
  auto [it, inserted] =
      registry_.try_emplace(std::string(name), std::move(location));
  if (!inserted) {
    return Status::AlreadyExists("dataset '" + std::string(name) +
                                 "' already registered");
  }
  return Status::OK();
}

Result<DatasetLocation> Polystore::Lookup(std::string_view name) const {
  auto it = registry_.find(name);
  if (it == registry_.end()) {
    return Status::NotFound("dataset '" + std::string(name) +
                            "' not registered");
  }
  return it->second;
}

std::vector<std::string> Polystore::DatasetNames() const {
  std::vector<std::string> out;
  out.reserve(registry_.size());
  for (const auto& [name, loc] : registry_) out.push_back(name);
  return out;
}

uint64_t Polystore::generation(std::string_view name) const {
  uint64_t base = 0;
  {
    MutexLock lock(generations_->mu);
    auto it = generations_->datasets.find(name);
    if (it != generations_->datasets.end()) base = it->second;
  }
  // Object-backed datasets fold in the object tier's own etag, so writes
  // issued directly against objects() (bypassing the polystore) still
  // retire cached scans. HashCombine keeps the two counters from aliasing
  // (base+1 with etag e vs base with etag e+1 must differ).
  auto it = registry_.find(name);
  if (it != registry_.end() && it->second.store == StoreKind::kObject) {
    return HashCombine(base, objects_->etag(it->second.locator));
  }
  return base;
}

void Polystore::BumpGeneration(std::string_view name) {
  MutexLock lock(generations_->mu);
  auto it = generations_->datasets.find(name);
  if (it == generations_->datasets.end()) {
    generations_->datasets.emplace(std::string(name), 1);
  } else {
    ++it->second;
  }
}

Status Polystore::StoreTable(std::string_view name, table::Table t) {
  std::string locator = t.name();
  LAKEKIT_RETURN_IF_ERROR(relational_->CreateTable(std::move(t)));
  LAKEKIT_RETURN_IF_ERROR(
      RegisterDataset(name, {StoreKind::kRelational, locator}));
  BumpGeneration(name);
  return Status::OK();
}

Status Polystore::StoreDocuments(std::string_view name,
                                 std::vector<json::Value> docs) {
  std::string collection(name);
  for (json::Value& doc : docs) {
    LAKEKIT_RETURN_IF_ERROR(documents_->Insert(collection, std::move(doc)).status());
  }
  LAKEKIT_RETURN_IF_ERROR(
      RegisterDataset(name, {StoreKind::kDocument, collection}));
  BumpGeneration(name);
  return Status::OK();
}

Status Polystore::StoreObject(std::string_view name, std::string_view key,
                              std::string_view data) {
  LAKEKIT_RETURN_IF_ERROR(
      retry_->Run([&] { return objects_->Put(key, data); }));
  return RegisterDataset(name, {StoreKind::kObject, std::string(key)});
}

Status Polystore::SaveGraph(std::string_view key) {
  std::string snapshot = json::Write(graph_->ExportJson());
  return retry_->Run([&] { return objects_->Put(key, snapshot); });
}

Status Polystore::LoadGraph(std::string_view key) {
  LAKEKIT_ASSIGN_OR_RETURN(
      std::string data,
      retry_->RunResult([&] { return objects_->Get(key); }));
  LAKEKIT_ASSIGN_OR_RETURN(json::Value value, json::Parse(data));
  LAKEKIT_ASSIGN_OR_RETURN(GraphStore graph, GraphStore::ImportJson(value));
  *graph_ = std::move(graph);
  return Status::OK();
}

Result<table::Table> Polystore::ReadAsTable(std::string_view name) const {
  LAKEKIT_ASSIGN_OR_RETURN(DatasetLocation loc, Lookup(name));
  switch (loc.store) {
    case StoreKind::kRelational: {
      LAKEKIT_ASSIGN_OR_RETURN(const table::Table* t,
                               relational_->GetTable(loc.locator));
      return *t;
    }
    case StoreKind::kDocument: {
      json::Array docs;
      for (json::Value& d : documents_->All(loc.locator)) {
        d.as_object().Erase("_id");
        docs.push_back(std::move(d));
      }
      return table::Table::FromJson(std::string(name),
                                    json::Value(std::move(docs)));
    }
    case StoreKind::kObject: {
      LAKEKIT_ASSIGN_OR_RETURN(
          std::string data,
          retry_->RunResult([&] { return objects_->Get(loc.locator); }));
      return table::Table::FromCsv(std::string(name), data);
    }
    case StoreKind::kGraph:
      return Status::NotSupported(
          "graph dataset '" + std::string(name) +
          "' has no tabular representation");
  }
  return Status::Internal("unreachable");
}

}  // namespace lakekit::storage
