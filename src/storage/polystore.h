#ifndef LAKEKIT_STORAGE_POLYSTORE_H_
#define LAKEKIT_STORAGE_POLYSTORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/thread_annotations.h"
#include "json/value.h"
#include "storage/document_store.h"
#include "storage/fs.h"
#include "storage/graph_store.h"
#include "storage/object_store.h"
#include "table/table.h"

namespace lakekit::storage {

/// Which backend of the polystore holds a dataset.
enum class StoreKind { kRelational, kDocument, kGraph, kObject };

std::string_view StoreKindName(StoreKind kind);

/// The source format of an ingested dataset, used for routing.
enum class DataFormat { kCsv, kJson, kGraph, kLog, kBinary, kUnknown };

std::string_view DataFormatName(DataFormat format);

/// Tuning knobs for Polystore.
struct PolystoreOptions {
  /// Retry schedule for object-tier round trips (the store modeled as
  /// remote, hence the one with transient failures worth retrying).
  RetryOptions retry;
};

/// Where a dataset lives inside the polystore.
struct DatasetLocation {
  StoreKind store = StoreKind::kObject;
  /// Backend-specific locator: table name, collection name, or object key.
  std::string locator;
};

/// An in-memory relational store: named tables.
///
/// Stand-in for the MySQL/PostgreSQL member of polystore lakes (Sec. 4.3).
class RelationalStore {
 public:
  Status CreateTable(table::Table t);
  Status DropTable(std::string_view name);
  Result<const table::Table*> GetTable(std::string_view name) const;
  Status ReplaceTable(table::Table t);
  std::vector<std::string> TableNames() const;
  size_t num_tables() const { return tables_.size(); }

 private:
  std::map<std::string, table::Table, std::less<>> tables_;
};

/// Integrated access to heterogeneous stores — the polystore pattern of
/// Constance, GOODS and CoreDB (survey Sec. 4.3).
///
/// Datasets are registered under a lake-wide name with a routed location;
/// `RouteFormat` encodes the survey's default routing: relational data to
/// the relational store, documents to the document store, graphs to the
/// graph store, and everything else (logs, binaries) to raw object storage.
class Polystore {
 public:
  /// Creates a polystore whose object tier lives under `object_root` on
  /// `fs` (default: the production PosixFs). Object-tier operations issued
  /// through the polystore retry transient I/O errors per `options.retry`.
  static Result<Polystore> Open(const std::string& object_root,
                                PolystoreOptions options = {},
                                Fs* fs = Fs::Default());

  Polystore(Polystore&&) = default;
  Polystore& operator=(Polystore&&) = default;

  /// The survey's default format -> store routing.
  static StoreKind RouteFormat(DataFormat format);

  /// Registers dataset `name` as living at `location`. Fails on duplicates.
  Status RegisterDataset(std::string_view name, DatasetLocation location);

  Result<DatasetLocation> Lookup(std::string_view name) const;

  std::vector<std::string> DatasetNames() const;

  /// Convenience ingestion: stores the payload in the routed backend and
  /// registers the dataset.
  Status StoreTable(std::string_view name, table::Table t);
  Status StoreDocuments(std::string_view name, std::vector<json::Value> docs);
  Status StoreObject(std::string_view name, std::string_view key,
                     std::string_view data);

  /// Reads a registered dataset back as a table regardless of backend
  /// (documents are flattened; objects are parsed as CSV). Graph datasets
  /// are not convertible and return NotSupported. Object-tier reads retry
  /// transient I/O errors.
  Result<table::Table> ReadAsTable(std::string_view name) const;

  /// Persists the graph store as a JSON object under `key` in the object
  /// tier (with retry), so the otherwise in-memory graph tier survives
  /// process restarts alongside the KV and object tiers.
  Status SaveGraph(std::string_view key);

  /// Replaces the graph store with the snapshot previously saved under
  /// `key`. The current graph is untouched on any failure.
  Status LoadGraph(std::string_view key);

  /// Change counter for dataset `name`, the cache-coherence key of the scan
  /// cache (DESIGN.md §9.2): writes through the polystore's ingestion paths
  /// bump it, and object-backed datasets additionally fold in the object
  /// tier's per-key etag, so a `Put` issued directly against `objects()`
  /// also changes the generation. Callers that mutate a backend directly
  /// (e.g. `relational().ReplaceTable`) must call `BumpGeneration`.
  /// Process-local: generations are not persisted and restart from zero.
  uint64_t generation(std::string_view name) const;

  /// Explicitly advances `name`'s generation, retiring any cached scans of
  /// it. Safe on unregistered names (the registration itself then starts at
  /// a bumped generation).
  void BumpGeneration(std::string_view name);

  /// The policy object-tier round trips run under; tests inject a no-op
  /// sleeper here.
  RetryPolicy& retry() { return *retry_; }

  RelationalStore& relational() { return *relational_; }
  const RelationalStore& relational() const { return *relational_; }
  DocumentStore& documents() { return *documents_; }
  const DocumentStore& documents() const { return *documents_; }
  GraphStore& graph() { return *graph_; }
  const GraphStore& graph() const { return *graph_; }
  ObjectStore& objects() { return *objects_; }
  const ObjectStore& objects() const { return *objects_; }

 private:
  /// Heap-allocated (like the stores) so Polystore stays movable while the
  /// mutex is not.
  struct GenerationState {
    mutable Mutex mu;
    std::map<std::string, uint64_t, std::less<>> datasets
        LAKEKIT_GUARDED_BY(mu);
  };

  Polystore(ObjectStore objects, PolystoreOptions options);

  std::unique_ptr<RelationalStore> relational_;
  std::unique_ptr<DocumentStore> documents_;
  std::unique_ptr<GraphStore> graph_;
  std::unique_ptr<ObjectStore> objects_;
  std::unique_ptr<RetryPolicy> retry_;
  std::unique_ptr<GenerationState> generations_;
  std::map<std::string, DatasetLocation, std::less<>> registry_;
};

}  // namespace lakekit::storage

#endif  // LAKEKIT_STORAGE_POLYSTORE_H_
