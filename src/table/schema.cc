#include "table/schema.h"

namespace lakekit::table {

std::optional<size_t> Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return std::nullopt;
}

std::vector<std::string> Schema::FieldNames() const {
  std::vector<std::string> names;
  names.reserve(fields_.size());
  for (const Field& f : fields_) names.push_back(f.name);
  return names;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ",";
    out += fields_[i].name;
    out += ":";
    out += DataTypeName(fields_[i].type);
  }
  return out;
}

}  // namespace lakekit::table
