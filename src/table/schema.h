#ifndef LAKEKIT_TABLE_SCHEMA_H_
#define LAKEKIT_TABLE_SCHEMA_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "table/value.h"

namespace lakekit::table {

/// One attribute of a relational schema.
struct Field {
  std::string name;
  DataType type = DataType::kString;
  bool nullable = true;

  bool operator==(const Field&) const = default;
};

/// An ordered list of named, typed fields.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named `name`, or nullopt.
  std::optional<size_t> IndexOf(std::string_view name) const;

  bool HasField(std::string_view name) const {
    return IndexOf(name).has_value();
  }

  void AddField(Field f) { fields_.push_back(std::move(f)); }

  /// All field names, in order.
  std::vector<std::string> FieldNames() const;

  /// "name:type,name:type,..." — compact signature used by catalogs and
  /// schema-evolution diffing.
  std::string ToString() const;

  bool operator==(const Schema&) const = default;

 private:
  std::vector<Field> fields_;
};

}  // namespace lakekit::table

#endif  // LAKEKIT_TABLE_SCHEMA_H_
