#include "table/table.h"

#include <cassert>
#include <charconv>

#include "common/string_util.h"
#include "json/writer.h"

namespace lakekit::table {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      columns_(schema_.num_fields()) {}

Status Table::AppendRow(std::vector<Value> row) {
  if (row.size() != schema_.num_fields()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, schema has " +
        std::to_string(schema_.num_fields()) + " fields");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    columns_[i].push_back(std::move(row[i]));
  }
  ++num_rows_;
  return Status::OK();
}

void Table::Reserve(size_t rows) {
  for (auto& column : columns_) column.reserve(rows);
}

Status Table::AppendRowsFrom(const Table& src, const uint32_t* rows,
                             size_t n) {
  if (src.schema_ != schema_) {
    return Status::InvalidArgument("AppendRowsFrom: schema mismatch");
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    const std::vector<Value>& from = src.columns_[c];
    std::vector<Value>& to = columns_[c];
    for (size_t k = 0; k < n; ++k) to.push_back(from[rows[k]]);
  }
  num_rows_ += n;
  return Status::OK();
}

Result<Table> Table::FromColumns(std::string name, Schema schema,
                                 std::vector<std::vector<Value>> columns,
                                 size_t num_rows) {
  if (columns.size() != schema.num_fields()) {
    return Status::InvalidArgument(
        "FromColumns: " + std::to_string(columns.size()) +
        " columns for a schema of " + std::to_string(schema.num_fields()) +
        " fields");
  }
  for (const auto& column : columns) {
    if (column.size() != num_rows) {
      return Status::InvalidArgument(
          "FromColumns: column has " + std::to_string(column.size()) +
          " rows, expected " + std::to_string(num_rows));
    }
  }
  Table t(std::move(name), std::move(schema));
  t.columns_ = std::move(columns);
  t.num_rows_ = num_rows;
  return t;
}

Result<size_t> Table::ColumnIndex(std::string_view name) const {
  if (auto idx = schema_.IndexOf(name)) return *idx;
  return Status::NotFound("no column '" + std::string(name) + "' in table '" +
                          name_ + "'");
}

std::vector<Value> Table::Row(size_t row) const {
  std::vector<Value> out;
  out.reserve(num_columns());
  for (size_t c = 0; c < num_columns(); ++c) out.push_back(columns_[c][row]);
  return out;
}

std::string Table::ToCsv() const {
  csv::CsvData data;
  data.header = schema_.FieldNames();
  data.records.reserve(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) {
    std::vector<std::string> record;
    record.reserve(num_columns());
    for (size_t c = 0; c < num_columns(); ++c) {
      record.push_back(columns_[c][r].ToString());
    }
    data.records.push_back(std::move(record));
  }
  return csv::Write(data);
}

DataType SniffType(const std::vector<std::string>& values) {
  bool all_int = true;
  bool all_num = true;
  bool all_bool = true;
  bool any_non_empty = false;
  for (const std::string& raw : values) {
    std::string_view v = Trim(raw);
    if (v.empty()) continue;
    any_non_empty = true;
    if (all_int && !LooksLikeInteger(v)) all_int = false;
    if (all_num && !LooksLikeNumber(v)) all_num = false;
    if (all_bool && v != "true" && v != "false") all_bool = false;
    if (!all_int && !all_num && !all_bool) break;
  }
  if (!any_non_empty) return DataType::kString;
  if (all_bool) return DataType::kBool;
  if (all_int) return DataType::kInt64;
  if (all_num) return DataType::kDouble;
  return DataType::kString;
}

Value ParseValueAs(std::string_view raw, DataType type) {
  std::string_view v = Trim(raw);
  if (v.empty()) return Value::Null();
  switch (type) {
    case DataType::kBool:
      if (v == "true") return Value(true);
      if (v == "false") return Value(false);
      return Value::Null();
    case DataType::kInt64: {
      int64_t i = 0;
      auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), i);
      if (ec == std::errc() && ptr == v.data() + v.size()) return Value(i);
      return Value::Null();
    }
    case DataType::kDouble: {
      double d = 0;
      auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), d);
      if (ec == std::errc() && ptr == v.data() + v.size()) return Value(d);
      return Value::Null();
    }
    case DataType::kString:
      return Value(std::string(raw));
    case DataType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

Result<Table> Table::FromCsv(std::string name, std::string_view csv_text) {
  LAKEKIT_ASSIGN_OR_RETURN(csv::CsvData data, csv::Parse(csv_text));
  // Sniff per-column types.
  std::vector<DataType> types(data.header.size(), DataType::kString);
  {
    std::vector<std::string> column;
    column.reserve(data.records.size());
    for (size_t c = 0; c < data.header.size(); ++c) {
      column.clear();
      for (const auto& rec : data.records) column.push_back(rec[c]);
      types[c] = SniffType(column);
    }
  }
  Schema schema;
  for (size_t c = 0; c < data.header.size(); ++c) {
    schema.AddField(Field{data.header[c], types[c], /*nullable=*/true});
  }
  Table t(std::move(name), std::move(schema));
  for (const auto& rec : data.records) {
    std::vector<Value> row;
    row.reserve(rec.size());
    for (size_t c = 0; c < rec.size(); ++c) {
      row.push_back(ParseValueAs(rec[c], types[c]));
    }
    LAKEKIT_RETURN_IF_ERROR(t.AppendRow(std::move(row)));
  }
  return t;
}

namespace {

Value JsonToCell(const json::Value& v) {
  switch (v.type()) {
    case json::Type::kNull:
      return Value::Null();
    case json::Type::kBool:
      return Value(v.as_bool());
    case json::Type::kInt:
      return Value(v.as_int());
    case json::Type::kDouble:
      return Value(v.as_double());
    case json::Type::kString:
      return Value(v.as_string());
    case json::Type::kArray:
    case json::Type::kObject:
      // Schema-on-read flattening: nested structures become JSON strings.
      return Value(json::Write(v));
  }
  return Value::Null();
}

}  // namespace

Result<Table> Table::FromJson(std::string name, const json::Value& doc) {
  if (!doc.is_array()) {
    return Status::InvalidArgument("Table::FromJson expects a JSON array");
  }
  // Pass 1: union of keys in first-seen order.
  std::vector<std::string> keys;
  for (const json::Value& row : doc.as_array()) {
    if (!row.is_object()) {
      return Status::InvalidArgument(
          "Table::FromJson expects an array of objects");
    }
    for (const auto& [k, v] : row.as_object().entries()) {
      bool seen = false;
      for (const auto& existing : keys) {
        if (existing == k) {
          seen = true;
          break;
        }
      }
      if (!seen) keys.push_back(k);
    }
  }
  // Pass 2: cells, then sniff types column-wise from the JSON value types.
  std::vector<std::vector<Value>> cells(keys.size());
  for (const json::Value& row : doc.as_array()) {
    for (size_t c = 0; c < keys.size(); ++c) {
      const json::Value* v = row.Get(keys[c]);
      cells[c].push_back(v == nullptr ? Value::Null() : JsonToCell(*v));
    }
  }
  Schema schema;
  for (size_t c = 0; c < keys.size(); ++c) {
    // Type = widest non-null cell type in the column.
    DataType type = DataType::kNull;
    for (const Value& v : cells[c]) {
      if (v.is_null()) continue;
      DataType t = v.type();
      if (type == DataType::kNull) {
        type = t;
      } else if (type != t) {
        type = (t == DataType::kDouble && type == DataType::kInt64) ||
                       (t == DataType::kInt64 && type == DataType::kDouble)
                   ? DataType::kDouble
                   : DataType::kString;
      }
    }
    if (type == DataType::kNull) type = DataType::kString;
    schema.AddField(Field{keys[c], type, /*nullable=*/true});
  }
  Table t(std::move(name), std::move(schema));
  const size_t n = doc.as_array().size();
  for (size_t r = 0; r < n; ++r) {
    std::vector<Value> row;
    row.reserve(keys.size());
    for (size_t c = 0; c < keys.size(); ++c) {
      Value v = cells[c][r];
      // Coerce to the column type where lossless.
      const DataType want = t.schema().field(c).type;
      if (!v.is_null() && v.type() != want) {
        if (want == DataType::kDouble && v.is_int()) {
          v = Value(static_cast<double>(v.as_int()));
        } else if (want == DataType::kString) {
          v = Value(v.ToString());
        }
      }
      row.push_back(std::move(v));
    }
    LAKEKIT_RETURN_IF_ERROR(t.AppendRow(std::move(row)));
  }
  return t;
}

json::Value Table::ToJson() const {
  json::Array rows;
  rows.reserve(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) {
    json::Object obj;
    for (size_t c = 0; c < num_columns(); ++c) {
      const Value& v = columns_[c][r];
      switch (v.type()) {
        case DataType::kNull:
          obj.Set(schema_.field(c).name, json::Value(nullptr));
          break;
        case DataType::kBool:
          obj.Set(schema_.field(c).name, json::Value(v.as_bool()));
          break;
        case DataType::kInt64:
          obj.Set(schema_.field(c).name, json::Value(v.as_int()));
          break;
        case DataType::kDouble:
          obj.Set(schema_.field(c).name, json::Value(v.as_double()));
          break;
        case DataType::kString:
          obj.Set(schema_.field(c).name, json::Value(v.as_string()));
          break;
      }
    }
    rows.emplace_back(std::move(obj));
  }
  return json::Value(std::move(rows));
}

bool Table::operator==(const Table& other) const {
  return schema_ == other.schema_ && columns_ == other.columns_;
}

size_t EstimateTableBytes(const Table& t) {
  size_t bytes = sizeof(Table) + t.name().capacity();
  for (size_t col = 0; col < t.num_columns(); ++col) {
    const std::vector<Value>& cells = t.column(col);
    bytes += cells.capacity() * sizeof(Value);
    for (const Value& v : cells) {
      if (const std::string* s = v.get_string()) bytes += s->capacity();
    }
  }
  return bytes;
}

}  // namespace lakekit::table
