#ifndef LAKEKIT_TABLE_TABLE_H_
#define LAKEKIT_TABLE_TABLE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "csv/csv.h"
#include "json/value.h"
#include "table/schema.h"
#include "table/value.h"

namespace lakekit::table {

/// An in-memory, column-oriented relational table.
///
/// `Table` is the common currency of the maintenance and exploration tiers:
/// dataset discovery, integration, cleaning and the query engine all consume
/// and produce tables. Storage is columnar (`std::vector<Value>` per field)
/// which keeps per-column profiling — the hot path of every discovery
/// algorithm — cache-friendly.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const Schema& schema() const { return schema_; }

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return schema_.num_fields(); }

  /// Appends a row; the row must have exactly num_columns() values.
  Status AppendRow(std::vector<Value> row);

  /// Reserves capacity for `rows` rows in every column.
  void Reserve(size_t rows);

  /// Appends `n` rows of `src`, identified by row index, column-wise — the
  /// gather primitive of the vectorized query engine (no per-row
  /// materialization). `src` must have this table's schema.
  Status AppendRowsFrom(const Table& src, const uint32_t* rows, size_t n);

  /// Builds a table directly from per-field column vectors, each holding
  /// exactly `num_rows` values. `num_rows` is explicit so zero-column tables
  /// (e.g. an empty projection) keep their row count.
  static Result<Table> FromColumns(std::string name, Schema schema,
                                   std::vector<std::vector<Value>> columns,
                                   size_t num_rows);

  /// Cell accessor (no bounds checking beyond assert in debug builds).
  const Value& at(size_t row, size_t col) const { return columns_[col][row]; }
  Value& at(size_t row, size_t col) { return columns_[col][row]; }

  /// Full column accessor.
  const std::vector<Value>& column(size_t col) const { return columns_[col]; }

  /// Column by name, or error.
  Result<size_t> ColumnIndex(std::string_view name) const;

  /// Materializes row `row` as a vector of values.
  std::vector<Value> Row(size_t row) const;

  /// Serializes to CSV with a header row.
  std::string ToCsv() const;

  /// Parses CSV text into a table, sniffing column types from the data: a
  /// column is int64 if every non-empty field parses as an integer, double if
  /// every non-empty field parses as a number, bool for true/false, else
  /// string. Empty fields become NULL.
  static Result<Table> FromCsv(std::string name, std::string_view csv_text);

  /// Builds a table from a JSON array of flat objects. The schema is the
  /// union of keys in first-seen order; missing keys become NULL; nested
  /// values are serialized back to JSON strings (schema-on-read flattening).
  static Result<Table> FromJson(std::string name, const json::Value& doc);

  /// Serializes to a JSON array of objects.
  json::Value ToJson() const;

  bool operator==(const Table& other) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<std::vector<Value>> columns_;
  size_t num_rows_ = 0;
};

/// Approximate heap bytes of a decoded table (cells plus string payloads).
/// The one size estimate every byte-accounting consumer shares: the
/// TableCache charge (query/table_cache.h) and per-query memory budgeting
/// (common/memory_budget.h) both price a table with this.
size_t EstimateTableBytes(const Table& t);

/// Infers the DataType of a column of raw strings (CSV type sniffing).
DataType SniffType(const std::vector<std::string>& values);

/// Parses a raw string into a Value of the given type ("" -> NULL).
Value ParseValueAs(std::string_view raw, DataType type);

}  // namespace lakekit::table

#endif  // LAKEKIT_TABLE_TABLE_H_
