#include "table/value.h"

#include <array>
#include <charconv>
#include <cmath>

#include "common/hash.h"

namespace lakekit::table {

std::string_view DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "null";
    case DataType::kBool:
      return "bool";
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

DataType DataTypeFromName(std::string_view name) {
  if (name == "bool") return DataType::kBool;
  if (name == "int64") return DataType::kInt64;
  if (name == "double") return DataType::kDouble;
  if (name == "string") return DataType::kString;
  return DataType::kNull;
}

DataType Value::type() const {
  if (is_null()) return DataType::kNull;
  if (is_bool()) return DataType::kBool;
  if (is_int()) return DataType::kInt64;
  if (is_double()) return DataType::kDouble;
  return DataType::kString;
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "";
    case DataType::kBool:
      return as_bool() ? "true" : "false";
    case DataType::kInt64:
      return std::to_string(as_int());
    case DataType::kDouble: {
      std::array<char, 32> buf;
      auto [ptr, ec] =
          std::to_chars(buf.data(), buf.data() + buf.size(), as_double());
      return std::string(buf.data(), ptr);
    }
    case DataType::kString:
      return as_string();
  }
  return "";
}

namespace {
/// Order rank for the cross-type total order.
int TypeRank(const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      return 0;
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
    case DataType::kDouble:
      return 2;  // Numerics compare with each other.
    case DataType::kString:
      return 3;
  }
  return 4;
}
}  // namespace

bool Value::operator==(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    return as_double() == other.as_double();
  }
  return data_ == other.data_;
}

bool Value::operator<(const Value& other) const {
  int ra = TypeRank(*this);
  int rb = TypeRank(other);
  if (ra != rb) return ra < rb;
  switch (type()) {
    case DataType::kNull:
      return false;
    case DataType::kBool:
      return !as_bool() && other.as_bool();
    case DataType::kInt64:
    case DataType::kDouble:
      return as_double() < other.as_double();
    case DataType::kString:
      return as_string() < other.as_string();
  }
  return false;
}

uint64_t Value::Hash() const {
  switch (type()) {
    case DataType::kNull:
      return 0x6e756c6cULL;
    case DataType::kBool:
      return as_bool() ? 0x74727565ULL : 0x66616c73ULL;
    case DataType::kInt64:
    case DataType::kDouble: {
      double d = as_double();
      if (d == 0.0) d = 0.0;  // Normalize -0.0.
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return Mix64(bits ^ 0x6e756d62ULL);
    }
    case DataType::kString:
      return Fnv1a64(as_string());
  }
  return 0;
}

}  // namespace lakekit::table
