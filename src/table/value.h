#ifndef LAKEKIT_TABLE_VALUE_H_
#define LAKEKIT_TABLE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

namespace lakekit::table {

/// Logical column type of the relational layer.
enum class DataType { kNull, kBool, kInt64, kDouble, kString };

/// Stable name for a DataType ("int64", "string", ...).
std::string_view DataTypeName(DataType type);

/// Parses a DataType name produced by DataTypeName.
DataType DataTypeFromName(std::string_view name);

/// A single relational cell: NULL, bool, int64, double, or string.
///
/// Values are ordered (NULL sorts first, then by type, then by value) and
/// hashable so they can key hash joins and group-bys.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  Value(bool b) : data_(b) {}                         // NOLINT
  Value(int64_t i) : data_(i) {}                      // NOLINT
  Value(int i) : data_(static_cast<int64_t>(i)) {}    // NOLINT
  Value(double d) : data_(d) {}                       // NOLINT
  Value(std::string s) : data_(std::move(s)) {}       // NOLINT
  Value(const char* s) : data_(std::string(s)) {}     // NOLINT
  Value(std::string_view s) : data_(std::string(s)) {}  // NOLINT

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_numeric() const { return is_int() || is_double(); }

  DataType type() const;

  bool as_bool() const { return std::get<bool>(data_); }
  int64_t as_int() const { return std::get<int64_t>(data_); }
  /// Numeric widening accessor: int64 and double both convert.
  double as_double() const {
    return is_int() ? static_cast<double>(as_int()) : std::get<double>(data_);
  }
  const std::string& as_string() const { return std::get<std::string>(data_); }

  /// Non-throwing typed accessors (nullptr on type mismatch): one variant
  /// index load instead of a holds_alternative check followed by a checked
  /// std::get. These are what batch lane builders use per cell.
  const bool* get_bool() const { return std::get_if<bool>(&data_); }
  const int64_t* get_int() const { return std::get_if<int64_t>(&data_); }
  const double* get_double() const { return std::get_if<double>(&data_); }
  const std::string* get_string() const {
    return std::get_if<std::string>(&data_);
  }

  /// Renders the value for CSV/debug output. NULL renders as "".
  std::string ToString() const;

  /// Total order: NULL < bool < numeric < string; numerics compare by value
  /// across int64/double.
  bool operator==(const Value& other) const;
  bool operator<(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<=(const Value& other) const { return !(other < *this); }
  bool operator>(const Value& other) const { return other < *this; }
  bool operator>=(const Value& other) const { return !(*this < other); }

  /// Stable 64-bit hash, consistent with operator== (numerics hash by
  /// double value).
  uint64_t Hash() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> data_;
};

/// Hash functor for unordered containers keyed by Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return static_cast<size_t>(v.Hash()); }
};

}  // namespace lakekit::table

#endif  // LAKEKIT_TABLE_VALUE_H_
