#include "text/embedding.h"

#include <cmath>

#include "common/hash.h"
#include "common/string_util.h"

namespace lakekit::text {

double CosineSimilarity(const DenseVector& a, const DenseVector& b) {
  if (a.empty() || a.size() != b.size()) return 0.0;
  double dot = 0;
  double na = 0;
  double nb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0 || nb == 0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double EuclideanDistance(const DenseVector& a, const DenseVector& b) {
  double sum = 0;
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

EmbeddingModel::EmbeddingModel(size_t dim, uint64_t seed)
    : dim_(dim), seed_(seed) {}

void EmbeddingModel::RegisterDomain(const std::string& domain,
                                    const std::vector<std::string>& tokens) {
  for (const std::string& t : tokens) {
    domain_of_.emplace_back(ToLower(t), domain);
  }
}

DenseVector EmbeddingModel::HashVector(std::string_view key) const {
  DenseVector v(dim_);
  uint64_t h = Fnv1a64(key) ^ seed_;
  for (size_t i = 0; i < dim_; ++i) {
    h = Mix64(h + i);
    // Map to roughly N(0,1) via sum of two uniforms, cheap and adequate.
    double u1 = static_cast<double>(h >> 11) * 0x1.0p-53;
    double u2 = static_cast<double>(Mix64(h) >> 11) * 0x1.0p-53;
    v[i] = (u1 + u2) - 1.0;
  }
  return v;
}

DenseVector EmbeddingModel::Embed(std::string_view token) const {
  std::string lower = ToLower(token);
  DenseVector base = HashVector(lower);
  // Blend in the domain direction when the token is in a known domain: the
  // shared component dominates, so same-domain tokens land close together.
  for (const auto& [tok, domain] : domain_of_) {
    if (tok == lower) {
      DenseVector dir = HashVector("domain::" + domain);
      for (size_t i = 0; i < dim_; ++i) {
        base[i] = 0.25 * base[i] + 0.75 * dir[i];
      }
      break;
    }
  }
  // Normalize.
  double norm = 0;
  for (double x : base) norm += x * x;
  norm = std::sqrt(norm);
  if (norm > 0) {
    for (double& x : base) x /= norm;
  }
  return base;
}

DenseVector EmbeddingModel::EmbedAll(
    const std::vector<std::string>& tokens) const {
  DenseVector mean(dim_, 0.0);
  if (tokens.empty()) return mean;
  for (const std::string& t : tokens) {
    DenseVector v = Embed(t);
    for (size_t i = 0; i < dim_; ++i) mean[i] += v[i];
  }
  double norm = 0;
  for (double x : mean) norm += x * x;
  norm = std::sqrt(norm);
  if (norm > 0) {
    for (double& x : mean) x /= norm;
  }
  return mean;
}

}  // namespace lakekit::text
