#ifndef LAKEKIT_TEXT_EMBEDDING_H_
#define LAKEKIT_TEXT_EMBEDDING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lakekit::text {

/// A dense embedding vector.
using DenseVector = std::vector<double>;

/// Cosine similarity of two dense vectors of equal dimension.
double CosineSimilarity(const DenseVector& a, const DenseVector& b);

/// Euclidean (L2) distance of two dense vectors of equal dimension.
double EuclideanDistance(const DenseVector& a, const DenseVector& b);

/// Deterministic word/value embedding model.
///
/// Substitutes for the pre-trained fastText/BERT embeddings used by D3L,
/// PEXESO and RNLIM (survey Table 3), which are unavailable offline. Each
/// token gets a base vector from hashed random projections; semantically
/// related tokens can be *taught* to the model by registering domains: tokens
/// of the same domain share a dominant domain component, so their cosine
/// similarity is high — mimicking the distributional-hypothesis property the
/// real embeddings provide, with controllable ground truth.
class EmbeddingModel {
 public:
  explicit EmbeddingModel(size_t dim = 64, uint64_t seed = 13);

  size_t dim() const { return dim_; }

  /// Declares that `tokens` belong to one semantic domain named `domain`.
  /// Subsequent Embed() calls blend the domain direction into each token.
  void RegisterDomain(const std::string& domain,
                      const std::vector<std::string>& tokens);

  /// Embedding of a single token (unit norm).
  DenseVector Embed(std::string_view token) const;

  /// Mean of token embeddings, re-normalized; zero vector for no tokens.
  DenseVector EmbedAll(const std::vector<std::string>& tokens) const;

 private:
  DenseVector HashVector(std::string_view key) const;

  size_t dim_;
  uint64_t seed_;
  /// token (lowercased) -> domain name.
  std::vector<std::pair<std::string, std::string>> domain_of_;
};

}  // namespace lakekit::text

#endif  // LAKEKIT_TEXT_EMBEDDING_H_
