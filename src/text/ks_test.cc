#include "text/ks_test.h"

#include <algorithm>
#include <cmath>

namespace lakekit::text {

double KsStatistic(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) return 1.0;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  size_t i = 0;
  size_t j = 0;
  double d = 0;
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  while (i < a.size() && j < b.size()) {
    double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    double diff = std::abs(static_cast<double>(i) / na -
                           static_cast<double>(j) / nb);
    d = std::max(d, diff);
  }
  return d;
}

double KsPValue(double d, size_t n, size_t m) {
  if (n == 0 || m == 0) return 1.0;
  const double ne = static_cast<double>(n) * static_cast<double>(m) /
                    static_cast<double>(n + m);
  const double lambda =
      (std::sqrt(ne) + 0.12 + 0.11 / std::sqrt(ne)) * d;
  // Kolmogorov tail sum: 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2).
  double sum = 0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    double term = std::exp(-2.0 * k * k * lambda * lambda);
    sum += sign * term;
    sign = -sign;
    if (term < 1e-10) break;
  }
  double p = 2.0 * sum;
  return std::clamp(p, 0.0, 1.0);
}

}  // namespace lakekit::text
