#ifndef LAKEKIT_TEXT_KS_TEST_H_
#define LAKEKIT_TEXT_KS_TEST_H_

#include <cstddef>
#include <vector>

namespace lakekit::text {

/// Two-sample Kolmogorov-Smirnov statistic: the maximum distance between the
/// empirical CDFs of `a` and `b`. Returns a value in [0,1]; 0 means identical
/// distributions. D3L and RNLIM (survey Table 3) use this as the numeric
/// distribution-similarity signal. Inputs need not be sorted. Returns 1.0
/// when either sample is empty.
double KsStatistic(std::vector<double> a, std::vector<double> b);

/// Asymptotic two-sample KS p-value approximation for statistic `d` with
/// sample sizes `n` and `m` (Kolmogorov distribution tail sum).
double KsPValue(double d, size_t n, size_t m);

}  // namespace lakekit::text

#endif  // LAKEKIT_TEXT_KS_TEST_H_
