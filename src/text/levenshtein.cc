#include "text/levenshtein.h"

#include <algorithm>
#include <vector>

namespace lakekit::text {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);
  // b is the shorter string; roll two rows of length |b|+1.
  std::vector<size_t> prev(b.size() + 1);
  std::vector<size_t> curr(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    curr[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, curr);
  }
  return prev[b.size()];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  size_t m = std::max(a.size(), b.size());
  if (m == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(m);
}

}  // namespace lakekit::text
