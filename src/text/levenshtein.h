#ifndef LAKEKIT_TEXT_LEVENSHTEIN_H_
#define LAKEKIT_TEXT_LEVENSHTEIN_H_

#include <cstddef>
#include <string_view>

namespace lakekit::text {

/// Edit distance (insert/delete/substitute, unit costs). O(|a|*|b|) time,
/// O(min) space. Used by DS-kNN-style dataset similarity (survey Sec. 6.1.2).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Normalized similarity in [0,1]: 1 - distance / max(|a|,|b|); 1 for two
/// empty strings.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

}  // namespace lakekit::text

#endif  // LAKEKIT_TEXT_LEVENSHTEIN_H_
