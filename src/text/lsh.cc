#include "text/lsh.h"

#include <cmath>

#include "common/hash.h"

namespace lakekit::text {

LshIndex::LshIndex(size_t bands, size_t rows)
    : bands_(bands), rows_(rows), buckets_(bands) {}

uint64_t LshIndex::BandHash(const MinHashSignature& sig, size_t band) const {
  uint64_t h = Mix64(band + 0x51ed270b9ULL);
  for (size_t r = 0; r < rows_; ++r) {
    h = HashCombine(h, sig.value(band * rows_ + r));
  }
  return h;
}

void LshIndex::Insert(uint64_t id, const MinHashSignature& signature) {
  for (size_t b = 0; b < bands_; ++b) {
    buckets_[b][BandHash(signature, b)].push_back(id);
  }
  ++num_items_;
}

std::vector<uint64_t> LshIndex::Query(const MinHashSignature& signature) const {
  std::unordered_set<uint64_t> seen;
  std::vector<uint64_t> out;
  for (size_t b = 0; b < bands_; ++b) {
    auto it = buckets_[b].find(BandHash(signature, b));
    if (it == buckets_[b].end()) continue;
    for (uint64_t id : it->second) {
      if (seen.insert(id).second) out.push_back(id);
    }
  }
  return out;
}

double LshIndex::CollisionProbability(double s) const {
  return 1.0 - std::pow(1.0 - std::pow(s, static_cast<double>(rows_)),
                        static_cast<double>(bands_));
}

}  // namespace lakekit::text
