#ifndef LAKEKIT_TEXT_LSH_H_
#define LAKEKIT_TEXT_LSH_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "text/minhash.h"

namespace lakekit::text {

/// Banding locality-sensitive hash index over MinHash signatures.
///
/// Signatures are split into `bands` bands of `rows` positions each; two
/// items collide if any band hashes identically. The probability a pair with
/// Jaccard similarity s collides is 1 - (1 - s^rows)^bands — the classic
/// S-curve. Aurum (survey Sec. 6.2.1) uses exactly this structure to bring
/// all-pairs column comparison from O(n^2) to ~linear.
class LshIndex {
 public:
  /// `bands * rows` must equal the signature length of inserted items.
  LshIndex(size_t bands, size_t rows);

  size_t bands() const { return bands_; }
  size_t rows() const { return rows_; }

  /// Inserts an item id with its signature. Ids are caller-assigned and need
  /// not be dense.
  void Insert(uint64_t id, const MinHashSignature& signature);

  /// Returns ids of all items sharing at least one band bucket with
  /// `signature` (candidate set; callers verify with exact or estimated
  /// similarity).
  std::vector<uint64_t> Query(const MinHashSignature& signature) const;

  /// Theoretical collision probability of a pair with Jaccard similarity s.
  double CollisionProbability(double s) const;

  size_t num_items() const { return num_items_; }

 private:
  uint64_t BandHash(const MinHashSignature& sig, size_t band) const;

  size_t bands_;
  size_t rows_;
  size_t num_items_ = 0;
  // One bucket map per band: band hash -> item ids.
  std::vector<std::unordered_map<uint64_t, std::vector<uint64_t>>> buckets_;
};

}  // namespace lakekit::text

#endif  // LAKEKIT_TEXT_LSH_H_
