#include "text/minhash.h"

#include <limits>

#include "common/hash.h"

namespace lakekit::text {

double MinHashSignature::EstimateJaccard(const MinHashSignature& other) const {
  if (values_.empty() || values_.size() != other.values_.size()) return 0.0;
  size_t matches = 0;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] == other.values_[i]) ++matches;
  }
  return static_cast<double>(matches) / static_cast<double>(values_.size());
}

MinHasher::MinHasher(size_t num_hashes, uint64_t seed)
    : num_hashes_(num_hashes) {
  mixers_.reserve(num_hashes_);
  uint64_t s = seed;
  for (size_t i = 0; i < num_hashes_; ++i) {
    s += 0x9e3779b97f4a7c15ULL;
    mixers_.push_back(Mix64(s));
  }
}

MinHashSignature MinHasher::Compute(
    const std::vector<std::string>& elements) const {
  std::vector<uint64_t> hashes;
  hashes.reserve(elements.size());
  for (const std::string& e : elements) hashes.push_back(Fnv1a64(e));
  return ComputeFromHashes(hashes);
}

MinHashSignature MinHasher::ComputeFromHashes(
    const std::vector<uint64_t>& hashes) const {
  std::vector<uint64_t> sig(num_hashes_,
                            std::numeric_limits<uint64_t>::max());
  for (uint64_t h : hashes) {
    for (size_t i = 0; i < num_hashes_; ++i) {
      uint64_t v = Mix64(h ^ mixers_[i]);
      if (v < sig[i]) sig[i] = v;
    }
  }
  return MinHashSignature(std::move(sig));
}

}  // namespace lakekit::text
