#ifndef LAKEKIT_TEXT_MINHASH_H_
#define LAKEKIT_TEXT_MINHASH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lakekit::text {

/// A MinHash signature: `k` independent minimum hash values of a set.
///
/// MinHash is the core sketch behind Aurum's column signatures (survey
/// Sec. 6.2.1): the fraction of agreeing positions between two signatures is
/// an unbiased estimator of the Jaccard similarity of the underlying sets.
class MinHashSignature {
 public:
  MinHashSignature() = default;
  explicit MinHashSignature(std::vector<uint64_t> values)
      : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  uint64_t value(size_t i) const { return values_[i]; }
  const std::vector<uint64_t>& values() const { return values_; }

  /// Estimated Jaccard similarity = fraction of matching positions.
  /// Requires equal sizes.
  double EstimateJaccard(const MinHashSignature& other) const;

 private:
  std::vector<uint64_t> values_;
};

/// Computes MinHash signatures using `num_hashes` hash functions derived from
/// `seed` via SplitMix64 (one pass per element, cheap XOR-mix families).
class MinHasher {
 public:
  explicit MinHasher(size_t num_hashes = 128, uint64_t seed = 7);

  size_t num_hashes() const { return num_hashes_; }

  /// Signature of a set of string elements. Duplicate elements are harmless
  /// (min is idempotent). An empty set yields an all-max signature.
  MinHashSignature Compute(const std::vector<std::string>& elements) const;

  /// Signature from precomputed element hashes (e.g. Value::Hash()).
  MinHashSignature ComputeFromHashes(const std::vector<uint64_t>& hashes) const;

 private:
  size_t num_hashes_;
  std::vector<uint64_t> mixers_;
};

}  // namespace lakekit::text

#endif  // LAKEKIT_TEXT_MINHASH_H_
