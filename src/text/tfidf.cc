#include "text/tfidf.h"

#include <cmath>
#include <unordered_set>

namespace lakekit::text {

double CosineSimilarity(const SparseVector& a, const SparseVector& b) {
  if (a.empty() || b.empty()) return 0.0;
  const SparseVector& small = a.size() <= b.size() ? a : b;
  const SparseVector& large = a.size() <= b.size() ? b : a;
  double dot = 0;
  for (const auto& [token, w] : small) {
    auto it = large.find(token);
    if (it != large.end()) dot += w * it->second;
  }
  double na = 0;
  for (const auto& [token, w] : a) na += w * w;
  double nb = 0;
  for (const auto& [token, w] : b) nb += w * w;
  if (na == 0 || nb == 0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

size_t TfIdfVectorizer::AddDocument(const std::vector<std::string>& tokens) {
  std::unordered_set<std::string> unique(tokens.begin(), tokens.end());
  for (const auto& t : unique) ++doc_freq_[t];
  documents_.push_back(tokens);
  return documents_.size() - 1;
}

SparseVector TfIdfVectorizer::TermFrequencies(
    const std::vector<std::string>& tokens) const {
  SparseVector tf;
  for (const auto& t : tokens) tf[t] += 1.0;
  if (!tokens.empty()) {
    for (auto& [t, w] : tf) w /= static_cast<double>(tokens.size());
  }
  return tf;
}

double TfIdfVectorizer::Idf(const std::string& token) const {
  auto it = doc_freq_.find(token);
  const double df = it == doc_freq_.end() ? 0.0 : static_cast<double>(it->second);
  return std::log((1.0 + static_cast<double>(documents_.size())) / (1.0 + df)) +
         1.0;
}

SparseVector TfIdfVectorizer::Vectorize(size_t doc_id) const {
  return VectorizeQuery(documents_[doc_id]);
}

SparseVector TfIdfVectorizer::VectorizeQuery(
    const std::vector<std::string>& tokens) const {
  SparseVector v = TermFrequencies(tokens);
  for (auto& [t, w] : v) w *= Idf(t);
  return v;
}

}  // namespace lakekit::text
