#ifndef LAKEKIT_TEXT_TFIDF_H_
#define LAKEKIT_TEXT_TFIDF_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace lakekit::text {

/// A sparse TF-IDF vector: token -> weight.
using SparseVector = std::unordered_map<std::string, double>;

/// Cosine similarity of two sparse vectors (0 when either is empty).
double CosineSimilarity(const SparseVector& a, const SparseVector& b);

/// Corpus-level TF-IDF vectorizer.
///
/// Documents are added first (building document frequencies), then
/// `Vectorize` produces weights tf * log((1+N)/(1+df)). Aurum and D3L use
/// TF-IDF cosine over attribute-name tokens as a schema-level relatedness
/// signal (survey Table 3).
class TfIdfVectorizer {
 public:
  /// Registers a document (a token multiset) and returns its id.
  size_t AddDocument(const std::vector<std::string>& tokens);

  size_t num_documents() const { return documents_.size(); }

  /// TF-IDF vector of a previously added document.
  SparseVector Vectorize(size_t doc_id) const;

  /// TF-IDF vector of an ad-hoc query using the corpus statistics.
  SparseVector VectorizeQuery(const std::vector<std::string>& tokens) const;

 private:
  SparseVector TermFrequencies(const std::vector<std::string>& tokens) const;
  double Idf(const std::string& token) const;

  std::vector<std::vector<std::string>> documents_;
  std::unordered_map<std::string, size_t> doc_freq_;
};

}  // namespace lakekit::text

#endif  // LAKEKIT_TEXT_TFIDF_H_
