#include "text/tokenize.h"

#include <cctype>
#include <unordered_set>

#include "common/string_util.h"

namespace lakekit::text {

std::vector<std::string> Tokenize(std::string_view input) {
  std::vector<std::string> tokens;
  std::string current;
  for (char raw : input) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<std::string> QGrams(std::string_view input, size_t q) {
  std::string padded;
  padded.reserve(input.size() + 2 * (q - 1));
  padded.append(q - 1, '$');
  padded += ToLower(input);
  padded.append(q - 1, '$');
  std::vector<std::string> grams;
  if (padded.size() < q) return grams;
  grams.reserve(padded.size() - q + 1);
  for (size_t i = 0; i + q <= padded.size(); ++i) {
    grams.push_back(padded.substr(i, q));
  }
  return grams;
}

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::unordered_set<std::string> sa(a.begin(), a.end());
  std::unordered_set<std::string> sb(b.begin(), b.end());
  size_t inter = 0;
  for (const auto& t : sa) {
    if (sb.count(t) > 0) ++inter;
  }
  size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace lakekit::text
