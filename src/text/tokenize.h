#ifndef LAKEKIT_TEXT_TOKENIZE_H_
#define LAKEKIT_TEXT_TOKENIZE_H_

#include <string>
#include <string_view>
#include <vector>

namespace lakekit::text {

/// Splits `input` into lowercase alphanumeric word tokens. Every run of
/// non-alphanumeric characters is a separator; "Vehicle_Color-2024" yields
/// {"vehicle", "color", "2024"}.
std::vector<std::string> Tokenize(std::string_view input);

/// Character q-grams of the lowercase input, with `q`-1 boundary padding
/// ('$'), e.g. QGrams("ab", 3) = {"$$a", "$ab", "ab$", "b$$"}... The padded
/// form makes short-string similarity better behaved.
std::vector<std::string> QGrams(std::string_view input, size_t q);

/// Jaccard similarity of two token multisets treated as sets.
double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

}  // namespace lakekit::text

#endif  // LAKEKIT_TEXT_TOKENIZE_H_
