#include "workload/generator.h"

#include <algorithm>
#include <set>

#include "common/hash.h"

namespace lakekit::workload {

using table::DataType;
using table::Field;
using table::Schema;
using table::Table;
using table::Value;

namespace {

/// Unique background value: never collides across columns.
std::string BackgroundValue(size_t table_idx, size_t col_idx, size_t i) {
  return "bg" + std::to_string(table_idx) + "c" + std::to_string(col_idx) +
         "v" + std::to_string(i);
}

}  // namespace

JoinableLake MakeJoinableLake(const JoinableLakeOptions& options,
                              ThreadPool* pool) {
  Rng rng(options.seed);
  JoinableLake lake;

  // Decide which (table, column) slots receive planted value sets. Each
  // planted pair uses the first text column of two distinct tables; a table
  // participates in at most one pair on a given column to keep ground truth
  // clean.
  struct Slot {
    size_t table;
    size_t col;  // text column index (0-based among text columns)
  };
  std::vector<std::pair<Slot, Slot>> pair_slots;
  {
    std::vector<size_t> table_ids(options.num_tables);
    for (size_t i = 0; i < options.num_tables; ++i) table_ids[i] = i;
    rng.Shuffle(&table_ids);
    size_t next = 0;
    for (size_t p = 0; p < options.num_planted_pairs &&
                       next + 1 < table_ids.size();
         ++p, next += 2) {
      size_t col_a = rng.Below(options.text_cols_per_table);
      size_t col_b = rng.Below(options.text_cols_per_table);
      pair_slots.push_back({Slot{table_ids[next], col_a},
                            Slot{table_ids[next + 1], col_b}});
    }
  }

  // Planted value sets: for target Jaccard J with each side holding n
  // values, shared = round(2nJ/(1+J)).
  const size_t n = options.rows_per_table;
  std::map<uint64_t, std::vector<std::string>> planted_values;  // slot key
  auto slot_key = [](const Slot& s) {
    return (static_cast<uint64_t>(s.table) << 16) | s.col;
  };
  size_t planted_group = 0;
  for (const auto& [a, b] : pair_slots) {
    const double j = options.overlap_jaccard;
    const size_t shared =
        static_cast<size_t>(2.0 * static_cast<double>(n) * j / (1.0 + j));
    const size_t unique = n - shared;
    std::vector<std::string> va;
    std::vector<std::string> vb;
    std::string prefix = "pl" + std::to_string(planted_group++);
    for (size_t i = 0; i < shared; ++i) {
      std::string v = prefix + "s" + std::to_string(i);
      va.push_back(v);
      vb.push_back(v);
    }
    for (size_t i = 0; i < unique; ++i) {
      va.push_back(prefix + "a" + std::to_string(i));
      vb.push_back(prefix + "b" + std::to_string(i));
    }
    planted_values[slot_key(a)] = std::move(va);
    planted_values[slot_key(b)] = std::move(vb);
  }

  // Build the tables: id (unique int), measure (double), text columns.
  // Row generation dominates fixture wall time, so tables fill in parallel;
  // each table owns a distinct slot and an Rng seeded from (seed, t), making
  // the lake bit-identical for any thread count. The planted_values map is
  // read-only from here on.
  Schema schema;
  schema.AddField(Field{"id", DataType::kInt64, false});
  schema.AddField(Field{"measure", DataType::kDouble, true});
  for (size_t c = 0; c < options.text_cols_per_table; ++c) {
    schema.AddField(
        Field{"attr" + std::to_string(c), DataType::kString, true});
  }
  lake.tables.reserve(options.num_tables);
  for (size_t t = 0; t < options.num_tables; ++t) {
    lake.tables.emplace_back("table" + std::to_string(t), schema);
  }
  ParallelOptions par;
  par.pool = pool;
  // The per-table lambda is infallible (rows match the schema by
  // construction), so a failure here can only be a bug.
  LAKEKIT_CHECK_OK(ParallelFor(
      0, options.num_tables,
      [&](size_t t) -> Status {
        Rng trng(Mix64(options.seed + 0x9e3779b97f4a7c15ULL * (t + 1)));
        Table& tbl = lake.tables[t];
        for (size_t r = 0; r < options.rows_per_table; ++r) {
          std::vector<Value> row;
          row.push_back(Value(static_cast<int64_t>(t * 1000000 + r)));
          row.push_back(Value(trng.NextGaussian() * 10.0 +
                              static_cast<double>(t)));
          for (size_t c = 0; c < options.text_cols_per_table; ++c) {
            auto it = planted_values.find(slot_key(Slot{t, c}));
            if (it != planted_values.end()) {
              row.push_back(Value(it->second[r % it->second.size()]));
            } else {
              row.push_back(Value(BackgroundValue(t, c, r)));
            }
          }
          LAKEKIT_RETURN_IF_ERROR(tbl.AppendRow(std::move(row)));
        }
        return Status::OK();
      },
      par));

  for (size_t p = 0; p < pair_slots.size(); ++p) {
    const auto& [a, b] = pair_slots[p];
    lake.planted.push_back(PlantedPair{
        "table" + std::to_string(a.table), "attr" + std::to_string(a.col),
        "table" + std::to_string(b.table), "attr" + std::to_string(b.col),
        options.overlap_jaccard});
  }
  return lake;
}

UnionableLake MakeUnionableLake(const UnionableLakeOptions& options) {
  Rng rng(options.seed);
  UnionableLake lake;

  // One set of domains per group; each column of a group's tables draws
  // from the group's domain for that column position.
  for (size_t g = 0; g < options.num_groups; ++g) {
    for (size_t c = 0; c < options.cols_per_table; ++c) {
      std::string domain =
          "domain_g" + std::to_string(g) + "c" + std::to_string(c);
      std::vector<std::string> terms;
      for (size_t i = 0; i < options.terms_per_domain; ++i) {
        terms.push_back(domain + "_t" + std::to_string(i));
      }
      lake.domains[domain] = std::move(terms);
    }
  }

  size_t table_counter = 0;
  for (size_t g = 0; g < options.num_groups; ++g) {
    for (size_t t = 0; t < options.tables_per_group; ++t) {
      Schema schema;
      for (size_t c = 0; c < options.cols_per_table; ++c) {
        // Same column names within a group, distinct across groups.
        schema.AddField(Field{"g" + std::to_string(g) + "_field" +
                                  std::to_string(c),
                              DataType::kString, true});
      }
      Table tbl("union_table" + std::to_string(table_counter++), schema);
      for (size_t r = 0; r < options.rows_per_table; ++r) {
        std::vector<Value> row;
        for (size_t c = 0; c < options.cols_per_table; ++c) {
          const auto& terms = lake.domains.at(
              "domain_g" + std::to_string(g) + "c" + std::to_string(c));
          row.push_back(Value(terms[rng.Below(terms.size())]));
        }
        // ignore: generated rows match the schema by construction.
        (void)tbl.AppendRow(std::move(row));
      }
      lake.tables.push_back(std::move(tbl));
      lake.group_of.push_back(g);
    }
  }
  return lake;
}

LogCorpus MakeLogCorpus(const LogCorpusOptions& options) {
  Rng rng(options.seed);
  LogCorpus corpus;

  // Template shapes: literal words with variable positions.
  struct Shape {
    std::vector<std::string> literals;  // "<*>" marks a variable slot
  };
  std::vector<Shape> shapes;
  static const char* kVerbs[] = {"started", "finished", "failed",
                                 "retried", "scheduled", "evicted"};
  static const char* kNouns[] = {"job", "task", "query", "compaction",
                                 "ingestion", "snapshot"};
  // Per-template tags must be digit-free (digit-bearing tokens are masked
  // as variables by extractors) and appear in TWO positions so any two
  // templates differ in at least two tokens — otherwise refinement would
  // legitimately merge them.
  auto letter_tag = [](std::string prefix, size_t i) {
    prefix.push_back(static_cast<char>('a' + i % 26));
    prefix.push_back(static_cast<char>('a' + (i / 26) % 26));
    return prefix;
  };
  for (size_t i = 0; i < options.num_templates; ++i) {
    Shape s;
    s.literals = {"INFO",
                  kNouns[i % 6],
                  letter_tag("task", i),
                  kVerbs[(i * 2 + 1) % 6],
                  "in",
                  "<*>",
                  "ms",
                  letter_tag("worker", i)};
    shapes.push_back(std::move(s));
    std::string pattern;
    for (size_t j = 0; j < shapes.back().literals.size(); ++j) {
      if (j > 0) pattern += " ";
      pattern += shapes.back().literals[j];
    }
    corpus.planted_patterns.push_back(pattern);
  }
  corpus.lines_per_pattern.assign(options.num_templates, 0);

  for (size_t line = 0; line < options.total_lines; ++line) {
    size_t t = rng.NextZipf(options.num_templates, options.popularity_skew);
    ++corpus.lines_per_pattern[t];
    std::string out;
    for (size_t j = 0; j < shapes[t].literals.size(); ++j) {
      if (j > 0) out += " ";
      if (shapes[t].literals[j] == "<*>") {
        out += std::to_string(rng.Below(100000));
      } else {
        out += shapes[t].literals[j];
      }
    }
    corpus.text += out;
    corpus.text += "\n";
  }
  // Order planted patterns by emitted frequency (descending) to match
  // extractor output ordering.
  std::vector<size_t> order(options.num_templates);
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return corpus.lines_per_pattern[a] > corpus.lines_per_pattern[b];
  });
  std::vector<std::string> patterns;
  std::vector<size_t> lines;
  for (size_t i : order) {
    patterns.push_back(corpus.planted_patterns[i]);
    lines.push_back(corpus.lines_per_pattern[i]);
  }
  corpus.planted_patterns = std::move(patterns);
  corpus.lines_per_pattern = std::move(lines);
  return corpus;
}

DomainLake MakeDomainLake(const DomainLakeOptions& options) {
  Rng rng(options.seed);
  DomainLake lake;

  std::vector<std::string> domain_names;
  for (size_t d = 0; d < options.num_domains; ++d) {
    std::string name = "dom" + std::to_string(d);
    domain_names.push_back(name);
    std::vector<std::string> terms;
    for (size_t i = 0; i < options.terms_per_domain; ++i) {
      terms.push_back(name + "_term" + std::to_string(i));
    }
    lake.domains[name] = std::move(terms);
  }
  // Planted homographs: terms inserted into two domains.
  for (size_t h = 0; h < options.num_homographs && options.num_domains >= 2;
       ++h) {
    std::string term = "homograph" + std::to_string(h);
    lake.homographs.push_back(term);
    lake.domains[domain_names[h % options.num_domains]].push_back(term);
    lake.domains[domain_names[(h + 1) % options.num_domains]].push_back(term);
  }

  for (size_t t = 0; t < options.num_tables; ++t) {
    // Each table has 2 columns from (possibly) different domains.
    size_t d1 = rng.Below(options.num_domains);
    size_t d2 = rng.Below(options.num_domains);
    Schema schema;
    schema.AddField(Field{"col_" + domain_names[d1] + "_a",
                          DataType::kString, true});
    schema.AddField(Field{"col_" + domain_names[d2] + "_b",
                          DataType::kString, true});
    Table tbl("domain_table" + std::to_string(t), schema);
    const auto& terms1 = lake.domains.at(domain_names[d1]);
    const auto& terms2 = lake.domains.at(domain_names[d2]);
    for (size_t r = 0; r < options.rows_per_table; ++r) {
      // ignore: generated rows match the schema by construction.
      (void)tbl.AppendRow({Value(terms1[rng.Below(terms1.size())]),
                           Value(terms2[rng.Below(terms2.size())])});
    }
    lake.tables.push_back(std::move(tbl));
  }
  return lake;
}

DirtyTable MakeDirtyTable(const DirtyTableOptions& options) {
  Rng rng(options.seed);
  DirtyTable out;

  Schema schema;
  schema.AddField(Field{"id", DataType::kInt64, false});
  schema.AddField(Field{"city", DataType::kString, true});
  schema.AddField(Field{"zip", DataType::kString, true});
  schema.AddField(Field{"amount", DataType::kDouble, true});
  Table tbl("dirty", schema);

  // Ground truth: city i has zip "Z<i>".
  std::set<size_t> violation_rows;
  while (violation_rows.size() < options.num_violations) {
    violation_rows.insert(rng.Below(options.num_rows));
  }
  for (size_t r = 0; r < options.num_rows; ++r) {
    size_t city = rng.Below(options.num_cities);
    std::string zip = "Z" + std::to_string(city);
    if (violation_rows.count(r) > 0) {
      zip = "Z" + std::to_string((city + 1 + rng.Below(options.num_cities - 1)) %
                                 options.num_cities);
      out.violation_rows.push_back(r);
    }
    // ignore: generated rows match the schema by construction.
    (void)tbl.AppendRow({Value(static_cast<int64_t>(r)),
                         Value("city" + std::to_string(city)), Value(zip),
                         Value(rng.NextDouble() * 100.0)});
  }
  out.table = std::move(tbl);
  return out;
}

EvolvingCorpus MakeEvolvingCorpus(const EvolvingCorpusOptions& options) {
  Rng rng(options.seed);
  EvolvingCorpus corpus;
  int64_t ts = 0;

  auto emit = [&](int version) {
    for (size_t i = 0; i < options.docs_per_version; ++i) {
      json::Object doc;
      doc.Set("_ts", json::Value(ts++));
      doc.Set("id", json::Value(static_cast<int64_t>(rng.Below(100000))));
      if (version == 0) {
        doc.Set("name", json::Value(rng.NextWord(6)));
        doc.Set("age", json::Value(static_cast<int64_t>(rng.Below(90))));
      } else if (version == 1) {
        // v1: add "email".
        doc.Set("name", json::Value(rng.NextWord(6)));
        doc.Set("age", json::Value(static_cast<int64_t>(rng.Below(90))));
        doc.Set("email", json::Value(rng.NextWord(8) + "@mail"));
      } else {
        // v2: rename "name" -> "full_name", drop "age".
        doc.Set("full_name", json::Value(rng.NextWord(6)));
        doc.Set("email", json::Value(rng.NextWord(8) + "@mail"));
      }
      corpus.documents.emplace_back(std::move(doc));
    }
  };
  emit(0);
  emit(1);
  emit(2);
  corpus.planted_changes = {"add email", "rename name->full_name",
                            "remove age"};
  return corpus;
}

}  // namespace lakekit::workload
